//! # setsig-oodb — a minimal object-oriented database substrate
//!
//! The paper evaluates signature files *inside an OODB*: objects built with
//! tuple and set constructors, identified by OIDs, stored "straightforwardly
//! in the object file" with direct access by OID costing one page (`P_p =
//! P_s = 1`, Table 2). This crate is that substrate:
//!
//! * [`Value`] — the complex-object value model (integers, strings, object
//!   references, sets, tuples) with a compact binary encoding,
//! * [`ClassDef`] / [`AttrType`] — schema definitions like the paper's
//!   `Student`, `Course`, `Teacher` classes,
//! * [`ObjectStore`] — a slotted-page object file on `setsig-pagestore`
//!   with overflow chaining for oversized objects,
//! * [`Database`] — classes + object store + registered set access
//!   facilities, with a query executor that runs the paper's two-phase
//!   scheme (facility filter → false-drop resolution) and reports measured
//!   page accesses and drop counts,
//! * a full-scan baseline ([`Database::scan_set_query`]) for verifying
//!   every facility's answers.
//!
//! ```
//! use setsig_oodb::{AttrType, ClassDef, Database, Value};
//! use setsig_core::{SetQuery, ElementKey};
//!
//! let mut db = Database::in_memory();
//! let student = db.define_class(ClassDef::new(
//!     "Student",
//!     vec![
//!         ("name", AttrType::Str),
//!         ("hobbies", AttrType::set_of(AttrType::Str)),
//!     ],
//! )).unwrap();
//!
//! let jeff = db.insert_object(student, vec![
//!     Value::str("Jeff"),
//!     Value::set(vec![Value::str("Baseball"), Value::str("Fishing")]),
//! ]).unwrap();
//!
//! let q = SetQuery::has_subset(vec![ElementKey::from("Baseball")]);
//! let hits = db.scan_set_query(student, "hobbies", &q).unwrap();
//! assert_eq!(hits.actual, vec![jeff]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod database;
mod error;
mod object;
mod path;
mod schema;
mod sql;
mod store;
mod value;

pub use database::{Database, QueryExecution};
pub use error::{Error, Result};
pub use object::Object;
pub use path::PathSpec;
pub use schema::{AttrDef, AttrType, ClassDef, ClassId};
pub use sql::{parse_query, ParsedQuery};
pub use store::ObjectStore;
pub use value::Value;
