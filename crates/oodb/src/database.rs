//! The database: catalog + object store + set access facilities + the
//! two-phase query executor.

use setsig_core::{
    resolve_drops, CandidateSet, DropReport, ElementKey, ElementSet, Oid, OidAllocator,
    SetAccessFacility, SetQuery, TargetSetSource,
};
use setsig_pagestore::{Disk, IoDelta, PageIo};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::object::Object;
use crate::path::PathSpec;
use crate::schema::{ClassDef, ClassId};
use crate::store::ObjectStore;
use crate::value::Value;

/// What a facility indexes: a set attribute directly, or a set derived by
/// following references (§1's `Student.courses.category` path).
#[derive(Debug, Clone, PartialEq, Eq)]
enum IndexedSource {
    /// The set attribute at this index on the host class.
    Direct(usize),
    /// The path-derived set (see [`Database::register_path_facility`]).
    Path(PathSpec),
}

/// A registered set access facility: which class/source it indexes plus
/// the facility itself (SSF, BSSF, FSSF, or — via `setsig-nix` — NIX).
struct RegisteredFacility {
    class: ClassId,
    source: IndexedSource,
    facility: Box<dyn SetAccessFacility>,
}

/// The result of executing one set query through a facility.
#[derive(Debug, Clone)]
pub struct QueryExecution {
    /// Qualifying objects after false-drop resolution.
    pub actual: Vec<Oid>,
    /// Drop classification from the resolution step.
    pub report: DropReport,
    /// Page accesses consumed by the whole query (filter + OID look-up +
    /// object fetches) — directly comparable to the paper's `RC`.
    pub io: IoDelta,
}

/// A minimal OODB: classes, one object store, and any number of set access
/// facilities over indexed set attributes.
pub struct Database {
    disk: Arc<Disk>,
    store: ObjectStore,
    classes: Vec<ClassDef>,
    facilities: Vec<RegisteredFacility>,
    allocator: OidAllocator,
}

impl Database {
    /// Creates a database on a fresh in-memory accounting disk.
    pub fn in_memory() -> Self {
        Database::on_disk(Arc::new(Disk::new()))
    }

    /// Creates a database on an existing disk (so experiments can inspect
    /// per-file counters).
    pub fn on_disk(disk: Arc<Disk>) -> Self {
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        Database {
            disk,
            store: ObjectStore::create(io, "objects"),
            classes: Vec::new(),
            facilities: Vec::new(),
            allocator: OidAllocator::new(),
        }
    }

    /// The underlying accounting disk.
    pub fn disk(&self) -> &Arc<Disk> {
        &self.disk
    }

    /// The object store.
    pub fn store(&self) -> &ObjectStore {
        &self.store
    }

    /// Defines a class; names must be unique.
    pub fn define_class(&mut self, def: ClassDef) -> Result<ClassId> {
        if self.classes.iter().any(|c| c.name == def.name) {
            return Err(Error::DuplicateClass(def.name));
        }
        let id = ClassId(self.classes.len() as u32);
        self.classes.push(def);
        Ok(id)
    }

    /// The definition of `class`.
    pub fn class(&self, class: ClassId) -> Result<&ClassDef> {
        self.classes
            .get(class.0 as usize)
            .ok_or(Error::NoSuchClass(class))
    }

    /// Looks a class up by name.
    pub fn class_by_name(&self, name: &str) -> Option<ClassId> {
        self.classes
            .iter()
            .position(|c| c.name == name)
            .map(|i| ClassId(i as u32))
    }

    /// Creates an object of `class` with the given attribute values,
    /// validating them against the schema, storing the object, and feeding
    /// every registered facility on the class.
    pub fn insert_object(&mut self, class: ClassId, values: Vec<Value>) -> Result<Oid> {
        self.class(class)?.check_values(&values)?;
        let oid = self.allocator.allocate();
        let object = Object { oid, class, values };
        // Derive before storing so a dangling path reference fails the
        // whole insert instead of leaving a half-indexed object.
        let mut derived: Vec<(usize, Vec<ElementKey>)> = Vec::new();
        for (i, reg) in self.facilities.iter().enumerate() {
            if reg.class == class {
                derived.push((i, source_set(&self.store, &object, &reg.source)?));
            }
        }
        self.store.put(&object)?;
        for (i, set) in derived {
            self.facilities[i].facility.insert(oid, &set)?;
        }
        Ok(oid)
    }

    /// Fetches an object by OID (one or more object-file page reads).
    pub fn get_object(&self, oid: Oid) -> Result<Object> {
        self.store.get(oid)
    }

    /// Deletes an object, removing it from every facility on its class.
    pub fn delete_object(&mut self, oid: Oid) -> Result<()> {
        let object = self.store.get(oid)?;
        let mut derived: Vec<(usize, Vec<ElementKey>)> = Vec::new();
        for (i, reg) in self.facilities.iter().enumerate() {
            if reg.class == object.class {
                derived.push((i, source_set(&self.store, &object, &reg.source)?));
            }
        }
        for (i, set) in derived {
            self.facilities[i].facility.delete(oid, &set)?;
        }
        self.store.delete(oid)
    }

    /// Registers a set access facility over `class.attr`. The attribute
    /// must be a set of primitives. Existing objects of the class are
    /// back-filled into the facility.
    pub fn register_facility(
        &mut self,
        class: ClassId,
        attr_name: &str,
        facility: Box<dyn SetAccessFacility>,
    ) -> Result<usize> {
        let def = self.class(class)?;
        let attr = def.attr_index(attr_name)?;
        if !def.attrs[attr].ty.is_indexable_set() {
            return Err(Error::NotASetAttribute(attr_name.to_owned()));
        }
        self.register_with_source(class, IndexedSource::Direct(attr), facility)
    }

    /// Shared registration: back-fills existing objects of `class` through
    /// `source`, then records the facility.
    fn register_with_source(
        &mut self,
        class: ClassId,
        source: IndexedSource,
        mut facility: Box<dyn SetAccessFacility>,
    ) -> Result<usize> {
        let mut oids: Vec<Oid> = self.store.oids().collect();
        oids.sort_unstable();
        for oid in oids {
            let object = self.store.get(oid)?;
            if object.class == class {
                let set = source_set(&self.store, &object, &source)?;
                facility.insert(oid, &set)?;
            }
        }
        self.facilities.push(RegisteredFacility {
            class,
            source,
            facility,
        });
        Ok(self.facilities.len() - 1)
    }

    /// Registration entry point used by the path module.
    pub(crate) fn register_derived(
        &mut self,
        class: ClassId,
        spec: PathSpec,
        facility: Box<dyn SetAccessFacility>,
    ) -> Result<usize> {
        self.register_with_source(class, IndexedSource::Path(spec), facility)
    }

    /// Index of a registered facility covering `(class, attr)` directly.
    pub(crate) fn facility_index_for(&self, class: ClassId, attr: usize) -> Option<usize> {
        self.facilities
            .iter()
            .position(|r| r.class == class && r.source == IndexedSource::Direct(attr))
    }

    /// The registered facility at `index` (for stats inspection).
    pub fn facility(&self, index: usize) -> Option<&dyn SetAccessFacility> {
        self.facilities.get(index).map(|r| r.facility.as_ref())
    }

    /// Executes `query` over `class.attr` through the registered facility
    /// `facility_index`, running the paper's two-phase scheme: facility
    /// filter, then false-drop resolution against the object store.
    pub fn execute_set_query(
        &self,
        facility_index: usize,
        query: &SetQuery,
    ) -> Result<QueryExecution> {
        let reg = self
            .facilities
            .get(facility_index)
            .ok_or_else(|| Error::NoSuchAttribute(format!("facility #{facility_index}")))?;
        let before = self.disk.snapshot();
        let candidates = reg.facility.candidates(query)?;
        self.finish_execution(reg, query, candidates, before)
    }

    /// Like [`execute_set_query`](Self::execute_set_query), but with a
    /// caller-supplied candidate set (for the smart BSSF strategies, which
    /// are methods on `Bssf` rather than on the trait).
    pub fn resolve_candidates(
        &self,
        facility_index: usize,
        query: &SetQuery,
        candidates: CandidateSet,
        filter_start: setsig_pagestore::IoSnapshot,
    ) -> Result<QueryExecution> {
        let reg = self
            .facilities
            .get(facility_index)
            .ok_or_else(|| Error::NoSuchAttribute(format!("facility #{facility_index}")))?;
        self.finish_execution(reg, query, candidates, filter_start)
    }

    fn finish_execution(
        &self,
        reg: &RegisteredFacility,
        query: &SetQuery,
        candidates: CandidateSet,
        before: setsig_pagestore::IoSnapshot,
    ) -> Result<QueryExecution> {
        let source = StoreSource {
            store: &self.store,
            source: &reg.source,
        };
        let report = resolve_drops(query, &candidates, &source).map_err(Error::Facility)?;
        let io = self.disk.snapshot().since(before);
        Ok(QueryExecution {
            actual: report.actual.clone(),
            report,
            io,
        })
    }

    /// A [`TargetSetSource`] over `class.attr` backed by the object store —
    /// fetching through it charges the paper's per-object page accesses.
    /// Lets callers resolve drops for facilities they manage outside the
    /// database (e.g. smart-strategy experiments).
    pub fn target_source(
        &self,
        class: ClassId,
        attr_name: &str,
    ) -> Result<impl TargetSetSource + '_> {
        let attr = self.class(class)?.attr_index(attr_name)?;
        Ok(OwnedStoreSource {
            store: &self.store,
            source: IndexedSource::Direct(attr),
        })
    }

    /// Full-scan baseline: evaluates the predicate against **every** object
    /// of the class, with no facility. Used to verify facility answers and
    /// to show what the paper's access facilities are buying.
    pub fn scan_set_query(
        &self,
        class: ClassId,
        attr_name: &str,
        query: &SetQuery,
    ) -> Result<QueryExecution> {
        let def = self.class(class)?;
        let attr = def.attr_index(attr_name)?;
        let before = self.disk.snapshot();
        let mut oids: Vec<Oid> = self.store.oids().collect();
        oids.sort_unstable();
        let mut actual = Vec::new();
        let mut examined = 0u64;
        for oid in oids {
            let object = self.store.get(oid)?;
            if object.class != class {
                continue;
            }
            examined += 1;
            let set = source_set(&self.store, &object, &IndexedSource::Direct(attr))?;
            let elem_set: ElementSet = set.into_iter().collect();
            if setsig_core::verify_predicate(query.predicate, &elem_set, &query.elements) {
                actual.push(oid);
            }
        }
        let io = self.disk.snapshot().since(before);
        let hits = actual.len() as u64;
        Ok(QueryExecution {
            actual,
            report: DropReport {
                actual: Vec::new(),
                false_drops: examined - hits,
                candidates: examined,
            },
            io,
        })
    }
}

/// Extracts the indexed set of an object under a source: the attribute's
/// own elements, or the path-derived elements (fetching referenced objects
/// from `store`, charging their page reads).
fn source_set(
    store: &ObjectStore,
    object: &Object,
    source: &IndexedSource,
) -> Result<Vec<ElementKey>> {
    match source {
        IndexedSource::Direct(attr) => object
            .value(*attr)
            .and_then(Value::as_element_set)
            .ok_or_else(|| Error::NotASetAttribute(format!("attribute #{attr}"))),
        IndexedSource::Path(spec) => {
            let refs = match object.value(spec.ref_attr) {
                Some(Value::Set(elems)) => elems,
                _ => {
                    return Err(Error::NotASetAttribute(format!(
                        "attribute #{}",
                        spec.ref_attr
                    )))
                }
            };
            let mut out = Vec::with_capacity(refs.len());
            for r in refs {
                let Value::Ref(oid) = r else {
                    return Err(Error::NotASetAttribute(format!(
                        "attribute #{} holds non-reference elements",
                        spec.ref_attr
                    )));
                };
                let target = store.get(*oid)?;
                let key = target
                    .value(spec.target_attr)
                    .and_then(Value::to_element_key)
                    .ok_or_else(|| {
                        Error::NoSuchAttribute(format!(
                            "target attribute #{} of {oid} is not a primitive",
                            spec.target_attr
                        ))
                    })?;
                out.push(key);
            }
            out.sort_unstable();
            out.dedup();
            Ok(out)
        }
    }
}

/// Adapter: the object store as a [`TargetSetSource`] for drop resolution.
struct StoreSource<'a> {
    store: &'a ObjectStore,
    source: &'a IndexedSource,
}

impl TargetSetSource for StoreSource<'_> {
    fn fetch_set(&self, oid: Oid) -> setsig_core::Result<ElementSet> {
        fetch_via(self.store, oid, self.source)
    }
}

/// As [`StoreSource`] but owning its source (for `target_source`).
struct OwnedStoreSource<'a> {
    store: &'a ObjectStore,
    source: IndexedSource,
}

impl TargetSetSource for OwnedStoreSource<'_> {
    fn fetch_set(&self, oid: Oid) -> setsig_core::Result<ElementSet> {
        fetch_via(self.store, oid, &self.source)
    }
}

fn fetch_via(
    store: &ObjectStore,
    oid: Oid,
    source: &IndexedSource,
) -> setsig_core::Result<ElementSet> {
    let object = store
        .get(oid)
        .map_err(|e| setsig_core::Error::BadQuery(format!("fetch {oid}: {e}")))?;
    let set = source_set(store, &object, source)
        .map_err(|e| setsig_core::Error::BadQuery(format!("{oid}: {e}")))?;
    Ok(set.into_iter().collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::AttrType;
    use setsig_core::{SignatureConfig, Ssf};

    fn hobbies_db() -> (Database, ClassId) {
        let mut db = Database::in_memory();
        let student = db
            .define_class(ClassDef::new(
                "Student",
                vec![
                    ("name", AttrType::Str),
                    ("hobbies", AttrType::set_of(AttrType::Str)),
                ],
            ))
            .unwrap();
        (db, student)
    }

    fn add_student(db: &mut Database, class: ClassId, name: &str, hobbies: &[&str]) -> Oid {
        db.insert_object(
            class,
            vec![
                Value::str(name),
                Value::set(hobbies.iter().map(|h| Value::str(h)).collect()),
            ],
        )
        .unwrap()
    }

    #[test]
    fn schema_is_enforced_on_insert() {
        let (mut db, student) = hobbies_db();
        let err = db.insert_object(student, vec![Value::Int(3), Value::set(vec![])]);
        assert!(matches!(err, Err(Error::TypeMismatch { .. })));
        assert!(matches!(
            db.insert_object(ClassId(9), vec![]),
            Err(Error::NoSuchClass(_))
        ));
    }

    #[test]
    fn duplicate_class_rejected() {
        let (mut db, _student) = hobbies_db();
        assert!(matches!(
            db.define_class(ClassDef::new("Student", vec![])),
            Err(Error::DuplicateClass(_))
        ));
        assert!(db.class_by_name("Student").is_some());
        assert!(db.class_by_name("Course").is_none());
    }

    #[test]
    fn scan_query_answers_exactly() {
        let (mut db, student) = hobbies_db();
        let jeff = add_student(&mut db, student, "Jeff", &["Baseball", "Fishing"]);
        let _ann = add_student(&mut db, student, "Ann", &["Chess"]);
        let bob = add_student(&mut db, student, "Bob", &["Baseball", "Fishing", "Golf"]);

        let q = SetQuery::has_subset(vec![
            ElementKey::from("Baseball"),
            ElementKey::from("Fishing"),
        ]);
        let r = db.scan_set_query(student, "hobbies", &q).unwrap();
        assert_eq!(r.actual, vec![jeff, bob]);
        // Scan fetched every object.
        assert_eq!(r.report.candidates, 3);
    }

    #[test]
    fn facility_query_agrees_with_scan_and_costs_less() {
        let (mut db, student) = hobbies_db();
        for i in 0..300u32 {
            let hobby = format!("hobby{}", i % 50);
            add_student(&mut db, student, &format!("s{i}"), &[&hobby, "Common"]);
        }
        let cfg = SignatureConfig::new(256, 3).unwrap();
        let io: Arc<dyn PageIo> = Arc::clone(db.disk()) as Arc<dyn PageIo>;
        let ssf = Ssf::create(io, "hobbies", cfg).unwrap();
        let fidx = db
            .register_facility(student, "hobbies", Box::new(ssf))
            .unwrap();

        let q = SetQuery::has_subset(vec![ElementKey::from("hobby7")]);
        let via_facility = db.execute_set_query(fidx, &q).unwrap();
        let via_scan = db.scan_set_query(student, "hobbies", &q).unwrap();
        assert_eq!(via_facility.actual, via_scan.actual);
        assert_eq!(via_facility.actual.len(), 6);
        assert!(
            via_facility.io.accesses() < via_scan.io.accesses(),
            "facility {:?} vs scan {:?}",
            via_facility.io,
            via_scan.io
        );
    }

    #[test]
    fn register_facility_backfills_existing_objects() {
        let (mut db, student) = hobbies_db();
        let jeff = add_student(&mut db, student, "Jeff", &["Baseball"]);
        let cfg = SignatureConfig::new(128, 2).unwrap();
        let io: Arc<dyn PageIo> = Arc::clone(db.disk()) as Arc<dyn PageIo>;
        let ssf = Ssf::create(io, "hobbies", cfg).unwrap();
        let fidx = db
            .register_facility(student, "hobbies", Box::new(ssf))
            .unwrap();
        let q = SetQuery::has_subset(vec![ElementKey::from("Baseball")]);
        assert_eq!(db.execute_set_query(fidx, &q).unwrap().actual, vec![jeff]);
    }

    #[test]
    fn register_facility_rejects_non_set_attr() {
        let (mut db, student) = hobbies_db();
        let cfg = SignatureConfig::new(128, 2).unwrap();
        let io: Arc<dyn PageIo> = Arc::clone(db.disk()) as Arc<dyn PageIo>;
        let ssf = Ssf::create(io, "bad", cfg).unwrap();
        assert!(matches!(
            db.register_facility(student, "name", Box::new(ssf)),
            Err(Error::NotASetAttribute(_))
        ));
    }

    #[test]
    fn delete_removes_from_store_and_facility() {
        let (mut db, student) = hobbies_db();
        let cfg = SignatureConfig::new(128, 2).unwrap();
        let io: Arc<dyn PageIo> = Arc::clone(db.disk()) as Arc<dyn PageIo>;
        let ssf = Ssf::create(io, "hobbies", cfg).unwrap();
        let fidx = db
            .register_facility(student, "hobbies", Box::new(ssf))
            .unwrap();

        let jeff = add_student(&mut db, student, "Jeff", &["Baseball"]);
        let bob = add_student(&mut db, student, "Bob", &["Baseball"]);
        db.delete_object(jeff).unwrap();

        assert!(db.get_object(jeff).is_err());
        let q = SetQuery::has_subset(vec![ElementKey::from("Baseball")]);
        assert_eq!(db.execute_set_query(fidx, &q).unwrap().actual, vec![bob]);
    }

    #[test]
    fn in_subset_query_end_to_end() {
        let (mut db, student) = hobbies_db();
        let cfg = SignatureConfig::new(256, 2).unwrap();
        let io: Arc<dyn PageIo> = Arc::clone(db.disk()) as Arc<dyn PageIo>;
        let ssf = Ssf::create(io, "hobbies", cfg).unwrap();
        let fidx = db
            .register_facility(student, "hobbies", Box::new(ssf))
            .unwrap();

        let a = add_student(&mut db, student, "A", &["Baseball"]);
        let b = add_student(&mut db, student, "B", &["Baseball", "Fishing"]);
        let _c = add_student(&mut db, student, "C", &["Baseball", "Skiing"]);

        // Q2 of the paper: hobbies ⊆ {Baseball, Fishing, Tennis}.
        let q = SetQuery::in_subset(vec![
            ElementKey::from("Baseball"),
            ElementKey::from("Fishing"),
            ElementKey::from("Tennis"),
        ]);
        let r = db.execute_set_query(fidx, &q).unwrap();
        assert_eq!(r.actual, vec![a, b]);
    }
}
