//! The complex-object value model and its binary encoding.

use setsig_core::{ElementKey, Oid};

use crate::error::{Error, Result};

/// A value built from the OODB data modeling constructs: primitives, object
/// references, and the set and tuple constructors of §1.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Value {
    /// A 64-bit integer.
    Int(i64),
    /// A UTF-8 string.
    Str(String),
    /// A reference to another object (e.g. `Student.courses` holding
    /// `Course` OIDs).
    Ref(Oid),
    /// A set value; order-insensitive, duplicates removed on normalization.
    Set(Vec<Value>),
    /// A tuple value (nested structure).
    Tuple(Vec<Value>),
}

const TAG_INT: u8 = 0;
const TAG_STR: u8 = 1;
const TAG_REF: u8 = 2;
const TAG_SET: u8 = 3;
const TAG_TUPLE: u8 = 4;

impl Value {
    /// Convenience constructor for strings.
    pub fn str(s: &str) -> Value {
        Value::Str(s.to_owned())
    }

    /// Convenience constructor for sets, normalizing (sort + dedup) the
    /// elements so two equal sets have equal representations.
    pub fn set(mut elems: Vec<Value>) -> Value {
        elems.sort_by_key(|a| a.sort_key());
        elems.dedup();
        Value::Set(elems)
    }

    /// A total order key used only for set normalization.
    fn sort_key(&self) -> Vec<u8> {
        self.encode()
    }

    /// The name of the value's shape, for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Int(_) => "int",
            Value::Str(_) => "str",
            Value::Ref(_) => "ref",
            Value::Set(_) => "set",
            Value::Tuple(_) => "tuple",
        }
    }

    /// Converts a primitive value into the canonical element form used by
    /// the signature and index layers. Sets and tuples are not elements.
    pub fn to_element_key(&self) -> Option<ElementKey> {
        match self {
            Value::Int(v) => Some(ElementKey::from(*v as u64)),
            Value::Str(s) => Some(ElementKey::from(s.as_str())),
            Value::Ref(oid) => Some(ElementKey::from(*oid)),
            Value::Set(_) | Value::Tuple(_) => None,
        }
    }

    /// If this is a set of primitives, its elements in canonical form.
    pub fn as_element_set(&self) -> Option<Vec<ElementKey>> {
        match self {
            Value::Set(elems) => elems.iter().map(Value::to_element_key).collect(),
            _ => None,
        }
    }

    /// Serializes to the tagged binary format.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        self.encode_into(&mut out);
        out
    }

    fn encode_into(&self, out: &mut Vec<u8>) {
        match self {
            Value::Int(v) => {
                out.push(TAG_INT);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Value::Str(s) => {
                out.push(TAG_STR);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Value::Ref(oid) => {
                out.push(TAG_REF);
                out.extend_from_slice(&oid.raw().to_le_bytes());
            }
            Value::Set(elems) => {
                out.push(TAG_SET);
                out.extend_from_slice(&(elems.len() as u32).to_le_bytes());
                for e in elems {
                    e.encode_into(out);
                }
            }
            Value::Tuple(elems) => {
                out.push(TAG_TUPLE);
                out.extend_from_slice(&(elems.len() as u32).to_le_bytes());
                for e in elems {
                    e.encode_into(out);
                }
            }
        }
    }

    /// Deserializes one value from `bytes` starting at `*pos`, advancing it.
    pub fn decode(bytes: &[u8], pos: &mut usize) -> Result<Value> {
        let corrupt = |msg: &str| Error::CorruptObject(msg.to_owned());
        let tag = *bytes.get(*pos).ok_or_else(|| corrupt("truncated tag"))?;
        *pos += 1;
        match tag {
            TAG_INT => {
                let raw = bytes
                    .get(*pos..*pos + 8)
                    .ok_or_else(|| corrupt("truncated int"))?;
                *pos += 8;
                Ok(Value::Int(i64::from_le_bytes(raw.try_into().unwrap())))
            }
            TAG_STR => {
                let len = read_u32(bytes, pos)? as usize;
                let raw = bytes
                    .get(*pos..*pos + len)
                    .ok_or_else(|| corrupt("truncated string"))?;
                *pos += len;
                Ok(Value::Str(
                    String::from_utf8(raw.to_vec()).map_err(|_| corrupt("string not utf-8"))?,
                ))
            }
            TAG_REF => {
                let raw = bytes
                    .get(*pos..*pos + 8)
                    .ok_or_else(|| corrupt("truncated ref"))?;
                *pos += 8;
                let v = u64::from_le_bytes(raw.try_into().unwrap());
                if v > Oid::MAX_VALUE {
                    return Err(corrupt("ref exceeds the 63-bit OID space"));
                }
                Ok(Value::Ref(Oid::new(v)))
            }
            TAG_SET | TAG_TUPLE => {
                let len = read_u32(bytes, pos)? as usize;
                if len > bytes.len() {
                    return Err(corrupt("collection length exceeds record"));
                }
                let mut elems = Vec::with_capacity(len);
                for _ in 0..len {
                    elems.push(Value::decode(bytes, pos)?);
                }
                Ok(if tag == TAG_SET {
                    Value::Set(elems)
                } else {
                    Value::Tuple(elems)
                })
            }
            other => Err(Error::CorruptObject(format!("unknown value tag {other}"))),
        }
    }
}

fn read_u32(bytes: &[u8], pos: &mut usize) -> Result<u32> {
    let raw = bytes
        .get(*pos..*pos + 4)
        .ok_or_else(|| Error::CorruptObject("truncated length".into()))?;
    *pos += 4;
    Ok(u32::from_le_bytes(raw.try_into().unwrap()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: &Value) -> Value {
        let bytes = v.encode();
        let mut pos = 0;
        let back = Value::decode(&bytes, &mut pos).unwrap();
        assert_eq!(pos, bytes.len(), "decoder must consume everything");
        back
    }

    #[test]
    fn primitive_roundtrips() {
        for v in [
            Value::Int(0),
            Value::Int(-42),
            Value::Int(i64::MAX),
            Value::str(""),
            Value::str("Jeff"),
            Value::Ref(Oid::new(123)),
        ] {
            assert_eq!(roundtrip(&v), v);
        }
    }

    #[test]
    fn nested_roundtrip_like_paper_student() {
        // s1: [name: "Jeff", courses: {c1, c3, c4}, hobbies: {"Baseball",
        // "Fishing"}]
        let student = Value::Tuple(vec![
            Value::str("Jeff"),
            Value::set(vec![
                Value::Ref(Oid::new(1)),
                Value::Ref(Oid::new(3)),
                Value::Ref(Oid::new(4)),
            ]),
            Value::set(vec![Value::str("Baseball"), Value::str("Fishing")]),
        ]);
        assert_eq!(roundtrip(&student), student);
    }

    #[test]
    fn set_normalization_makes_equal_sets_equal() {
        let a = Value::set(vec![Value::str("b"), Value::str("a"), Value::str("b")]);
        let b = Value::set(vec![Value::str("a"), Value::str("b")]);
        assert_eq!(a, b);
        if let Value::Set(elems) = &a {
            assert_eq!(elems.len(), 2);
        } else {
            panic!("not a set");
        }
    }

    #[test]
    fn element_key_conversion() {
        assert!(Value::Int(3).to_element_key().is_some());
        assert!(Value::str("x").to_element_key().is_some());
        assert!(Value::Ref(Oid::new(1)).to_element_key().is_some());
        assert!(Value::set(vec![]).to_element_key().is_none());
        let set = Value::set(vec![Value::str("a"), Value::str("b")]);
        assert_eq!(set.as_element_set().unwrap().len(), 2);
        // A set containing a nested set is not an indexable element set.
        let nested = Value::Set(vec![Value::set(vec![])]);
        assert!(nested.as_element_set().is_none());
    }

    #[test]
    fn corrupt_records_are_rejected_not_panicking() {
        for bytes in [
            vec![],                            // empty
            vec![99],                          // unknown tag
            vec![TAG_INT, 1, 2],               // truncated int
            vec![TAG_STR, 10, 0, 0, 0, b'a'],  // truncated string
            vec![TAG_SET, 255, 255, 255, 255], // absurd length
        ] {
            let mut pos = 0;
            assert!(Value::decode(&bytes, &mut pos).is_err(), "bytes {bytes:?}");
        }
    }
}

#[cfg(test)]
mod corrupt_ref_tests {
    use super::*;

    #[test]
    fn oversized_ref_is_an_error_not_a_panic() {
        let mut bytes = vec![TAG_REF];
        bytes.extend_from_slice(&u64::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(matches!(
            Value::decode(&bytes, &mut pos),
            Err(Error::CorruptObject(_))
        ));
    }
}
