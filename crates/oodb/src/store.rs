//! The object file: a slotted-page store with overflow for large records.
//!
//! Objects are stored "straightforwardly in the object file" (§4
//! assumptions): no decomposition, direct access by OID. Small records pack
//! into slotted pages, so fetching an object costs **one page read** — the
//! paper's `P_p = P_s = 1`. Records too large for one page span dedicated
//! contiguous pages and cost proportionally more, which the cost model
//! accommodates by raising `P_p`/`P_s`.
//!
//! The OID → location directory is kept in memory: in a real OODB the
//! physical address is embedded in (or hashed from) the OID itself, so the
//! paper's model charges no I/O for the translation.

use setsig_pagestore::{Page, PageIo, PagedFile, PAGE_SIZE};
use std::collections::HashMap;
use std::sync::Arc;

use setsig_core::Oid;

use crate::error::{Error, Result};
use crate::object::Object;

/// Page header: slot count (u16) + free offset (u16).
const HEADER: usize = 4;
/// Bytes per slot array entry: record offset (u16) + length (u16).
const SLOT: usize = 4;
/// Largest record stored inline in a slotted page.
const MAX_INLINE: usize = PAGE_SIZE - HEADER - SLOT;

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Location {
    /// Record `slot` of slotted page `page`.
    Slot { page: u32, slot: u16 },
    /// `len` bytes spanning whole pages starting at `first_page`.
    Spanning { first_page: u32, len: u32 },
}

/// A slotted-page object store.
pub struct ObjectStore {
    file: PagedFile,
    directory: HashMap<Oid, Location>,
    /// Page currently accepting inline inserts: (page, free bytes, slots).
    tail: Option<(u32, usize, u16)>,
    count: u64,
}

impl ObjectStore {
    /// Creates an empty object store named `name` on `io`.
    pub fn create(io: Arc<dyn PageIo>, name: &str) -> Self {
        ObjectStore {
            file: PagedFile::create(io, name),
            directory: HashMap::new(),
            tail: None,
            count: 0,
        }
    }

    /// Number of stored objects.
    pub fn len(&self) -> u64 {
        self.count
    }

    /// True when no objects are stored.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Pages occupied by the object file.
    pub fn storage_pages(&self) -> Result<u64> {
        Ok(self.file.len()? as u64)
    }

    /// True if `oid` is present.
    pub fn contains(&self, oid: Oid) -> bool {
        self.directory.contains_key(&oid)
    }

    /// All stored OIDs (unordered).
    pub fn oids(&self) -> impl Iterator<Item = Oid> + '_ {
        self.directory.keys().copied()
    }

    /// Stores `object`, keyed by its OID. Replaces any previous version.
    pub fn put(&mut self, object: &Object) -> Result<()> {
        if self.directory.contains_key(&object.oid) {
            self.delete(object.oid)?;
        }
        let record = object.encode();
        let loc = if record.len() <= MAX_INLINE {
            self.insert_inline(&record)?
        } else {
            self.insert_spanning(&record)?
        };
        self.directory.insert(object.oid, loc);
        self.count += 1;
        Ok(())
    }

    fn insert_inline(&mut self, record: &[u8]) -> Result<Location> {
        let needed = record.len() + SLOT;
        match self.tail {
            Some((page_no, free, nslots)) if free >= needed => {
                self.file.update(page_no, |page| write_slot(page, record))?;
                self.tail = Some((page_no, free - needed, nslots + 1));
                Ok(Location::Slot {
                    page: page_no,
                    slot: nslots,
                })
            }
            _ => {
                let mut page = Page::zeroed();
                page.write_u16(2, HEADER as u16);
                write_slot(&mut page, record);
                let page_no = self.file.append(&page)?;
                self.tail = Some((page_no, PAGE_SIZE - HEADER - needed, 1));
                Ok(Location::Slot {
                    page: page_no,
                    slot: 0,
                })
            }
        }
    }

    fn insert_spanning(&mut self, record: &[u8]) -> Result<Location> {
        let first_page = self.file.len()?;
        for chunk in record.chunks(PAGE_SIZE) {
            let mut page = Page::zeroed();
            page.write_slice(0, chunk);
            self.file.append(&page)?;
        }
        // A spanning insert closes the current tail page: subsequent inline
        // records start a fresh page, keeping spans contiguous.
        self.tail = None;
        Ok(Location::Spanning {
            first_page,
            len: record.len() as u32,
        })
    }

    /// Fetches the object `oid`. Inline records cost one page read;
    /// spanning records cost `⌈len/P⌉` reads.
    pub fn get(&self, oid: Oid) -> Result<Object> {
        let loc = *self.directory.get(&oid).ok_or(Error::NoSuchObject(oid))?;
        let bytes = match loc {
            Location::Slot { page, slot } => {
                let p = self.file.read(page)?;
                read_slot(&p, slot)?
            }
            Location::Spanning { first_page, len } => {
                let mut bytes = Vec::with_capacity(len as usize);
                let npages = (len as usize).div_ceil(PAGE_SIZE) as u32;
                for i in 0..npages {
                    let p = self.file.read(first_page + i)?;
                    let take = (len as usize - bytes.len()).min(PAGE_SIZE);
                    bytes.extend_from_slice(&p.as_bytes()[..take]);
                }
                bytes
            }
        };
        let object = Object::decode(&bytes)?;
        if object.oid != oid {
            return Err(Error::CorruptObject(format!(
                "directory points {oid} at record for {}",
                object.oid
            )));
        }
        Ok(object)
    }

    /// Deletes `oid`: tombstones its slot (one read + one write for inline
    /// records; spanning pages are only dropped from the directory).
    pub fn delete(&mut self, oid: Oid) -> Result<()> {
        let loc = self
            .directory
            .remove(&oid)
            .ok_or(Error::NoSuchObject(oid))?;
        if let Location::Slot { page, slot } = loc {
            self.file.modify(page, |p| {
                let slot_off = PAGE_SIZE - (slot as usize + 1) * SLOT;
                p.write_u16(slot_off + 2, 0); // len = 0 marks the slot dead
            })?;
            if self.tail.map(|(t, _, _)| t) == Some(page) {
                // Freed space inside the tail page is not reused (records
                // are never compacted in place); keep accounting simple.
            }
        }
        self.count -= 1;
        Ok(())
    }
}

/// Appends `record` to the page, claiming the next slot. Caller guarantees
/// fit.
fn write_slot(page: &mut Page, record: &[u8]) {
    let nslots = page.read_u16(0) as usize;
    let free_off = page.read_u16(2) as usize;
    page.write_slice(free_off, record);
    let slot_off = PAGE_SIZE - (nslots + 1) * SLOT;
    page.write_u16(slot_off, free_off as u16);
    page.write_u16(slot_off + 2, record.len() as u16);
    page.write_u16(0, (nslots + 1) as u16);
    page.write_u16(2, (free_off + record.len()) as u16);
}

fn read_slot(page: &Page, slot: u16) -> Result<Vec<u8>> {
    let nslots = page.read_u16(0);
    if slot >= nslots {
        return Err(Error::CorruptObject(format!("slot {slot} of {nslots}")));
    }
    let slot_off = PAGE_SIZE - (slot as usize + 1) * SLOT;
    let off = page.read_u16(slot_off) as usize;
    let len = page.read_u16(slot_off + 2) as usize;
    if len == 0 {
        return Err(Error::CorruptObject(format!("slot {slot} is dead")));
    }
    Ok(page.read_slice(off, len).to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassId;
    use crate::value::Value;
    use setsig_pagestore::Disk;

    fn store() -> (Arc<Disk>, ObjectStore) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        (disk, ObjectStore::create(io, "objects"))
    }

    fn obj(oid: u64, hobby_count: u64) -> Object {
        Object {
            oid: Oid::new(oid),
            class: ClassId(0),
            values: vec![Value::set(
                (0..hobby_count)
                    .map(|i| Value::Int((oid * 100 + i) as i64))
                    .collect(),
            )],
        }
    }

    #[test]
    fn put_get_roundtrip() {
        let (_d, mut s) = store();
        let o = obj(1, 5);
        s.put(&o).unwrap();
        assert_eq!(s.get(Oid::new(1)).unwrap(), o);
        assert_eq!(s.len(), 1);
        assert!(s.contains(Oid::new(1)));
        assert!(matches!(s.get(Oid::new(2)), Err(Error::NoSuchObject(_))));
    }

    #[test]
    fn small_objects_pack_many_per_page() {
        let (_d, mut s) = store();
        for i in 0..100 {
            s.put(&obj(i, 3)).unwrap();
        }
        // ~48-byte records + 4-byte slots: ≈78 per page → 2 pages for 100.
        assert_eq!(s.storage_pages().unwrap(), 2);
        for i in 0..100 {
            assert_eq!(s.get(Oid::new(i)).unwrap().oid, Oid::new(i));
        }
    }

    #[test]
    fn inline_get_costs_one_page_read() {
        let (disk, mut s) = store();
        for i in 0..50 {
            s.put(&obj(i, 4)).unwrap();
        }
        disk.reset_stats();
        let _ = s.get(Oid::new(25)).unwrap();
        assert_eq!(disk.snapshot().reads, 1, "the paper's P_s = 1");
    }

    #[test]
    fn large_objects_span_pages() {
        let (disk, mut s) = store();
        // A set with 1000 int elements: 9 bytes each + overhead ≈ 9 KiB.
        let big = obj(7, 1000);
        s.put(&big).unwrap();
        assert!(s.storage_pages().unwrap() >= 3);
        disk.reset_stats();
        assert_eq!(s.get(Oid::new(7)).unwrap(), big);
        assert!(disk.snapshot().reads >= 3, "spanning read costs ⌈len/P⌉");
    }

    #[test]
    fn spanning_then_inline_do_not_collide() {
        let (_d, mut s) = store();
        s.put(&obj(1, 3)).unwrap();
        s.put(&obj(2, 1000)).unwrap();
        s.put(&obj(3, 3)).unwrap();
        for i in 1..=3 {
            assert_eq!(s.get(Oid::new(i)).unwrap().oid, Oid::new(i));
        }
    }

    #[test]
    fn delete_tombstones_and_forgets() {
        let (_d, mut s) = store();
        s.put(&obj(1, 3)).unwrap();
        s.put(&obj(2, 3)).unwrap();
        s.delete(Oid::new(1)).unwrap();
        assert_eq!(s.len(), 1);
        assert!(s.get(Oid::new(1)).is_err());
        assert!(s.get(Oid::new(2)).is_ok());
        assert!(s.delete(Oid::new(1)).is_err());
    }

    #[test]
    fn put_replaces_existing_version() {
        let (_d, mut s) = store();
        s.put(&obj(1, 3)).unwrap();
        let updated = obj(1, 7);
        s.put(&updated).unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(Oid::new(1)).unwrap(), updated);
    }

    #[test]
    fn oids_iterates_live_objects() {
        let (_d, mut s) = store();
        for i in 0..5 {
            s.put(&obj(i, 2)).unwrap();
        }
        s.delete(Oid::new(3)).unwrap();
        let mut oids: Vec<u64> = s.oids().map(|o| o.raw()).collect();
        oids.sort_unstable();
        assert_eq!(oids, vec![0, 1, 2, 4]);
    }
}
