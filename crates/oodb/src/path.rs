//! Path-derived set attributes — the nested index's native habitat.
//!
//! §1's motivating example builds NIX "on the path `Student.courses.
//! category`": a `Student` is indexed by the **categories of the courses it
//! references**, so *"find all students who take only the lectures in the
//! DB category"* is a single `⊆ {"DB"}` query, with no join.
//!
//! [`Database::register_path_facility`] realizes that: it derives, for each
//! object, the set `{ target.attr | ref ∈ object.ref_attr }` by fetching
//! the referenced objects, and maintains any [`SetAccessFacility`] over the
//! derived sets. Like the original nested index, the mapping is maintained
//! on host-object insert/delete; updating a *target* object's indexed
//! attribute would require reverse references (Bertino & Kim's discussion)
//! and is out of scope — documented, as the paper does, as an update
//! anomaly of path indexes.

use setsig_core::SetAccessFacility;

use crate::database::Database;
use crate::error::{Error, Result};
use crate::schema::{AttrType, ClassId};

/// A path specification: follow the OID set in `ref_attr`, read
/// `target_attr` of each referenced object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PathSpec {
    /// Index of the `Set<Ref>` attribute on the host class.
    pub ref_attr: usize,
    /// Index of the primitive attribute on the referenced class.
    pub target_attr: usize,
}

impl Database {
    /// Registers `facility` over the path `class.ref_attr → target.attr` —
    /// the paper's `Student.courses.category` shape. Existing objects are
    /// back-filled (each derivation fetches its referenced objects).
    ///
    /// Queries against the returned facility index use the *derived*
    /// element values: `in_subset(["DB"])` answers "students taking only
    /// DB-category courses".
    pub fn register_path_facility(
        &mut self,
        class: ClassId,
        ref_attr_name: &str,
        target_class: ClassId,
        target_attr_name: &str,
        facility: Box<dyn SetAccessFacility>,
    ) -> Result<usize> {
        let def = self.class(class)?;
        let ref_attr = def.attr_index(ref_attr_name)?;
        if !matches!(&def.attrs[ref_attr].ty, AttrType::Set(inner) if **inner == AttrType::Ref) {
            return Err(Error::NotASetAttribute(format!(
                "{ref_attr_name:?} is not a set of references"
            )));
        }
        let tdef = self.class(target_class)?;
        let target_attr = tdef.attr_index(target_attr_name)?;
        if !tdef.attrs[target_attr].ty.is_element_type() {
            return Err(Error::NotASetAttribute(format!(
                "{target_attr_name:?} is not a primitive attribute"
            )));
        }
        let spec = PathSpec {
            ref_attr,
            target_attr,
        };
        self.register_derived(class, spec, facility)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::ClassDef;
    use crate::value::Value;
    use setsig_core::ElementKey;
    use setsig_core::{Oid, SetQuery, SignatureConfig, Ssf};
    use setsig_pagestore::PageIo;
    use std::sync::Arc;

    /// Builds the §1 sample database: courses with categories, students
    /// referencing them.
    fn sample() -> (Database, ClassId, Vec<Oid>, ClassId) {
        let mut db = Database::in_memory();
        let course = db
            .define_class(ClassDef::new(
                "Course",
                vec![("name", AttrType::Str), ("category", AttrType::Str)],
            ))
            .unwrap();
        let student = db
            .define_class(ClassDef::new(
                "Student",
                vec![
                    ("name", AttrType::Str),
                    ("courses", AttrType::set_of(AttrType::Ref)),
                ],
            ))
            .unwrap();
        let mut courses = Vec::new();
        for (name, cat) in [
            ("DB Theory", "DB"),
            ("DB Systems", "DB"),
            ("Algorithms", "CS"),
            ("Compilers", "CS"),
        ] {
            courses.push(
                db.insert_object(course, vec![Value::str(name), Value::str(cat)])
                    .unwrap(),
            );
        }
        (db, student, courses, course)
    }

    fn facility(db: &Database) -> Box<dyn SetAccessFacility> {
        let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
        Box::new(Ssf::create(io, "path", SignatureConfig::new(128, 2).unwrap()).unwrap())
    }

    #[test]
    fn section1_queries_through_the_path_index() {
        let (mut db, student, c, _course) = sample();
        let fac = facility(&db);
        let idx = db
            .register_path_facility(
                student,
                "courses",
                db.class_by_name("Course").unwrap(),
                "category",
                fac,
            )
            .unwrap();

        let jeff = db
            .insert_object(
                student,
                vec![
                    Value::str("Jeff"),
                    Value::set(vec![Value::Ref(c[0]), Value::Ref(c[1])]),
                ],
            )
            .unwrap();
        let ann = db
            .insert_object(
                student,
                vec![
                    Value::str("Ann"),
                    Value::set(vec![Value::Ref(c[0]), Value::Ref(c[2])]),
                ],
            )
            .unwrap();
        let bob = db
            .insert_object(
                student,
                vec![Value::str("Bob"), Value::set(vec![Value::Ref(c[3])])],
            )
            .unwrap();

        // "Students who take only DB-category lectures": derived ⊆ {"DB"}.
        let only_db = SetQuery::in_subset(vec![ElementKey::from("DB")]);
        let r = db.execute_set_query(idx, &only_db).unwrap();
        assert_eq!(r.actual, vec![jeff]);

        // "Students taking at least one DB lecture": derived ∋ "DB".
        let some_db = SetQuery::contains(ElementKey::from("DB"));
        let r = db.execute_set_query(idx, &some_db).unwrap();
        assert_eq!(r.actual, vec![jeff, ann]);

        // "Students spanning both categories": derived ⊇ {"DB", "CS"}.
        let both = SetQuery::has_subset(vec![ElementKey::from("DB"), ElementKey::from("CS")]);
        let r = db.execute_set_query(idx, &both).unwrap();
        assert_eq!(r.actual, vec![ann]);
        let _ = bob;
    }

    #[test]
    fn deletion_unindexes_the_derived_set() {
        let (mut db, student, c, _) = sample();
        let fac = facility(&db);
        let idx = db
            .register_path_facility(
                student,
                "courses",
                db.class_by_name("Course").unwrap(),
                "category",
                fac,
            )
            .unwrap();
        let jeff = db
            .insert_object(
                student,
                vec![Value::str("Jeff"), Value::set(vec![Value::Ref(c[0])])],
            )
            .unwrap();
        db.delete_object(jeff).unwrap();
        let r = db
            .execute_set_query(idx, &SetQuery::contains(ElementKey::from("DB")))
            .unwrap();
        assert!(r.actual.is_empty());
    }

    #[test]
    fn backfill_indexes_preexisting_objects() {
        let (mut db, student, c, _) = sample();
        let jeff = db
            .insert_object(
                student,
                vec![Value::str("Jeff"), Value::set(vec![Value::Ref(c[1])])],
            )
            .unwrap();
        let fac = facility(&db);
        let idx = db
            .register_path_facility(
                student,
                "courses",
                db.class_by_name("Course").unwrap(),
                "category",
                fac,
            )
            .unwrap();
        let r = db
            .execute_set_query(idx, &SetQuery::contains(ElementKey::from("DB")))
            .unwrap();
        assert_eq!(r.actual, vec![jeff]);
    }

    #[test]
    fn rejects_bad_paths() {
        let (mut db, student, _c, course) = sample();
        // name is not a set of refs.
        let fac = facility(&db);
        assert!(db
            .register_path_facility(student, "name", course, "category", fac)
            .is_err());
        // referenced attribute must be primitive — "courses" on Course
        // doesn't exist, and a set target is rejected too.
        let fac = facility(&db);
        assert!(db
            .register_path_facility(student, "courses", course, "nonexistent", fac)
            .is_err());
    }

    #[test]
    fn dangling_reference_surfaces_as_error() {
        let (mut db, student, _c, course) = sample();
        let fac = facility(&db);
        db.register_path_facility(student, "courses", course, "category", fac)
            .unwrap();
        // Reference an OID that was never stored.
        let err = db.insert_object(
            student,
            vec![
                Value::str("X"),
                Value::set(vec![Value::Ref(Oid::new(9999))]),
            ],
        );
        assert!(matches!(err, Err(Error::NoSuchObject(_))));
    }
}
