//! The paper's SQL-like query surface (§2).
//!
//! Queries in the paper are written in a SQL-like language (after Kim's
//! ORION dialect):
//!
//! ```text
//! select Student where hobbies has-subset ("Baseball", "Fishing")
//! select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis")
//! ```
//!
//! This module parses that surface into a class + attribute + [`SetQuery`]
//! and executes it through [`Database::run_query`] — using a registered set
//! access facility when one covers the attribute, falling back to the
//! full-scan baseline otherwise.

use setsig_core::{ElementKey, Oid, SetQuery};

use crate::database::{Database, QueryExecution};
use crate::error::{Error, Result};
use crate::schema::ClassId;

/// A parsed query: `select <class> [where <attr> <op> <set>]`.
#[derive(Debug, Clone, PartialEq)]
pub struct ParsedQuery {
    /// Class named in the `select`.
    pub class_name: String,
    /// The predicate, absent for a bare `select <class>`.
    pub condition: Option<(String, SetQuery)>,
}

#[derive(Debug, Clone, PartialEq)]
enum Token {
    Ident(String),
    Str(String),
    Int(i64),
    LParen,
    RParen,
    Comma,
}

fn lex(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let mut chars = input.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            c if c.is_whitespace() => {
                chars.next();
            }
            '(' => {
                chars.next();
                out.push(Token::LParen);
            }
            ')' => {
                chars.next();
                out.push(Token::RParen);
            }
            ',' => {
                chars.next();
                out.push(Token::Comma);
            }
            '"' | '\'' => {
                let quote = c;
                chars.next();
                let mut s = String::new();
                loop {
                    match chars.next() {
                        Some(c) if c == quote => break,
                        Some(c) => s.push(c),
                        None => {
                            return Err(Error::CorruptObject(format!(
                                "unterminated string literal in query: {input:?}"
                            )))
                        }
                    }
                }
                out.push(Token::Str(s));
            }
            c if c.is_ascii_digit() || c == '-' => {
                let mut s = String::new();
                s.push(c);
                chars.next();
                while let Some(&d) = chars.peek() {
                    if d.is_ascii_digit() {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let v: i64 = s
                    .parse()
                    .map_err(|_| Error::CorruptObject(format!("bad integer literal {s:?}")))?;
                out.push(Token::Int(v));
            }
            c if c.is_alphanumeric() || c == '_' || c == '-' => {
                let mut s = String::new();
                while let Some(&d) = chars.peek() {
                    if d.is_alphanumeric() || d == '_' || d == '-' {
                        s.push(d);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Token::Ident(s));
            }
            other => {
                return Err(Error::CorruptObject(format!(
                    "unexpected character {other:?} in query"
                )))
            }
        }
    }
    Ok(out)
}

/// Parses one query in the paper's surface syntax.
///
/// Operators: `has-subset` (⊇), `in-subset` (⊆), `equals` (=), `overlaps`
/// (∩ ≠ ∅), `contains` (∈). Set literals are parenthesized lists of string
/// or integer literals; `contains` also accepts a single bare literal.
pub fn parse_query(input: &str) -> Result<ParsedQuery> {
    let bad = |msg: &str| Error::CorruptObject(format!("query syntax: {msg}"));
    let tokens = lex(input)?;
    let mut it = tokens.into_iter().peekable();

    match it.next() {
        Some(Token::Ident(kw)) if kw.eq_ignore_ascii_case("select") => {}
        _ => return Err(bad("expected `select`")),
    }
    let class_name = match it.next() {
        Some(Token::Ident(name)) => name,
        _ => return Err(bad("expected a class name after `select`")),
    };
    if it.peek().is_none() {
        return Ok(ParsedQuery {
            class_name,
            condition: None,
        });
    }
    match it.next() {
        Some(Token::Ident(kw)) if kw.eq_ignore_ascii_case("where") => {}
        _ => return Err(bad("expected `where` or end of query")),
    }
    let attr = match it.next() {
        Some(Token::Ident(name)) => name,
        _ => return Err(bad("expected an attribute name after `where`")),
    };
    let op = match it.next() {
        Some(Token::Ident(op)) => op.to_ascii_lowercase(),
        _ => return Err(bad("expected a set operator")),
    };

    // Set literal: parenthesized list, or one bare literal.
    let mut elements = Vec::new();
    match it.next() {
        Some(Token::LParen) => loop {
            match it.next() {
                Some(Token::Str(s)) => elements.push(ElementKey::from(s)),
                Some(Token::Int(v)) => elements.push(ElementKey::from(v as u64)),
                Some(Token::RParen) if elements.is_empty() => break,
                _ => return Err(bad("expected a literal in the set")),
            }
            match it.next() {
                Some(Token::Comma) => continue,
                Some(Token::RParen) => break,
                _ => return Err(bad("expected `,` or `)` in the set")),
            }
        },
        Some(Token::Str(s)) => elements.push(ElementKey::from(s)),
        Some(Token::Int(v)) => elements.push(ElementKey::from(v as u64)),
        _ => return Err(bad("expected a set literal")),
    }
    if it.next().is_some() {
        return Err(bad("trailing tokens after the set literal"));
    }

    let query = match op.as_str() {
        "has-subset" => SetQuery::has_subset(elements),
        "in-subset" => SetQuery::in_subset(elements),
        "equals" => SetQuery::equals(elements),
        "overlaps" => SetQuery::overlaps(elements),
        "contains" => match (elements.pop(), elements.is_empty()) {
            (Some(element), true) => SetQuery::contains(element),
            _ => return Err(bad("`contains` takes exactly one element")),
        },
        other => return Err(bad(&format!("unknown operator {other:?}"))),
    };
    Ok(ParsedQuery {
        class_name,
        condition: Some((attr, query)),
    })
}

impl Database {
    /// Finds a registered facility covering `class.attr_name`, if any.
    pub fn facility_for(&self, class: ClassId, attr_name: &str) -> Option<usize> {
        let attr = self.class(class).ok()?.attr_index(attr_name).ok()?;
        self.facility_index_for(class, attr)
    }

    /// Parses and executes one query in the paper's SQL-like syntax.
    ///
    /// Uses a registered facility over the attribute when available, the
    /// full-scan baseline otherwise; a bare `select <Class>` returns every
    /// object of the class.
    pub fn run_query(&self, text: &str) -> Result<QueryExecution> {
        let parsed = parse_query(text)?;
        let class = self
            .class_by_name(&parsed.class_name)
            .ok_or_else(|| Error::NoSuchClassName(parsed.class_name.clone()))?;
        match parsed.condition {
            None => {
                // `select Class`: fetch every object of the class.
                let before = self.disk().snapshot();
                let mut oids: Vec<Oid> = Vec::new();
                let mut all: Vec<Oid> = self.store().oids().collect();
                all.sort_unstable();
                for oid in all {
                    if self.get_object(oid)?.class == class {
                        oids.push(oid);
                    }
                }
                let io = self.disk().snapshot().since(before);
                let n = oids.len() as u64;
                Ok(QueryExecution {
                    actual: oids,
                    report: setsig_core::DropReport {
                        actual: Vec::new(),
                        false_drops: 0,
                        candidates: n,
                    },
                    io,
                })
            }
            Some((attr, query)) => match self.facility_for(class, &attr) {
                Some(idx) => self.execute_set_query(idx, &query),
                None => self.scan_set_query(class, &attr, &query),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::{AttrType, ClassDef};
    use crate::value::Value;
    use setsig_core::{SetPredicate, SignatureConfig, Ssf};
    use setsig_pagestore::PageIo;
    use std::sync::Arc;

    #[test]
    fn parses_the_papers_q1_and_q2() {
        let q1 = parse_query(r#"select Student where hobbies has-subset ("Baseball", "Fishing")"#)
            .unwrap();
        assert_eq!(q1.class_name, "Student");
        let (attr, query) = q1.condition.unwrap();
        assert_eq!(attr, "hobbies");
        assert_eq!(query.predicate, SetPredicate::HasSubset);
        assert_eq!(query.d_q(), 2);

        let q2 = parse_query(
            r#"select Student where hobbies in-subset ("Baseball", "Fishing", "Tennis")"#,
        )
        .unwrap();
        assert_eq!(q2.condition.unwrap().1.predicate, SetPredicate::InSubset);
    }

    #[test]
    fn parses_all_operators_and_literal_forms() {
        for (text, pred) in [
            ("select C where xs equals (1, 2)", SetPredicate::Equals),
            ("select C where xs overlaps (1)", SetPredicate::Overlaps),
            ("select C where xs contains 7", SetPredicate::Contains),
            (
                "select C where xs contains 'single'",
                SetPredicate::Contains,
            ),
            ("select C where xs has-subset ()", SetPredicate::HasSubset),
        ] {
            let p = parse_query(text).unwrap();
            assert_eq!(p.condition.unwrap().1.predicate, pred, "{text}");
        }
        // Bare select.
        let p = parse_query("select Student").unwrap();
        assert!(p.condition.is_none());
    }

    #[test]
    fn rejects_malformed_queries() {
        for text in [
            "",
            "delete Student",
            "select",
            "select Student where",
            "select Student where hobbies",
            "select Student where hobbies frobnicates (1)",
            "select Student where hobbies contains (1, 2)",
            r#"select S where xs has-subset ("unterminated"#,
            "select S where xs has-subset (1,)",
            "select S where xs has-subset (1) trailing",
            "select S where xs has-subset (1 2)",
        ] {
            assert!(parse_query(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn run_query_uses_facility_and_scan_agree() {
        let mut db = Database::in_memory();
        let student = db
            .define_class(ClassDef::new(
                "Student",
                vec![
                    ("name", AttrType::Str),
                    ("hobbies", AttrType::set_of(AttrType::Str)),
                ],
            ))
            .unwrap();
        let io = Arc::clone(db.disk()) as Arc<dyn PageIo>;
        let ssf = Ssf::create(io, "h", SignatureConfig::new(128, 2).unwrap()).unwrap();
        db.register_facility(student, "hobbies", Box::new(ssf))
            .unwrap();

        let jeff = db
            .insert_object(
                student,
                vec![
                    Value::str("Jeff"),
                    Value::set(vec![Value::str("Baseball"), Value::str("Fishing")]),
                ],
            )
            .unwrap();
        let _bob = db
            .insert_object(
                student,
                vec![Value::str("Bob"), Value::set(vec![Value::str("Chess")])],
            )
            .unwrap();

        let r = db
            .run_query(r#"select Student where hobbies has-subset ("Baseball", "Fishing")"#)
            .unwrap();
        assert_eq!(r.actual, vec![jeff]);

        // Unindexed attribute falls back to a scan with the same answer.
        let r2 = db
            .run_query(r#"select Student where hobbies contains "Chess""#)
            .unwrap();
        assert_eq!(r2.actual.len(), 1);

        // Bare select returns everything.
        let all = db.run_query("select Student").unwrap();
        assert_eq!(all.actual.len(), 2);

        // Unknown class errors.
        assert!(db.run_query("select Course").is_err());
    }
}
