//! Objects: OID + class + attribute values, with record encoding.

use setsig_core::Oid;

use crate::error::{Error, Result};
use crate::schema::ClassId;
use crate::value::Value;

/// A stored object.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Object {
    /// The object's identity.
    pub oid: Oid,
    /// The class it belongs to.
    pub class: ClassId,
    /// Attribute values in the class's declaration order.
    pub values: Vec<Value>,
}

impl Object {
    /// Serializes the object to its record form:
    /// `oid u64 | class u32 | nvalues u32 | value…`.
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        out.extend_from_slice(&self.oid.raw().to_le_bytes());
        out.extend_from_slice(&self.class.raw().to_le_bytes());
        out.extend_from_slice(&(self.values.len() as u32).to_le_bytes());
        for v in &self.values {
            out.extend_from_slice(&v.encode());
        }
        out
    }

    /// Decodes a record produced by [`encode`](Object::encode).
    pub fn decode(bytes: &[u8]) -> Result<Object> {
        if bytes.len() < 16 {
            return Err(Error::CorruptObject("record shorter than header".into()));
        }
        let raw_oid = u64::from_le_bytes(bytes[0..8].try_into().unwrap());
        if raw_oid > Oid::MAX_VALUE {
            return Err(Error::CorruptObject("oid exceeds 63 bits".into()));
        }
        let oid = Oid::new(raw_oid);
        let class = ClassId(u32::from_le_bytes(bytes[8..12].try_into().unwrap()));
        let nvalues = u32::from_le_bytes(bytes[12..16].try_into().unwrap()) as usize;
        if nvalues > bytes.len() {
            return Err(Error::CorruptObject("value count exceeds record".into()));
        }
        let mut pos = 16;
        let mut values = Vec::with_capacity(nvalues);
        for _ in 0..nvalues {
            values.push(Value::decode(bytes, &mut pos)?);
        }
        if pos != bytes.len() {
            return Err(Error::CorruptObject(format!(
                "{} trailing bytes after {} values",
                bytes.len() - pos,
                nvalues
            )));
        }
        Ok(Object { oid, class, values })
    }

    /// The value of attribute `index`.
    pub fn value(&self, index: usize) -> Option<&Value> {
        self.values.get(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Object {
        Object {
            oid: Oid::new(42),
            class: ClassId(3),
            values: vec![
                Value::str("Jeff"),
                Value::set(vec![Value::str("Baseball"), Value::str("Fishing")]),
            ],
        }
    }

    #[test]
    fn record_roundtrip() {
        let obj = sample();
        let back = Object::decode(&obj.encode()).unwrap();
        assert_eq!(back, obj);
    }

    #[test]
    fn empty_values_roundtrip() {
        let obj = Object {
            oid: Oid::new(0),
            class: ClassId(0),
            values: vec![],
        };
        assert_eq!(Object::decode(&obj.encode()).unwrap(), obj);
    }

    #[test]
    fn corrupt_records_rejected() {
        assert!(Object::decode(&[]).is_err());
        assert!(Object::decode(&[0u8; 15]).is_err());
        // Trailing garbage.
        let mut bytes = sample().encode();
        bytes.push(0);
        assert!(Object::decode(&bytes).is_err());
        // Truncated values.
        let bytes = sample().encode();
        assert!(Object::decode(&bytes[..bytes.len() - 1]).is_err());
    }
}
