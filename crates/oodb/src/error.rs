//! Error type of the OODB substrate.

use crate::schema::ClassId;
use setsig_core::Oid;

/// Errors raised by the object store and database layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// The class id does not exist.
    NoSuchClass(ClassId),
    /// No class with this name is defined.
    NoSuchClassName(String),
    /// A class with this name already exists.
    DuplicateClass(String),
    /// The named attribute does not exist on the class.
    NoSuchAttribute(String),
    /// A value did not conform to the attribute's declared type.
    TypeMismatch {
        /// Attribute being assigned.
        attribute: String,
        /// What the schema expects.
        expected: String,
        /// What was supplied.
        got: String,
    },
    /// The attribute exists but is not a set of indexable elements.
    NotASetAttribute(String),
    /// The object was not found (never stored, or deleted).
    NoSuchObject(Oid),
    /// A stored record could not be decoded.
    CorruptObject(String),
    /// An error from the signature/facility layer.
    Facility(setsig_core::Error),
    /// An error from the page store.
    Storage(setsig_pagestore::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::NoSuchClass(id) => write!(f, "no such class: {id:?}"),
            Error::NoSuchClassName(name) => write!(f, "no such class: {name:?}"),
            Error::DuplicateClass(name) => write!(f, "class {name:?} already defined"),
            Error::NoSuchAttribute(name) => write!(f, "no such attribute: {name:?}"),
            Error::TypeMismatch {
                attribute,
                expected,
                got,
            } => {
                write!(f, "attribute {attribute:?}: expected {expected}, got {got}")
            }
            Error::NotASetAttribute(name) => {
                write!(f, "attribute {name:?} is not an indexable set")
            }
            Error::NoSuchObject(oid) => write!(f, "no such object: {oid}"),
            Error::CorruptObject(msg) => write!(f, "corrupt object record: {msg}"),
            Error::Facility(e) => write!(f, "facility error: {e}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<setsig_core::Error> for Error {
    fn from(e: setsig_core::Error) -> Self {
        Error::Facility(e)
    }
}

impl From<setsig_pagestore::Error> for Error {
    fn from(e: setsig_pagestore::Error) -> Self {
        Error::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
