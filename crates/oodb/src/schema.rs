//! Class definitions: the schema layer.

use crate::error::{Error, Result};
use crate::value::Value;

/// Identifies a class within a [`Database`](crate::Database).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ClassId(pub(crate) u32);

impl ClassId {
    /// Raw index of the class in the catalog.
    pub fn raw(self) -> u32 {
        self.0
    }
}

/// The type of an attribute.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AttrType {
    /// 64-bit integer.
    Int,
    /// UTF-8 string.
    Str,
    /// Reference to an object (untyped here; a full OODB would carry the
    /// target class).
    Ref,
    /// A set of values of the inner type — the set constructor.
    Set(Box<AttrType>),
    /// A fixed tuple of inner types — the tuple constructor.
    Tuple(Vec<AttrType>),
}

impl AttrType {
    /// Shorthand for `Set(Box::new(inner))`.
    pub fn set_of(inner: AttrType) -> AttrType {
        AttrType::Set(Box::new(inner))
    }

    /// True when values of this type can serve as signature/index elements
    /// (primitives only).
    pub fn is_element_type(&self) -> bool {
        matches!(self, AttrType::Int | AttrType::Str | AttrType::Ref)
    }

    /// True for `Set(primitive)` — the *indexed set attribute* shape the
    /// paper's facilities support.
    pub fn is_indexable_set(&self) -> bool {
        matches!(self, AttrType::Set(inner) if inner.is_element_type())
    }

    /// Checks `value` against this type.
    pub fn check(&self, value: &Value) -> bool {
        match (self, value) {
            (AttrType::Int, Value::Int(_)) => true,
            (AttrType::Str, Value::Str(_)) => true,
            (AttrType::Ref, Value::Ref(_)) => true,
            (AttrType::Set(inner), Value::Set(elems)) => elems.iter().all(|e| inner.check(e)),
            (AttrType::Tuple(types), Value::Tuple(elems)) => {
                types.len() == elems.len() && types.iter().zip(elems).all(|(t, e)| t.check(e))
            }
            _ => false,
        }
    }

    /// Human-readable rendering for error messages.
    pub fn describe(&self) -> String {
        match self {
            AttrType::Int => "int".into(),
            AttrType::Str => "str".into(),
            AttrType::Ref => "ref".into(),
            AttrType::Set(inner) => format!("set<{}>", inner.describe()),
            AttrType::Tuple(types) => {
                let inner: Vec<String> = types.iter().map(AttrType::describe).collect();
                format!("tuple<{}>", inner.join(", "))
            }
        }
    }
}

/// One attribute of a class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttrDef {
    /// Attribute name.
    pub name: String,
    /// Attribute type.
    pub ty: AttrType,
}

/// A class definition: a named tuple of attributes, like the paper's
/// `Student [name, courses, hobbies]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassDef {
    /// Class name.
    pub name: String,
    /// Attributes, in declaration order.
    pub attrs: Vec<AttrDef>,
}

impl ClassDef {
    /// Creates a class from `(name, type)` pairs.
    pub fn new(name: &str, attrs: Vec<(&str, AttrType)>) -> Self {
        ClassDef {
            name: name.to_owned(),
            attrs: attrs
                .into_iter()
                .map(|(n, ty)| AttrDef {
                    name: n.to_owned(),
                    ty,
                })
                .collect(),
        }
    }

    /// Index of the named attribute.
    pub fn attr_index(&self, name: &str) -> Result<usize> {
        self.attrs
            .iter()
            .position(|a| a.name == name)
            .ok_or_else(|| Error::NoSuchAttribute(name.to_owned()))
    }

    /// Validates a full tuple of attribute values against the schema.
    pub fn check_values(&self, values: &[Value]) -> Result<()> {
        if values.len() != self.attrs.len() {
            return Err(Error::TypeMismatch {
                attribute: format!("<{} attributes>", self.attrs.len()),
                expected: format!("{} values", self.attrs.len()),
                got: format!("{} values", values.len()),
            });
        }
        for (attr, value) in self.attrs.iter().zip(values) {
            if !attr.ty.check(value) {
                return Err(Error::TypeMismatch {
                    attribute: attr.name.clone(),
                    expected: attr.ty.describe(),
                    got: value.kind().to_owned(),
                });
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsig_core::Oid;

    fn student() -> ClassDef {
        ClassDef::new(
            "Student",
            vec![
                ("name", AttrType::Str),
                ("courses", AttrType::set_of(AttrType::Ref)),
                ("hobbies", AttrType::set_of(AttrType::Str)),
            ],
        )
    }

    #[test]
    fn attr_lookup() {
        let c = student();
        assert_eq!(c.attr_index("hobbies").unwrap(), 2);
        assert!(matches!(
            c.attr_index("gpa"),
            Err(Error::NoSuchAttribute(_))
        ));
    }

    #[test]
    fn type_checking_accepts_valid_student() {
        let c = student();
        let values = vec![
            Value::str("Jeff"),
            Value::set(vec![Value::Ref(Oid::new(1))]),
            Value::set(vec![Value::str("Baseball")]),
        ];
        assert!(c.check_values(&values).is_ok());
    }

    #[test]
    fn type_checking_rejects_wrong_shapes() {
        let c = student();
        // Wrong arity.
        assert!(c.check_values(&[Value::str("x")]).is_err());
        // Wrong element type inside a set.
        let values = vec![
            Value::str("Jeff"),
            Value::set(vec![Value::str("not a ref")]),
            Value::set(vec![]),
        ];
        assert!(matches!(
            c.check_values(&values),
            Err(Error::TypeMismatch { attribute, .. }) if attribute == "courses"
        ));
    }

    #[test]
    fn indexable_set_detection() {
        assert!(AttrType::set_of(AttrType::Str).is_indexable_set());
        assert!(AttrType::set_of(AttrType::Ref).is_indexable_set());
        assert!(!AttrType::Str.is_indexable_set());
        assert!(!AttrType::set_of(AttrType::set_of(AttrType::Int)).is_indexable_set());
    }

    #[test]
    fn tuple_types_check_recursively() {
        let ty = AttrType::Tuple(vec![AttrType::Int, AttrType::Str]);
        assert!(ty.check(&Value::Tuple(vec![Value::Int(1), Value::str("a")])));
        assert!(!ty.check(&Value::Tuple(vec![Value::str("a"), Value::Int(1)])));
        assert!(!ty.check(&Value::Tuple(vec![Value::Int(1)])));
        assert_eq!(ty.describe(), "tuple<int, str>");
    }
}
