//! Property tests for the OODB substrate: value codec fuzzing and the
//! object store against a HashMap model.

use proptest::prelude::*;
use setsig_core::Oid;
use setsig_oodb::{AttrType, ClassDef, Database, Object, ObjectStore, Value};
use setsig_pagestore::{Disk, PageIo};
use std::collections::HashMap;
use std::sync::Arc;

/// A recursive strategy for arbitrary values (bounded depth and fanout).
fn value_strategy() -> impl Strategy<Value = Value> {
    let leaf = prop_oneof![
        any::<i64>().prop_map(Value::Int),
        "[a-zA-Z0-9 ]{0,12}".prop_map(Value::Str),
        (0u64..1_000_000).prop_map(|v| Value::Ref(Oid::new(v))),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 0..4).prop_map(Value::Set),
            proptest::collection::vec(inner, 0..4).prop_map(Value::Tuple),
        ]
    })
}

proptest! {
    /// Every value the model can construct round-trips through the binary
    /// codec, and the decoder consumes the exact record.
    #[test]
    fn value_codec_roundtrips(v in value_strategy()) {
        let bytes = v.encode();
        let mut pos = 0;
        let back = Value::decode(&bytes, &mut pos).unwrap();
        prop_assert_eq!(pos, bytes.len());
        prop_assert_eq!(back, v);
    }

    /// The decoder never panics on arbitrary garbage — it returns errors.
    #[test]
    fn value_decoder_is_total(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let mut pos = 0;
        let _ = Value::decode(&bytes, &mut pos); // must not panic
    }

    /// Truncating a valid record always produces an error, never a wrong
    /// value or a panic.
    #[test]
    fn truncated_records_error(v in value_strategy(), cut in 0usize..64) {
        let obj = Object { oid: Oid::new(1), class: {
            // Obtain a ClassId the only public way: through a database.
            let mut db = Database::in_memory();
            db.define_class(ClassDef::new("C", vec![])).unwrap()
        }, values: vec![v] };
        let bytes = obj.encode();
        if cut < bytes.len() {
            let truncated = &bytes[..bytes.len() - cut - 1];
            prop_assert!(Object::decode(truncated).is_err());
        }
    }

    /// The object store behaves like a HashMap<Oid, Object> under puts,
    /// overwrites, deletes and gets.
    #[test]
    fn store_matches_hashmap_model(
        ops in proptest::collection::vec(
            (0u64..12, 0u8..3, proptest::collection::vec(any::<i64>(), 0..6)),
            1..60,
        ),
    ) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = disk as Arc<dyn PageIo>;
        let mut store = ObjectStore::create(io, "objs");
        let mut model: HashMap<u64, Object> = HashMap::new();
        let class = {
            let mut db = Database::in_memory();
            db.define_class(ClassDef::new("C", vec![("xs", AttrType::set_of(AttrType::Int))]))
                .unwrap()
        };

        for (oid_raw, action, ints) in ops {
            let oid = Oid::new(oid_raw);
            match action {
                // put (insert or overwrite)
                0 | 1 => {
                    let obj = Object {
                        oid,
                        class,
                        values: vec![Value::set(ints.iter().map(|&i| Value::Int(i)).collect())],
                    };
                    store.put(&obj).unwrap();
                    model.insert(oid_raw, obj);
                }
                // delete
                _ => {
                    let expected = model.remove(&oid_raw).is_some();
                    prop_assert_eq!(store.delete(oid).is_ok(), expected);
                }
            }
            prop_assert_eq!(store.len() as usize, model.len());
        }
        for (raw, obj) in &model {
            prop_assert_eq!(&store.get(Oid::new(*raw)).unwrap(), obj);
        }
    }
}
