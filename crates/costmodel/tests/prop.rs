//! Property tests on the analytical model: probabilities stay in range,
//! monotonicity claims from the paper hold across the parameter space, and
//! log-space combinatorics agree with exact arithmetic where exact
//! arithmetic is possible.

use proptest::prelude::*;
use setsig_costmodel::{
    actual_drops_subset, actual_drops_superset, expected_query_weight, fd_subset, fd_superset,
    ln_binomial, BssfModel, NixModel, Params, SsfModel,
};

fn exact_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

proptest! {
    /// ln C(n, k) agrees with exact multiplication for moderate inputs.
    #[test]
    fn ln_binomial_matches_exact(n in 1u64..400, k in 0u64..400) {
        let exact = exact_binomial(n, k);
        let ln = ln_binomial(n, k);
        if k > n {
            prop_assert_eq!(ln, f64::NEG_INFINITY);
        } else {
            let got = ln.exp();
            prop_assert!(
                (got - exact).abs() / exact.max(1.0) < 1e-9,
                "C({n},{k}): got {got}, exact {exact}"
            );
        }
    }

    /// False drop probabilities are probabilities, and Eq. (2) is
    /// monotone: more query elements can only shrink it; bigger targets
    /// can only grow it.
    #[test]
    fn fd_superset_bounds_and_monotonicity(
        f_exp in 5u32..12,
        m in 1u32..8,
        d_t in 1u32..200,
        d_q in 1u32..50,
    ) {
        let f = 1 << f_exp;
        let fd = fd_superset(f, m, d_t, d_q);
        prop_assert!((0.0..=1.0).contains(&fd), "fd = {fd}");
        prop_assert!(fd_superset(f, m, d_t, d_q + 1) <= fd + 1e-12);
        prop_assert!(fd_superset(f, m, d_t + 1, d_q) >= fd - 1e-12);
        // Duality with Eq. (6).
        let dual = fd_subset(f, m, d_q, d_t);
        prop_assert!((fd - dual).abs() < 1e-12);
    }

    /// Expected signature weights stay within (0, F] and increase with
    /// cardinality.
    #[test]
    fn query_weight_bounds(f_exp in 5u32..12, m in 1u32..8, d_q in 1u32..500) {
        let f = 1 << f_exp;
        let m = m.min(f);
        let w = expected_query_weight(f, m, d_q);
        prop_assert!(w > 0.0 && w <= f as f64);
        prop_assert!(expected_query_weight(f, m, d_q + 1) >= w);
    }

    /// Actual drops are between 0 and N, and ⊇ drops shrink as the query
    /// grows.
    #[test]
    fn actual_drops_sane(d_t in 1u32..200, d_q in 1u32..200) {
        let p = Params::paper();
        let a_sup = actual_drops_superset(&p, d_t, d_q);
        prop_assert!((0.0..=p.n as f64).contains(&a_sup));
        prop_assert!(actual_drops_superset(&p, d_t, d_q + 1) <= a_sup + 1e-9);
        let a_sub = actual_drops_subset(&p, d_t, d_q);
        prop_assert!((0.0..=p.n as f64).contains(&a_sub));
    }

    /// Retrieval costs are finite, positive, and smart variants never
    /// exceed their plain counterparts.
    #[test]
    fn costs_positive_and_smart_never_worse(
        f in prop_oneof![Just(250u32), Just(500u32), Just(1000u32), Just(2500u32)],
        m in 1u32..6,
        d_t in prop_oneof![Just(10u32), Just(50u32), Just(100u32)],
        d_q in 1u32..1000,
    ) {
        let p = Params::paper();
        let bssf = BssfModel::new(p, f, m, d_t);
        let ssf = SsfModel::new(p, f, m, d_t);
        let nix = NixModel::new(p, d_t);

        for rc in [
            bssf.rc_superset(d_q),
            bssf.rc_subset(d_q),
            ssf.rc_superset(d_q),
            ssf.rc_subset(d_q),
            nix.rc_superset(d_q),
            nix.rc_subset(d_q),
        ] {
            prop_assert!(rc.is_finite() && rc > 0.0, "rc = {rc}");
        }
        // Smart is only guaranteed to win when the cap is chosen by cost —
        // a fixed j = 2 can lose when small-m false drops explode (which
        // is why best_superset_cap exists).
        let cap = bssf.best_superset_cap(d_q);
        prop_assert!(bssf.rc_superset_smart(d_q, cap) <= bssf.rc_superset(d_q) + 1e-9);
        prop_assert!(bssf.rc_subset_smart(d_q) <= bssf.rc_subset(d_q) + 1e-9);
        // NIX smart with the paper's j = 2 pays at most the pairwise
        // intersection's extra fetches over the plain strategy.
        let pairwise = setsig_costmodel::objects_sharing_all_of(&p, d_t, 2);
        prop_assert!(
            nix.rc_superset_smart(d_q, 2) <= nix.rc_superset(d_q) + pairwise + 1e-6
        );
    }

    /// Storage costs add up: each facility's SC is at least its OID file
    /// (or leaf count) and grows with F.
    #[test]
    fn storage_monotone_in_f(m in 1u32..4, d_t in prop_oneof![Just(10u32), Just(100u32)]) {
        let p = Params::paper();
        let mut prev = 0u64;
        for f in [125u32, 250, 500, 1000, 2000] {
            let sc = BssfModel::new(p, f, m, d_t).sc();
            prop_assert!(sc > prev);
            prev = sc;
            prop_assert!(sc >= p.sc_oid());
            let ssf_sc = SsfModel::new(p, f, m, d_t).sc();
            prop_assert!(ssf_sc >= p.sc_oid());
        }
    }
}
