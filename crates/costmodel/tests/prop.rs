//! Property tests on the analytical model: probabilities stay in range,
//! monotonicity claims from the paper hold across the parameter space, and
//! log-space combinatorics agree with exact arithmetic where exact
//! arithmetic is possible.

use proptest::prelude::*;
use setsig_costmodel::{
    actual_drops_subset, actual_drops_superset, expected_query_weight, fd_subset, fd_superset,
    lc_oid, ln_binomial, BoundExpr, BssfModel, Env, NixModel, Params, SsfModel,
};

fn exact_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let mut acc = 1.0f64;
    for i in 0..k {
        acc *= (n - i) as f64 / (i + 1) as f64;
    }
    acc
}

proptest! {
    /// ln C(n, k) agrees with exact multiplication for moderate inputs.
    #[test]
    fn ln_binomial_matches_exact(n in 1u64..400, k in 0u64..400) {
        let exact = exact_binomial(n, k);
        let ln = ln_binomial(n, k);
        if k > n {
            prop_assert_eq!(ln, f64::NEG_INFINITY);
        } else {
            let got = ln.exp();
            prop_assert!(
                (got - exact).abs() / exact.max(1.0) < 1e-9,
                "C({n},{k}): got {got}, exact {exact}"
            );
        }
    }

    /// False drop probabilities are probabilities, and Eq. (2) is
    /// monotone: more query elements can only shrink it; bigger targets
    /// can only grow it.
    #[test]
    fn fd_superset_bounds_and_monotonicity(
        f_exp in 5u32..12,
        m in 1u32..8,
        d_t in 1u32..200,
        d_q in 1u32..50,
    ) {
        let f = 1 << f_exp;
        let fd = fd_superset(f, m, d_t, d_q);
        prop_assert!((0.0..=1.0).contains(&fd), "fd = {fd}");
        prop_assert!(fd_superset(f, m, d_t, d_q + 1) <= fd + 1e-12);
        prop_assert!(fd_superset(f, m, d_t + 1, d_q) >= fd - 1e-12);
        // Duality with Eq. (6).
        let dual = fd_subset(f, m, d_q, d_t);
        prop_assert!((fd - dual).abs() < 1e-12);
    }

    /// Expected signature weights stay within (0, F] and increase with
    /// cardinality.
    #[test]
    fn query_weight_bounds(f_exp in 5u32..12, m in 1u32..8, d_q in 1u32..500) {
        let f = 1 << f_exp;
        let m = m.min(f);
        let w = expected_query_weight(f, m, d_q);
        prop_assert!(w > 0.0 && w <= f as f64);
        prop_assert!(expected_query_weight(f, m, d_q + 1) >= w);
    }

    /// Actual drops are between 0 and N, and ⊇ drops shrink as the query
    /// grows.
    #[test]
    fn actual_drops_sane(d_t in 1u32..200, d_q in 1u32..200) {
        let p = Params::paper();
        let a_sup = actual_drops_superset(&p, d_t, d_q);
        prop_assert!((0.0..=p.n as f64).contains(&a_sup));
        prop_assert!(actual_drops_superset(&p, d_t, d_q + 1) <= a_sup + 1e-9);
        let a_sub = actual_drops_subset(&p, d_t, d_q);
        prop_assert!((0.0..=p.n as f64).contains(&a_sub));
    }

    /// Retrieval costs are finite, positive, and smart variants never
    /// exceed their plain counterparts.
    #[test]
    fn costs_positive_and_smart_never_worse(
        f in prop_oneof![Just(250u32), Just(500u32), Just(1000u32), Just(2500u32)],
        m in 1u32..6,
        d_t in prop_oneof![Just(10u32), Just(50u32), Just(100u32)],
        d_q in 1u32..1000,
    ) {
        let p = Params::paper();
        let bssf = BssfModel::new(p, f, m, d_t);
        let ssf = SsfModel::new(p, f, m, d_t);
        let nix = NixModel::new(p, d_t);

        for rc in [
            bssf.rc_superset(d_q),
            bssf.rc_subset(d_q),
            ssf.rc_superset(d_q),
            ssf.rc_subset(d_q),
            nix.rc_superset(d_q),
            nix.rc_subset(d_q),
        ] {
            prop_assert!(rc.is_finite() && rc > 0.0, "rc = {rc}");
        }
        // Smart is only guaranteed to win when the cap is chosen by cost —
        // a fixed j = 2 can lose when small-m false drops explode (which
        // is why best_superset_cap exists).
        let cap = bssf.best_superset_cap(d_q);
        prop_assert!(bssf.rc_superset_smart(d_q, cap) <= bssf.rc_superset(d_q) + 1e-9);
        prop_assert!(bssf.rc_subset_smart(d_q) <= bssf.rc_subset(d_q) + 1e-9);
        // NIX smart with the paper's j = 2 pays at most the pairwise
        // intersection's extra fetches over the plain strategy.
        let pairwise = setsig_costmodel::objects_sharing_all_of(&p, d_t, 2);
        prop_assert!(
            nix.rc_superset_smart(d_q, 2) <= nix.rc_superset(d_q) + pairwise + 1e-6
        );
    }

    /// Storage costs add up: each facility's SC is at least its OID file
    /// (or leaf count) and grows with F.
    #[test]
    fn storage_monotone_in_f(m in 1u32..4, d_t in prop_oneof![Just(10u32), Just(100u32)]) {
        let p = Params::paper();
        let mut prev = 0u64;
        for f in [125u32, 250, 500, 1000, 2000] {
            let sc = BssfModel::new(p, f, m, d_t).sc();
            prop_assert!(sc > prev);
            prev = sc;
            prop_assert!(sc >= p.sc_oid());
            let ssf_sc = SsfModel::new(p, f, m, d_t).sc();
            prop_assert!(ssf_sc >= p.sc_oid());
        }
    }
}

proptest! {
    /// The committed BSSF contract `slices * pages_per_slice` prices
    /// exactly the slice-read term of Eq. (8) when bound to the model's
    /// own quantities — the static bound and the analytical model are
    /// the same formula in two notations.
    #[test]
    fn bssf_contract_matches_slice_read_term(
        f_exp in 5u32..12,
        m in 1u32..8,
        d_t in 1u32..200,
        d_q in 1u32..50,
    ) {
        let p = Params::paper();
        let model = BssfModel::new(p, 1 << f_exp, m, d_t);
        let e = BoundExpr::parse("slices * pages_per_slice").unwrap();
        prop_assert_eq!(e.degree(), 2);
        let env = Env::new()
            .bind("slices", model.m_s(d_q))
            .bind("pages_per_slice", model.slice_pages() as f64);
        let got = e.eval(&env).unwrap();
        let want = model.slice_pages() as f64 * model.m_s(d_q);
        prop_assert!((got - want).abs() < 1e-9, "contract {got} vs model {want}");
    }

    /// The full contract `slices * pages_per_slice + oid_pages` bound
    /// with `oid_pages = SC_OID` dominates the filter + OID-resolution
    /// part of `rc_superset` for every drop population: `LC_OID`
    /// saturates at a full OID-file scan, which is exactly what the
    /// contract charges.
    #[test]
    fn bssf_contract_bounds_filter_and_resolution(
        f_exp in 5u32..12,
        m in 1u32..8,
        d_t in 1u32..120,
        d_q in 1u32..40,
    ) {
        let p = Params::paper();
        let model = BssfModel::new(p, 1 << f_exp, m, d_t);
        let fd = fd_superset(model.f, model.m, d_t, d_q);
        let a = actual_drops_superset(&p, d_t, d_q);
        let model_pages =
            model.slice_pages() as f64 * model.m_s(d_q) + lc_oid(&p, fd, a);
        let e = BoundExpr::parse("slices * pages_per_slice + oid_pages").unwrap();
        let env = Env::new()
            .bind("slices", model.m_s(d_q))
            .bind("pages_per_slice", model.slice_pages() as f64)
            .bind("oid_pages", p.sc_oid() as f64);
        prop_assert!(e.eval(&env).unwrap() + 1e-9 >= model_pages);
    }

    /// Same agreement for SSF: `sig_pages + oid_pages` bound to
    /// `SC_SIG` / `SC_OID` dominates the sequential-scan + resolution
    /// part of the SSF `rc_superset` (the scan term is exact).
    #[test]
    fn ssf_contract_bounds_scan_and_resolution(
        f in prop_oneof![Just(125u32), Just(250), Just(500), Just(1000)],
        m in 1u32..8,
        d_t in 1u32..120,
        d_q in 1u32..40,
    ) {
        let p = Params::paper();
        let model = SsfModel::new(p, f, m, d_t);
        let fd = fd_superset(f, m, d_t, d_q);
        let a = actual_drops_superset(&p, d_t, d_q);
        let model_pages = model.sc_sig() as f64 + lc_oid(&p, fd, a);
        let e = BoundExpr::parse("sig_pages + oid_pages").unwrap();
        let env = Env::new()
            .bind("sig_pages", model.sc_sig() as f64)
            .bind("oid_pages", p.sc_oid() as f64);
        prop_assert!(e.eval(&env).unwrap() + 1e-9 >= model_pages);
    }

    /// Symbolic degree agrees with a numeric probe: scaling every symbol
    /// by `t` scales the evaluation by at most `t^degree` (and at least
    /// `t^degree` in the leading term), for the contracts the workspace
    /// actually commits.
    #[test]
    fn degree_is_the_scaling_exponent(t_int in 2u32..16) {
        let t = f64::from(t_int);
        for src in [
            "1",
            "sig_pages",
            "sig_pages + oid_pages",
            "slices * pages_per_slice",
            "slices * pages_per_slice + oid_pages",
            "shards * (slices * pages_per_slice + oid_pages)",
            "probes * (height + chain)",
        ] {
            let e = BoundExpr::parse(src).unwrap();
            let base = Env::new;
            let mut env1 = base();
            let mut envt = base();
            for s in e.symbols() {
                env1 = env1.bind(s, 3.0);
                envt = envt.bind(s, 3.0 * t);
            }
            let v1 = e.eval(&env1).unwrap();
            let vt = e.eval(&envt).unwrap();
            let cap = t.powi(e.degree() as i32);
            prop_assert!(vt <= v1 * cap + 1e-9, "{src}: {vt} > {v1} * {cap}");
        }
    }
}
