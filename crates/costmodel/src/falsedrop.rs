//! False drop probabilities (§3.2) and signature weights.

/// Expected number of `1`s in a target signature (§3.2.1):
/// `m_t = F·(1 − (1 − m/F)^{D_t})`.
pub fn expected_target_weight(f: u32, m: u32, d_t: u32) -> f64 {
    let f = f as f64;
    f * (1.0 - (1.0 - m as f64 / f).powi(d_t as i32))
}

/// Expected number of `1`s in a query signature — same form with `D_q`.
/// This is the `m_s` of §4.2 that prices BSSF's slice reads.
pub fn expected_query_weight(f: u32, m: u32, d_q: u32) -> f64 {
    expected_target_weight(f, m, d_q)
}

/// False drop probability for `T ⊇ Q` — Eq. (2):
/// `F_d = (1 − e^{−m·D_t/F})^{m·D_q}`.
///
/// Derivation: a false drop needs every one of the query's `m·D_q` bit
/// draws to land on a position already set in the target signature, and the
/// fraction of set positions is `1 − e^{−m·D_t/F}` under ideal hashing.
pub fn fd_superset(f: u32, m: u32, d_t: u32, d_q: u32) -> f64 {
    if d_q == 0 {
        return 1.0; // empty query: everything matches (not a false drop in
                    // practice, but the filter passes everything).
    }
    let f = f as f64;
    let m = m as f64;
    let ones_fraction = 1.0 - (-m * d_t as f64 / f).exp();
    ones_fraction.powf(m * d_q as f64)
}

/// False drop probability for `T ⊆ Q` — Eq. (6):
/// `F_d = (1 − e^{−m·D_q/F})^{m·D_t}` (roles of `D_t` and `D_q` swapped).
pub fn fd_subset(f: u32, m: u32, d_t: u32, d_q: u32) -> f64 {
    if d_t == 0 {
        return 1.0;
    }
    let f = f as f64;
    let m = m as f64;
    let ones_fraction = 1.0 - (-m * d_q as f64 / f).exp();
    ones_fraction.powf(m * d_t as f64)
}

/// The weight minimizing [`fd_superset`] — Eq. (3): `m_opt = F·ln2/D_t`.
/// Returned unrounded; callers round and clamp to ≥ 1.
pub fn m_opt(f: u32, d_t: u32) -> f64 {
    f as f64 * std::f64::consts::LN_2 / d_t as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn weights_grow_with_cardinality_and_saturate() {
        let w1 = expected_target_weight(500, 5, 1);
        let w10 = expected_target_weight(500, 5, 10);
        let w1000 = expected_target_weight(500, 5, 1000);
        assert!((w1 - 5.0).abs() < 1e-9, "single element sets m bits");
        assert!(w1 < w10 && w10 < w1000);
        assert!(w1000 < 500.0);
        assert!(w1000 > 499.0, "large sets saturate the signature");
    }

    #[test]
    fn fd_superset_decreases_with_d_q() {
        let f1 = fd_superset(500, 2, 10, 1);
        let f3 = fd_superset(500, 2, 10, 3);
        let f10 = fd_superset(500, 2, 10, 10);
        assert!(f1 > f3 && f3 > f10);
        assert!(f1 > 0.0 && f1 < 1.0);
    }

    #[test]
    fn fd_superset_at_m_opt_is_two_to_minus_exponent() {
        // Eq. (4): at m = m_opt, Fd ≈ (1/2)^{m_opt·D_q}.
        let f = 500u32;
        let d_t = 10u32;
        let m = m_opt(f, d_t).round() as u32; // 35
        let d_q = 2u32;
        let fd = fd_superset(f, m, d_t, d_q);
        let expected = 0.5f64.powf((m * d_q) as f64);
        // m_opt makes the ones-fraction ≈ 1/2, so the two agree closely.
        assert!(
            (fd.ln() - expected.ln()).abs() / expected.ln().abs() < 0.05,
            "fd = {fd:e}, expected ≈ {expected:e}"
        );
        assert!(fd < 1e-20, "negligible, as §5.1.1 observes");
    }

    #[test]
    fn m_opt_is_the_minimizer() {
        // Scan m around m_opt: Fd(m_opt) must be the (near-)minimum.
        let f = 500;
        let d_t = 10;
        let d_q = 2;
        let opt = m_opt(f, d_t).round() as u32;
        let fd_at = |m: u32| fd_superset(f, m, d_t, d_q);
        let best = fd_at(opt);
        for m in 1..=100 {
            assert!(fd_at(m) >= best * 0.999, "m = {m} beats m_opt = {opt}");
        }
    }

    #[test]
    fn fd_subset_mirrors_superset() {
        // Swapping (D_t, D_q) maps one formula onto the other.
        let a = fd_subset(500, 2, 10, 300);
        let b = fd_superset(500, 2, 300, 10);
        assert!((a - b).abs() < 1e-12);
    }

    #[test]
    fn fd_subset_approaches_one_for_large_queries() {
        // §5.2.1: for large D_q the false drop probability is almost 1 and
        // retrieval degenerates to accessing most objects.
        let fd = fd_subset(500, 2, 10, 5000);
        assert!(fd > 0.99, "fd = {fd}");
        let fd_small = fd_subset(500, 2, 10, 50);
        assert!(fd_small < 0.01, "fd = {fd_small}");
    }

    #[test]
    fn small_m_raises_fd_but_not_catastrophically_for_superset() {
        // §5.1.2's trade-off: m = 2 instead of m_opt = 35 raises Fd by many
        // orders of magnitude yet it stays small enough that drops are few.
        let fd = fd_superset(500, 2, 10, 2);
        assert!(fd > 1e-8 && fd < 1e-2, "fd = {fd}");
    }

    #[test]
    fn degenerate_cardinalities() {
        assert_eq!(fd_superset(500, 2, 10, 0), 1.0);
        assert_eq!(fd_subset(500, 2, 0, 10), 1.0);
    }
}

/// False drop probability for `T ⊇ Q` when target cardinality **varies**
/// (the §6 extension): the mixture `Σ w_d · F_d(d)` over a cardinality
/// distribution given as `(cardinality, weight)` pairs (weights need not be
/// normalized).
///
/// Because Eq. (2) is convex in `D_t`, the mixture exceeds the fixed-mean
/// prediction (Jensen): long sets dominate false drops. The `varcard`
/// exhibit shows the measured effect matching this correction.
pub fn fd_superset_mixture(f: u32, m: u32, cardinalities: &[(u32, f64)], d_q: u32) -> f64 {
    let total: f64 = cardinalities.iter().map(|&(_, w)| w).sum();
    assert!(total > 0.0, "mixture weights must be positive");
    cardinalities
        .iter()
        .map(|&(d_t, w)| w / total * fd_superset(f, m, d_t, d_q))
        .sum()
}

/// The uniform-range mixture `D_t ~ U{lo..=hi}` for
/// [`fd_superset_mixture`].
pub fn fd_superset_uniform_range(f: u32, m: u32, lo: u32, hi: u32, d_q: u32) -> f64 {
    assert!(lo <= hi && lo >= 1);
    let cards: Vec<(u32, f64)> = (lo..=hi).map(|d| (d, 1.0)).collect();
    fd_superset_mixture(f, m, &cards, d_q)
}

#[cfg(test)]
mod mixture_tests {
    use super::*;

    #[test]
    fn mixture_of_one_is_the_plain_formula() {
        let a = fd_superset_mixture(250, 2, &[(10, 1.0)], 2);
        let b = fd_superset(250, 2, 10, 2);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    fn jensen_inequality_spread_raises_fd() {
        let fixed = fd_superset(250, 2, 10, 1);
        let narrow = fd_superset_uniform_range(250, 2, 5, 15, 1);
        let wide = fd_superset_uniform_range(250, 2, 1, 19, 1);
        assert!(narrow > fixed, "{narrow} vs {fixed}");
        assert!(wide > narrow, "{wide} vs {narrow}");
    }

    #[test]
    fn weights_are_normalized_internally() {
        let a = fd_superset_mixture(250, 2, &[(5, 1.0), (15, 1.0)], 2);
        let b = fd_superset_mixture(250, 2, &[(5, 10.0), (15, 10.0)], 2);
        assert!((a - b).abs() < 1e-15);
    }

    #[test]
    #[should_panic]
    fn zero_weights_rejected() {
        let _ = fd_superset_mixture(250, 2, &[(5, 0.0)], 2);
    }
}
