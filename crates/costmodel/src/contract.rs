//! Runtime evaluator for the static `// COST: <expr> pages` contracts.
//!
//! The `cargo xtask cost` lint proves the *shape* of every scan entry
//! point statically: the page-I/O loop nest under a contracted fn cannot
//! exceed the contract's polynomial degree. This module is the *dynamic*
//! half of the same bargain: it parses the identical grammar
//! (`expr := term ('+' term)*; term := factor ('*' factor)*; factor :=
//! integer | identifier | '(' expr ')'`) and evaluates a contract against
//! concrete bindings, so the experiment harness can assert that pages
//! *measured* on the accounting disk stay at or below the bound the
//! source code promises.
//!
//! The two parsers are deliberately duplicated rather than shared:
//! `xtask` must stay dependency-free in both directions (it lints this
//! crate), and the grammar is small enough that the duplication is
//! cheaper than the coupling. The `grammar_matches_xtask` tests below pin
//! the accepted/rejected language so the copies cannot drift silently.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed contract bound: sums of products over integer literals and
/// named symbolic quantities (`slices * pages_per_slice + oid_pages`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BoundExpr {
    /// An integer literal.
    Num(u64),
    /// A named symbolic quantity.
    Sym(String),
    /// `lhs + rhs`.
    Add(Box<BoundExpr>, Box<BoundExpr>),
    /// `lhs * rhs`.
    Mul(Box<BoundExpr>, Box<BoundExpr>),
}

impl BoundExpr {
    /// Parses `src`, accepting exactly the `xtask` contract grammar.
    pub fn parse(src: &str) -> Result<BoundExpr, String> {
        let mut toks = lex(src)?;
        toks.reverse(); // pop() takes from the front
        let e = parse_sum(&mut toks)?;
        if let Some(t) = toks.pop() {
            return Err(format!("unexpected `{t}` after expression"));
        }
        Ok(e)
    }

    /// The polynomial degree: the maximum number of symbolic factors
    /// multiplied together in any term.
    pub fn degree(&self) -> u32 {
        match self {
            BoundExpr::Num(_) => 0,
            BoundExpr::Sym(_) => 1,
            BoundExpr::Add(a, b) => a.degree().max(b.degree()),
            BoundExpr::Mul(a, b) => a.degree() + b.degree(),
        }
    }

    /// Every distinct symbol, in first-appearance order.
    pub fn symbols(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_symbols(&mut out);
        out
    }

    fn collect_symbols<'e>(&'e self, out: &mut Vec<&'e str>) {
        match self {
            BoundExpr::Num(_) => {}
            BoundExpr::Sym(s) => {
                if !out.contains(&s.as_str()) {
                    out.push(s);
                }
            }
            BoundExpr::Add(a, b) | BoundExpr::Mul(a, b) => {
                a.collect_symbols(out);
                b.collect_symbols(out);
            }
        }
    }

    /// Evaluates under `env`; errors on the first unbound symbol.
    pub fn eval(&self, env: &Env) -> Result<f64, String> {
        match self {
            BoundExpr::Num(n) => Ok(*n as f64),
            BoundExpr::Sym(s) => env
                .get(s)
                .ok_or_else(|| format!("unbound contract symbol `{s}`")),
            BoundExpr::Add(a, b) => Ok(a.eval(env)? + b.eval(env)?),
            BoundExpr::Mul(a, b) => Ok(a.eval(env)? * b.eval(env)?),
        }
    }
}

impl fmt::Display for BoundExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BoundExpr::Num(n) => write!(f, "{n}"),
            BoundExpr::Sym(s) => f.write_str(s),
            BoundExpr::Add(a, b) => write!(f, "{a} + {b}"),
            BoundExpr::Mul(a, b) => {
                let pa = matches!(**a, BoundExpr::Add(..));
                let pb = matches!(**b, BoundExpr::Add(..));
                match (pa, pb) {
                    (true, true) => write!(f, "({a}) * ({b})"),
                    (true, false) => write!(f, "({a}) * {b}"),
                    (false, true) => write!(f, "{a} * ({b})"),
                    (false, false) => write!(f, "{a} * {b}"),
                }
            }
        }
    }
}

/// Concrete bindings for a contract's symbols.
///
/// The experiment harness builds one per facility/exhibit from the
/// paper's [`Params`](crate::Params) and the exhibit's geometry (slice
/// count, tree height, …), then evaluates each committed contract
/// against it.
#[derive(Debug, Clone, Default)]
pub struct Env {
    binds: BTreeMap<String, f64>,
}

impl Env {
    /// An empty environment.
    pub fn new() -> Self {
        Env::default()
    }

    /// Binds `name` to `value`, replacing any previous binding.
    pub fn bind(mut self, name: &str, value: f64) -> Self {
        self.binds.insert(name.to_string(), value);
        self
    }

    /// The value bound to `name`, if any.
    pub fn get(&self, name: &str) -> Option<f64> {
        self.binds.get(name).copied()
    }

    /// The bound names, for diagnostics.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.binds.keys().map(String::as_str)
    }
}

fn lex(src: &str) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        if c.is_whitespace() {
            chars.next();
        } else if c.is_ascii_digit() {
            let mut n = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_digit() || d == '_' {
                    n.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(n);
        } else if c.is_ascii_alphabetic() || c == '_' {
            let mut s = String::new();
            while let Some(&d) = chars.peek() {
                if d.is_ascii_alphanumeric() || d == '_' {
                    s.push(d);
                    chars.next();
                } else {
                    break;
                }
            }
            out.push(s);
        } else if matches!(c, '+' | '*' | '(' | ')') {
            out.push(c.to_string());
            chars.next();
        } else {
            return Err(format!("unexpected character `{c}`"));
        }
    }
    Ok(out)
}

fn parse_sum(toks: &mut Vec<String>) -> Result<BoundExpr, String> {
    let mut e = parse_product(toks)?;
    while toks.last().is_some_and(|t| t == "+") {
        toks.pop();
        e = BoundExpr::Add(Box::new(e), Box::new(parse_product(toks)?));
    }
    Ok(e)
}

fn parse_product(toks: &mut Vec<String>) -> Result<BoundExpr, String> {
    let mut e = parse_factor(toks)?;
    while toks.last().is_some_and(|t| t == "*") {
        toks.pop();
        e = BoundExpr::Mul(Box::new(e), Box::new(parse_factor(toks)?));
    }
    Ok(e)
}

fn parse_factor(toks: &mut Vec<String>) -> Result<BoundExpr, String> {
    let Some(t) = toks.pop() else {
        return Err("expression ends where a value was expected".to_string());
    };
    if t == "(" {
        let e = parse_sum(toks)?;
        match toks.pop() {
            Some(c) if c == ")" => Ok(e),
            _ => Err("unclosed `(`".to_string()),
        }
    } else if t.chars().next().is_some_and(|c| c.is_ascii_digit()) {
        t.replace('_', "")
            .parse::<u64>()
            .map(BoundExpr::Num)
            .map_err(|_| format!("bad integer `{t}`"))
    } else if t.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        Ok(BoundExpr::Sym(t))
    } else {
        Err(format!("unexpected `{t}` where a value was expected"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grammar_matches_xtask() {
        // Accepted language, degrees and symbol order — the same cases
        // the xtask parser pins in its own unit tests.
        let e = BoundExpr::parse("slices * pages_per_slice + oid_pages").unwrap();
        assert_eq!(e.degree(), 2);
        assert_eq!(e.symbols(), ["slices", "pages_per_slice", "oid_pages"]);
        assert_eq!(BoundExpr::parse("1").unwrap().degree(), 0);
        assert_eq!(
            BoundExpr::parse("probes * (height + chain)")
                .unwrap()
                .degree(),
            2
        );
        assert_eq!(BoundExpr::parse("32_000").unwrap(), BoundExpr::Num(32000));
        for bad in [
            "", "slices *", "* slices", "(a + b", "a ** b", "a - b", "a / 2",
        ] {
            assert!(BoundExpr::parse(bad).is_err(), "`{bad}` should not parse");
        }
    }

    #[test]
    fn display_round_trips() {
        for src in [
            "1",
            "sig_pages + oid_pages",
            "slices * pages_per_slice + oid_pages",
            "shards * (slices * pages_per_slice + oid_pages)",
            "probes * (height + chain)",
        ] {
            let e = BoundExpr::parse(src).unwrap();
            assert_eq!(BoundExpr::parse(&e.to_string()).unwrap(), e);
        }
    }

    #[test]
    fn eval_uses_env_and_reports_unbound() {
        let e = BoundExpr::parse("slices * pages_per_slice + oid_pages").unwrap();
        let env = Env::new()
            .bind("slices", 3.0)
            .bind("pages_per_slice", 2.0)
            .bind("oid_pages", 63.0);
        assert_eq!(e.eval(&env).unwrap(), 69.0);
        let partial = Env::new().bind("slices", 3.0);
        let err = e.eval(&partial).unwrap_err();
        assert!(err.contains("pages_per_slice"), "{err}");
    }
}
