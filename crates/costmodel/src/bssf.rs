//! The BSSF cost model (§4.2, §5.1.2–§5.2.2, Appendix C).

use crate::actual::{actual_drops_subset, actual_drops_superset};
use crate::falsedrop::{expected_query_weight, fd_subset, fd_superset};
use crate::params::Params;
use crate::{lc_oid, object_access_cost};

/// Analytical model of a bit-sliced signature file with design parameters
/// `(F, m)` over targets of cardinality `D_t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BssfModel {
    /// Database constants.
    pub params: Params,
    /// Signature width `F` in bits (= number of slice files).
    pub f: u32,
    /// Element signature weight `m`.
    pub m: u32,
    /// Target set cardinality `D_t`.
    pub d_t: u32,
}

impl BssfModel {
    /// Creates the model.
    pub fn new(params: Params, f: u32, m: u32, d_t: u32) -> Self {
        BssfModel { params, f, m, d_t }
    }

    /// Pages per slice file: `⌈N/(P·b)⌉` (= 1 for the paper's parameters).
    pub fn slice_pages(&self) -> u64 {
        self.params.slice_pages()
    }

    /// Expected query signature weight `m_s` for a query of cardinality
    /// `d_q` — the number of slice files a `T ⊇ Q` retrieval reads.
    pub fn m_s(&self, d_q: u32) -> f64 {
        expected_query_weight(self.f, self.m, d_q)
    }

    /// Retrieval cost for `T ⊇ Q` — Eq. (8):
    /// `RC = ⌈N/(P·b)⌉·m_s + LC_OID + P_s·A + P_p·F_d·(N−A)`.
    pub fn rc_superset(&self, d_q: u32) -> f64 {
        let fd = fd_superset(self.f, self.m, self.d_t, d_q);
        let a = actual_drops_superset(&self.params, self.d_t, d_q);
        self.slice_pages() as f64 * self.m_s(d_q)
            + lc_oid(&self.params, fd, a)
            + object_access_cost(&self.params, fd, a)
    }

    /// Retrieval cost for `T ⊆ Q` — Eq. (8):
    /// `RC = ⌈N/(P·b)⌉·(F − m_s) + LC_OID + P_s·A + P_p·F_d·(N−A)`.
    pub fn rc_subset(&self, d_q: u32) -> f64 {
        let fd = fd_subset(self.f, self.m, self.d_t, d_q);
        let a = actual_drops_subset(&self.params, self.d_t, d_q);
        self.slice_pages() as f64 * (self.f as f64 - self.m_s(d_q))
            + lc_oid(&self.params, fd, a)
            + object_access_cost(&self.params, fd, a)
    }

    /// The §5.1.3 smart strategy for `T ⊇ Q`: form the query signature from
    /// at most `j_cap` query elements, so for `D_q ≥ j_cap` the cost is the
    /// constant `rc_superset(j_cap)` (with drop resolution still enforcing
    /// the full predicate — the fetched-object count is that of the reduced
    /// query, which is exactly what `rc_superset(j_cap)` prices).
    pub fn rc_superset_smart(&self, d_q: u32, j_cap: u32) -> f64 {
        self.rc_superset(d_q.min(j_cap.max(1)))
    }

    /// The element cap `j*` minimizing [`rc_superset`](Self::rc_superset) —
    /// the generalization of the paper's fixed `j = 2` (optimal for
    /// `m = 2`, `F = 500`, `D_t = 10`; other regimes may prefer 1–3 more
    /// look-ups).
    pub fn best_superset_cap(&self, d_q_max: u32) -> u32 {
        (1..=d_q_max.max(1))
            .min_by(|&a, &b| self.rc_superset(a).total_cmp(&self.rc_superset(b)))
            .unwrap_or(1)
    }

    /// Appendix C: the query cardinality `D_q^opt` minimizing `rc_subset`.
    ///
    /// Approximating `RC ≈ S·(F − m_s) + F_d·(SC_OID·O_p + P_p·N)` with
    /// `x = 1 − e^{−m·D_q/F}` (the ones-fraction), setting `dRC/dD_q = 0`
    /// gives `x* = (S·F / (C·m·D_t))^{1/(m·D_t − 1)}` and
    /// `D_q^opt = −(F/m)·ln(1 − x*)`.
    pub fn d_q_opt(&self) -> f64 {
        let s = self.slice_pages() as f64;
        let c = (self.params.sc_oid() * self.params.o_p()) as f64
            + self.params.p_p * self.params.n as f64;
        let m = self.m as f64;
        let f = self.f as f64;
        let exponent = 1.0 / (m * self.d_t as f64 - 1.0);
        let x = (s * f / (c * m * self.d_t as f64)).powf(exponent);
        debug_assert!((0.0..1.0).contains(&x), "x* = {x} out of range");
        -(f / m) * (1.0 - x).ln()
    }

    /// The §5.2.2 smart strategy for `T ⊆ Q`: for `D_q ≤ D_q^opt`, read
    /// only the `F − m_s(D_q^opt)` most useful zero-slices, making the cost
    /// the constant `rc_subset(D_q^opt)`; beyond `D_q^opt` behave normally.
    pub fn rc_subset_smart(&self, d_q: u32) -> f64 {
        let opt = self.d_q_opt().round().max(1.0) as u32;
        self.rc_subset(d_q.max(opt))
    }

    /// Storage cost `SC = ⌈N/(P·b)⌉·F + SC_OID`.
    pub fn sc(&self) -> u64 {
        self.slice_pages() * self.f as u64 + self.params.sc_oid()
    }

    /// Insertion cost `UC_I = F + 1` (worst case: every slice file plus the
    /// OID file).
    pub fn uc_insert(&self) -> f64 {
        self.f as f64 + 1.0
    }

    /// Insertion cost of the sparse variant (`insert_signature_sparse`):
    /// about `m_t + 1` writes — the improvement §6 anticipates.
    pub fn uc_insert_sparse(&self) -> f64 {
        crate::falsedrop::expected_target_weight(self.f, self.m, self.d_t) + 1.0
    }

    /// Deletion cost `UC_D = SC_OID/2` (same tombstone scan as SSF).
    pub fn uc_delete(&self) -> f64 {
        self.params.sc_oid() as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(f: u32, m: u32, d_t: u32) -> BssfModel {
        BssfModel::new(Params::paper(), f, m, d_t)
    }

    #[test]
    fn storage_matches_paper() {
        // D_t = 10: F = 250 → 313, F = 500 → 563.
        assert_eq!(model(250, 2, 10).sc(), 313);
        assert_eq!(model(500, 2, 10).sc(), 563);
        // D_t = 100: F = 1000 → 1063, F = 2500 → 2563 (16% / 38% of NIX's
        // 6531, as §6 reports).
        assert_eq!(model(1000, 3, 100).sc(), 1063);
        assert_eq!(model(2500, 3, 100).sc(), 2563);
    }

    #[test]
    fn superset_cost_grows_with_d_q_at_m_opt() {
        // §5.1.1: with m = m_opt, Fd ≈ 0 but m_s grows with D_q, so the
        // slice-read term makes BSSF increasingly expensive.
        let m = model(500, 35, 10);
        let rc1 = m.rc_superset(1);
        let rc5 = m.rc_superset(5);
        let rc10 = m.rc_superset(10);
        assert!(rc1 < rc5 && rc5 < rc10);
        // D_q = 1: 35 slice reads + LC_OID(≈A) + P_s·A with A ≈ 24.6,
        // ≈ 84 pages.
        assert!((rc1 - 84.2).abs() < 3.0, "rc1 = {rc1}");
    }

    #[test]
    fn small_m_beats_m_opt_for_superset_total_cost() {
        // §5.1.2's central claim.
        let opt = model(500, 35, 10);
        let small = model(500, 2, 10);
        for d_q in 2..=10 {
            assert!(
                small.rc_superset(d_q) < opt.rc_superset(d_q),
                "d_q = {d_q}: small {} vs opt {}",
                small.rc_superset(d_q),
                opt.rc_superset(d_q)
            );
        }
    }

    #[test]
    fn too_small_m_blows_up_on_false_drops() {
        // §5.1.2: "if m becomes too small the total cost increases
        // drastically" — m = 1 at D_q = 1 admits many false drops.
        let m1 = model(500, 1, 10);
        let m2 = model(500, 2, 10);
        assert!(m1.rc_superset(1) > m2.rc_superset(1));
    }

    #[test]
    fn smart_superset_is_constant_beyond_cap() {
        let m = model(500, 2, 10);
        let at_cap = m.rc_superset_smart(2, 2);
        for d_q in 3..=10 {
            assert_eq!(m.rc_superset_smart(d_q, 2), at_cap);
        }
        // And never worse than the plain strategy.
        for d_q in 1..=10 {
            assert!(m.rc_superset_smart(d_q, 2) <= m.rc_superset(d_q) + 1e-9);
        }
    }

    #[test]
    fn best_cap_is_two_for_papers_figure5_setting() {
        let m = model(500, 2, 10);
        assert_eq!(m.best_superset_cap(10), 2);
    }

    #[test]
    fn subset_cost_has_interior_minimum() {
        // §5.2.2: RC(D_q) for T ⊆ Q first falls (fewer zero-slices) then
        // rises (false drops), with the minimum near D_q^opt ≈ 300.
        let m = model(500, 2, 10);
        let opt = m.d_q_opt();
        assert!(opt > 150.0 && opt < 450.0, "d_q_opt = {opt}");
        let rc_small = m.rc_subset(20);
        let rc_opt = m.rc_subset(opt.round() as u32);
        let rc_big = m.rc_subset(5000);
        assert!(rc_opt < rc_small, "opt {rc_opt} vs small {rc_small}");
        assert!(rc_opt < rc_big, "opt {rc_opt} vs big {rc_big}");
        // Numerically confirm it's a near-minimizer over a grid.
        let grid_min = (1..=40)
            .map(|i| m.rc_subset(i * 25))
            .fold(f64::INFINITY, f64::min);
        assert!(
            rc_opt < grid_min * 1.1,
            "rc_opt = {rc_opt}, grid = {grid_min}"
        );
    }

    #[test]
    fn smart_subset_is_constant_below_opt_and_never_worse() {
        let m = model(500, 2, 10);
        let opt = m.d_q_opt().round() as u32;
        let floor = m.rc_subset(opt);
        for d_q in [10u32, 50, 100, 200] {
            if d_q <= opt {
                assert_eq!(m.rc_subset_smart(d_q), floor);
                assert!(m.rc_subset_smart(d_q) <= m.rc_subset(d_q) + 1e-9);
            }
        }
        // Above the optimum the plain cost applies.
        assert_eq!(m.rc_subset_smart(opt + 500), m.rc_subset(opt + 500));
    }

    #[test]
    fn subset_beats_ssf_everywhere_in_figure8() {
        // §5.2.1: "For all D_q values, Figure 8 shows superiority of BSSF
        // over the corresponding SSF."
        let bssf = model(500, 2, 10);
        let ssf = crate::SsfModel::new(Params::paper(), 500, 2, 10);
        for d_q in [10u32, 30, 100, 300, 1000] {
            assert!(bssf.rc_subset(d_q) < ssf.rc_subset(d_q), "d_q = {d_q}");
        }
    }

    #[test]
    fn update_costs_match_table7() {
        let m = model(500, 2, 10);
        assert_eq!(m.uc_insert(), 501.0);
        assert_eq!(m.uc_delete(), 31.5);
        // m_t(500, 2, 10) ≈ 19.6 set bits → ≈ 20.6 writes, far below F+1.
        assert!((m.uc_insert_sparse() - 20.6).abs() < 1.0);
        let m = model(2500, 3, 100);
        assert_eq!(m.uc_insert(), 2501.0);
    }
}
