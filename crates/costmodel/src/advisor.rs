//! A design advisor built on the paper's cost model (extension).
//!
//! §6 closes with a design recommendation ("BSSF with a small m is a very
//! promising set access facility"). This module mechanizes that judgment:
//! given a workload profile — target cardinality, query mix, update rate,
//! optional storage budget — it enumerates the design space the paper
//! studies (SSF / BSSF / FSSF / NIX, `F` grid, small `m`, frame counts) and
//! returns the configuration minimizing expected page accesses per
//! operation. The `tuning` example drives it; tests pin the paper's own
//! conclusions.

use crate::bssf::BssfModel;
use crate::fssf::FssfModel;
use crate::nix::NixModel;
use crate::params::Params;
use crate::ssf::SsfModel;

/// A workload description for the advisor.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Target set cardinality `D_t`.
    pub d_t: u32,
    /// Fraction of operations that are `T ⊇ Q` queries.
    pub superset_fraction: f64,
    /// Fraction of operations that are `T ⊆ Q` queries.
    pub subset_fraction: f64,
    /// Fraction of operations that are insertions.
    pub insert_fraction: f64,
    /// Typical `D_q` for ⊇ queries.
    pub d_q_superset: u32,
    /// Typical `D_q` for ⊆ queries.
    pub d_q_subset: u32,
    /// Reject configurations above this many pages, if set.
    pub storage_budget_pages: Option<u64>,
}

impl WorkloadProfile {
    /// The paper's implicit profile: query-dominated, both query types,
    /// `D_t = 10`.
    pub fn paper_default() -> Self {
        WorkloadProfile {
            d_t: 10,
            superset_fraction: 0.45,
            subset_fraction: 0.45,
            insert_fraction: 0.10,
            d_q_superset: 3,
            d_q_subset: 100,
            storage_budget_pages: None,
        }
    }
}

/// A candidate organization with its design parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Organization {
    /// Sequential signature file with `(F, m)`.
    Ssf {
        /// Signature width.
        f: u32,
        /// Element weight.
        m: u32,
    },
    /// Bit-sliced signature file with `(F, m)`, smart strategies on.
    Bssf {
        /// Signature width.
        f: u32,
        /// Element weight.
        m: u32,
    },
    /// Frame-sliced signature file with `(F, k, m)`.
    Fssf {
        /// Signature width.
        f: u32,
        /// Frame count.
        k: u32,
        /// Element weight within the frame.
        m: u32,
    },
    /// The nested index.
    Nix,
}

/// The advisor's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct Recommendation {
    /// Chosen organization and parameters.
    pub organization: Organization,
    /// Expected page accesses per operation under the profile.
    pub expected_cost: f64,
    /// Storage cost in pages.
    pub storage_pages: u64,
    /// Every evaluated candidate `(organization, expected cost, storage)`,
    /// best first — so callers can show the trade-off table.
    pub candidates: Vec<(Organization, f64, u64)>,
}

fn profile_cost(profile: &WorkloadProfile, rc_sup: f64, rc_sub: f64, uc_ins: f64) -> f64 {
    profile.superset_fraction * rc_sup
        + profile.subset_fraction * rc_sub
        + profile.insert_fraction * uc_ins
}

/// Evaluates the design space and returns the cheapest admissible
/// configuration under `profile`.
pub fn advise(params: Params, profile: &WorkloadProfile) -> Recommendation {
    assert!(
        (profile.superset_fraction + profile.subset_fraction + profile.insert_fraction - 1.0).abs()
            < 1e-6,
        "operation fractions must sum to 1"
    );
    let d_t = profile.d_t;
    // F grid scaled to the cardinality regime, as the paper scales its own
    // choices (250/500 at D_t = 10, 1000/2500 at D_t = 100).
    let f_grid: Vec<u32> = [12, 25, 50, 100, 250]
        .iter()
        .map(|&mult| (mult * d_t).max(64))
        .collect();
    let mut candidates: Vec<(Organization, f64, u64)> = Vec::new();

    for &f in &f_grid {
        for m in 1..=4u32 {
            let ssf = SsfModel::new(params, f, m, d_t);
            candidates.push((
                Organization::Ssf { f, m },
                profile_cost(
                    profile,
                    ssf.rc_superset(profile.d_q_superset),
                    ssf.rc_subset(profile.d_q_subset),
                    ssf.uc_insert(),
                ),
                ssf.sc(),
            ));
            let bssf = BssfModel::new(params, f, m, d_t);
            let cap = bssf.best_superset_cap(profile.d_q_superset.max(1));
            candidates.push((
                Organization::Bssf { f, m },
                profile_cost(
                    profile,
                    bssf.rc_superset_smart(profile.d_q_superset, cap),
                    bssf.rc_subset_smart(profile.d_q_subset),
                    bssf.uc_insert(),
                ),
                bssf.sc(),
            ));
            // Frame counts dividing F, frames wide enough for m bits.
            for k in [f / 5, f / 10, f / 25] {
                if k == 0 || f % k != 0 || m > f / k {
                    continue;
                }
                let fssf = FssfModel::new(params, f, k, m, d_t);
                candidates.push((
                    Organization::Fssf { f, k, m },
                    profile_cost(
                        profile,
                        fssf.rc_superset(profile.d_q_superset),
                        fssf.rc_subset(profile.d_q_subset),
                        fssf.uc_insert(),
                    ),
                    fssf.sc(),
                ));
            }
        }
    }
    let nix = NixModel::new(params, d_t);
    candidates.push((
        Organization::Nix,
        profile_cost(
            profile,
            nix.rc_superset_smart(profile.d_q_superset, 2),
            nix.rc_subset(profile.d_q_subset),
            nix.uc_insert(),
        ),
        nix.sc(),
    ));

    if let Some(budget) = profile.storage_budget_pages {
        candidates.retain(|(_, _, sc)| *sc <= budget);
        assert!(
            !candidates.is_empty(),
            "no organization fits {budget} pages"
        );
    }
    candidates.sort_by(|a, b| a.1.total_cmp(&b.1));
    let best = candidates[0];
    Recommendation {
        organization: best.0,
        expected_cost: best.1,
        storage_pages: best.2,
        candidates,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_profile_picks_small_m_bssf() {
        // §6's conclusion, mechanized: the mixed-query profile at D_t = 10
        // chooses BSSF with m ≤ 3.
        let rec = advise(Params::paper(), &WorkloadProfile::paper_default());
        match rec.organization {
            Organization::Bssf { f, m } => {
                // Far below the text-retrieval optimum m_opt = F·ln2/D_t.
                let m_opt = crate::m_opt(f, 10);
                assert!(
                    (m as f64) < m_opt / 3.0,
                    "{:?} vs m_opt {m_opt}",
                    rec.organization
                );
            }
            other => panic!("expected BSSF, got {other:?}"),
        }
        assert!(rec.expected_cost > 0.0);
    }

    #[test]
    fn insert_heavy_profile_avoids_plain_bssf() {
        // 90% inserts: BSSF's F+1 is ruinous; SSF (UC_I = 2) or FSSF
        // (≈ D_t+1) must win.
        let profile = WorkloadProfile {
            superset_fraction: 0.05,
            subset_fraction: 0.05,
            insert_fraction: 0.90,
            ..WorkloadProfile::paper_default()
        };
        let rec = advise(Params::paper(), &profile);
        assert!(
            !matches!(
                rec.organization,
                Organization::Bssf { .. } | Organization::Nix
            ),
            "{:?}",
            rec.organization
        );
    }

    #[test]
    fn subset_only_profile_picks_bssf() {
        // The paper: "for the query T ⊆ Q, BSSF … overwhelms NIX".
        let profile = WorkloadProfile {
            superset_fraction: 0.0,
            subset_fraction: 1.0,
            insert_fraction: 0.0,
            ..WorkloadProfile::paper_default()
        };
        let rec = advise(Params::paper(), &profile);
        assert!(
            matches!(rec.organization, Organization::Bssf { .. }),
            "{:?}",
            rec.organization
        );
        // And NIX should rank at or near the bottom among candidates.
        let nix_cost = rec
            .candidates
            .iter()
            .find(|(o, _, _)| matches!(o, Organization::Nix))
            .unwrap()
            .1;
        assert!(nix_cost > 5.0 * rec.expected_cost);
    }

    #[test]
    fn storage_budget_filters_candidates() {
        let profile = WorkloadProfile {
            storage_budget_pages: Some(200),
            ..WorkloadProfile::paper_default()
        };
        let rec = advise(Params::paper(), &profile);
        assert!(rec.storage_pages <= 200);
        for (_, _, sc) in &rec.candidates {
            assert!(*sc <= 200);
        }
    }

    #[test]
    #[should_panic]
    fn inconsistent_fractions_rejected() {
        let profile = WorkloadProfile {
            superset_fraction: 0.9,
            subset_fraction: 0.9,
            insert_fraction: 0.9,
            ..WorkloadProfile::paper_default()
        };
        let _ = advise(Params::paper(), &profile);
    }

    #[test]
    fn candidates_are_sorted_best_first() {
        let rec = advise(Params::paper(), &WorkloadProfile::paper_default());
        for w in rec.candidates.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
        assert_eq!(rec.candidates[0].1, rec.expected_cost);
    }
}
