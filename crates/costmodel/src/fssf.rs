//! Cost model of the frame-sliced signature file (extension; see
//! `setsig_core::Fssf` for the organization).

use crate::actual::{actual_drops_subset, actual_drops_superset};
use crate::falsedrop::{fd_subset, fd_superset};
use crate::params::Params;
use crate::{lc_oid, object_access_cost};

/// Analytical model of a frame-sliced signature file: `F` bits in `k`
/// frames of `s = F/k`, `m` bits per element within its frame.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FssfModel {
    /// Database constants.
    pub params: Params,
    /// Total signature width `F`.
    pub f: u32,
    /// Frame count `k`.
    pub k: u32,
    /// Element weight `m` (within the frame).
    pub m: u32,
    /// Target set cardinality `D_t`.
    pub d_t: u32,
}

impl FssfModel {
    /// Creates the model. `k` must divide `F`.
    pub fn new(params: Params, f: u32, k: u32, m: u32, d_t: u32) -> Self {
        assert!(k > 0 && f.is_multiple_of(k), "k must divide F");
        FssfModel {
            params,
            f,
            k,
            m,
            d_t,
        }
    }

    /// Frame width `s = F/k`.
    pub fn frame_bits(&self) -> u32 {
        self.f / self.k
    }

    /// Pages per frame: `⌈N/⌊P·b/s⌋⌉`.
    pub fn frame_pages(&self) -> u64 {
        let rpp = self.params.p * self.params.b / self.frame_bits() as u64;
        self.params.n.div_ceil(rpp)
    }

    /// Expected number of distinct frames `j` uniformly hashed elements
    /// touch: `k·(1 − (1 − 1/k)^j)`.
    pub fn expected_frames(&self, j: u32) -> f64 {
        let k = self.k as f64;
        k * (1.0 - (1.0 - 1.0 / k).powi(j as i32))
    }

    /// Retrieval cost for `T ⊇ Q`: read each distinct query frame, then
    /// the usual OID look-up and drop resolution. The false-drop
    /// probability matches BSSF's Eq. (2) (the per-frame ones-fraction is
    /// `≈ 1 − e^{−m·D_t/F}`).
    pub fn rc_superset(&self, d_q: u32) -> f64 {
        let fd = fd_superset(self.f, self.m, self.d_t, d_q);
        let a = actual_drops_superset(&self.params, self.d_t, d_q);
        self.expected_frames(d_q) * self.frame_pages() as f64
            + lc_oid(&self.params, fd, a)
            + object_access_cost(&self.params, fd, a)
    }

    /// Retrieval cost for `T ⊆ Q`: every frame must be read (a striped
    /// full scan), making FSSF the wrong organization for this query.
    pub fn rc_subset(&self, d_q: u32) -> f64 {
        let fd = fd_subset(self.f, self.m, self.d_t, d_q);
        let a = actual_drops_subset(&self.params, self.d_t, d_q);
        (self.k as u64 * self.frame_pages()) as f64
            + lc_oid(&self.params, fd, a)
            + object_access_cost(&self.params, fd, a)
    }

    /// Storage cost: `k` frames of [`frame_pages`](Self::frame_pages) plus
    /// the OID file.
    pub fn sc(&self) -> u64 {
        self.k as u64 * self.frame_pages() + self.params.sc_oid()
    }

    /// Insertion cost: one write per distinct frame the target's elements
    /// touch, plus the OID file — the organization's selling point versus
    /// BSSF's `F + 1`.
    pub fn uc_insert(&self) -> f64 {
        self.expected_frames(self.d_t) + 1.0
    }

    /// Deletion cost: the same tombstone scan as SSF/BSSF.
    pub fn uc_delete(&self) -> f64 {
        self.params.sc_oid() as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::BssfModel;

    fn model() -> FssfModel {
        FssfModel::new(Params::paper(), 500, 50, 3, 10)
    }

    #[test]
    fn geometry() {
        let m = model();
        assert_eq!(m.frame_bits(), 10);
        assert_eq!(m.frame_pages(), 10); // ⌈32000/3276⌉
        assert_eq!(m.sc(), 50 * 10 + 63);
    }

    #[test]
    fn expected_frames_saturates_at_k() {
        let m = model();
        assert!((m.expected_frames(1) - 1.0).abs() < 1e-9);
        assert!(m.expected_frames(10) < 10.0);
        assert!(m.expected_frames(10) > 9.0);
        assert!(m.expected_frames(10_000) <= 50.0 + 1e-9);
    }

    #[test]
    fn insert_cost_beats_bssf_by_orders_of_magnitude() {
        let fssf = model();
        let bssf = BssfModel::new(Params::paper(), 500, 2, 10);
        assert!(fssf.uc_insert() < 12.0);
        assert_eq!(bssf.uc_insert(), 501.0);
    }

    #[test]
    fn superset_costlier_than_bssf_but_cheaper_than_scan() {
        let fssf = model();
        let bssf = BssfModel::new(Params::paper(), 500, 2, 10);
        let ssf = crate::SsfModel::new(Params::paper(), 500, 2, 10);
        let d_q = 3;
        assert!(fssf.rc_superset(d_q) > bssf.rc_superset(d_q));
        assert!(fssf.rc_superset(d_q) < ssf.rc_superset(d_q));
    }

    #[test]
    fn subset_is_a_full_striped_scan() {
        let m = model();
        // k · frame_pages = 500 pages of slices before drops.
        assert!(m.rc_subset(100) >= 500.0);
    }
}
