//! The nested index (NIX) cost model (§4.3, Appendix B).
//!
//! NIX is a B-tree whose leaf entries pair a set-element key with the list
//! of OIDs of all objects whose indexed set attribute contains that element
//! (Bertino & Kim's nested index, specialized to one path level). The model
//! follows §4.3 with the Table 4 parameters.

use crate::actual::{
    actual_drops_subset, actual_drops_superset, expected_subset_union_accesses,
    objects_sharing_all_of,
};
use crate::params::Params;

/// Analytical model of a nested index over targets of cardinality `D_t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NixModel {
    /// Database constants.
    pub params: Params,
    /// Target set cardinality `D_t`.
    pub d_t: u32,
    /// Key size `kl` in bytes (Table 4: 8).
    pub kl: u64,
    /// OID-count field size `mid` in bytes (Table 4: 2).
    pub mid: u64,
    /// Average non-leaf fanout `f` (Table 4: 218).
    pub fanout: u64,
}

impl NixModel {
    /// Creates the model with the paper's Table 4 constants.
    pub fn new(params: Params, d_t: u32) -> Self {
        NixModel {
            params,
            d_t,
            kl: 8,
            mid: 2,
            fanout: 218,
        }
    }

    /// Average objects per key `d = D_t·N/V`: how many objects' sets
    /// contain a given element (each object draws `D_t` of the `V` values).
    pub fn d(&self) -> f64 {
        self.d_t as f64 * self.params.n as f64 / self.params.v as f64
    }

    /// Average leaf entry size `il = d·oid + kl + mid` bytes.
    pub fn il(&self) -> f64 {
        self.d() * self.params.oid as f64 + (self.kl + self.mid) as f64
    }

    /// Leaf entries per page `⌊P/il⌋`.
    pub fn leaf_entries_per_page(&self) -> u64 {
        ((self.params.p as f64 / self.il()).floor() as u64).max(1)
    }

    /// Number of leaf pages `lp = ⌈V / ⌊P/il⌋⌉` (assuming every domain
    /// value has at least one referencing object).
    pub fn lp(&self) -> u64 {
        self.params.v.div_ceil(self.leaf_entries_per_page())
    }

    /// Number of non-leaf pages: levels of `⌈·/f⌉` until a single root.
    pub fn nlp(&self) -> u64 {
        let mut level = self.lp();
        let mut total = 0;
        while level > 1 {
            level = level.div_ceil(self.fanout);
            total += level;
        }
        total.max(1)
    }

    /// Number of non-leaf levels (the height above the leaves).
    pub fn height(&self) -> u32 {
        let mut level = self.lp();
        let mut h = 0;
        while level > 1 {
            level = level.div_ceil(self.fanout);
            h += 1;
        }
        h.max(1)
    }

    /// Per-element look-up cost `rc` = non-leaf levels + leaf page(s)
    /// (paper: `rc = 2 + 1 = 3` for both `D_t` values).
    pub fn rc_lookup(&self) -> f64 {
        let leaf_pages_per_entry = (self.il() / self.params.p as f64).ceil().max(1.0);
        self.height() as f64 + leaf_pages_per_entry
    }

    /// Retrieval cost for `T ⊇ Q` (§4.3): `RC = rc·D_q + P_s·A` — the
    /// OID-list intersection is exact, so only the `A` qualifying objects
    /// are fetched.
    pub fn rc_superset(&self, d_q: u32) -> f64 {
        let a = actual_drops_superset(&self.params, self.d_t, d_q);
        self.rc_lookup() * d_q as f64 + self.params.p_s * a
    }

    /// Retrieval cost for `T ⊆ Q` (§4.3, Appendix B): after `D_q` look-ups
    /// and a union, every object sharing ≥ 1 element with `Q` is fetched;
    /// those sharing some-but-not-all fail verification:
    /// `RC = rc·D_q + P_p·N·Σ_{j=1}^{D_t−1}(C(D_q,j)·C(V−D_q,D_t−j))/C(V,D_t)
    ///      + P_s·A`.
    pub fn rc_subset(&self, d_q: u32) -> f64 {
        let fail = expected_subset_union_accesses(&self.params, self.d_t, d_q);
        let a = actual_drops_subset(&self.params, self.d_t, d_q);
        self.rc_lookup() * d_q as f64 + self.params.p_p * fail + self.params.p_s * a
    }

    /// The §5.1.3 smart strategy for `T ⊇ Q`: for `D_q > j_cap`, look up
    /// only `j_cap` elements, intersect, and resolve the candidates against
    /// the full predicate:
    /// `RC = rc·j + P_p·(E[∩ of j lists] − A) + P_s·A`.
    pub fn rc_superset_smart(&self, d_q: u32, j_cap: u32) -> f64 {
        let j = d_q.min(j_cap.max(1));
        if j == d_q {
            return self.rc_superset(d_q);
        }
        let candidates = objects_sharing_all_of(&self.params, self.d_t, j);
        let a = actual_drops_superset(&self.params, self.d_t, d_q);
        self.rc_lookup() * j as f64
            + self.params.p_p * (candidates - a).max(0.0)
            + self.params.p_s * a
    }

    /// Storage cost `SC = lp + nlp` (Table 5).
    pub fn sc(&self) -> u64 {
        self.lp() + self.nlp()
    }

    /// Insertion cost `UC_I = rc·D_t` (one index maintenance per element;
    /// node splits ignored, as §4.3 assumes).
    pub fn uc_insert(&self) -> f64 {
        self.rc_lookup() * self.d_t as f64
    }

    /// Deletion cost `UC_D = rc·D_t`.
    pub fn uc_delete(&self) -> f64 {
        self.rc_lookup() * self.d_t as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_storage_costs() {
        let p = Params::paper();
        let m10 = NixModel::new(p, 10);
        assert_eq!(m10.lp(), 685);
        assert_eq!(m10.nlp(), 5);
        assert_eq!(m10.sc(), 690);
        let m100 = NixModel::new(p, 100);
        assert_eq!(m100.lp(), 6500);
        assert_eq!(m100.nlp(), 31);
        assert_eq!(m100.sc(), 6531);
    }

    #[test]
    fn lookup_cost_is_three_pages() {
        let p = Params::paper();
        assert_eq!(NixModel::new(p, 10).rc_lookup(), 3.0);
        assert_eq!(NixModel::new(p, 100).rc_lookup(), 3.0);
        assert_eq!(NixModel::new(p, 10).height(), 2);
    }

    #[test]
    fn superset_cost_is_linear_in_d_q() {
        let m = NixModel::new(Params::paper(), 10);
        // A is tiny for D_q ≥ 2, so RC ≈ 3·D_q.
        let rc2 = m.rc_superset(2);
        let rc7 = m.rc_superset(7);
        assert!((rc2 - 6.0).abs() < 0.2, "rc2 = {rc2}");
        assert!((rc7 - 21.0).abs() < 0.1, "rc7 = {rc7}");
        // D_q = 1 additionally fetches d ≈ 24.6 qualifying objects.
        let rc1 = m.rc_superset(1);
        assert!((rc1 - (3.0 + 24.6)).abs() < 0.2, "rc1 = {rc1}");
    }

    #[test]
    fn smart_superset_caps_lookups_but_pays_candidates() {
        let m = NixModel::new(Params::paper(), 10);
        // For D_q = 7 with cap 2: 2 look-ups + E[pairwise intersection]
        // ≈ 0.017 objects ≈ 6 pages total.
        let smart = m.rc_superset_smart(7, 2);
        assert!(smart < m.rc_superset(7));
        assert!((smart - 6.0).abs() < 0.2, "smart = {smart}");
        // Below the cap the plain cost applies.
        assert_eq!(m.rc_superset_smart(1, 2), m.rc_superset(1));
        assert_eq!(m.rc_superset_smart(2, 2), m.rc_superset(2));
    }

    #[test]
    fn subset_cost_grows_toward_n() {
        let m = NixModel::new(Params::paper(), 10);
        let rc10 = m.rc_subset(10);
        let rc100 = m.rc_subset(100);
        let rc1000 = m.rc_subset(1000);
        assert!(rc10 < rc100 && rc100 < rc1000);
        // §5.2: even small D_q is expensive because the union fetches every
        // overlapping object (≈ N·(1−(1−D_q/V)^{D_t}) objects).
        assert!(rc100 > 2000.0, "rc100 = {rc100}");
        assert!(rc1000 > 17000.0, "rc1000 = {rc1000}");
    }

    #[test]
    fn update_costs_table7() {
        let p = Params::paper();
        assert_eq!(NixModel::new(p, 10).uc_insert(), 30.0);
        assert_eq!(NixModel::new(p, 10).uc_delete(), 30.0);
        assert_eq!(NixModel::new(p, 100).uc_insert(), 300.0);
    }

    #[test]
    fn d_and_il_match_paper_derivation() {
        let m = NixModel::new(Params::paper(), 10);
        assert!((m.d() - 24.615).abs() < 0.01);
        assert!((m.il() - 206.9).abs() < 0.5);
        assert_eq!(m.leaf_entries_per_page(), 19);
    }
}
