//! Actual drop estimation (§4.4 and Appendices A–B).
//!
//! Target sets are `D_t` elements drawn uniformly without replacement from a
//! `V`-element domain, so "how many objects truly satisfy the predicate" is
//! hypergeometric counting.

use crate::math::ln_binomial;
use crate::params::Params;

/// Actual drops `A` for `T ⊇ Q` (§4.4): the expected number of targets
/// containing all `D_q` query elements,
/// `A = N · C(V−D_q, D_t−D_q) / C(V, D_t)`.
///
/// Zero when `D_q > D_t` (a larger query can't be contained).
pub fn actual_drops_superset(params: &Params, d_t: u32, d_q: u32) -> f64 {
    objects_sharing_all_of(params, d_t, d_q)
}

/// Expected number of objects whose target set contains `j` *given*
/// elements: `N · C(V−j, D_t−j) / C(V, D_t)`.
///
/// `j = D_q` gives the ⊇ actual drops; `j = 2` prices the intersection in
/// the smart NIX strategy (§5.1.3).
pub fn objects_sharing_all_of(params: &Params, d_t: u32, j: u32) -> f64 {
    if j > d_t {
        return 0.0;
    }
    let ln = ln_binomial(params.v - j as u64, (d_t - j) as u64) - ln_binomial(params.v, d_t as u64);
    params.n as f64 * ln.exp()
}

/// Actual drops `A` for `T ⊆ Q` (§4.4): the expected number of targets that
/// are subsets of the query, `A = N · C(D_q, D_t) / C(V, D_t)`.
///
/// "Almost negligible for probable values of `D_t` and `D_q`", as the paper
/// notes — e.g. ≈ 10^-18 for `D_t = 10`, `D_q = 100`.
pub fn actual_drops_subset(params: &Params, d_t: u32, d_q: u32) -> f64 {
    if d_t > d_q {
        return 0.0;
    }
    let ln = ln_binomial(d_q as u64, d_t as u64) - ln_binomial(params.v, d_t as u64);
    params.n as f64 * ln.exp()
}

/// Appendix B: the expected number of objects that must be fetched after a
/// `T ⊆ Q` NIX union but **fail** the predicate — objects sharing at least
/// one but not all of their elements with `Q`:
/// `N · Σ_{j=1}^{D_t−1} C(D_q, j)·C(V−D_q, D_t−j) / C(V, D_t)`.
pub fn expected_subset_union_accesses(params: &Params, d_t: u32, d_q: u32) -> f64 {
    let ln_total = ln_binomial(params.v, d_t as u64);
    let mut sum = 0.0;
    for j in 1..d_t {
        let ln = ln_binomial(d_q as u64, j as u64)
            + ln_binomial(params.v - d_q as u64, (d_t - j) as u64)
            - ln_total;
        if ln.is_finite() {
            sum += ln.exp();
        }
    }
    params.n as f64 * sum
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn superset_actual_drops_match_direct_probability() {
        let p = Params::paper();
        // D_q = 1: probability a target contains one fixed element is
        // D_t/V, so A = N·D_t/V.
        let a = actual_drops_superset(&p, 10, 1);
        let expected = p.n as f64 * 10.0 / p.v as f64;
        assert!((a - expected).abs() / expected < 1e-9, "a = {a}");
    }

    #[test]
    fn superset_actual_drops_shrink_fast_with_d_q() {
        let p = Params::paper();
        let a1 = actual_drops_superset(&p, 10, 1); // ≈ 24.6
        let a2 = actual_drops_superset(&p, 10, 2); // ≈ 0.017
        let a3 = actual_drops_superset(&p, 10, 3);
        assert!(a1 > 20.0 && a1 < 30.0);
        assert!(a2 < a1 / 100.0);
        assert!(a3 < a2 / 100.0);
        assert_eq!(actual_drops_superset(&p, 10, 11), 0.0);
    }

    #[test]
    fn subset_actual_drops_negligible_in_papers_regime() {
        let p = Params::paper();
        let a = actual_drops_subset(&p, 10, 100);
        assert!(a > 0.0 && a < 1e-10, "a = {a}");
        // D_q < D_t: impossible.
        assert_eq!(actual_drops_subset(&p, 10, 9), 0.0);
        // D_q = V: every target qualifies.
        let all = actual_drops_subset(&p, 10, p.v as u32);
        assert!((all - p.n as f64).abs() < 1e-6);
    }

    #[test]
    fn union_accesses_grow_with_d_q_toward_n() {
        let p = Params::paper();
        // §5.2.1: as D_q grows, the union of posting lists approaches all
        // of N (minus the sets fully inside Q and fully outside).
        let small = expected_subset_union_accesses(&p, 10, 10);
        let mid = expected_subset_union_accesses(&p, 10, 1000);
        let large = expected_subset_union_accesses(&p, 10, 9000);
        assert!(small < mid && mid < large);
        assert!(large < p.n as f64);
        assert!(large > 0.9 * p.n as f64);
    }

    #[test]
    fn union_terms_sum_to_overlap_probability() {
        // Σ_{j=0}^{D_t} C(D_q,j)C(V−D_q,D_t−j) = C(V,D_t) (Vandermonde):
        // so union + (no overlap) + (full containment) = N.
        let p = Params::paper();
        let d_t = 10;
        let d_q = 500;
        let partial = expected_subset_union_accesses(&p, d_t, d_q);
        let full =
            p.n as f64 * (ln_binomial(d_q as u64, d_t as u64) - ln_binomial(p.v, d_t as u64)).exp();
        let none = p.n as f64
            * (ln_binomial(p.v - d_q as u64, d_t as u64) - ln_binomial(p.v, d_t as u64)).exp();
        let total = partial + full + none;
        assert!(
            (total - p.n as f64).abs() / (p.n as f64) < 1e-9,
            "total = {total}"
        );
    }

    #[test]
    fn sharing_all_of_j_equals_superset_drops() {
        let p = Params::paper();
        for j in 0..5 {
            assert_eq!(
                objects_sharing_all_of(&p, 10, j),
                actual_drops_superset(&p, 10, j)
            );
        }
    }
}
