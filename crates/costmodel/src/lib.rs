//! # setsig-costmodel — the analytical cost model of the paper
//!
//! A faithful transcription of every equation in Ishikawa, Kitagawa & Ohbo
//! (SIGMOD 1993): false drop probabilities (§3.2), the retrieval / storage /
//! update cost model for SSF, BSSF and NIX (§4), actual drop estimation
//! (§4.4), the smart object retrieval strategies (§5.1.3, §5.2.2) and the
//! `D_q^opt` derivation of Appendix C.
//!
//! The model is pure arithmetic — no I/O — and is what the experiment
//! harness uses to regenerate the paper's figures; the measured counterparts
//! come from running the real implementations in `setsig-core` /
//! `setsig-nix` on the accounting disk.
//!
//! Numerical care: the actual-drop probabilities involve binomial
//! coefficients like `C(13000, 100)` (≈ 10^241), far beyond `f64`; all
//! combinatorial ratios are evaluated in log space via a Lanczos `ln Γ`.
//!
//! ```
//! use setsig_costmodel::{Params, BssfModel, NixModel};
//!
//! let p = Params::paper();          // Table 2 constants
//! let bssf = BssfModel::new(p, 500, 2, 10);
//! let nix = NixModel::new(p, 10);
//! // Figure 5's headline: for D_q ≥ 2 a small-m BSSF rivals the nested
//! // index on T ⊇ Q.
//! assert!(bssf.rc_superset(3) < 2.0 * nix.rc_superset(3));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actual;
mod advisor;
mod bssf;
mod contract;
mod extops;
mod falsedrop;
mod fssf;
mod math;
mod nix;
mod params;
mod ssf;

pub use actual::{
    actual_drops_subset, actual_drops_superset, expected_subset_union_accesses,
    objects_sharing_all_of,
};
pub use advisor::{advise, Organization, Recommendation, WorkloadProfile};
pub use bssf::BssfModel;
pub use contract::{BoundExpr, Env};
pub use falsedrop::{
    expected_query_weight, expected_target_weight, fd_subset, fd_superset, fd_superset_mixture,
    fd_superset_uniform_range, m_opt,
};
pub use fssf::FssfModel;
pub use math::{binomial_ratio, ln_binomial, ln_gamma};
pub use nix::NixModel;
pub use params::Params;
pub use ssf::SsfModel;

/// The OID-file look-up cost `LC_OID` (§4.1).
///
/// With `α = A/SC_OID` actual drops per OID-file page and `F_d·(O_p − α)`
/// false drops per page, each page is visited iff it holds a candidate;
/// the expected per-page cost saturates at one access:
/// `LC_OID = SC_OID · min(F_d·(O_p − α) + α, 1)`.
pub fn lc_oid(params: &Params, fd: f64, actual: f64) -> f64 {
    let sc_oid = params.sc_oid() as f64;
    let alpha = actual / sc_oid;
    sc_oid * (fd * (params.o_p() as f64 - alpha) + alpha).min(1.0)
}

/// Object-access cost of the false drop resolution step,
/// `P_s·A + P_p·F_d·(N − A)` (Eq. 7).
pub fn object_access_cost(params: &Params, fd: f64, actual: f64) -> f64 {
    params.p_s * actual + params.p_p * fd * (params.n as f64 - actual)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lc_oid_saturates_at_full_scan() {
        let p = Params::paper();
        // Fd = 1: every OID page read once.
        assert_eq!(lc_oid(&p, 1.0, 0.0), p.sc_oid() as f64);
        // Fd = 0, no actual drops: free.
        assert_eq!(lc_oid(&p, 0.0, 0.0), 0.0);
    }

    #[test]
    fn lc_oid_counts_sparse_candidates() {
        let p = Params::paper();
        // One expected false drop in the whole file → expected pages ≈ 1.
        let fd = 1.0 / p.n as f64;
        let lc = lc_oid(&p, fd, 0.0);
        assert!((lc - 1.0).abs() < 0.05, "lc = {lc}");
    }

    #[test]
    fn object_cost_splits_actual_and_false() {
        let p = Params::paper();
        let c = object_access_cost(&p, 0.0, 7.0);
        assert_eq!(c, 7.0);
        let c = object_access_cost(&p, 1.0, 0.0);
        assert_eq!(c, p.n as f64);
    }
}
