//! The SSF cost model (§4.1).

use crate::actual::{actual_drops_subset, actual_drops_superset};
use crate::falsedrop::{fd_subset, fd_superset};
use crate::params::Params;
use crate::{lc_oid, object_access_cost};

/// Analytical model of a sequential signature file with design parameters
/// `(F, m)` over targets of cardinality `D_t`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SsfModel {
    /// Database constants.
    pub params: Params,
    /// Signature width `F` in bits.
    pub f: u32,
    /// Element signature weight `m`.
    pub m: u32,
    /// Target set cardinality `D_t`.
    pub d_t: u32,
}

impl SsfModel {
    /// Creates the model.
    pub fn new(params: Params, f: u32, m: u32, d_t: u32) -> Self {
        SsfModel { params, f, m, d_t }
    }

    /// Signatures per page: `⌊P / ⌈F/8⌉⌋` (byte-aligned records, matching
    /// the `setsig-core` implementation; the paper bit-packs, which differs
    /// only when `8·P mod F ≥ 8` — e.g. 131 vs 128 per page at `F = 250`).
    pub fn signatures_per_page(&self) -> u64 {
        self.params.p / (self.f as u64).div_ceil(8)
    }

    /// Signature file size `SC_SIG = ⌈N / per_page⌉` pages, the dominant
    /// term of SSF retrieval.
    pub fn sc_sig(&self) -> u64 {
        self.params.n.div_ceil(self.signatures_per_page())
    }

    /// Retrieval cost for `T ⊇ Q` — Eq. (7):
    /// `RC = SC_SIG + LC_OID + P_s·A + P_p·F_d·(N−A)`.
    pub fn rc_superset(&self, d_q: u32) -> f64 {
        let fd = fd_superset(self.f, self.m, self.d_t, d_q);
        let a = actual_drops_superset(&self.params, self.d_t, d_q);
        self.sc_sig() as f64 + lc_oid(&self.params, fd, a) + object_access_cost(&self.params, fd, a)
    }

    /// Retrieval cost for `T ⊆ Q` — Eq. (7) with the ⊆ false drop
    /// probability (Eq. 6) and actual drops.
    pub fn rc_subset(&self, d_q: u32) -> f64 {
        let fd = fd_subset(self.f, self.m, self.d_t, d_q);
        let a = actual_drops_subset(&self.params, self.d_t, d_q);
        self.sc_sig() as f64 + lc_oid(&self.params, fd, a) + object_access_cost(&self.params, fd, a)
    }

    /// Storage cost `SC = SC_SIG + SC_OID`.
    pub fn sc(&self) -> u64 {
        self.sc_sig() + self.params.sc_oid()
    }

    /// Insertion cost `UC_I = 2`: one append into each of the signature and
    /// OID files.
    pub fn uc_insert(&self) -> f64 {
        2.0
    }

    /// Deletion cost `UC_D = SC_OID/2`: expected scan to find and flag the
    /// OID entry.
    pub fn uc_delete(&self) -> f64 {
        self.params.sc_oid() as f64 / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn storage_matches_paper_table6_regime() {
        let p = Params::paper();
        // F = 500, D_t = 10: 65 signatures/page → 493 + 63 = 556 pages
        // (the paper reports SSF ≈ 80% of NIX's 690 → ≈ 552).
        let m = SsfModel::new(p, 500, 35, 10);
        assert_eq!(m.signatures_per_page(), 65);
        assert_eq!(m.sc_sig(), 493);
        assert_eq!(m.sc(), 556);
        // F = 250: 128/page byte-aligned → 250 + 63 = 313 ≈ 45% of 690.
        let m = SsfModel::new(p, 250, 17, 10);
        assert_eq!(m.sc(), 313);
    }

    #[test]
    fn retrieval_dominated_by_scan_when_fd_negligible() {
        let p = Params::paper();
        let m = SsfModel::new(p, 500, 35, 10); // m_opt: Fd ≈ 0
        let rc = m.rc_superset(5);
        // SC_SIG plus a handful of drop pages.
        assert!(rc >= m.sc_sig() as f64);
        assert!(rc < m.sc_sig() as f64 + 5.0, "rc = {rc}");
    }

    #[test]
    fn subset_retrieval_degenerates_for_huge_queries() {
        let p = Params::paper();
        let m = SsfModel::new(p, 500, 2, 10);
        // §5.2.1: Fd → 1, so RC → SC_SIG + SC_OID + P_p·N.
        let rc = m.rc_subset(5000);
        let ceiling = (m.sc_sig() + p.sc_oid()) as f64 + p.n as f64;
        assert!(rc > 0.95 * ceiling && rc <= ceiling + 1.0, "rc = {rc}");
    }

    #[test]
    fn update_costs() {
        let m = SsfModel::new(Params::paper(), 500, 2, 10);
        assert_eq!(m.uc_insert(), 2.0);
        assert_eq!(m.uc_delete(), 31.5);
    }
}
