//! The constant parameters of the analysis (Table 2).

/// Database and hardware constants — the paper's Table 2.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Params {
    /// Total number of objects `N` (paper: 32,000).
    pub n: u64,
    /// Disk page size `P` in bytes (paper: 4096).
    pub p: u64,
    /// Size of an OID in bytes (paper: 8).
    pub oid: u64,
    /// Cardinality of the set domain `V` (paper: 13,000).
    pub v: u64,
    /// Bits per byte `b` (paper: 8).
    pub b: u64,
    /// Page accesses per object on unsuccessful retrieval `P_p` (paper: 1).
    pub p_p: f64,
    /// Page accesses per object on successful retrieval `P_s` (paper: 1).
    pub p_s: f64,
}

impl Params {
    /// The exact constants of Table 2.
    pub fn paper() -> Self {
        Params {
            n: 32_000,
            p: 4096,
            oid: 8,
            v: 13_000,
            b: 8,
            p_p: 1.0,
            p_s: 1.0,
        }
    }

    /// A scaled-down instance with the same page geometry, for fast
    /// simulation cross-checks (`N` and `V` shrink together so the
    /// element-sharing degree `d = D_t·N/V` stays in the paper's regime).
    pub fn scaled(n: u64, v: u64) -> Self {
        Params {
            n,
            v,
            ..Params::paper()
        }
    }

    /// OIDs per page `O_p = ⌊P/oid⌋` (paper: 512).
    pub fn o_p(&self) -> u64 {
        self.p / self.oid
    }

    /// OID file size `SC_OID = ⌈N/O_p⌉` pages (paper: 63).
    pub fn sc_oid(&self) -> u64 {
        self.n.div_ceil(self.o_p())
    }

    /// Rows per BSSF slice page, `P·b` bits (paper: 32,768).
    pub fn rows_per_slice_page(&self) -> u64 {
        self.p * self.b
    }

    /// BSSF slice file size `⌈N/(P·b)⌉` pages (paper: 1).
    pub fn slice_pages(&self) -> u64 {
        self.n.div_ceil(self.rows_per_slice_page())
    }
}

impl Default for Params {
    fn default() -> Self {
        Params::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_derived_constants() {
        let p = Params::paper();
        assert_eq!(p.o_p(), 512);
        assert_eq!(p.sc_oid(), 63);
        assert_eq!(p.rows_per_slice_page(), 32_768);
        assert_eq!(p.slice_pages(), 1);
    }

    #[test]
    fn scaled_preserves_geometry() {
        let p = Params::scaled(4000, 1625);
        assert_eq!(p.o_p(), 512);
        assert_eq!(p.sc_oid(), 8);
        assert_eq!(p.slice_pages(), 1);
    }
}
