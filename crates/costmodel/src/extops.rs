//! Cost models for the §6 "other set operations" (extension): equality,
//! overlap and membership, derived with the paper's machinery.

use crate::actual::objects_sharing_all_of;
use crate::bssf::BssfModel;
use crate::math::ln_binomial;
use crate::nix::NixModel;
use crate::{lc_oid, object_access_cost};

impl BssfModel {
    /// Expected false-drop probability of the overlap filter: a disjoint
    /// target passes iff it covers at least one query element's signature,
    /// `F_d ≈ 1 − (1 − p)^{D_q}` with `p = (1 − e^{−m·D_t/F})^m` the
    /// per-element coverage probability (Eq. 2 with `D_q = 1`).
    pub fn fd_overlap(&self, d_q: u32) -> f64 {
        let p = crate::falsedrop::fd_superset(self.f, self.m, self.d_t, 1);
        1.0 - (1.0 - p).powi(d_q as i32)
    }

    /// Expected number of targets truly overlapping a `D_q`-element query:
    /// `A = N·(1 − C(V−D_q, D_t)/C(V, D_t))`.
    pub fn actual_overlaps(&self, d_q: u32) -> f64 {
        let ln = ln_binomial(self.params.v.saturating_sub(d_q as u64), self.d_t as u64)
            - ln_binomial(self.params.v, self.d_t as u64);
        self.params.n as f64 * (1.0 - ln.exp())
    }

    /// Retrieval cost of the overlap operator on BSSF: read the `m_s`
    /// 1-slices and count per row, then the usual look-up/resolution.
    pub fn rc_overlap(&self, d_q: u32) -> f64 {
        let fd = self.fd_overlap(d_q);
        let a = self.actual_overlaps(d_q);
        self.slice_pages() as f64 * self.m_s(d_q)
            + lc_oid(&self.params, fd, a)
            + object_access_cost(&self.params, fd, a)
    }

    /// Retrieval cost of set equality on BSSF: both bit polarities must be
    /// checked, so **all `F` slices** are read; the false-drop probability
    /// is bounded by the tighter of the two inclusion filters.
    pub fn rc_equality(&self, d_q: u32) -> f64 {
        let fd = crate::falsedrop::fd_superset(self.f, self.m, self.d_t, d_q)
            .min(crate::falsedrop::fd_subset(self.f, self.m, self.d_t, d_q));
        // A target equals the query only if it IS the query set.
        let a = self.params.n as f64
            * if d_q == self.d_t {
                (-ln_binomial(self.params.v, self.d_t as u64)).exp()
            } else {
                0.0
            };
        self.slice_pages() as f64 * self.f as f64
            + lc_oid(&self.params, fd, a)
            + object_access_cost(&self.params, fd, a)
    }
}

impl NixModel {
    /// Retrieval cost of the overlap operator on NIX: union the `D_q`
    /// posting lists — exact, every member fetched as an answer.
    pub fn rc_overlap(&self, d_q: u32) -> f64 {
        let ln = ln_binomial(self.params.v.saturating_sub(d_q as u64), self.d_t as u64)
            - ln_binomial(self.params.v, self.d_t as u64);
        let a = self.params.n as f64 * (1.0 - ln.exp());
        self.rc_lookup() * d_q as f64 + self.params.p_s * a
    }

    /// Retrieval cost of set equality on NIX: intersect the `D_q` posting
    /// lists (like ⊇), then verify candidates — strict supersets of the
    /// query are false drops that must be fetched and rejected.
    pub fn rc_equality(&self, d_q: u32) -> f64 {
        let candidates = objects_sharing_all_of(&self.params, self.d_t, d_q);
        self.rc_lookup() * d_q as f64 + self.params.p_p * candidates
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Params;

    fn bssf() -> BssfModel {
        BssfModel::new(Params::paper(), 500, 2, 10)
    }

    #[test]
    fn overlap_actuals_grow_with_d_q() {
        let m = bssf();
        // One query element overlaps d ≈ 24.6 targets.
        let a1 = m.actual_overlaps(1);
        assert!((a1 - 24.6).abs() < 0.2, "a1 = {a1}");
        assert!(m.actual_overlaps(10) > a1);
        assert!(m.actual_overlaps(10) < 10.0 * a1, "inclusion-exclusion");
    }

    #[test]
    fn overlap_cost_dominated_by_answers() {
        let m = bssf();
        // Overlap pays its answers plus the false drops and OID look-up:
        // RC ≈ m_s + LC_OID + A + F_d·N ≈ 6 + 63 + 74 + 147 ≈ 290.
        let rc = m.rc_overlap(3);
        let a = m.actual_overlaps(3);
        assert!(rc > a && rc < a + 250.0, "rc = {rc}, a = {a}");
        // NIX pays rc·D_q + A — cheaper filter, same answers.
        let nix = NixModel::new(Params::paper(), 10);
        assert!(nix.rc_overlap(3) < rc);
    }

    #[test]
    fn equality_reads_all_slices_on_bssf() {
        let m = bssf();
        let rc = m.rc_equality(10);
        assert!(rc >= 500.0, "rc = {rc}");
        assert!(rc < 520.0, "fd for equality is tiny: rc = {rc}");
        // NIX equality: 10 look-ups + the ≈0 candidates sharing all 10.
        let nix = NixModel::new(Params::paper(), 10);
        let rc = nix.rc_equality(10);
        assert!((rc - 30.0).abs() < 1.0, "rc = {rc}");
    }

    #[test]
    fn fd_overlap_bounds() {
        let m = bssf();
        let f1 = m.fd_overlap(1);
        let f10 = m.fd_overlap(10);
        assert!(f1 > 0.0 && f1 < 1.0);
        assert!(f10 > f1 && f10 < 10.0 * f1 + 1e-12);
    }
}
