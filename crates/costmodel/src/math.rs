//! Log-space combinatorics.
//!
//! The actual-drop formulas of §4.4 divide binomial coefficients whose
//! magnitudes reach `C(13000, 100) ≈ 10^241`. Every ratio here is computed
//! as `exp(Σ ln Γ …)`, which stays comfortably inside `f64`.

/// Natural log of the gamma function, by the Lanczos approximation
/// (g = 7, n = 9 coefficients; |relative error| < 1e-13 for x > 0).
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x > 0.0, "ln_gamma domain is x > 0 (got {x})");
    // Lanczos coefficients for g = 7.
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula keeps accuracy for small x.
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)`; `-∞` when `k > n` (the coefficient is zero).
pub fn ln_binomial(n: u64, k: u64) -> f64 {
    if k > n {
        return f64::NEG_INFINITY;
    }
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// `C(a, b) / C(c, d)` in log space — the building block of every
/// hypergeometric probability in §4.4 and Appendix B.
pub fn binomial_ratio(a: u64, b: u64, c: u64, d: u64) -> f64 {
    let ln = ln_binomial(a, b) - ln_binomial(c, d);
    ln.exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n+1) = n!
        let facts: [(f64, f64); 6] = [
            (1.0, 1.0),
            (2.0, 1.0),
            (3.0, 2.0),
            (4.0, 6.0),
            (5.0, 24.0),
            (11.0, 3_628_800.0),
        ];
        for (x, expected) in facts {
            let got = ln_gamma(x).exp();
            assert!(
                (got - expected).abs() / expected < 1e-10,
                "Γ({x}) = {got}, want {expected}"
            );
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = √π.
        let got = ln_gamma(0.5).exp();
        assert!((got - std::f64::consts::PI.sqrt()).abs() < 1e-10);
    }

    #[test]
    fn ln_binomial_small_values() {
        assert!((ln_binomial(5, 2).exp() - 10.0).abs() < 1e-9);
        assert!((ln_binomial(10, 5).exp() - 252.0).abs() < 1e-8);
        assert_eq!(ln_binomial(5, 0), 0.0);
        assert_eq!(ln_binomial(5, 5), 0.0);
        assert_eq!(ln_binomial(3, 4), f64::NEG_INFINITY);
    }

    #[test]
    fn huge_binomials_stay_finite_in_log_space() {
        let ln = ln_binomial(13_000, 100);
        assert!(ln.is_finite());
        // log10 C(13000,100) ≈ 253.
        let log10 = ln / std::f64::consts::LN_10;
        assert!((log10 - 253.3).abs() < 1.0, "log10 = {log10}");
    }

    #[test]
    fn binomial_ratio_hypergeometric_sanity() {
        // Probability that a fixed element is in a random D_t-subset of V:
        // C(V-1, D_t-1)/C(V, D_t) = D_t/V.
        let r = binomial_ratio(12_999, 9, 13_000, 10);
        assert!((r - 10.0 / 13_000.0).abs() < 1e-12);
    }
}
