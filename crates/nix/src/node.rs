//! Page layouts for the nested index B-tree.
//!
//! Three page types share the index file:
//!
//! **Leaf** — a slotted page of variable-length posting entries, slot
//! directory sorted by key:
//! ```text
//! 0   type=1 u8 | 1 pad | 2 count u16 | 4 free_off u16 | 6 frag u16
//! 8…  entry records, grown upward
//! …end slot array grown downward: (off u16, len u16) per slot
//! entry: key u64 | flags u16 | payload
//!   flags bit 15 clear: inline posting, low bits = OID count, payload = OIDs
//!   flags bit 15 set:   overflow stub, payload = chain_head u32 | total u32
//! ```
//!
//! **Internal** — fixed arrays (keys then children), the paper's non-leaf
//! format:
//! ```text
//! 0 type=2 u8 | 2 count u16 | 8 keys (≤ 300 × u64) | 2408 children (≤ 301 × u32)
//! ```
//! Search follows `children[i]` where `i` is the number of keys ≤ target,
//! i.e. keys[i] is the smallest key of `children[i+1]`'s subtree.
//!
//! **Overflow** — a chain link of raw OIDs:
//! ```text
//! 0 type=3 u8 | 2 count u16 | 4 next u32 (NO_PAGE = none) | 8… OIDs
//! ```

use setsig_pagestore::{Page, PAGE_SIZE};

/// Page type tags.
pub const TYPE_LEAF: u8 = 1;
/// Internal node tag.
pub const TYPE_INTERNAL: u8 = 2;
/// Overflow chain link tag.
pub const TYPE_OVERFLOW: u8 = 3;

/// Sentinel "no page" value for chain links.
pub const NO_PAGE: u32 = u32::MAX;

/// Maximum keys in an internal node (fanout − 1). 300 keys → 301 children:
/// keys end at 8 + 2400 = 2408, children end at 2408 + 1204 = 3612 < 4096.
pub const MAX_INTERNAL_KEYS: usize = 300;

const LEAF_HEADER: usize = 8;
const SLOT: usize = 4;
/// OID count limit encodable in the 15 flag bits of an inline entry.
pub const MAX_INLINE_OIDS: usize = 400;
const OVERFLOW_FLAG: u16 = 1 << 15;
/// OIDs per overflow page.
pub const OVERFLOW_CAPACITY: usize = (PAGE_SIZE - 8) / 8;

/// A parsed leaf entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LeafEntry {
    /// The posting list is stored inline.
    Inline {
        /// The 8-byte element key.
        key: u64,
        /// The OIDs, in insertion order.
        oids: Vec<u64>,
    },
    /// The posting list lives in an overflow chain.
    Overflow {
        /// The 8-byte element key.
        key: u64,
        /// First page of the chain.
        chain_head: u32,
        /// Total OIDs across the chain.
        total: u32,
    },
}

impl LeafEntry {
    /// The entry's key.
    pub fn key(&self) -> u64 {
        match self {
            LeafEntry::Inline { key, .. } | LeafEntry::Overflow { key, .. } => *key,
        }
    }

    /// Serialized length in bytes.
    pub fn encoded_len(&self) -> usize {
        match self {
            LeafEntry::Inline { oids, .. } => 10 + oids.len() * 8,
            LeafEntry::Overflow { .. } => 10 + 8,
        }
    }

    /// Writes the entry at `off` in `page`.
    pub fn write(&self, page: &mut Page, off: usize) {
        match self {
            LeafEntry::Inline { key, oids } => {
                assert!(oids.len() <= MAX_INLINE_OIDS);
                page.write_u64(off, *key);
                page.write_u16(off + 8, oids.len() as u16);
                for (i, oid) in oids.iter().enumerate() {
                    page.write_u64(off + 10 + i * 8, *oid);
                }
            }
            LeafEntry::Overflow {
                key,
                chain_head,
                total,
            } => {
                page.write_u64(off, *key);
                page.write_u16(off + 8, OVERFLOW_FLAG);
                page.write_u32(off + 10, *chain_head);
                page.write_u32(off + 14, *total);
            }
        }
    }

    /// Parses the entry at `off` in `page`.
    pub fn read(page: &Page, off: usize) -> LeafEntry {
        let key = page.read_u64(off);
        let flags = page.read_u16(off + 8);
        if flags & OVERFLOW_FLAG != 0 {
            LeafEntry::Overflow {
                key,
                chain_head: page.read_u32(off + 10),
                total: page.read_u32(off + 14),
            }
        } else {
            let n = flags as usize;
            let oids = (0..n).map(|i| page.read_u64(off + 10 + i * 8)).collect();
            LeafEntry::Inline { key, oids }
        }
    }
}

/// Accessors for leaf pages.
pub struct Leaf;

impl Leaf {
    /// Initializes `page` as an empty leaf.
    pub fn init(page: &mut Page) {
        page.fill(0, PAGE_SIZE, 0);
        page.write_u8(0, TYPE_LEAF);
        page.write_u16(4, LEAF_HEADER as u16);
    }

    /// Number of slots.
    pub fn count(page: &Page) -> usize {
        page.read_u16(2) as usize
    }

    /// Free contiguous bytes between the record heap and the slot array.
    pub fn free_space(page: &Page) -> usize {
        let free_off = page.read_u16(4) as usize;
        let slots_start = PAGE_SIZE - Self::count(page) * SLOT;
        slots_start.saturating_sub(free_off)
    }

    /// Bytes lost to dead records (reclaimable by compaction).
    pub fn frag(page: &Page) -> usize {
        page.read_u16(6) as usize
    }

    fn slot_off(i: usize) -> usize {
        PAGE_SIZE - (i + 1) * SLOT
    }

    /// Record offset and length of slot `i`.
    pub fn slot(page: &Page, i: usize) -> (usize, usize) {
        let off = Self::slot_off(i);
        (page.read_u16(off) as usize, page.read_u16(off + 2) as usize)
    }

    /// The key stored in slot `i`.
    pub fn key_at(page: &Page, i: usize) -> u64 {
        let (off, _) = Self::slot(page, i);
        page.read_u64(off)
    }

    /// The parsed entry at slot `i`.
    pub fn entry_at(page: &Page, i: usize) -> LeafEntry {
        let (off, _) = Self::slot(page, i);
        LeafEntry::read(page, off)
    }

    /// All entries, in key order.
    pub fn entries(page: &Page) -> Vec<LeafEntry> {
        (0..Self::count(page))
            .map(|i| Self::entry_at(page, i))
            .collect()
    }

    /// Binary search for `key`: `Ok(slot)` if present, `Err(insert_pos)`.
    pub fn search(page: &Page, key: u64) -> Result<usize, usize> {
        let mut lo = 0;
        let mut hi = Self::count(page);
        while lo < hi {
            let mid = (lo + hi) / 2;
            match Self::key_at(page, mid).cmp(&key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Appends `entry`'s record to the heap and inserts a slot at `pos`.
    /// Caller must have verified `free_space ≥ encoded_len + SLOT`.
    pub fn insert_entry(page: &mut Page, pos: usize, entry: &LeafEntry) {
        let len = entry.encoded_len();
        debug_assert!(Self::free_space(page) >= len + SLOT);
        let off = page.read_u16(4) as usize;
        entry.write(page, off);
        let count = Self::count(page);
        // Shift slots [pos, count) one position outward (toward lower
        // addresses, since slots grow downward).
        for i in (pos..count).rev() {
            let (o, l) = Self::slot(page, i);
            let dst = Self::slot_off(i + 1);
            page.write_u16(dst, o as u16);
            page.write_u16(dst + 2, l as u16);
        }
        let s = Self::slot_off(pos);
        page.write_u16(s, off as u16);
        page.write_u16(s + 2, len as u16);
        page.write_u16(2, (count + 1) as u16);
        page.write_u16(4, (off + len) as u16);
    }

    /// Replaces the entry in slot `i`.
    ///
    /// Same-or-smaller records are rewritten in place; larger ones are
    /// appended to the heap (the old record becomes fragmentation). Returns
    /// `false` when the heap lacks room — caller compacts or splits.
    pub fn replace_entry(page: &mut Page, i: usize, entry: &LeafEntry) -> bool {
        let (old_off, old_len) = Self::slot(page, i);
        let new_len = entry.encoded_len();
        if new_len <= old_len {
            entry.write(page, old_off);
            let s = Self::slot_off(i);
            page.write_u16(s + 2, new_len as u16);
            page.write_u16(6, (Self::frag(page) + old_len - new_len) as u16);
            return true;
        }
        if Self::free_space(page) < new_len {
            return false;
        }
        let off = page.read_u16(4) as usize;
        entry.write(page, off);
        let s = Self::slot_off(i);
        page.write_u16(s, off as u16);
        page.write_u16(s + 2, new_len as u16);
        page.write_u16(4, (off + new_len) as u16);
        page.write_u16(6, (Self::frag(page) + old_len) as u16);
        true
    }

    /// Removes slot `i`, leaving its record as fragmentation.
    pub fn remove_entry(page: &mut Page, i: usize) {
        let count = Self::count(page);
        let (_, len) = Self::slot(page, i);
        for j in i + 1..count {
            let (o, l) = Self::slot(page, j);
            let dst = Self::slot_off(j - 1);
            page.write_u16(dst, o as u16);
            page.write_u16(dst + 2, l as u16);
        }
        page.write_u16(2, (count - 1) as u16);
        page.write_u16(6, (Self::frag(page) + len) as u16);
    }

    /// Rebuilds the page from `entries` (sorted by key), dropping all
    /// fragmentation.
    pub fn rebuild(page: &mut Page, entries: &[LeafEntry]) {
        Self::init(page);
        for (i, e) in entries.iter().enumerate() {
            Self::insert_entry(page, i, e);
        }
    }
}

/// Accessors for internal pages.
pub struct Internal;

const CHILDREN_BASE: usize = 8 + MAX_INTERNAL_KEYS * 8;

impl Internal {
    /// Initializes `page` as an internal node with a single child.
    pub fn init(page: &mut Page, first_child: u32) {
        page.fill(0, PAGE_SIZE, 0);
        page.write_u8(0, TYPE_INTERNAL);
        page.write_u32(CHILDREN_BASE, first_child);
    }

    /// Number of keys (children = keys + 1).
    pub fn count(page: &Page) -> usize {
        page.read_u16(2) as usize
    }

    /// Key `i`.
    pub fn key(page: &Page, i: usize) -> u64 {
        page.read_u64(8 + i * 8)
    }

    /// Child pointer `i`.
    pub fn child(page: &Page, i: usize) -> u32 {
        page.read_u32(CHILDREN_BASE + i * 4)
    }

    /// Index of the child to follow for `key`: the number of stored keys
    /// that are `≤ key`.
    pub fn child_for(page: &Page, key: u64) -> usize {
        let count = Self::count(page);
        let mut lo = 0;
        let mut hi = count;
        while lo < hi {
            let mid = (lo + hi) / 2;
            if Self::key(page, mid) <= key {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        lo
    }

    /// Inserts separator `key` with right child `child` at key position
    /// `pos`. Caller must have verified `count < MAX_INTERNAL_KEYS`.
    pub fn insert_at(page: &mut Page, pos: usize, key: u64, child: u32) {
        let count = Self::count(page);
        debug_assert!(count < MAX_INTERNAL_KEYS);
        for i in (pos..count).rev() {
            let k = Self::key(page, i);
            page.write_u64(8 + (i + 1) * 8, k);
        }
        for i in (pos + 1..=count).rev() {
            let c = Self::child(page, i);
            page.write_u32(CHILDREN_BASE + (i + 1) * 4, c);
        }
        page.write_u64(8 + pos * 8, key);
        page.write_u32(CHILDREN_BASE + (pos + 1) * 4, child);
        page.write_u16(2, (count + 1) as u16);
    }

    /// Splits a full node: keeps the left half here, returns the median key
    /// and the contents (keys, children) for the new right sibling.
    pub fn split(page: &mut Page) -> (u64, Vec<u64>, Vec<u32>) {
        let count = Self::count(page);
        let mid = count / 2;
        let median = Self::key(page, mid);
        let right_keys: Vec<u64> = (mid + 1..count).map(|i| Self::key(page, i)).collect();
        let right_children: Vec<u32> = (mid + 1..=count).map(|i| Self::child(page, i)).collect();
        page.write_u16(2, mid as u16);
        (median, right_keys, right_children)
    }

    /// Builds a node from keys and children (for the right half of a
    /// split).
    pub fn build(page: &mut Page, keys: &[u64], children: &[u32]) {
        debug_assert_eq!(children.len(), keys.len() + 1);
        Self::init(page, children[0]);
        for (i, &k) in keys.iter().enumerate() {
            page.write_u64(8 + i * 8, k);
        }
        for (i, &c) in children.iter().enumerate() {
            page.write_u32(CHILDREN_BASE + i * 4, c);
        }
        page.write_u16(2, keys.len() as u16);
    }
}

/// Accessors for overflow chain pages.
pub struct Overflow;

impl Overflow {
    /// Initializes `page` as an empty overflow link pointing at `next`.
    pub fn init(page: &mut Page, next: u32) {
        page.fill(0, PAGE_SIZE, 0);
        page.write_u8(0, TYPE_OVERFLOW);
        page.write_u32(4, next);
    }

    /// OIDs stored in this link.
    pub fn count(page: &Page) -> usize {
        page.read_u16(2) as usize
    }

    /// Next link, or [`NO_PAGE`].
    pub fn next(page: &Page) -> u32 {
        page.read_u32(4)
    }

    /// OID `i`.
    pub fn oid(page: &Page, i: usize) -> u64 {
        page.read_u64(8 + i * 8)
    }

    /// Appends an OID; returns false when full.
    pub fn push(page: &mut Page, oid: u64) -> bool {
        let count = Self::count(page);
        if count >= OVERFLOW_CAPACITY {
            return false;
        }
        page.write_u64(8 + count * 8, oid);
        page.write_u16(2, (count + 1) as u16);
        true
    }

    /// Removes the OID at `i` by swapping in the last one.
    pub fn swap_remove(page: &mut Page, i: usize) {
        let count = Self::count(page);
        debug_assert!(i < count);
        let last = Self::oid(page, count - 1);
        page.write_u64(8 + i * 8, last);
        page.write_u16(2, (count - 1) as u16);
    }
}

/// The type tag of a page.
pub fn page_type(page: &Page) -> u8 {
    page.read_u8(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_entry_roundtrip() {
        let mut page = Page::zeroed();
        let inline = LeafEntry::Inline {
            key: 42,
            oids: vec![1, 2, 3],
        };
        inline.write(&mut page, 100);
        assert_eq!(LeafEntry::read(&page, 100), inline);
        let over = LeafEntry::Overflow {
            key: 7,
            chain_head: 9,
            total: 1000,
        };
        over.write(&mut page, 200);
        assert_eq!(LeafEntry::read(&page, 200), over);
        assert_eq!(inline.encoded_len(), 34);
        assert_eq!(over.encoded_len(), 18);
    }

    #[test]
    fn leaf_insert_search_ordering() {
        let mut page = Page::zeroed();
        Leaf::init(&mut page);
        for key in [50u64, 10, 30, 20, 40] {
            let pos = Leaf::search(&page, key).unwrap_err();
            Leaf::insert_entry(
                &mut page,
                pos,
                &LeafEntry::Inline {
                    key,
                    oids: vec![key],
                },
            );
        }
        assert_eq!(Leaf::count(&page), 5);
        let keys: Vec<u64> = (0..5).map(|i| Leaf::key_at(&page, i)).collect();
        assert_eq!(keys, vec![10, 20, 30, 40, 50]);
        assert_eq!(Leaf::search(&page, 30), Ok(2));
        assert_eq!(Leaf::search(&page, 35), Err(3));
    }

    #[test]
    fn leaf_replace_in_place_and_grow() {
        let mut page = Page::zeroed();
        Leaf::init(&mut page);
        Leaf::insert_entry(
            &mut page,
            0,
            &LeafEntry::Inline {
                key: 1,
                oids: vec![10, 20],
            },
        );
        // Shrink: in place, no fragmentation change beyond diff.
        assert!(Leaf::replace_entry(
            &mut page,
            0,
            &LeafEntry::Inline {
                key: 1,
                oids: vec![10]
            }
        ));
        assert_eq!(
            Leaf::entry_at(&page, 0),
            LeafEntry::Inline {
                key: 1,
                oids: vec![10]
            }
        );
        // Grow: appended to heap, old record becomes frag.
        let grown = LeafEntry::Inline {
            key: 1,
            oids: vec![10, 20, 30],
        };
        assert!(Leaf::replace_entry(&mut page, 0, &grown));
        assert_eq!(Leaf::entry_at(&page, 0), grown);
        assert!(Leaf::frag(&page) > 0);
    }

    #[test]
    fn leaf_remove_and_rebuild() {
        let mut page = Page::zeroed();
        Leaf::init(&mut page);
        for (i, key) in [10u64, 20, 30].into_iter().enumerate() {
            Leaf::insert_entry(
                &mut page,
                i,
                &LeafEntry::Inline {
                    key,
                    oids: vec![key],
                },
            );
        }
        Leaf::remove_entry(&mut page, 1);
        assert_eq!(Leaf::count(&page), 2);
        assert_eq!(Leaf::key_at(&page, 1), 30);
        assert!(Leaf::frag(&page) > 0);
        let entries = Leaf::entries(&page);
        Leaf::rebuild(&mut page, &entries);
        assert_eq!(Leaf::frag(&page), 0);
        assert_eq!(Leaf::count(&page), 2);
    }

    #[test]
    fn leaf_free_space_accounting() {
        let mut page = Page::zeroed();
        Leaf::init(&mut page);
        let before = Leaf::free_space(&page);
        assert_eq!(before, PAGE_SIZE - LEAF_HEADER);
        let e = LeafEntry::Inline {
            key: 1,
            oids: vec![1, 2],
        };
        Leaf::insert_entry(&mut page, 0, &e);
        assert_eq!(Leaf::free_space(&page), before - e.encoded_len() - SLOT);
    }

    #[test]
    fn internal_routing() {
        let mut page = Page::zeroed();
        Internal::init(&mut page, 100);
        // keys [10, 20], children [100, 200, 300]:
        Internal::insert_at(&mut page, 0, 10, 200);
        Internal::insert_at(&mut page, 1, 20, 300);
        assert_eq!(Internal::count(&page), 2);
        // key < 10 → child 0; 10 ≤ key < 20 → child 1; ≥ 20 → child 2.
        assert_eq!(Internal::child_for(&page, 5), 0);
        assert_eq!(Internal::child_for(&page, 10), 1);
        assert_eq!(Internal::child_for(&page, 15), 1);
        assert_eq!(Internal::child_for(&page, 20), 2);
        assert_eq!(Internal::child(&page, Internal::child_for(&page, 15)), 200);
    }

    #[test]
    fn internal_insert_shifts_correctly() {
        let mut page = Page::zeroed();
        Internal::init(&mut page, 1);
        Internal::insert_at(&mut page, 0, 30, 4);
        Internal::insert_at(&mut page, 0, 10, 2);
        Internal::insert_at(&mut page, 1, 20, 3);
        let keys: Vec<u64> = (0..3).map(|i| Internal::key(&page, i)).collect();
        let children: Vec<u32> = (0..4).map(|i| Internal::child(&page, i)).collect();
        assert_eq!(keys, vec![10, 20, 30]);
        assert_eq!(children, vec![1, 2, 3, 4]);
    }

    #[test]
    fn internal_split_preserves_routing() {
        let mut page = Page::zeroed();
        Internal::init(&mut page, 0);
        for i in 0..MAX_INTERNAL_KEYS {
            Internal::insert_at(&mut page, i, (i as u64 + 1) * 10, i as u32 + 1);
        }
        let (median, rkeys, rchildren) = Internal::split(&mut page);
        assert_eq!(median, (MAX_INTERNAL_KEYS as u64 / 2 + 1) * 10);
        assert_eq!(Internal::count(&page), MAX_INTERNAL_KEYS / 2);
        assert_eq!(rkeys.len() + 1, rchildren.len());
        let mut right = Page::zeroed();
        Internal::build(&mut right, &rkeys, &rchildren);
        assert_eq!(Internal::count(&right), rkeys.len());
        // Left half routes low keys, right half routes high keys.
        assert_eq!(Internal::child_for(&page, 10), 1);
        assert_eq!(Internal::child(&right, 0), MAX_INTERNAL_KEYS as u32 / 2 + 1);
    }

    #[test]
    fn overflow_push_and_remove() {
        let mut page = Page::zeroed();
        Overflow::init(&mut page, NO_PAGE);
        assert_eq!(Overflow::next(&page), NO_PAGE);
        for i in 0..10u64 {
            assert!(Overflow::push(&mut page, i));
        }
        assert_eq!(Overflow::count(&page), 10);
        Overflow::swap_remove(&mut page, 0);
        assert_eq!(Overflow::count(&page), 9);
        assert_eq!(Overflow::oid(&page, 0), 9);
    }

    #[test]
    fn overflow_capacity_enforced() {
        let mut page = Page::zeroed();
        Overflow::init(&mut page, NO_PAGE);
        for i in 0..OVERFLOW_CAPACITY as u64 {
            assert!(Overflow::push(&mut page, i));
        }
        assert!(!Overflow::push(&mut page, 9999));
        assert_eq!(OVERFLOW_CAPACITY, 511);
    }

    #[test]
    fn page_types_distinguishable() {
        let mut leaf = Page::zeroed();
        Leaf::init(&mut leaf);
        let mut internal = Page::zeroed();
        Internal::init(&mut internal, 0);
        let mut over = Page::zeroed();
        Overflow::init(&mut over, NO_PAGE);
        assert_eq!(page_type(&leaf), TYPE_LEAF);
        assert_eq!(page_type(&internal), TYPE_INTERNAL);
        assert_eq!(page_type(&over), TYPE_OVERFLOW);
    }
}
