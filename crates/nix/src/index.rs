//! The nested index as a set access facility.

use setsig_core::{
    CandidateSet, ElementKey, Error, Oid, Result, ScanStats, SetAccessFacility, SetPredicate,
    SetQuery,
};
use setsig_pagestore::{Disk, PageIo};
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Instant;

use crate::btree::BTree;

/// The nested index (NIX): a [`BTree`] keyed by set elements whose posting
/// lists are the OIDs of the objects containing that element, plus the
/// paper's retrieval schemes (§4.3).
pub struct Nix {
    tree: BTree,
    indexed: u64,
    /// Catalog checkpoint file; created lazily by [`Nix::sync_meta`].
    meta_file: Option<setsig_pagestore::PagedFile>,
    /// Observability recorder; `None` (the default) keeps the query path
    /// free of any clock or metrics work.
    obs: Option<Arc<setsig_obs::Recorder>>,
}

impl Nix {
    /// Creates an empty nested index named `name` on `disk`.
    pub fn create(disk: Arc<Disk>, name: &str) -> Self {
        let io: Arc<dyn PageIo> = disk as Arc<dyn PageIo>;
        Nix::on_io(io, name)
    }

    /// Creates an empty nested index on any page I/O backend.
    pub fn on_io(io: Arc<dyn PageIo>, name: &str) -> Self {
        Nix {
            tree: BTree::create(io, &format!("{name}.nix")),
            indexed: 0,
            meta_file: None,
            obs: None,
        }
    }

    /// Attaches (or with `None`, detaches) an observability recorder.
    /// Attached, every `candidates*` call emits a
    /// [`QueryTrace`](setsig_obs::QueryTrace) and updates the `nix.*`
    /// metrics; detached, the query path does no observability work at all.
    pub fn set_recorder(&mut self, rec: Option<Arc<setsig_obs::Recorder>>) {
        self.obs = rec;
    }

    /// Emits the trace event for one completed query, when a recorder is
    /// attached. NIX tracks no page accounting (its cost is the B-tree
    /// look-ups), so the page and slice fields stay `null`.
    fn trace_query(
        &self,
        armed: Option<(Arc<setsig_obs::Recorder>, Instant)>,
        query: &SetQuery,
        strategy: Option<&str>,
        set: &CandidateSet,
    ) {
        let Some((rec, t0)) = armed else { return };
        let predicate = match strategy {
            Some(s) => format!("{:?}:{s}", query.predicate),
            None => format!("{:?}", query.predicate),
        };
        rec.record_query(&setsig_obs::QueryTrace {
            facility: "nix".to_owned(),
            predicate,
            d_q: query.elements.len() as u64,
            f_bits: None,
            m_weight: None,
            slices_touched: None,
            early_exit: false,
            logical_pages: None,
            physical_pages: None,
            candidates: set.len() as u64,
            exact: set.exact,
            false_drops: None,
            cache_hits: None,
            cache_misses: None,
            cache_pinned_hits: None,
            latency_ns: t0.elapsed().as_nanos() as u64,
        });
    }

    /// Arms the trace context iff a recorder is attached (no clock read
    /// otherwise).
    fn arm_obs(&self) -> Option<(Arc<setsig_obs::Recorder>, Instant)> {
        self.obs.as_ref().map(|r| (Arc::clone(r), Instant::now()))
    }

    /// The underlying B-tree (stats, integrity checks).
    pub fn tree(&self) -> &BTree {
        &self.tree
    }

    /// Posting list of one element: the OIDs of every object whose indexed
    /// set contains it. Costs `rc = height + 1` page reads (+ chain links).
    // COST: height + chain pages
    pub fn lookup_element(&self, element: &ElementKey) -> Result<Vec<Oid>> {
        Ok(self
            .tree
            .lookup(element.digest8())?
            .into_iter()
            .map(Oid::new)
            .collect())
    }

    /// The §4.3 retrieval for `T ⊇ Q`: look up every query element and
    /// intersect the OID lists. Exact — an object containing every query
    /// element satisfies the predicate by definition.
    fn superset_candidates(&self, query: &SetQuery) -> Result<CandidateSet> {
        let mut acc: Option<BTreeSet<u64>> = None;
        for e in &query.elements {
            let list: BTreeSet<u64> = self.tree.lookup(e.digest8())?.into_iter().collect();
            acc = Some(match acc {
                None => list,
                Some(prev) => prev.intersection(&list).copied().collect(),
            });
            if acc.as_ref().is_some_and(BTreeSet::is_empty) {
                break;
            }
        }
        let oids = acc
            .map(|s| s.into_iter().map(Oid::new).collect())
            .unwrap_or_default();
        Ok(CandidateSet::new(oids, true))
    }

    /// The §5.1.3 smart strategy: intersect only the first `j_cap` query
    /// elements' posting lists; the remaining elements are verified at drop
    /// resolution (so the result is *not* exact when truncated).
    // COST: probes * (height + chain) pages
    pub fn candidates_superset_smart(
        &self,
        query: &SetQuery,
        j_cap: usize,
    ) -> Result<CandidateSet> {
        if query.predicate != SetPredicate::HasSubset {
            return Err(Error::BadQuery(
                "smart superset strategy requires T ⊇ Q".into(),
            ));
        }
        let armed = self.arm_obs();
        let take = query.elements.len().min(j_cap.max(1));
        let truncated = SetQuery::has_subset(query.elements[..take].to_vec());
        let mut cands = self.superset_candidates(&truncated)?;
        cands.exact = take == query.elements.len();
        self.trace_query(armed, query, Some("smart"), &cands);
        Ok(cands)
    }

    /// The §4.3 retrieval for `T ⊆ Q`: union the posting lists of all query
    /// elements. Not exact — an object sharing one element may still hold
    /// elements outside `Q` — so drop resolution fetches every candidate,
    /// which is precisely why the paper finds NIX weak on this query.
    fn subset_candidates(&self, query: &SetQuery) -> Result<CandidateSet> {
        let mut acc: BTreeSet<u64> = BTreeSet::new();
        for e in &query.elements {
            acc.extend(self.tree.lookup(e.digest8())?);
        }
        Ok(CandidateSet::new(
            acc.into_iter().map(Oid::new).collect(),
            false,
        ))
    }

    /// Set equality via the index: `T = Q` implies `T ⊇ Q`, so intersect
    /// and verify cardinality at resolution.
    fn equals_candidates(&self, query: &SetQuery) -> Result<CandidateSet> {
        let mut cands = self.superset_candidates(query)?;
        cands.exact = false; // a strict superset of Q would be a false drop
        Ok(cands)
    }

    /// Overlap via the index: any object listed under any query element
    /// shares that element — exact.
    fn overlap_candidates(&self, query: &SetQuery) -> Result<CandidateSet> {
        let mut cands = self.subset_candidates(query)?;
        cands.exact = true;
        Ok(cands)
    }
}

impl SetAccessFacility for Nix {
    fn name(&self) -> &'static str {
        "NIX"
    }

    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        let mut seen = BTreeSet::new();
        for e in set {
            if seen.insert(e.digest8()) {
                self.tree.insert(e.digest8(), oid.raw())?;
            }
        }
        self.indexed += 1;
        Ok(())
    }

    fn delete(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        let mut seen = BTreeSet::new();
        let mut removed_any = false;
        for e in set {
            if seen.insert(e.digest8()) && self.tree.remove(e.digest8(), oid.raw())? {
                removed_any = true;
            }
        }
        if !removed_any && !set.is_empty() {
            return Err(Error::OidNotFound(oid));
        }
        self.indexed = self.indexed.saturating_sub(1);
        Ok(())
    }

    // COST: probes * (height + chain) pages
    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)> {
        let armed = self.arm_obs();
        let set = match query.predicate {
            SetPredicate::HasSubset | SetPredicate::Contains => self.superset_candidates(query)?,
            SetPredicate::InSubset => self.subset_candidates(query)?,
            SetPredicate::Equals => self.equals_candidates(query)?,
            SetPredicate::Overlaps => self.overlap_candidates(query)?,
        };
        self.trace_query(armed, query, None, &set);
        // NIX has no scan engine: its cost model is rc·D_q B-tree reads,
        // measured at the disk, not per-query counters.
        Ok((set, None))
    }

    fn indexed_count(&self) -> u64 {
        self.indexed
    }

    fn storage_pages(&self) -> Result<u64> {
        self.tree.storage_pages()
    }
}

impl std::fmt::Debug for Nix {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Nix {{ objects: {}, {:?} }}", self.indexed, self.tree)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(elems: &[&str]) -> Vec<ElementKey> {
        elems.iter().map(ElementKey::from).collect()
    }

    fn nix() -> (Arc<Disk>, Nix) {
        let disk = Arc::new(Disk::new());
        (Arc::clone(&disk), Nix::create(disk, "test"))
    }

    #[test]
    fn superset_intersection_is_exact() {
        let (_d, mut n) = nix();
        n.insert(Oid::new(1), &keys(&["Baseball", "Fishing"]))
            .unwrap();
        n.insert(Oid::new(2), &keys(&["Baseball", "Tennis"]))
            .unwrap();
        n.insert(Oid::new(3), &keys(&["Baseball", "Fishing", "Golf"]))
            .unwrap();

        let q = SetQuery::has_subset(keys(&["Baseball", "Fishing"]));
        let c = n.candidates(&q).unwrap();
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(3)]);
        assert!(c.exact, "no false drops for NIX on T ⊇ Q");
    }

    #[test]
    fn subset_union_needs_verification() {
        let (_d, mut n) = nix();
        n.insert(Oid::new(1), &keys(&["Baseball"])).unwrap();
        n.insert(Oid::new(2), &keys(&["Baseball", "Skiing"]))
            .unwrap();
        let q = SetQuery::in_subset(keys(&["Baseball", "Fishing"]));
        let c = n.candidates(&q).unwrap();
        // Both objects share "Baseball", but object 2 is not a subset:
        // union returns both, marked inexact.
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(2)]);
        assert!(!c.exact);
    }

    #[test]
    fn contains_and_overlap_are_exact() {
        let (_d, mut n) = nix();
        n.insert(Oid::new(1), &keys(&["a", "b"])).unwrap();
        n.insert(Oid::new(2), &keys(&["c"])).unwrap();
        let c = n
            .candidates(&SetQuery::contains(ElementKey::from("b")))
            .unwrap();
        assert_eq!(c.oids, vec![Oid::new(1)]);
        assert!(c.exact);
        let c = n
            .candidates(&SetQuery::overlaps(keys(&["b", "c"])))
            .unwrap();
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(2)]);
        assert!(c.exact);
    }

    #[test]
    fn equals_intersects_but_verifies() {
        let (_d, mut n) = nix();
        n.insert(Oid::new(1), &keys(&["a", "b"])).unwrap();
        n.insert(Oid::new(2), &keys(&["a", "b", "c"])).unwrap();
        let c = n.candidates(&SetQuery::equals(keys(&["a", "b"]))).unwrap();
        // Object 2 is a superset — a candidate the resolver must reject.
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(2)]);
        assert!(!c.exact);
    }

    #[test]
    fn smart_superset_truncates_lookups() {
        let (disk, mut n) = nix();
        for i in 0..50u64 {
            let set: Vec<ElementKey> = (0..5).map(|j| ElementKey::from(i * 17 + j)).collect();
            n.insert(Oid::new(i), &set).unwrap();
        }
        let q = SetQuery::has_subset((0..5).map(|j| ElementKey::from(11u64 * 17 + j)).collect());
        disk.reset_stats();
        let c = n.candidates_superset_smart(&q, 2).unwrap();
        assert!(c.oids.contains(&Oid::new(11)));
        assert!(!c.exact, "truncated strategy must flag for verification");
        // 2 look-ups × rc reads.
        let reads = disk.snapshot().reads;
        assert_eq!(reads as u32, 2 * n.tree().rc_lookup());
        // Un-truncated (cap ≥ D_q) stays exact.
        let c = n.candidates_superset_smart(&q, 5).unwrap();
        assert!(c.exact);
    }

    #[test]
    fn smart_rejects_wrong_predicate() {
        let (_d, n) = nix();
        let q = SetQuery::in_subset(keys(&["a"]));
        assert!(n.candidates_superset_smart(&q, 2).is_err());
    }

    #[test]
    fn delete_unindexes_object() {
        let (_d, mut n) = nix();
        let set = keys(&["Baseball", "Fishing"]);
        n.insert(Oid::new(1), &set).unwrap();
        n.insert(Oid::new(2), &set).unwrap();
        n.delete(Oid::new(1), &set).unwrap();
        let q = SetQuery::has_subset(keys(&["Baseball"]));
        assert_eq!(n.candidates(&q).unwrap().oids, vec![Oid::new(2)]);
        assert_eq!(n.indexed_count(), 1);
        assert!(n.delete(Oid::new(1), &set).is_err(), "double delete");
        n.tree().check_integrity().unwrap();
    }

    #[test]
    fn duplicate_elements_in_set_indexed_once() {
        let (_d, mut n) = nix();
        n.insert(Oid::new(1), &keys(&["a", "a", "a"])).unwrap();
        assert_eq!(n.tree().posting_count(), 1);
        let c = n
            .candidates(&SetQuery::contains(ElementKey::from("a")))
            .unwrap();
        assert_eq!(c.oids, vec![Oid::new(1)]);
    }

    #[test]
    fn lookup_cost_matches_rc_times_d_q() {
        let (disk, mut n) = nix();
        // Enough keys for a height ≥ 1 tree; object i holds {3i, 3i+1,
        // 3i+2} so the probe elements co-occur and no early exit fires.
        for i in 0..1000u64 {
            let set: Vec<ElementKey> = (0..3).map(|j| ElementKey::from(3 * i + j)).collect();
            n.insert(Oid::new(i), &set).unwrap();
        }
        let q = SetQuery::has_subset(vec![
            ElementKey::from(1500u64),
            ElementKey::from(1501u64),
            ElementKey::from(1502u64),
        ]);
        disk.reset_stats();
        let _ = n.candidates(&q).unwrap();
        let reads = disk.snapshot().reads;
        assert_eq!(reads as u32, 3 * n.tree().rc_lookup(), "rc·D_q of §4.3");
    }
}

impl Nix {
    /// Checkpoints the index's catalog state: the B-tree checkpoint plus
    /// the indexed-object count, in a meta file of its own. Returns the
    /// meta file id to hand to [`Nix::open`].
    pub fn sync_meta(&mut self) -> Result<setsig_pagestore::FileId> {
        let tree_meta = self.tree.sync_meta()?;
        let meta = match &self.meta_file {
            Some(f) => f.clone(),
            None => {
                let f = setsig_pagestore::PagedFile::create(
                    Arc::clone(self.tree.file_io()),
                    "nix.meta",
                );
                self.meta_file = Some(f.clone());
                f
            }
        };
        let mut blob = Vec::with_capacity(16);
        blob.extend_from_slice(b"NIXW");
        blob.extend_from_slice(&tree_meta.raw().to_le_bytes());
        blob.extend_from_slice(&self.indexed.to_le_bytes());
        meta.write_blob(&blob)?;
        Ok(meta.id())
    }

    /// Reopens a nested index from a [`Nix::sync_meta`] checkpoint.
    pub fn open(io: Arc<dyn PageIo>, meta: setsig_pagestore::FileId) -> Result<Self> {
        let meta_file = setsig_pagestore::PagedFile::open(Arc::clone(&io), meta);
        let blob = meta_file.read_blob()?;
        if blob.len() != 16 || &blob[..4] != b"NIXW" {
            return Err(Error::BadConfig("not a nested-index meta blob".into()));
        }
        let tree_meta =
            setsig_pagestore::FileId::from_raw(u32::from_le_bytes(blob[4..8].try_into().unwrap()));
        let indexed = u64::from_le_bytes(blob[8..16].try_into().unwrap());
        let tree = BTree::open(io, tree_meta)?;
        Ok(Nix {
            tree,
            indexed,
            meta_file: Some(meta_file),
            obs: None,
        })
    }
}

#[cfg(test)]
mod meta_tests {
    use super::*;

    #[test]
    fn nix_reopens_from_saved_image() {
        let dir = std::env::temp_dir().join(format!("setsig-nix-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.img");

        let disk = Arc::new(Disk::new());
        let mut nix = Nix::create(Arc::clone(&disk), "h");
        // Enough keys to force splits, so root/height survive reopen.
        for i in 0..2000u64 {
            nix.insert(
                Oid::new(i),
                &[ElementKey::from(i % 300), ElementKey::from(i)],
            )
            .unwrap();
        }
        let meta = nix.sync_meta().unwrap();
        disk.save_to(&path).unwrap();

        let loaded = Arc::new(Disk::load_from(&path).unwrap());
        let io: Arc<dyn PageIo> = Arc::clone(&loaded) as Arc<dyn PageIo>;
        let mut reopened = Nix::open(io, meta).unwrap();
        assert_eq!(reopened.indexed_count(), 2000);
        assert_eq!(reopened.tree().key_count(), nix.tree().key_count());
        let q = SetQuery::contains(ElementKey::from(42u64));
        let mut expected = nix.candidates(&q).unwrap();
        let got = reopened.candidates(&q).unwrap();
        expected.oids.sort_unstable();
        assert_eq!(got, expected);
        reopened.tree().check_integrity().unwrap();
        // Further inserts keep working (splits included).
        for i in 2000..2300u64 {
            reopened
                .insert(Oid::new(i), &[ElementKey::from(i)])
                .unwrap();
        }
        reopened.tree().check_integrity().unwrap();

        std::fs::remove_dir_all(&dir).ok();
    }
}
