//! # setsig-nix — the nested index baseline
//!
//! The paper's comparison point: **NIX**, the nested index of Bertino & Kim
//! (1989), "an index mechanism based on the B-tree" whose leaf entries pair
//! a key value with *the list of OIDs of all objects holding that key in the
//! indexed set attribute* (§4.3). For the sample queries it is built on the
//! path `Student.hobbies.hobby`: leaf entries look like
//! `["Baseball", {s1, s2}]`.
//!
//! This crate implements NIX for real on the accounting page store:
//!
//! * [`BTree`] — a page-oriented B-tree with 8-byte keys, variable-length
//!   posting lists in slotted leaf pages, page splits, and overflow chains
//!   for postings too large to share a leaf,
//! * [`Nix`] — the [`SetAccessFacility`](setsig_core::SetAccessFacility)
//!   wrapper implementing the paper's retrieval schemes: OID-list
//!   **intersection** for `T ⊇ Q` (exact, no false drops) and **union** for
//!   `T ⊆ Q` (candidates that must be verified), plus the §5.1.3 smart
//!   strategy (intersect only `j` arbitrary elements, verify the rest at
//!   drop-resolution time).
//!
//! Keys are the [`ElementKey::digest8`](setsig_core::ElementKey::digest8)
//! of set elements — 8 bytes, the paper's `kl` — so integer/OID domains
//! index exactly and string domains index via a 64-bit hash.
//!
//! ```
//! use setsig_nix::Nix;
//! use setsig_core::{ElementKey, Oid, SetAccessFacility, SetQuery};
//! use setsig_pagestore::Disk;
//! use std::sync::Arc;
//!
//! let disk = Arc::new(Disk::new());
//! let mut nix = Nix::create(disk, "hobbies");
//! nix.insert(Oid::new(1), &[ElementKey::from("Baseball"), ElementKey::from("Fishing")]).unwrap();
//! nix.insert(Oid::new(2), &[ElementKey::from("Tennis")]).unwrap();
//!
//! let q = SetQuery::has_subset(vec![ElementKey::from("Baseball")]);
//! let c = nix.candidates(&q).unwrap();
//! assert_eq!(c.oids, vec![Oid::new(1)]);
//! assert!(c.exact, "intersection proves T ⊇ Q — no false drops");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod btree;
mod index;
mod node;

pub use btree::BTree;
pub use index::Nix;
