//! A page-oriented B-tree mapping 8-byte keys to posting lists of OIDs.

use setsig_core::{Error, Result};
use setsig_pagestore::{Page, PageIo, PagedFile};
use std::sync::Arc;

use crate::node::{
    page_type, Internal, Leaf, LeafEntry, Overflow, MAX_INLINE_OIDS, MAX_INTERNAL_KEYS, NO_PAGE,
    TYPE_INTERNAL, TYPE_LEAF,
};

/// A B-tree whose leaf entries are `(key, OID list)` postings — the storage
/// structure of the nested index.
///
/// Structure-modifying operations split leaves and internal nodes upward;
/// postings larger than [`MAX_INLINE_OIDS`] move to overflow chains.
/// Deletion removes OIDs (and empty entries) but never merges pages — the
/// paper's update model likewise ignores structural shrinkage.
pub struct BTree {
    file: PagedFile,
    root: u32,
    /// Internal levels above the leaves (0 = the root is a leaf).
    height: u32,
    key_count: u64,
    posting_count: u64,
    /// Catalog checkpoint file; created lazily by [`BTree::sync_meta`].
    meta_file: Option<PagedFile>,
}

impl BTree {
    /// Creates an empty tree in a new file named `name` on `io`.
    pub fn create(io: Arc<dyn PageIo>, name: &str) -> Self {
        let file = PagedFile::create(io, name);
        let mut page = Page::zeroed();
        Leaf::init(&mut page);
        let root = file.append(&page).expect("fresh file append");
        BTree {
            file,
            root,
            height: 0,
            key_count: 0,
            posting_count: 0,
            meta_file: None,
        }
    }

    /// Checkpoints the tree's catalog state (root, height, counters, file
    /// binding) into its meta file, creating it on first use. Returns the
    /// meta file id to hand to [`BTree::open`].
    pub fn sync_meta(&mut self) -> Result<setsig_pagestore::FileId> {
        let meta = match &self.meta_file {
            Some(f) => f.clone(),
            None => {
                let f = PagedFile::create(Arc::clone(self.file.io()), "btree.meta");
                self.meta_file = Some(f.clone());
                f
            }
        };
        let mut blob = Vec::with_capacity(4 + 4 + 4 + 4 + 8 + 8);
        blob.extend_from_slice(b"NIX1");
        blob.extend_from_slice(&self.file.id().raw().to_le_bytes());
        blob.extend_from_slice(&self.root.to_le_bytes());
        blob.extend_from_slice(&self.height.to_le_bytes());
        blob.extend_from_slice(&self.key_count.to_le_bytes());
        blob.extend_from_slice(&self.posting_count.to_le_bytes());
        meta.write_blob(&blob)?;
        Ok(meta.id())
    }

    /// Reopens a tree from the meta file written by [`BTree::sync_meta`].
    pub fn open(io: Arc<dyn PageIo>, meta: setsig_pagestore::FileId) -> Result<Self> {
        let meta_file = PagedFile::open(Arc::clone(&io), meta);
        let blob = meta_file.read_blob()?;
        if blob.len() != 32 || &blob[..4] != b"NIX1" {
            return Err(Error::BadConfig("not a B-tree meta blob".into()));
        }
        let rd_u32 = |o: usize| u32::from_le_bytes(blob[o..o + 4].try_into().unwrap());
        let rd_u64 = |o: usize| u64::from_le_bytes(blob[o..o + 8].try_into().unwrap());
        Ok(BTree {
            file: PagedFile::open(io, setsig_pagestore::FileId::from_raw(rd_u32(4))),
            root: rd_u32(8),
            height: rd_u32(12),
            key_count: rd_u64(16),
            posting_count: rd_u64(24),
            meta_file: Some(meta_file),
        })
    }

    /// The page I/O backend the tree lives on.
    pub fn file_io(&self) -> &Arc<dyn PageIo> {
        self.file.io()
    }

    /// Number of distinct keys.
    pub fn key_count(&self) -> u64 {
        self.key_count
    }

    /// Total `(key, oid)` postings.
    pub fn posting_count(&self) -> u64 {
        self.posting_count
    }

    /// Internal levels above the leaves.
    pub fn height(&self) -> u32 {
        self.height
    }

    /// Pages occupied by the index file (leaves + internals + overflow).
    pub fn storage_pages(&self) -> Result<u64> {
        Ok(self.file.len()? as u64)
    }

    /// Per-key look-up cost in page reads: root-to-leaf path length. (The
    /// paper's `rc`, excluding overflow chain links.)
    pub fn rc_lookup(&self) -> u32 {
        self.height + 1
    }

    /// Walks from the root to the leaf responsible for `key`, returning the
    /// internal path (for split propagation), the leaf page number, and the
    /// leaf page itself (so callers don't pay a second read).
    fn descend(&self, key: u64) -> Result<(Vec<u32>, u32, Page)> {
        let mut path = Vec::with_capacity(self.height as usize);
        let mut page_no = self.root;
        loop {
            let page = self.file.read(page_no)?;
            match page_type(&page) {
                TYPE_LEAF => return Ok((path, page_no, page)),
                TYPE_INTERNAL => {
                    path.push(page_no);
                    let child = Internal::child(&page, Internal::child_for(&page, key));
                    page_no = child;
                }
                other => {
                    return Err(Error::BadConfig(format!(
                        "page {page_no} has unexpected type {other} on descent"
                    )))
                }
            }
        }
    }

    /// Adds `oid` to the posting list of `key`.
    pub fn insert(&mut self, key: u64, oid: u64) -> Result<()> {
        let (path, leaf_no, page) = self.descend(key)?;
        if let Some((sep, new_page)) = self.insert_into_leaf(leaf_no, page, key, oid)? {
            self.propagate_split(path, sep, new_page)?;
        }
        self.posting_count += 1;
        Ok(())
    }

    fn insert_into_leaf(
        &mut self,
        leaf_no: u32,
        mut page: Page,
        key: u64,
        oid: u64,
    ) -> Result<Option<(u64, u32)>> {
        match Leaf::search(&page, key) {
            Ok(slot) => match Leaf::entry_at(&page, slot) {
                LeafEntry::Overflow {
                    key,
                    chain_head,
                    total,
                } => {
                    let new_head = self.push_overflow(chain_head, oid)?;
                    let stub = LeafEntry::Overflow {
                        key,
                        chain_head: new_head,
                        total: total + 1,
                    };
                    // Stub is fixed-size: always fits in place.
                    assert!(Leaf::replace_entry(&mut page, slot, &stub));
                    self.file.write(leaf_no, &page)?;
                    Ok(None)
                }
                LeafEntry::Inline { key, mut oids } => {
                    if oids.len() + 1 > MAX_INLINE_OIDS {
                        // Migrate the posting to an overflow chain.
                        oids.push(oid);
                        let total = oids.len() as u32;
                        let chain_head = self.build_chain(&oids)?;
                        let stub = LeafEntry::Overflow {
                            key,
                            chain_head,
                            total,
                        };
                        assert!(Leaf::replace_entry(&mut page, slot, &stub));
                        self.file.write(leaf_no, &page)?;
                        return Ok(None);
                    }
                    oids.push(oid);
                    let entry = LeafEntry::Inline { key, oids };
                    if Leaf::replace_entry(&mut page, slot, &entry) {
                        self.file.write(leaf_no, &page)?;
                        return Ok(None);
                    }
                    // No heap room: compact, then retry or split.
                    let mut entries = Leaf::entries(&page);
                    entries[slot] = entry;
                    self.place_or_split(leaf_no, page, entries)
                }
            },
            Err(pos) => {
                self.key_count += 1;
                let entry = LeafEntry::Inline {
                    key,
                    oids: vec![oid],
                };
                if Leaf::free_space(&page) >= entry.encoded_len() + 4 {
                    Leaf::insert_entry(&mut page, pos, &entry);
                    self.file.write(leaf_no, &page)?;
                    return Ok(None);
                }
                let mut entries = Leaf::entries(&page);
                entries.insert(pos, entry);
                self.place_or_split(leaf_no, page, entries)
            }
        }
    }

    /// Rebuilds `entries` into the leaf if they fit, otherwise splits them
    /// across the leaf and a new right sibling.
    fn place_or_split(
        &mut self,
        leaf_no: u32,
        mut page: Page,
        entries: Vec<LeafEntry>,
    ) -> Result<Option<(u64, u32)>> {
        let total: usize = entries.iter().map(|e| e.encoded_len() + 4).sum();
        if total <= setsig_pagestore::PAGE_SIZE - 8 {
            Leaf::rebuild(&mut page, &entries);
            self.file.write(leaf_no, &page)?;
            return Ok(None);
        }
        // Split at the byte midpoint.
        let mut acc = 0usize;
        let mut cut = entries.len() - 1;
        for (i, e) in entries.iter().enumerate() {
            acc += e.encoded_len() + 4;
            if acc > total / 2 {
                cut = (i + 1).min(entries.len() - 1).max(1);
                break;
            }
        }
        let (left, right) = entries.split_at(cut);
        Leaf::rebuild(&mut page, left);
        self.file.write(leaf_no, &page)?;
        let mut rpage = Page::zeroed();
        Leaf::rebuild(&mut rpage, right);
        let new_page = self.file.append(&rpage)?;
        Ok(Some((right[0].key(), new_page)))
    }

    /// Inserts separator keys up the path after a child split; grows a new
    /// root if the old root split.
    fn propagate_split(
        &mut self,
        mut path: Vec<u32>,
        mut sep: u64,
        mut new_child: u32,
    ) -> Result<()> {
        while let Some(node_no) = path.pop() {
            let mut page = self.file.read(node_no)?;
            let pos = Internal::child_for(&page, sep);
            if Internal::count(&page) < MAX_INTERNAL_KEYS {
                Internal::insert_at(&mut page, pos, sep, new_child);
                self.file.write(node_no, &page)?;
                return Ok(());
            }
            // Full: split this internal node, then insert into the proper
            // half before propagating the median upward.
            let (median, rkeys, rchildren) = Internal::split(&mut page);
            let mut rpage = Page::zeroed();
            Internal::build(&mut rpage, &rkeys, &rchildren);
            if sep < median {
                let pos = Internal::child_for(&page, sep);
                Internal::insert_at(&mut page, pos, sep, new_child);
            } else {
                let pos = Internal::child_for(&rpage, sep);
                Internal::insert_at(&mut rpage, pos, sep, new_child);
            }
            self.file.write(node_no, &page)?;
            let right_no = self.file.append(&rpage)?;
            sep = median;
            new_child = right_no;
        }
        // The root itself split: grow the tree.
        let mut root = Page::zeroed();
        Internal::init(&mut root, self.root);
        Internal::insert_at(&mut root, 0, sep, new_child);
        self.root = self.file.append(&root)?;
        self.height += 1;
        Ok(())
    }

    /// Prepends `oid` to the chain starting at `head`; returns the (possibly
    /// new) head page.
    fn push_overflow(&mut self, head: u32, oid: u64) -> Result<u32> {
        let mut page = self.file.read(head)?;
        if Overflow::push(&mut page, oid) {
            self.file.write(head, &page)?;
            return Ok(head);
        }
        let mut link = Page::zeroed();
        Overflow::init(&mut link, head);
        assert!(Overflow::push(&mut link, oid));
        self.file.append(&link).map_err(Error::from)
    }

    /// Builds a fresh chain holding `oids`, returning its head page.
    fn build_chain(&mut self, oids: &[u64]) -> Result<u32> {
        let mut head = NO_PAGE;
        for chunk in oids.chunks(crate::node::OVERFLOW_CAPACITY) {
            let mut link = Page::zeroed();
            Overflow::init(&mut link, head);
            for &oid in chunk {
                assert!(Overflow::push(&mut link, oid));
            }
            head = self.file.append(&link)?;
        }
        Ok(head)
    }

    /// The posting list of `key` (empty when absent). Costs
    /// `height + 1 (+ chain length)` page reads — the paper's `rc`.
    // HOT-PATH: nix.probe
    // COST: height + chain pages
    pub fn lookup(&self, key: u64) -> Result<Vec<u64>> {
        let (_, _leaf_no, page) = self.descend(key)?;
        match Leaf::search(&page, key) {
            Err(_) => Ok(Vec::new()),
            Ok(slot) => match Leaf::entry_at(&page, slot) {
                LeafEntry::Inline { oids, .. } => Ok(oids),
                LeafEntry::Overflow {
                    chain_head, total, ..
                } => {
                    let mut oids = Vec::with_capacity(total as usize);
                    let mut link = chain_head;
                    while link != NO_PAGE {
                        let page = self.file.read(link)?;
                        for i in 0..Overflow::count(&page) {
                            oids.push(Overflow::oid(&page, i));
                        }
                        link = Overflow::next(&page);
                    }
                    Ok(oids)
                }
            },
        }
    }

    /// Removes `oid` from `key`'s posting list. Returns whether it was
    /// present. Empty entries are removed; pages are never merged.
    pub fn remove(&mut self, key: u64, oid: u64) -> Result<bool> {
        let (_, leaf_no, mut page) = self.descend(key)?;
        let slot = match Leaf::search(&page, key) {
            Err(_) => return Ok(false),
            Ok(slot) => slot,
        };
        match Leaf::entry_at(&page, slot) {
            LeafEntry::Inline { key, mut oids } => {
                let Some(pos) = oids.iter().position(|&o| o == oid) else {
                    return Ok(false);
                };
                oids.remove(pos);
                if oids.is_empty() {
                    Leaf::remove_entry(&mut page, slot);
                    self.key_count -= 1;
                } else {
                    // Shrinking always fits in place.
                    assert!(Leaf::replace_entry(
                        &mut page,
                        slot,
                        &LeafEntry::Inline { key, oids }
                    ));
                }
                self.file.write(leaf_no, &page)?;
                self.posting_count -= 1;
                Ok(true)
            }
            LeafEntry::Overflow {
                key,
                chain_head,
                total,
            } => {
                let mut link = chain_head;
                while link != NO_PAGE {
                    let mut lp = self.file.read(link)?;
                    if let Some(i) =
                        (0..Overflow::count(&lp)).find(|&i| Overflow::oid(&lp, i) == oid)
                    {
                        Overflow::swap_remove(&mut lp, i);
                        self.file.write(link, &lp)?;
                        let stub = LeafEntry::Overflow {
                            key,
                            chain_head,
                            total: total - 1,
                        };
                        assert!(Leaf::replace_entry(&mut page, slot, &stub));
                        self.file.write(leaf_no, &page)?;
                        self.posting_count -= 1;
                        return Ok(true);
                    }
                    link = Overflow::next(&lp);
                }
                Ok(false)
            }
        }
    }

    /// Walks the whole tree validating structural invariants (sorted keys,
    /// consistent separators, posting counts). Test/debug helper; reads
    /// every page.
    pub fn check_integrity(&self) -> Result<()> {
        let mut keys = 0u64;
        let mut postings = 0u64;
        self.check_node(self.root, None, None, self.height, &mut keys, &mut postings)?;
        if keys != self.key_count {
            return Err(Error::BadConfig(format!(
                "key count drift: counted {keys}, tracked {}",
                self.key_count
            )));
        }
        if postings != self.posting_count {
            return Err(Error::BadConfig(format!(
                "posting count drift: counted {postings}, tracked {}",
                self.posting_count
            )));
        }
        Ok(())
    }

    fn check_node(
        &self,
        page_no: u32,
        lower: Option<u64>,
        upper: Option<u64>,
        depth_left: u32,
        keys: &mut u64,
        postings: &mut u64,
    ) -> Result<()> {
        let bad = |msg: String| Err(Error::BadConfig(msg));
        let page = self.file.read(page_no)?;
        match page_type(&page) {
            TYPE_LEAF => {
                if depth_left != 0 {
                    return bad(format!("leaf {page_no} at nonzero depth {depth_left}"));
                }
                let mut prev: Option<u64> = None;
                for i in 0..Leaf::count(&page) {
                    let k = Leaf::key_at(&page, i);
                    if let Some(p) = prev {
                        if p >= k {
                            return bad(format!("leaf {page_no} keys out of order"));
                        }
                    }
                    if lower.is_some_and(|l| k < l) || upper.is_some_and(|u| k >= u) {
                        return bad(format!("leaf {page_no} key {k} outside separators"));
                    }
                    prev = Some(k);
                    *keys += 1;
                    match Leaf::entry_at(&page, i) {
                        LeafEntry::Inline { oids, .. } => *postings += oids.len() as u64,
                        LeafEntry::Overflow {
                            chain_head, total, ..
                        } => {
                            let mut seen = 0u64;
                            let mut link = chain_head;
                            while link != NO_PAGE {
                                let lp = self.file.read(link)?;
                                seen += Overflow::count(&lp) as u64;
                                link = Overflow::next(&lp);
                            }
                            if seen != total as u64 {
                                return bad(format!(
                                    "chain of key {k}: stub says {total}, chain has {seen}"
                                ));
                            }
                            *postings += seen;
                        }
                    }
                }
                Ok(())
            }
            TYPE_INTERNAL => {
                if depth_left == 0 {
                    return bad(format!("internal {page_no} at leaf depth"));
                }
                let count = Internal::count(&page);
                let mut prev: Option<u64> = None;
                for i in 0..count {
                    let k = Internal::key(&page, i);
                    if let Some(p) = prev {
                        if p >= k {
                            return bad(format!("internal {page_no} keys out of order"));
                        }
                    }
                    prev = Some(k);
                }
                for i in 0..=count {
                    let lo = if i == 0 {
                        lower
                    } else {
                        Some(Internal::key(&page, i - 1))
                    };
                    let hi = if i == count {
                        upper
                    } else {
                        Some(Internal::key(&page, i))
                    };
                    self.check_node(
                        Internal::child(&page, i),
                        lo,
                        hi,
                        depth_left - 1,
                        keys,
                        postings,
                    )?;
                }
                Ok(())
            }
            other => bad(format!("page {page_no} has type {other} inside tree")),
        }
    }
}

impl std::fmt::Debug for BTree {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "BTree {{ keys: {}, postings: {}, height: {} }}",
            self.key_count, self.posting_count, self.height
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn tree() -> (Arc<Disk>, BTree) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        (disk, BTree::create(io, "nix"))
    }

    #[test]
    fn insert_and_lookup_single_key() {
        let (_d, mut t) = tree();
        t.insert(42, 100).unwrap();
        t.insert(42, 200).unwrap();
        assert_eq!(t.lookup(42).unwrap(), vec![100, 200]);
        assert_eq!(t.lookup(43).unwrap(), Vec::<u64>::new());
        assert_eq!(t.key_count(), 1);
        assert_eq!(t.posting_count(), 2);
        t.check_integrity().unwrap();
    }

    #[test]
    fn many_keys_split_leaves_and_grow_height() {
        let (_d, mut t) = tree();
        // 2000 keys × 3 OIDs: far beyond one leaf.
        for k in 0..2000u64 {
            for j in 0..3u64 {
                t.insert(k * 7, k * 10 + j).unwrap();
            }
        }
        assert!(t.height() >= 1, "tree should have grown");
        assert_eq!(t.key_count(), 2000);
        assert_eq!(t.posting_count(), 6000);
        for k in [0u64, 700, 6993, 13993] {
            let oids = t.lookup(k).unwrap();
            assert_eq!(oids.len(), 3, "key {k}");
        }
        t.check_integrity().unwrap();
    }

    #[test]
    fn reverse_and_random_orders_agree() {
        let (_d1, mut fwd) = tree();
        let (_d2, mut rev) = tree();
        let keys: Vec<u64> = (0..500).map(|i| i * 13 % 4099).collect();
        for &k in &keys {
            fwd.insert(k, k + 1).unwrap();
        }
        for &k in keys.iter().rev() {
            rev.insert(k, k + 1).unwrap();
        }
        for &k in &keys {
            assert_eq!(fwd.lookup(k).unwrap(), rev.lookup(k).unwrap());
        }
        fwd.check_integrity().unwrap();
        rev.check_integrity().unwrap();
    }

    #[test]
    fn long_posting_migrates_to_overflow_chain() {
        let (_d, mut t) = tree();
        let n = (MAX_INLINE_OIDS + 700) as u64; // spans ≥ 2 chain links
        for i in 0..n {
            t.insert(5, i).unwrap();
        }
        let mut oids = t.lookup(5).unwrap();
        oids.sort_unstable();
        assert_eq!(oids, (0..n).collect::<Vec<_>>());
        t.check_integrity().unwrap();
    }

    #[test]
    fn remove_from_inline_and_chain() {
        let (_d, mut t) = tree();
        t.insert(1, 10).unwrap();
        t.insert(1, 20).unwrap();
        assert!(t.remove(1, 10).unwrap());
        assert_eq!(t.lookup(1).unwrap(), vec![20]);
        assert!(!t.remove(1, 10).unwrap(), "already gone");
        assert!(t.remove(1, 20).unwrap());
        assert_eq!(t.lookup(1).unwrap(), Vec::<u64>::new());
        assert_eq!(t.key_count(), 0);

        // Chain removal.
        let n = (MAX_INLINE_OIDS + 100) as u64;
        for i in 0..n {
            t.insert(9, i).unwrap();
        }
        assert!(t.remove(9, 3).unwrap());
        assert!(!t.remove(9, n + 5).unwrap());
        let oids = t.lookup(9).unwrap();
        assert_eq!(oids.len() as u64, n - 1);
        assert!(!oids.contains(&3));
        t.check_integrity().unwrap();
    }

    #[test]
    fn remove_missing_key_is_false() {
        let (_d, mut t) = tree();
        t.insert(1, 10).unwrap();
        assert!(!t.remove(2, 10).unwrap());
        assert!(!t.remove(1, 99).unwrap());
    }

    #[test]
    fn lookup_cost_is_height_plus_one() {
        let (disk, mut t) = tree();
        for k in 0..5000u64 {
            t.insert(k, k).unwrap();
        }
        assert!(t.height() >= 1);
        disk.reset_stats();
        let _ = t.lookup(2500).unwrap();
        assert_eq!(disk.snapshot().reads as u32, t.rc_lookup());
    }

    #[test]
    fn paper_scale_leaf_count() {
        // V = 13,000 keys with d ≈ 25 OIDs each (the D_t = 10 workload):
        // entry ≈ 210 bytes → ≈ 19 entries/page → ≈ 700+ leaves, height 2
        // regime with fanout 300 → height stays small.
        let (_d, mut t) = tree();
        for k in 0..13_000u64 {
            for j in 0..25u64 {
                t.insert(k, k * 100 + j).unwrap();
            }
        }
        assert_eq!(t.key_count(), 13_000);
        // ~770 leaves / fanout 300 → 3 internal + root: height 2.
        assert_eq!(t.height(), 2);
        assert_eq!(t.rc_lookup(), 3, "the paper's rc = 3");
        t.check_integrity().unwrap();
    }
}
