//! Property tests: the page-oriented B-tree behaves exactly like a
//! `BTreeMap<u64, Vec<u64>>` under arbitrary interleavings of inserts,
//! removals and look-ups, and its structural invariants survive.

use proptest::prelude::*;
use setsig_nix::BTree;
use setsig_pagestore::{Disk, PageIo};
use std::collections::BTreeMap;
use std::sync::Arc;

#[derive(Debug, Clone)]
enum Op {
    Insert { key: u64, oid: u64 },
    Remove { key: u64, oid: u64 },
    Lookup { key: u64 },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    // A small key space forces long posting lists and leaf churn; a large
    // one forces splits. Mix both.
    let key = prop_oneof![0u64..8, 0u64..512];
    prop_oneof![
        4 => (key.clone(), 0u64..1000).prop_map(|(key, oid)| Op::Insert { key, oid }),
        2 => (key.clone(), 0u64..1000).prop_map(|(key, oid)| Op::Remove { key, oid }),
        1 => key.prop_map(|key| Op::Lookup { key }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn btree_matches_btreemap_model(ops in proptest::collection::vec(op_strategy(), 1..400)) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = disk as Arc<dyn PageIo>;
        let mut tree = BTree::create(io, "t");
        let mut model: BTreeMap<u64, Vec<u64>> = BTreeMap::new();

        for op in ops {
            match op {
                Op::Insert { key, oid } => {
                    tree.insert(key, oid).unwrap();
                    model.entry(key).or_default().push(oid);
                }
                Op::Remove { key, oid } => {
                    let expected = model.get(&key).is_some_and(|v| v.contains(&oid));
                    let got = tree.remove(key, oid).unwrap();
                    prop_assert_eq!(got, expected, "remove({}, {})", key, oid);
                    if expected {
                        let list = model.get_mut(&key).unwrap();
                        let pos = list.iter().position(|&o| o == oid).unwrap();
                        list.remove(pos);
                        if list.is_empty() {
                            model.remove(&key);
                        }
                    }
                }
                Op::Lookup { key } => {
                    let mut got = tree.lookup(key).unwrap();
                    got.sort_unstable();
                    let mut expected = model.get(&key).cloned().unwrap_or_default();
                    expected.sort_unstable();
                    prop_assert_eq!(got, expected, "lookup({})", key);
                }
            }
        }

        prop_assert_eq!(tree.key_count(), model.len() as u64);
        prop_assert_eq!(
            tree.posting_count(),
            model.values().map(|v| v.len() as u64).sum::<u64>()
        );
        tree.check_integrity().unwrap();

        // Final sweep: every key answers exactly.
        for (key, expected) in &model {
            let mut got = tree.lookup(*key).unwrap();
            got.sort_unstable();
            let mut want = expected.clone();
            want.sort_unstable();
            prop_assert_eq!(got, want);
        }
    }

    /// Bulk insertion in any order produces equivalent trees.
    #[test]
    fn insertion_order_is_immaterial(
        mut pairs in proptest::collection::btree_set((0u64..2000, 0u64..50), 1..300)
            .prop_map(|s| s.into_iter().collect::<Vec<_>>()),
        seed in any::<u64>(),
    ) {
        let build = |pairs: &[(u64, u64)]| {
            let disk = Arc::new(Disk::new());
            let io: Arc<dyn PageIo> = disk as Arc<dyn PageIo>;
            let mut tree = BTree::create(io, "t");
            for &(k, o) in pairs {
                tree.insert(k, o).unwrap();
            }
            tree
        };
        let fwd = build(&pairs);
        // Deterministic shuffle.
        let mut x = seed | 1;
        let len = pairs.len();
        for i in (1..len).rev() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            pairs.swap(i, (x % (i as u64 + 1)) as usize);
        }
        let shuffled = build(&pairs);
        prop_assert_eq!(fwd.key_count(), shuffled.key_count());
        for &(k, _) in &pairs {
            let mut a = fwd.lookup(k).unwrap();
            let mut b = shuffled.lookup(k).unwrap();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
        fwd.check_integrity().unwrap();
        shuffled.check_integrity().unwrap();
    }
}
