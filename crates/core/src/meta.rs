//! Catalog checkpoints: serializing facility metadata to a meta file.
//!
//! The paper's cost model has no catalog — facility state (entry counts,
//! file bindings, design parameters) lives in memory. To make facilities
//! *reopenable* across process lifetimes (see the `persistence` example),
//! each facility can checkpoint its state into a one-blob meta file with
//! `sync_meta()` and be reconstructed with `open()`. Checkpoints are
//! explicit, so the per-operation page costs stay exactly the paper's.

use setsig_pagestore::{FileId, PageIo, PagedFile};
use std::sync::Arc;

use crate::error::{Error, Result};

/// A little-endian byte writer for metadata blobs.
pub(crate) struct MetaWriter {
    buf: Vec<u8>,
}

impl MetaWriter {
    pub(crate) fn new(magic: &[u8; 4]) -> Self {
        MetaWriter {
            buf: magic.to_vec(),
        }
    }

    pub(crate) fn u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    pub(crate) fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// The matching reader; all methods fail with a catalog error on underrun.
pub(crate) struct MetaReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> MetaReader<'a> {
    pub(crate) fn new(buf: &'a [u8], magic: &[u8; 4]) -> Result<Self> {
        if buf.len() < 4 || &buf[..4] != magic {
            return Err(Error::BadConfig(format!(
                "meta blob has wrong magic (expected {:?})",
                std::str::from_utf8(magic).unwrap_or("?")
            )));
        }
        Ok(MetaReader { buf, pos: 4 })
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self.pos + n;
        let slice = self
            .buf
            .get(self.pos..end)
            .ok_or_else(|| Error::BadConfig("truncated meta blob".into()))?;
        self.pos = end;
        Ok(slice)
    }

    pub(crate) fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    pub(crate) fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    pub(crate) fn done(&self) -> Result<()> {
        if self.pos != self.buf.len() {
            return Err(Error::BadConfig("trailing bytes in meta blob".into()));
        }
        Ok(())
    }
}

/// Writes a meta blob into `meta` (creating the file when `meta` is
/// `None`), returning the meta file.
pub(crate) fn checkpoint(
    io: &Arc<dyn PageIo>,
    meta: &mut Option<PagedFile>,
    name: &str,
    blob: &[u8],
) -> Result<FileId> {
    let file = match meta {
        Some(f) => f.clone(),
        None => {
            let f = PagedFile::create(Arc::clone(io), &format!("{name}.meta"));
            *meta = Some(f.clone());
            f
        }
    };
    file.write_blob(blob)?;
    Ok(file.id())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = MetaWriter::new(b"TST1");
        w.u32(7);
        w.u64(1 << 40);
        let blob = w.finish();
        let mut r = MetaReader::new(&blob, b"TST1").unwrap();
        assert_eq!(r.u32().unwrap(), 7);
        assert_eq!(r.u64().unwrap(), 1 << 40);
        r.done().unwrap();
    }

    #[test]
    fn wrong_magic_and_truncation_rejected() {
        let mut w = MetaWriter::new(b"TST1");
        w.u32(7);
        let blob = w.finish();
        assert!(MetaReader::new(&blob, b"OTHR").is_err());
        let mut r = MetaReader::new(&blob, b"TST1").unwrap();
        assert!(r.u64().is_err());
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = MetaWriter::new(b"TST1");
        w.u32(7);
        w.u32(8);
        let blob = w.finish();
        let mut r = MetaReader::new(&blob, b"TST1").unwrap();
        let _ = r.u32().unwrap();
        assert!(r.done().is_err());
    }
}
