//! # setsig-core — signature files as set access facilities
//!
//! This crate implements the primary contribution of Ishikawa, Kitagawa &
//! Ohbo, *"Evaluation of Signature Files as Set Access Facilities in OODBs"*
//! (SIGMOD 1993): superimposed-coding signature files adapted from text
//! retrieval to accelerate **set predicates** over set-valued attributes of
//! complex objects.
//!
//! ## The idea
//!
//! Every element of a set attribute value is hashed to an **element
//! signature**: an `F`-bit pattern with exactly `m` bits set. OR-ing the
//! element signatures of a set yields its **set signature**. A query set is
//! encoded the same way, and a cheap bitwise test on signatures filters the
//! database down to *drops* — candidates that may satisfy the predicate:
//!
//! * `T ⊇ Q` (`has-subset`): every query-signature bit must be set in the
//!   target signature,
//! * `T ⊆ Q` (`in-subset`): every target-signature bit must be set in the
//!   query signature.
//!
//! Hash collisions make the filter one-sided: it never misses a qualifying
//! object, but it admits **false drops** that must be resolved by fetching
//! the object and re-checking the predicate exactly.
//!
//! ## What is here
//!
//! * [`Bitmap`], [`Signature`], [`SignatureConfig`] — the coding layer,
//! * [`SetQuery`] / [`SetPredicate`] — the five set operators (⊇, ⊆, =,
//!   overlap, ∈) with their signature match rules,
//! * [`Ssf`] — the *sequential signature file* organization,
//! * [`Bssf`] — the *bit-sliced signature file* organization, including the
//!   paper's "smart object retrieval" strategies (§5.1.3, §5.2.2),
//! * [`OidFile`] — the positional OID file shared by both organizations,
//! * [`SetAccessFacility`] — the common interface also implemented by the
//!   nested index in `setsig-nix`,
//! * [`resolve_drops`] — false-drop resolution against any
//!   [`TargetSetSource`] (e.g. the object store in `setsig-oodb`).
//!
//! Everything runs on the accounting disk of `setsig-pagestore`, so each
//! query's cost in *page accesses* — the paper's metric — is measurable.
//!
//! ```
//! use setsig_core::{Bssf, SignatureConfig, SetAccessFacility, SetQuery, ElementKey, Oid};
//! use setsig_pagestore::Disk;
//! use std::sync::Arc;
//!
//! let disk = Arc::new(Disk::new());
//! let cfg = SignatureConfig::new(64, 2).unwrap();
//! let mut bssf = Bssf::create(disk, "hobbies", cfg).unwrap();
//!
//! let set = |elems: &[&str]| elems.iter().map(ElementKey::from).collect::<Vec<_>>();
//! bssf.insert(Oid::new(1), &set(&["Baseball", "Fishing"])).unwrap();
//! bssf.insert(Oid::new(2), &set(&["Tennis"])).unwrap();
//!
//! let q = SetQuery::has_subset(set(&["Baseball"]));
//! let drops = bssf.candidates(&q).unwrap();
//! assert!(drops.oids.contains(&Oid::new(1)));
//! ```

// `deny` rather than `forbid`: this crate owns the hot bitmap/scan kernels,
// where a future SIMD or scatter-gather path may need a scoped,
// SAFETY-commented `unsafe` block (which `forbid` could not re-allow).
#![deny(unsafe_code)]
#![warn(missing_docs)]

mod bitmap;
mod bssf;
mod config;
mod drops;
mod element;
mod error;
mod facility;
mod fssf;
mod hash;
pub mod kernel;
mod meta;
mod oid;
mod oidfile;
mod qtrace;
mod query;
mod signature;
mod ssf;

pub use bitmap::{iter_ones_bytes, Bitmap};
pub use bssf::Bssf;
pub use config::SignatureConfig;
pub use drops::{resolve_drops, verify_predicate, DropReport, ElementSet, TargetSetSource};
pub use element::ElementKey;
pub use error::{Error, Result};
pub use facility::{CandidateSet, ScanStats, SetAccessFacility};
pub use fssf::{Fssf, FssfConfig};
pub use hash::{element_hash, ElementHasher};
pub use oid::{Oid, OidAllocator};
pub use oidfile::{OidFile, OIDS_PER_PAGE, OID_ENTRY_BYTES};
pub use query::{SetPredicate, SetQuery};
pub use signature::Signature;
pub use ssf::Ssf;
