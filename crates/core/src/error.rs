//! Error type for the signature-file layer.

/// Errors raised by signature files and their supporting structures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Error {
    /// A [`SignatureConfig`](crate::SignatureConfig) was invalid (e.g.
    /// `m = 0` or `m > F`).
    BadConfig(String),
    /// A query was malformed for the operation (e.g. an empty query set for
    /// a predicate that requires elements).
    BadQuery(String),
    /// A signature of the wrong width was supplied.
    WidthMismatch {
        /// Width the structure expects.
        expected: u32,
        /// Width that was supplied.
        got: u32,
    },
    /// The referenced entry position does not exist.
    NoSuchEntry(u64),
    /// The OID was not found (e.g. deleting a value that was never inserted).
    OidNotFound(crate::Oid),
    /// An on-disk structure is inconsistent with the catalog state (e.g. a
    /// frame file shorter than the indexed row count requires). Scans must
    /// refuse to run rather than silently return a partial answer.
    Corrupted(String),
    /// An error from the underlying page store.
    Storage(setsig_pagestore::Error),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::BadConfig(msg) => write!(f, "bad signature configuration: {msg}"),
            Error::BadQuery(msg) => write!(f, "bad query: {msg}"),
            Error::WidthMismatch { expected, got } => {
                write!(
                    f,
                    "signature width mismatch: expected {expected} bits, got {got}"
                )
            }
            Error::NoSuchEntry(pos) => write!(f, "no entry at position {pos}"),
            Error::OidNotFound(oid) => write!(f, "oid {oid:?} not found"),
            Error::Corrupted(msg) => write!(f, "corrupted structure: {msg}"),
            Error::Storage(e) => write!(f, "storage error: {e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<setsig_pagestore::Error> for Error {
    fn from(e: setsig_pagestore::Error) -> Self {
        Error::Storage(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, Error>;
