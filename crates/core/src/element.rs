//! Canonical byte representation of set elements.

use crate::oid::Oid;

/// A set element in canonical byte form.
///
/// Signature files index *sets of elements*; the elements may be strings
/// (the paper's `hobbies` attribute), OIDs (the `courses` attribute), or
/// integers (the synthetic workloads, where the domain is `0..V`). All are
/// reduced to a canonical byte string so hashing, sorting and exact
/// verification are uniform:
///
/// * integers and OIDs → 8 bytes little-endian, tagged,
/// * strings / raw bytes → the bytes themselves, tagged.
///
/// The one-byte tag prevents cross-type collisions (the string `"\x01\0…"`
/// can never equal the integer 1).
#[derive(Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ElementKey(Vec<u8>);

const TAG_BYTES: u8 = 0;
const TAG_INT: u8 = 1;
const TAG_OID: u8 = 2;

impl ElementKey {
    /// Builds a key from raw bytes.
    pub fn from_bytes(bytes: &[u8]) -> Self {
        let mut v = Vec::with_capacity(bytes.len() + 1);
        v.push(TAG_BYTES);
        v.extend_from_slice(bytes);
        ElementKey(v)
    }

    /// The canonical bytes, including the type tag. This is what gets
    /// hashed into bit positions and compared during drop resolution.
    pub fn as_bytes(&self) -> &[u8] {
        &self.0
    }

    /// An 8-byte digest of the key, used by the nested index as its fixed-
    /// width B-tree key (the paper's `kl = 8` bytes, Table 4).
    ///
    /// For integer and OID elements the digest is the value itself, so the
    /// index is exact on the synthetic workloads; for strings it is a hash,
    /// making string-keyed NIX lookups exact up to 64-bit collisions.
    pub fn digest8(&self) -> u64 {
        match self.0.first() {
            Some(&TAG_INT) | Some(&TAG_OID) => {
                let mut b = [0u8; 8];
                b.copy_from_slice(&self.0[1..9]);
                u64::from_le_bytes(b)
            }
            _ => crate::hash::element_hash(&self.0, 0x6e1_57ed),
        }
    }
}

impl From<&str> for ElementKey {
    fn from(s: &str) -> Self {
        ElementKey::from_bytes(s.as_bytes())
    }
}

impl From<&&str> for ElementKey {
    fn from(s: &&str) -> Self {
        ElementKey::from_bytes(s.as_bytes())
    }
}

impl From<String> for ElementKey {
    fn from(s: String) -> Self {
        ElementKey::from_bytes(s.as_bytes())
    }
}

impl From<u64> for ElementKey {
    fn from(v: u64) -> Self {
        let mut bytes = Vec::with_capacity(9);
        bytes.push(TAG_INT);
        bytes.extend_from_slice(&v.to_le_bytes());
        ElementKey(bytes)
    }
}

impl From<Oid> for ElementKey {
    fn from(oid: Oid) -> Self {
        let mut bytes = Vec::with_capacity(9);
        bytes.push(TAG_OID);
        bytes.extend_from_slice(&oid.raw().to_le_bytes());
        ElementKey(bytes)
    }
}

impl std::fmt::Debug for ElementKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.0.split_first() {
            Some((&TAG_BYTES, rest)) => match std::str::from_utf8(rest) {
                Ok(s) => write!(f, "Elem({s:?})"),
                Err(_) => write!(f, "Elem({} bytes)", rest.len()),
            },
            Some((&TAG_INT, rest)) => {
                let mut b = [0u8; 8];
                b.copy_from_slice(rest);
                write!(f, "Elem({})", u64::from_le_bytes(b))
            }
            Some((&TAG_OID, rest)) => {
                let mut b = [0u8; 8];
                b.copy_from_slice(rest);
                write!(f, "Elem(oid:{})", u64::from_le_bytes(b))
            }
            _ => write!(f, "Elem(<empty>)"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cross_type_keys_never_collide() {
        let s = ElementKey::from_bytes(&1u64.to_le_bytes());
        let i = ElementKey::from(1u64);
        let o = ElementKey::from(Oid::new(1));
        assert_ne!(s, i);
        assert_ne!(i, o);
        assert_ne!(s, o);
    }

    #[test]
    fn string_conversions_agree() {
        let a = ElementKey::from("Baseball");
        let b = ElementKey::from(String::from("Baseball"));
        let c = ElementKey::from_bytes(b"Baseball");
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn digest8_is_identity_for_ints_and_oids() {
        assert_eq!(ElementKey::from(12345u64).digest8(), 12345);
        assert_eq!(ElementKey::from(Oid::new(7)).digest8(), 7);
    }

    #[test]
    fn digest8_for_strings_is_stable_and_spread() {
        let a = ElementKey::from("Baseball").digest8();
        let b = ElementKey::from("Baseball").digest8();
        let c = ElementKey::from("Fishing").digest8();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            ElementKey::from(2u64),
            ElementKey::from("a"),
            ElementKey::from(1u64),
        ];
        v.sort();
        v.dedup();
        assert_eq!(v.len(), 3);
    }

    #[test]
    fn debug_renders_readably() {
        assert_eq!(format!("{:?}", ElementKey::from("x")), "Elem(\"x\")");
        assert_eq!(format!("{:?}", ElementKey::from(3u64)), "Elem(3)");
        assert_eq!(
            format!("{:?}", ElementKey::from(Oid::new(3))),
            "Elem(oid:3)"
        );
    }
}
