//! The bit-sliced signature file (BSSF) organization.
//!
//! BSSF stores signatures **column-wise** (§3.1, Figure 3): one file per bit
//! position, `F` files in total. Bit `j` of the signature at position `p`
//! lives at bit `p mod (P·b)` of page `p / (P·b)` in slice file `j`, so each
//! slice occupies `⌈N/(P·b)⌉` pages — one page for the paper's `N = 32,000`.
//!
//! Retrieval touches only the slices the query signature implies:
//!
//! * `T ⊇ Q` — read the `m_q` slices where the query signature has `1`,
//!   AND them; rows still set are drops (§4.2).
//! * `T ⊆ Q` — read the `F − m_q` slices where the query signature has `0`,
//!   OR them; rows still clear are drops.
//!
//! That asymmetry — cost `∝ m_q` for ⊇, `∝ F − m_q` for ⊆ — is the engine
//! behind every BSSF result in the paper, including the advantage of a
//! small `m` and the "smart" strategies of §5.1.3/§5.2.2, both implemented
//! here ([`Bssf::candidates_superset_smart`], [`Bssf::candidates_subset_smart`]).
//!
//! Insertion is BSSF's weakness: the paper charges the worst case `F + 1`
//! accesses (every slice file plus the OID file). [`Bssf::insert`] does
//! exactly that; [`Bssf::insert_sparse`] and [`Bssf::bulk_load`] implement
//! the improvements §6 anticipates.

use setsig_pagestore::{BufferPool, Page, PageIo, PagedFile, PAGE_SIZE};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use crate::bitmap::Bitmap;
use crate::config::SignatureConfig;
use crate::element::ElementKey;
use crate::error::{Error, Result};
use crate::facility::{CandidateSet, ScanCounters, ScanStats, SetAccessFacility};
use crate::kernel;
use crate::oid::Oid;
use crate::oidfile::OidFile;
use crate::qtrace::{QueryObs, QueryOutcome};
use crate::query::{SetPredicate, SetQuery};
use crate::signature::Signature;

/// Rows (signature positions) per slice page: `P·b` bits.
const ROWS_PER_PAGE: u64 = (PAGE_SIZE * 8) as u64;

/// A bit-sliced signature file with its companion OID file.
pub struct Bssf {
    cfg: SignatureConfig,
    slices: Vec<PagedFile>,
    oid_file: OidFile,
    /// Catalog checkpoint file; created lazily by [`Bssf::sync_meta`].
    meta_file: Option<PagedFile>,
    /// Worker threads for slice scans; `1` runs the serial protocol inline.
    threads: usize,
    /// The buffer pool slice reads are routed through when built via
    /// [`Bssf::create_cached`].
    pool: Option<Arc<BufferPool>>,
    /// Observability recorder; `None` (the default) keeps the query path
    /// free of any clock or metrics work.
    obs: Option<Arc<setsig_obs::Recorder>>,
}

impl Bssf {
    /// Creates an empty BSSF named `name` (slice files `<name>.s<j>`, OID
    /// file `<name>.oid`) on `io`.
    pub fn create(io: Arc<dyn PageIo>, name: &str, cfg: SignatureConfig) -> Result<Self> {
        let slices = (0..cfg.f_bits())
            .map(|j| PagedFile::create(Arc::clone(&io), &format!("{name}.s{j}")))
            .collect();
        Ok(Bssf {
            cfg,
            slices,
            oid_file: OidFile::create(io, &format!("{name}.oid")),
            meta_file: None,
            threads: 1,
            pool: None,
            obs: None,
        })
    }

    /// Creates an empty BSSF whose slice and OID reads are routed through a
    /// fresh [`BufferPool`] of `pool_pages` frames over `disk`, so hot slice
    /// pages are served from memory on re-query. Writes go through the pool
    /// write-through, keeping the disk authoritative.
    pub fn create_cached(
        disk: Arc<setsig_pagestore::Disk>,
        name: &str,
        cfg: SignatureConfig,
        pool_pages: usize,
    ) -> Result<Self> {
        Self::create_tiered(disk, name, cfg, pool_pages, 0)
    }

    /// Like [`Bssf::create_cached`], with a pinned in-RAM tier of up to
    /// `pinned_pages` pages above the LRU pool (see
    /// [`BufferPool::with_pinned`]); `0` disables the tier. Hot slice
    /// pages — re-read by every query that touches their bit position —
    /// are admitted on their second access and never evicted after.
    pub fn create_tiered(
        disk: Arc<setsig_pagestore::Disk>,
        name: &str,
        cfg: SignatureConfig,
        pool_pages: usize,
        pinned_pages: usize,
    ) -> Result<Self> {
        let pool = Arc::new(BufferPool::with_pinned(disk, pool_pages, pinned_pages));
        let io: Arc<dyn PageIo> = Arc::clone(&pool) as Arc<dyn PageIo>;
        let mut bssf = Self::create(io, name, cfg)?;
        bssf.pool = Some(pool);
        Ok(bssf)
    }

    /// Sets the number of worker threads for slice scans. `1` (the default)
    /// runs the paper's serial protocol inline; higher values fan slice
    /// fetches across scoped threads. Candidate sets and *logical* page
    /// counts are identical either way.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Current worker-thread count for slice scans.
    pub fn parallelism(&self) -> usize {
        self.threads
    }

    /// The buffer pool reads are routed through, when built via
    /// [`Bssf::create_cached`].
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Attaches (or with `None`, detaches) an observability recorder.
    /// Attached, every `candidates*` call emits a
    /// [`QueryTrace`](setsig_obs::QueryTrace) and updates the `bssf.*`
    /// metrics; detached, the query path does no observability work at all.
    pub fn set_recorder(&mut self, rec: Option<Arc<setsig_obs::Recorder>>) {
        self.obs = rec;
    }

    /// The signature design parameters.
    pub fn config(&self) -> &SignatureConfig {
        &self.cfg
    }

    /// The companion OID file.
    pub fn oid_file(&self) -> &OidFile {
        &self.oid_file
    }

    /// Pages per slice file: `⌈n/(P·b)⌉` for `n` entries.
    pub fn pages_per_slice(&self) -> u64 {
        self.oid_file.len().div_ceil(ROWS_PER_PAGE)
    }

    fn row_page(pos: u64) -> (u32, usize) {
        ((pos / ROWS_PER_PAGE) as u32, (pos % ROWS_PER_PAGE) as usize)
    }

    /// Indexes `sig` for `oid` the paper's way: touches **every** slice
    /// file plus the OID file — `F + 1` page writes (`UC_I = F + 1`).
    pub fn insert_signature(&mut self, oid: Oid, sig: &Signature) -> Result<u64> {
        self.check_width(sig)?;
        let pos = self.oid_file.len();
        let (page_no, bit) = Self::row_page(pos);
        for (j, slice) in self.slices.iter().enumerate() {
            let set = sig.bitmap().get(j as u32);
            Self::write_row_bits(slice, page_no, &[(bit, set)])?;
        }
        let opos = self.oid_file.append(oid)?;
        debug_assert_eq!(opos, pos);
        Ok(pos)
    }

    /// Applies `(bit, value)` updates to one slice page with exactly one
    /// write when the page exists; otherwise zero-fills the gap and
    /// appends a staged page (one write plus any gap pages).
    fn write_row_bits(slice: &PagedFile, page_no: u32, bits: &[(usize, bool)]) -> Result<()> {
        if slice.len()? > page_no {
            slice.update(page_no, |page| {
                for &(b, v) in bits {
                    page.set_bit(b, v);
                }
            })?;
            Ok(())
        } else {
            slice.extend_to(page_no)?;
            let mut page = Page::zeroed();
            for &(b, v) in bits {
                page.set_bit(b, v);
            }
            let appended = slice.append(&page)?;
            debug_assert_eq!(appended, page_no);
            Ok(())
        }
    }

    /// Indexes `sig` touching only the slices whose bit is `1` — about
    /// `m_t + 1` writes instead of `F + 1` (the improvement §6 anticipates).
    ///
    /// Slice files are extended lazily; a query reading a slice page that
    /// was never written treats it as zeros without charging an access.
    pub fn insert_signature_sparse(&mut self, oid: Oid, sig: &Signature) -> Result<u64> {
        self.check_width(sig)?;
        let pos = self.oid_file.len();
        let (page_no, bit) = Self::row_page(pos);
        for j in sig.bitmap().iter_ones() {
            Self::write_row_bits(&self.slices[j as usize], page_no, &[(bit, true)])?;
        }
        let opos = self.oid_file.append(oid)?;
        debug_assert_eq!(opos, pos);
        Ok(pos)
    }

    /// Builds the BSSF from scratch in one pass, writing every slice page
    /// and OID page exactly once: `F·⌈n/(P·b)⌉ + ⌈n/O_p⌉` writes total.
    ///
    /// Fails if the file already contains entries (bulk load is a
    /// build-time operation).
    pub fn bulk_load(&mut self, items: &[(Oid, Vec<ElementKey>)]) -> Result<()> {
        if !self.oid_file.is_empty() {
            return Err(Error::BadConfig("bulk_load requires an empty BSSF".into()));
        }
        let n = items.len() as u64;
        let npages = n.div_ceil(ROWS_PER_PAGE) as u32;
        let f = self.cfg.f_bits() as usize;
        // Stage all slice pages in memory: F × npages × 4 KiB.
        let mut staged: Vec<Vec<Page>> = (0..f)
            .map(|_| (0..npages).map(|_| Page::zeroed()).collect())
            .collect();
        let mut oids = Vec::with_capacity(items.len());
        for (i, (oid, set)) in items.iter().enumerate() {
            let sig = Signature::for_set(&self.cfg, set);
            let (page_no, bit) = Self::row_page(i as u64);
            for j in sig.bitmap().iter_ones() {
                staged[j as usize][page_no as usize].set_bit(bit, true);
            }
            oids.push(*oid);
        }
        for (j, pages) in staged.into_iter().enumerate() {
            for page in &pages {
                self.slices[j].append(page)?;
            }
        }
        self.oid_file.bulk_append(&oids)?;
        Ok(())
    }

    fn check_width(&self, sig: &Signature) -> Result<()> {
        if sig.f_bits() != self.cfg.f_bits() {
            return Err(Error::WidthMismatch {
                expected: self.cfg.f_bits(),
                got: sig.f_bits(),
            });
        }
        Ok(())
    }

    /// Reads slice `j`'s rows into `buf`, resized (reusing its capacity)
    /// to the packed length `⌈n/8⌉`, charging one read per materialized
    /// page, and returns the page count. Pages past the end of a sparsely
    /// built slice are known-zero from file metadata and cost nothing.
    ///
    /// The serial scan loops call this with one hoisted buffer so the AND/
    /// OR kernels run allocation-free after the first slice.
    // COST: pages_per_slice pages
    fn read_slice_into(&self, j: u32, buf: &mut Vec<u8>) -> Result<u64> {
        let n = self.oid_file.len();
        let slice = &self.slices[j as usize];
        let have = slice.len()?;
        let nbytes = (n as usize).div_ceil(8);
        // The buffer is reused across slices of different materialized
        // lengths: clear it and append page bytes in order, then resize to
        // the packed length so the sparse tail is zero-filled and a shorter
        // read can never expose stale bytes from a longer predecessor.
        buf.clear();
        let npages = (n.div_ceil(ROWS_PER_PAGE) as u32).min(have);
        for p in 0..npages {
            // A slice page holds PAGE_SIZE·8 rows, so page p's bits start
            // at byte p·PAGE_SIZE of the row buffer — a straight copy.
            let start = p as usize * PAGE_SIZE;
            let take = (nbytes - start).min(PAGE_SIZE);
            slice.read(p).map(|page| {
                buf.extend_from_slice(&page.as_bytes()[..take]);
            })?;
        }
        debug_assert!(buf.len() <= nbytes);
        buf.resize(nbytes, 0);
        Ok(npages as u64)
    }

    /// Owned-buffer variant of [`read_slice_into`](Bssf::read_slice_into),
    /// for the parallel pipeline where each fetched slice must outlive its
    /// worker.
    // COST: pages_per_slice pages
    fn read_slice_bytes(&self, j: u32) -> Result<(Vec<u8>, u64)> {
        let mut buf = Vec::new();
        let np = self.read_slice_into(j, &mut buf)?;
        Ok((buf, np))
    }

    /// Reads slice `j` as a row bitmap of length `n` (the current entry
    /// count).
    fn read_slice_rows(&self, j: u32) -> Result<Bitmap> {
        let n = self.oid_file.len();
        let (buf, _) = self.read_slice_bytes(j)?;
        Ok(Bitmap::from_bytes(n as u32, &buf))
    }

    /// `T ⊇ Q` scan (§4.2): AND of the slices at the query signature's
    /// 1-positions, optionally restricted to the first `max_slices` of them
    /// (the smart strategy caps this via a reduced query signature).
    ///
    /// The AND runs word-at-a-time straight off the page bytes
    /// ([`Bitmap::and_assign_bytes`]), and stops as soon as the running
    /// candidate bitmap is empty — no later slice can revive a row.
    // HOT-PATH: bssf.and_loop
    // COST: slices * pages_per_slice pages
    fn superset_positions(&self, query_sig: &Signature, ctr: &ScanCounters) -> Result<Vec<u64>> {
        let n = self.oid_file.len();
        let ones: Vec<u32> = query_sig.bitmap().iter_ones().collect();
        if ones.is_empty() {
            // Empty query set: everything is a superset.
            return Ok((0..n).collect());
        }
        if self.threads > 1 && ones.len() > 1 {
            return self.superset_positions_parallel(&ones, n, ctr);
        }
        let mut bytes = Vec::new();
        let np = self.read_slice_into(ones[0], &mut bytes)?;
        ctr.charge_both(np);
        ctr.note_slices(1);
        let mut acc = Bitmap::from_bytes(n as u32, &bytes);
        // The AND kernel reports liveness as it combines, so each following
        // iteration needs no separate emptiness pass over the words.
        let mut alive = !acc.is_zero();
        for &j in &ones[1..] {
            if !alive {
                ctr.mark_early_exit();
                break;
            }
            let np = self.read_slice_into(j, &mut bytes)?;
            ctr.charge_both(np);
            ctr.note_slices(1);
            alive = acc.and_assign_bytes_alive(&bytes);
        }
        Ok(acc.iter_ones().map(u64::from).collect())
    }

    /// The parallel `T ⊇ Q` engine: a bounded-prefetch pipeline.
    ///
    /// Workers fetch slices ahead of the combiner, but never more than
    /// `window = 2·threads` slices past its commit frontier, so the
    /// physical overshoot past the serial early-exit point is bounded. The
    /// combiner (this thread) consumes fetched slices **in serial order**,
    /// ANDs them word-at-a-time, and stops at exactly the slice where the
    /// serial protocol would stop — charging the same logical pages and
    /// producing the same candidate bitmap. Speculative fetches beyond the
    /// stop point count only as physical pages.
    // HOT-PATH: bssf.and_pipeline
    // COST: slices * pages_per_slice pages
    fn superset_positions_parallel(
        &self,
        ones: &[u32],
        n: u64,
        ctr: &ScanCounters,
    ) -> Result<Vec<u64>> {
        /// A fetched slice's bytes plus the pages read to get them.
        type SliceFetch = Result<(Vec<u8>, u64)>;
        let threads = self.threads.min(ones.len());
        let window = threads * 2;
        struct Shared {
            fetched: Vec<Option<SliceFetch>>,
            /// Next slice index a worker will claim.
            next: usize,
            /// The combiner's consume frontier; workers stay within
            /// `committed + window`.
            committed: usize,
            stop: bool,
        }
        // Lock discipline: `shared` is the pipeline's only lock, and every
        // I/O call (`read_slice_bytes`, which takes the pool and/or disk
        // mutexes) happens with it RELEASED — workers claim an index under
        // the lock, drop it, fetch, then re-lock to publish. The engine
        // lock therefore never nests around the storage locks. std::sync
        // (not parking_lot) because the pipeline needs a Condvar; the
        // poisoning unwraps are justified in xtask's panics.allow.
        // LOCK-ORDER: core.bssf_pipeline leaf
        let shared = Mutex::new(Shared {
            fetched: (0..ones.len()).map(|_| None).collect(),
            next: 0,
            committed: 0,
            stop: false,
        });
        let work = Condvar::new();
        let data = Condvar::new();
        let acc = std::thread::scope(|s| -> Result<Bitmap> {
            // Each spawned worker claims disjoint slice indices off the
            // shared queue (`g.next`), so the spawn loop partitions the
            // slice reads across workers instead of repeating them.
            // COST-SPLIT: slices
            for _ in 0..threads {
                s.spawn(|| loop {
                    let idx = {
                        let mut g = shared.lock().unwrap();
                        loop {
                            if g.stop || g.next >= ones.len() {
                                return;
                            }
                            if g.next < g.committed + window {
                                break;
                            }
                            g = work.wait(g).unwrap();
                        }
                        let idx = g.next;
                        g.next += 1;
                        idx
                    };
                    let res = self.read_slice_bytes(ones[idx]);
                    if let Ok((_, np)) = &res {
                        // ATOMIC: Relaxed — physical charge read after the
                        // scope joins every fetch worker.
                        ctr.physical.fetch_add(*np, Ordering::Relaxed);
                    }
                    let mut g = shared.lock().unwrap();
                    g.fetched[idx] = Some(res);
                    data.notify_all();
                });
            }
            let mut acc: Option<Bitmap> = None;
            for k in 0..ones.len() {
                let res = {
                    let mut g = shared.lock().unwrap();
                    loop {
                        if let Some(r) = g.fetched[k].take() {
                            break r;
                        }
                        g = data.wait(g).unwrap();
                    }
                };
                let (bytes, np) = match res {
                    Ok(v) => v,
                    Err(e) => {
                        let mut g = shared.lock().unwrap();
                        g.stop = true;
                        work.notify_all();
                        return Err(e);
                    }
                };
                // ATOMIC: Relaxed — logical charge; the consumer thread owns
                // the total after the scope ends.
                ctr.logical.fetch_add(np, Ordering::Relaxed);
                ctr.note_slices(1);
                let empty = match &mut acc {
                    None => {
                        let first = Bitmap::from_bytes(n as u32, &bytes);
                        let z = first.is_zero();
                        acc = Some(first);
                        z
                    }
                    Some(a) => !a.and_assign_bytes_alive(&bytes),
                };
                let mut g = shared.lock().unwrap();
                g.committed = k + 1;
                if empty {
                    g.stop = true;
                    if k + 1 < ones.len() {
                        ctr.mark_early_exit();
                    }
                    work.notify_all();
                    break;
                }
                work.notify_all();
            }
            Ok(acc.expect("ones is nonempty"))
        })?;
        Ok(acc.iter_ones().map(u64::from).collect())
    }

    /// `T ⊆ Q` scan (§4.2): OR of the slices at the query signature's
    /// 0-positions; drops are the rows left clear. `slice_cap` limits how
    /// many zero-slices are read (`F − m_s` of them under the §5.2.2 smart
    /// strategy); `None` reads all `F − m_q`.
    ///
    /// There is no early exit (a row cleared now can only stay clear), so
    /// the parallel path lets workers pull slices from a shared queue into
    /// per-worker accumulators and ORs those together at the join — every
    /// slice is read exactly once, logical == physical, order irrelevant.
    // COST: slices * pages_per_slice pages
    fn subset_positions(
        &self,
        query_sig: &Signature,
        slice_cap: Option<usize>,
        ctr: &ScanCounters,
    ) -> Result<Vec<u64>> {
        let n = self.oid_file.len();
        let zeros: Vec<u32> = query_sig.bitmap().iter_zeros().collect();
        let take = slice_cap.unwrap_or(zeros.len()).min(zeros.len());
        if take < zeros.len() {
            // The smart cap stops the scan before all F − m_q zero-slices.
            ctr.mark_early_exit();
        }
        let zeros = &zeros[..take];
        ctr.note_slices(zeros.len() as u64);
        let acc = if self.threads > 1 && zeros.len() > 1 {
            let threads = self.threads.min(zeros.len());
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| -> Result<Bitmap> {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| -> Result<(Bitmap, u64)> {
                            let mut local = Bitmap::zeroed(n as u32);
                            let mut bytes = Vec::new();
                            let mut pages = 0u64;
                            loop {
                                // ATOMIC: Relaxed — unique work tickets via
                                // the RMW; slice bytes travel through the
                                // reader, not this counter.
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= zeros.len() {
                                    break;
                                }
                                pages += self.read_slice_into(zeros[i], &mut bytes)?;
                                local.or_assign_bytes(&bytes);
                            }
                            Ok((local, pages))
                        })
                    })
                    .collect();
                let mut acc = Bitmap::zeroed(n as u32);
                for h in handles {
                    let (local, pages) = h.join().expect("slice worker panicked")?;
                    ctr.charge_both(pages);
                    acc.or_assign(&local);
                }
                Ok(acc)
            })?
        } else {
            let mut acc = Bitmap::zeroed(n as u32);
            let mut bytes = Vec::new();
            for &j in zeros {
                let np = self.read_slice_into(j, &mut bytes)?;
                ctr.charge_both(np);
                acc.or_assign_bytes(&bytes);
            }
            acc
        };
        Ok((0..n).filter(|&p| !acc.get(p as u32)).collect())
    }

    /// Set-equality scan: rows where every 1-slice is set and every 0-slice
    /// is clear. Reads all `F` slices.
    fn equals_positions(&self, query_sig: &Signature, ctr: &ScanCounters) -> Result<Vec<u64>> {
        let sup = self.superset_positions(query_sig, ctr)?;
        let sub: std::collections::BTreeSet<u64> = self
            .subset_positions(query_sig, None, ctr)?
            .into_iter()
            .collect();
        Ok(sup.into_iter().filter(|p| sub.contains(p)).collect())
    }

    /// Overlap scan: rows sharing at least `m` set bits with the query
    /// signature. Reads the `m_q` 1-slices and counts per row.
    ///
    /// Like the subset scan there is no early exit, so the parallel path
    /// accumulates per-worker count vectors and sums them at the join.
    // COST: slices * pages_per_slice pages
    fn overlap_positions(&self, query_sig: &Signature, ctr: &ScanCounters) -> Result<Vec<u64>> {
        let n = self.oid_file.len() as usize;
        let ones: Vec<u32> = query_sig.bitmap().iter_ones().collect();
        ctr.note_slices(ones.len() as u64);
        // Counts are u32, not u16: a row can match up to m_q ≤ F slices and
        // F is a u32, so u16 counts wrapped (and `m_weight() as u16`
        // truncated the threshold) for high-weight signatures — see
        // `overlap_filter_survives_u16_boundary`.
        let counts = if self.threads > 1 && ones.len() > 1 {
            let threads = self.threads.min(ones.len());
            let next = AtomicUsize::new(0);
            std::thread::scope(|s| -> Result<Vec<u32>> {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        s.spawn(|| -> Result<(Vec<u32>, u64)> {
                            let mut local = vec![0u32; n];
                            let mut bytes = Vec::new();
                            let mut pages = 0u64;
                            loop {
                                // ATOMIC: Relaxed — same unique-ticket RMW
                                // as the subset scan above.
                                let i = next.fetch_add(1, Ordering::Relaxed);
                                if i >= ones.len() {
                                    break;
                                }
                                pages += self.read_slice_into(ones[i], &mut bytes)?;
                                kernel::accumulate_ones(&mut local, &bytes);
                            }
                            Ok((local, pages))
                        })
                    })
                    .collect();
                let mut counts = vec![0u32; n];
                for h in handles {
                    let (local, pages) = h.join().expect("slice worker panicked")?;
                    ctr.charge_both(pages);
                    for (c, l) in counts.iter_mut().zip(&local) {
                        *c += l;
                    }
                }
                Ok(counts)
            })?
        } else {
            let mut counts = vec![0u32; n];
            let mut bytes = Vec::new();
            for &j in &ones {
                let np = self.read_slice_into(j, &mut bytes)?;
                ctr.charge_both(np);
                kernel::accumulate_ones(&mut counts, &bytes);
            }
            counts
        };
        Ok(Self::overlap_filter(&counts, self.cfg.m_weight()))
    }

    /// Rows whose overlap count reaches the threshold `m`, ascending. The
    /// threshold stays `u32` end-to-end — the old `m as u16` truncation made
    /// a threshold of e.g. 70,000 admit rows with only 4,464 overlaps.
    fn overlap_filter(counts: &[u32], m: u32) -> Vec<u64> {
        counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c >= m)
            .map(|(p, _)| p as u64)
            .collect()
    }

    fn positions_for(
        &self,
        query: &SetQuery,
        query_sig: &Signature,
        ctr: &ScanCounters,
    ) -> Result<Vec<u64>> {
        match query.predicate {
            SetPredicate::HasSubset | SetPredicate::Contains => {
                self.superset_positions(query_sig, ctr)
            }
            SetPredicate::InSubset => self.subset_positions(query_sig, None, ctr),
            SetPredicate::Equals => self.equals_positions(query_sig, ctr),
            SetPredicate::Overlaps => self.overlap_positions(query_sig, ctr),
        }
    }

    // COST: oid_pages pages
    fn resolve(&self, positions: Vec<u64>, ctr: &ScanCounters) -> Result<CandidateSet> {
        // The OID look-up is part of the filtering stage's protocol charge
        // (the paper's LC_OID); it is never speculative or parallel.
        ctr.charge_both(OidFile::pages_touched(&positions));
        let resolved = self.oid_file.lookup_positions(&positions)?;
        Ok(CandidateSet::new(
            resolved.into_iter().map(|(_, oid)| oid).collect(),
            false,
        ))
    }

    /// The §5.1.3 smart strategy for `T ⊇ Q`: form the query signature from
    /// at most `max_elems` (arbitrary — we take the first) elements of the
    /// query set, bounding the slice reads at `≈ max_elems · m` while the
    /// final qualification still uses the full predicate at drop-resolution
    /// time.
    pub fn candidates_superset_smart(
        &self,
        query: &SetQuery,
        max_elems: usize,
    ) -> Result<(CandidateSet, ScanStats)> {
        if query.predicate != SetPredicate::HasSubset {
            return Err(Error::BadQuery(
                "smart superset strategy requires T ⊇ Q".into(),
            ));
        }
        let obs = QueryObs::start(&self.obs, || self.cache_stats());
        let ctr = ScanCounters::default();
        let take = query.elements.len().min(max_elems.max(1));
        if take < query.elements.len() {
            ctr.mark_early_exit();
        }
        let reduced = Signature::for_set(&self.cfg, &query.elements[..take]);
        let positions = self.superset_positions(&reduced, &ctr)?;
        let set = self.resolve(positions, &ctr)?;
        let stats = ctr.stats();
        if let Some(o) = obs {
            o.finish(query, self.outcome(Some("smart"), &ctr, &set));
        }
        Ok((set, stats))
    }

    /// The §5.2.2 smart strategy for `T ⊆ Q`: read only `max_slices` of the
    /// query signature's 0-slices (chosen arbitrarily — we take the lowest
    /// positions). Appendix C's `D_q^opt` determines the cap that minimizes
    /// total cost; `setsig-costmodel` computes it.
    pub fn candidates_subset_smart(
        &self,
        query: &SetQuery,
        max_slices: usize,
    ) -> Result<(CandidateSet, ScanStats)> {
        if query.predicate != SetPredicate::InSubset {
            return Err(Error::BadQuery(
                "smart subset strategy requires T ⊆ Q".into(),
            ));
        }
        let obs = QueryObs::start(&self.obs, || self.cache_stats());
        let ctr = ScanCounters::default();
        let query_sig = query.signature(&self.cfg);
        let positions = self.subset_positions(&query_sig, Some(max_slices), &ctr)?;
        let set = self.resolve(positions, &ctr)?;
        let stats = ctr.stats();
        if let Some(o) = obs {
            o.finish(query, self.outcome(Some("smart"), &ctr, &set));
        }
        Ok((set, stats))
    }

    /// Assembles the trace fields only the facility knows, for
    /// [`QueryObs::finish`].
    fn outcome<'a>(
        &self,
        strategy: Option<&'static str>,
        ctr: &'a ScanCounters,
        set: &'a CandidateSet,
    ) -> QueryOutcome<'a> {
        QueryOutcome {
            facility: "bssf",
            strategy,
            geometry: Some((self.cfg.f_bits(), self.cfg.m_weight())),
            ctr: Some(ctr),
            track_slices: true,
            set,
            cache_after: self.cache_stats(),
        }
    }
}

impl SetAccessFacility for Bssf {
    fn name(&self) -> &'static str {
        "BSSF"
    }

    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        let sig = Signature::for_set(&self.cfg, set);
        self.insert_signature(oid, &sig)?;
        Ok(())
    }

    fn delete(&mut self, oid: Oid, _set: &[ElementKey]) -> Result<()> {
        // Like SSF: tombstone in the OID file only (§4.2); stale slice bits
        // are filtered at OID look-up time.
        self.oid_file.delete_by_oid(oid)?;
        Ok(())
    }

    // COST: slices * pages_per_slice + oid_pages pages
    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)> {
        let obs = QueryObs::start(&self.obs, || self.cache_stats());
        let ctr = ScanCounters::default();
        let query_sig = query.signature(&self.cfg);
        let positions = self.positions_for(query, &query_sig, &ctr)?;
        let set = self.resolve(positions, &ctr)?;
        let stats = ctr.stats();
        if let Some(o) = obs {
            o.finish(query, self.outcome(None, &ctr, &set));
        }
        Ok((set, Some(stats)))
    }

    fn indexed_count(&self) -> u64 {
        self.oid_file.live_count()
    }

    fn storage_pages(&self) -> Result<u64> {
        let mut total = self.oid_file.storage_pages()? as u64;
        for s in &self.slices {
            total += s.len()? as u64;
        }
        Ok(total)
    }

    fn cache_stats(&self) -> Option<setsig_pagestore::CacheStats> {
        self.pool.as_ref().map(|p| p.stats())
    }
}

impl std::fmt::Debug for Bssf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Bssf {{ F: {}, m: {}, entries: {} }}",
            self.cfg.f_bits(),
            self.cfg.m_weight(),
            self.oid_file.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn bssf(f_bits: u32, m: u32) -> (Arc<Disk>, Bssf) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let cfg = SignatureConfig::new(f_bits, m).unwrap();
        (disk.clone(), Bssf::create(io, "test", cfg).unwrap())
    }

    fn keys(elems: &[&str]) -> Vec<ElementKey> {
        elems.iter().map(ElementKey::from).collect()
    }

    #[test]
    fn superset_query_finds_matches() {
        let (_d, mut b) = bssf(64, 2);
        b.insert(Oid::new(1), &keys(&["Baseball", "Fishing"]))
            .unwrap();
        b.insert(Oid::new(2), &keys(&["Tennis"])).unwrap();
        b.insert(Oid::new(3), &keys(&["Baseball", "Golf", "Fishing"]))
            .unwrap();

        let q = SetQuery::has_subset(keys(&["Baseball", "Fishing"]));
        let c = b.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(1)));
        assert!(c.oids.contains(&Oid::new(3)));
    }

    #[test]
    fn subset_query_finds_contained_sets() {
        let (_d, mut b) = bssf(128, 2);
        b.insert(Oid::new(1), &keys(&["Baseball"])).unwrap();
        b.insert(Oid::new(2), &keys(&["Baseball", "Football"]))
            .unwrap();
        b.insert(Oid::new(3), &keys(&["Chess", "Go", "Shogi", "Backgammon"]))
            .unwrap();

        let q = SetQuery::in_subset(keys(&["Baseball", "Football", "Tennis"]));
        let c = b.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(1)));
        assert!(c.oids.contains(&Oid::new(2)));
    }

    #[test]
    fn insert_touches_every_slice_plus_oid_file() {
        let (disk, mut b) = bssf(64, 2);
        b.insert(Oid::new(1), &keys(&["a"])).unwrap();
        disk.reset_stats();
        b.insert(Oid::new(2), &keys(&["b"])).unwrap();
        let s = disk.snapshot();
        // The paper's worst case: F slice writes + 1 OID write.
        assert_eq!((s.reads, s.writes), (0, 65));
    }

    #[test]
    fn sparse_insert_touches_only_set_slices() {
        let (disk, mut b) = bssf(64, 2);
        let sig = Signature::for_set(b.config(), &keys(&["a"]));
        let weight = sig.weight() as u64;
        b.insert_signature_sparse(Oid::new(1), &sig).unwrap();
        // First insert extends the touched slices (1 extend-write + 1
        // update each) + 1 OID write.
        disk.reset_stats();
        let sig2 = Signature::for_set(b.config(), &keys(&["a2"]));
        let w2 = sig2.weight() as u64;
        b.insert_signature_sparse(Oid::new(2), &sig2).unwrap();
        let s = disk.snapshot();
        assert!(
            s.writes <= 2 * w2 + 1,
            "sparse insert wrote {} pages for weight {w2}",
            s.writes
        );
        let _ = weight;
    }

    #[test]
    fn sparse_and_dense_inserts_answer_identically() {
        let (_d1, mut dense) = bssf(64, 2);
        let (_d2, mut sparse) = bssf(64, 2);
        let sets: Vec<Vec<ElementKey>> = (0..50u64)
            .map(|i| (0..4).map(|j| ElementKey::from(i * 13 + j)).collect())
            .collect();
        for (i, set) in sets.iter().enumerate() {
            let sig = Signature::for_set(dense.config(), set);
            dense.insert_signature(Oid::new(i as u64), &sig).unwrap();
            sparse
                .insert_signature_sparse(Oid::new(i as u64), &sig)
                .unwrap();
        }
        for probe in [0u64, 7, 23, 49] {
            let q = SetQuery::has_subset(vec![ElementKey::from(probe * 13)]);
            assert_eq!(
                dense.candidates(&q).unwrap(),
                sparse.candidates(&q).unwrap(),
                "probe {probe}"
            );
        }
    }

    #[test]
    fn bulk_load_matches_incremental_build() {
        let items: Vec<(Oid, Vec<ElementKey>)> = (0..200u64)
            .map(|i| {
                (
                    Oid::new(i),
                    (0..3).map(|j| ElementKey::from(i * 7 + j)).collect(),
                )
            })
            .collect();
        let (_d1, mut inc) = bssf(128, 2);
        for (oid, set) in &items {
            inc.insert(*oid, set).unwrap();
        }
        let (disk2, mut bulk) = bssf(128, 2);
        bulk.bulk_load(&items).unwrap();
        // Bulk load writes each slice page once + the OID pages once.
        assert_eq!(disk2.snapshot().writes, 128 + 1);
        for probe in [0u64, 42, 199] {
            let q = SetQuery::has_subset(vec![ElementKey::from(probe * 7 + 1)]);
            assert_eq!(inc.candidates(&q).unwrap(), bulk.candidates(&q).unwrap());
        }
    }

    #[test]
    fn bulk_load_rejects_nonempty() {
        let (_d, mut b) = bssf(64, 2);
        b.insert(Oid::new(1), &keys(&["x"])).unwrap();
        assert!(b.bulk_load(&[(Oid::new(2), keys(&["y"]))]).is_err());
    }

    #[test]
    fn superset_scan_reads_m_q_slices() {
        let (disk, mut b) = bssf(64, 2);
        for i in 0..10u64 {
            b.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::has_subset(vec![ElementKey::from(3u64)]);
        let qsig = q.signature(b.config());
        disk.reset_stats();
        let c = b.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(3)));
        // m_q slice pages (1 page each) + 1 OID page. Early-exit may read
        // fewer slices if the accumulator empties, but a match exists so
        // all are read.
        let s = disk.snapshot();
        assert_eq!(s.reads, qsig.weight() as u64 + 1);
    }

    #[test]
    fn subset_scan_reads_f_minus_m_q_slices() {
        let (disk, mut b) = bssf(64, 2);
        for i in 0..10u64 {
            b.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::in_subset(vec![ElementKey::from(3u64), ElementKey::from(4u64)]);
        let qsig = q.signature(b.config());
        disk.reset_stats();
        let c = b.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(3)));
        assert!(c.oids.contains(&Oid::new(4)));
        let s = disk.snapshot();
        let zero_slices = 64 - qsig.weight() as u64;
        assert_eq!(s.reads, zero_slices + 1);
    }

    #[test]
    fn equals_and_overlap_predicates() {
        let (_d, mut b) = bssf(128, 3);
        b.insert(Oid::new(1), &keys(&["a", "b"])).unwrap();
        b.insert(Oid::new(2), &keys(&["a", "c"])).unwrap();
        b.insert(Oid::new(3), &keys(&["x", "y"])).unwrap();

        let qe = SetQuery::equals(keys(&["b", "a"]));
        let c = b.candidates(&qe).unwrap();
        assert!(c.oids.contains(&Oid::new(1)));
        assert!(!c.oids.contains(&Oid::new(3)));

        let qo = SetQuery::overlaps(keys(&["c", "z"]));
        let c = b.candidates(&qo).unwrap();
        assert!(c.oids.contains(&Oid::new(2)));
        assert!(!c.oids.contains(&Oid::new(3)));
    }

    #[test]
    fn smart_superset_caps_slice_reads() {
        let (disk, mut b) = bssf(64, 2);
        for i in 0..20u64 {
            let set: Vec<ElementKey> = (0..5).map(|j| ElementKey::from(i * 11 + j)).collect();
            b.insert(Oid::new(i), &set).unwrap();
        }
        // Query with 5 elements, smart cap at 2: at most 2·m slices read.
        let q = SetQuery::has_subset((0..5).map(|j| ElementKey::from(7u64 * 11 + j)).collect());
        disk.reset_stats();
        let (c, stats) = b.candidates_superset_smart(&q, 2).unwrap();
        assert!(c.oids.contains(&Oid::new(7)));
        let s = disk.snapshot();
        assert!(s.reads <= 2 * 2 + 1, "smart read {} pages", s.reads);
        assert_eq!(s.reads, stats.logical_pages);
    }

    #[test]
    fn smart_subset_caps_slice_reads() {
        let (disk, mut b) = bssf(64, 2);
        for i in 0..20u64 {
            b.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::in_subset(vec![ElementKey::from(3u64)]);
        disk.reset_stats();
        let (c, stats) = b.candidates_subset_smart(&q, 10).unwrap();
        // Sound: the true match is still a drop.
        assert!(c.oids.contains(&Oid::new(3)));
        let s = disk.snapshot();
        assert!(s.reads <= 10 + 1, "smart read {} pages", s.reads);
        assert_eq!(s.reads, stats.logical_pages);
    }

    #[test]
    fn smart_strategies_reject_wrong_predicate() {
        let (_d, b) = bssf(64, 2);
        let q_sub = SetQuery::in_subset(keys(&["a"]));
        let q_sup = SetQuery::has_subset(keys(&["a"]));
        assert!(b.candidates_superset_smart(&q_sub, 2).is_err());
        assert!(b.candidates_subset_smart(&q_sup, 2).is_err());
    }

    #[test]
    fn deleted_entries_filtered() {
        let (_d, mut b) = bssf(64, 2);
        let set = keys(&["Baseball"]);
        b.insert(Oid::new(1), &set).unwrap();
        b.insert(Oid::new(2), &set).unwrap();
        b.delete(Oid::new(1), &set).unwrap();
        let q = SetQuery::has_subset(set);
        let c = b.candidates(&q).unwrap();
        assert!(!c.oids.contains(&Oid::new(1)));
        assert!(c.oids.contains(&Oid::new(2)));
    }

    #[test]
    fn empty_superset_query_matches_everything() {
        let (_d, mut b) = bssf(64, 2);
        for i in 0..5u64 {
            b.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::has_subset(vec![]);
        assert_eq!(b.candidates(&q).unwrap().len(), 5);
    }

    #[test]
    fn rows_spanning_multiple_pages() {
        // Force > 1 page per slice by inserting past ROWS_PER_PAGE rows...
        // that is 32768 inserts; instead bulk-load to keep the test fast.
        let n = ROWS_PER_PAGE + 100;
        let items: Vec<(Oid, Vec<ElementKey>)> = (0..n)
            .map(|i| (Oid::new(i), vec![ElementKey::from(i % 97)]))
            .collect();
        let (_d, mut b) = bssf(32, 1);
        b.bulk_load(&items).unwrap();
        assert_eq!(b.pages_per_slice(), 2);
        let q = SetQuery::has_subset(vec![ElementKey::from(42u64)]);
        let c = b.candidates(&q).unwrap();
        // Every row with i % 97 == 42 must be a drop, including those on
        // the second page.
        let expected = (0..n).filter(|i| i % 97 == 42).count();
        assert!(c.len() >= expected);
        assert!(c
            .oids
            .contains(&Oid::new(ROWS_PER_PAGE + 42 + 97 - (ROWS_PER_PAGE % 97))));
    }

    #[test]
    fn storage_pages_counts_slices_and_oids() {
        let (_d, mut b) = bssf(64, 2);
        for i in 0..10u64 {
            b.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        // 64 slices × 1 page + 1 OID page.
        assert_eq!(b.storage_pages().unwrap(), 65);
    }

    #[test]
    fn overlap_filter_survives_u16_boundary() {
        // Regression for the overlap-count truncation: the old code cast
        // the threshold with `m_weight() as u16` and kept counts in u16, so
        // m = 70,000 truncated to 4,464 and a count of 70,000 wrapped to
        // 4,464 — admitting row 1 below. The u32 path must admit row 0 only.
        let counts = [70_000u32, 4_464, 65_536];
        assert_eq!(Bssf::overlap_filter(&counts, 70_000), vec![0]);
        // Exactly at the old wrap point: 65,536 ≡ 0 (mod 2^16) used to
        // compare below any nonzero threshold.
        assert_eq!(Bssf::overlap_filter(&counts, 65_536), vec![0, 2]);
        assert_eq!(Bssf::overlap_filter(&counts, u32::MAX), Vec::<u64>::new());
    }

    #[test]
    fn read_slice_into_reuse_leaves_no_stale_tail() {
        // Sparse inserts materialize only the 1-slices, so slice files in
        // one BSSF have different lengths. Reading a short (or empty) slice
        // into a buffer that previously held a fully materialized one must
        // yield exactly the packed length with a zero tail — never stale
        // bytes from the longer predecessor.
        let (_d, mut b) = bssf(64, 2);
        for i in 0..100u64 {
            let sig = Signature::for_set(b.config(), &[ElementKey::from(i)]);
            b.insert_signature_sparse(Oid::new(i), &sig).unwrap();
        }
        let nbytes = 100usize.div_ceil(8);
        let long = (0..64)
            .find(|&j| b.slices[j as usize].len().unwrap() > 0)
            .expect("some slice is materialized");
        let empty = (0..64)
            .find(|&j| b.slices[j as usize].len().unwrap() == 0)
            .expect("some slice is empty");
        let mut buf = Vec::new();
        // Alternate long → empty → long; each read must stand alone.
        let np = b.read_slice_into(long, &mut buf).unwrap();
        assert_eq!((np, buf.len()), (1, nbytes));
        let populated = buf.clone();
        assert!(populated.iter().any(|&x| x != 0));
        let np = b.read_slice_into(empty, &mut buf).unwrap();
        assert_eq!((np, buf.len()), (0, nbytes));
        assert!(
            buf.iter().all(|&x| x == 0),
            "empty slice read must not expose stale bytes"
        );
        b.read_slice_into(long, &mut buf).unwrap();
        assert_eq!(buf, populated);
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn populated(f_bits: u32, m: u32, n: u64) -> (Arc<Disk>, Bssf) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let cfg = SignatureConfig::new(f_bits, m).unwrap();
        let mut b = Bssf::create(io, "e", cfg).unwrap();
        let items: Vec<(Oid, Vec<ElementKey>)> = (0..n)
            .map(|i| {
                (
                    Oid::new(i),
                    (0..4).map(|j| ElementKey::from(i * 17 + j)).collect(),
                )
            })
            .collect();
        b.bulk_load(&items).unwrap();
        (disk, b)
    }

    fn queries() -> Vec<SetQuery> {
        let mut qs = Vec::new();
        for i in [0u64, 3, 11, 40, 77] {
            qs.push(SetQuery::has_subset(vec![
                ElementKey::from(i * 17),
                ElementKey::from(i * 17 + 1),
            ]));
            qs.push(SetQuery::in_subset(
                (0..6).map(|j| ElementKey::from(i * 17 + j)).collect(),
            ));
            qs.push(SetQuery::equals(
                (0..4).map(|j| ElementKey::from(i * 17 + j)).collect(),
            ));
            qs.push(SetQuery::overlaps(vec![
                ElementKey::from(i * 17 + 2),
                ElementKey::from(999_999u64),
            ]));
        }
        // A query with no matches, so the superset early exit fires.
        qs.push(SetQuery::has_subset(vec![
            ElementKey::from(500_000u64),
            ElementKey::from(500_001u64),
            ElementKey::from(500_002u64),
            ElementKey::from(500_003u64),
        ]));
        qs
    }

    #[test]
    fn serial_scan_stats_match_disk_reads() {
        let (disk, b) = populated(128, 3, 120);
        let q = SetQuery::has_subset(vec![ElementKey::from(3 * 17), ElementKey::from(3 * 17 + 1)]);
        disk.reset_stats();
        let (_, stats) = b.candidates_with_stats(&q).unwrap();
        let stats = stats.unwrap();
        assert_eq!(
            stats.logical_pages, stats.physical_pages,
            "serial: no speculation"
        );
        // The filtering stage's charge is exactly its disk traffic: slice
        // pages plus the OID-file look-up page.
        assert_eq!(disk.snapshot().reads, stats.physical_pages);
    }

    #[test]
    fn parallel_engine_matches_serial_candidates_and_logical_pages() {
        let (_d1, serial) = populated(128, 3, 150);
        let (_d2, mut par) = populated(128, 3, 150);
        par.set_parallelism(8);
        assert_eq!(par.parallelism(), 8);
        for q in queries() {
            let (cs, ss) = serial.candidates_with_stats(&q).unwrap();
            let ss = ss.unwrap();
            let (cp, sp) = par.candidates_with_stats(&q).unwrap();
            let sp = sp.unwrap();
            assert_eq!(
                cs, cp,
                "candidate sets must be identical ({:?})",
                q.predicate
            );
            assert_eq!(
                ss.logical_pages, sp.logical_pages,
                "logical pages must be identical ({:?})",
                q.predicate
            );
            assert!(sp.physical_pages >= sp.logical_pages);
            assert_eq!(ss.logical_pages, ss.physical_pages);
        }
    }

    #[test]
    fn parallel_overshoot_is_bounded_by_prefetch_window() {
        let (_d, mut b) = populated(256, 4, 200);
        b.set_parallelism(4);
        // No match: the accumulator empties early and workers may have
        // speculatively fetched ahead — but never past the window.
        let q = SetQuery::has_subset(
            (0..8)
                .map(|j| ElementKey::from(700_000 + j))
                .collect::<Vec<ElementKey>>(),
        );
        let (_, s) = b.candidates_with_stats(&q).unwrap();
        let s = s.unwrap();
        assert!(s.physical_pages >= s.logical_pages);
        // window = 2·threads slices, 1 page each at this size.
        assert!(
            s.physical_pages <= s.logical_pages + 2 * 4,
            "overshoot {} pages exceeds window",
            s.physical_pages - s.logical_pages
        );
    }

    #[test]
    fn cached_bssf_serves_repeat_queries_from_pool() {
        let disk = Arc::new(Disk::new());
        let cfg = SignatureConfig::new(64, 2).unwrap();
        let mut b = Bssf::create_cached(Arc::clone(&disk), "c", cfg, 256).unwrap();
        for i in 0..40u64 {
            b.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::has_subset(vec![ElementKey::from(7u64)]);
        let (first, first_stats) = b.candidates_with_stats(&q).unwrap();
        disk.reset_stats();
        let (second, second_stats) = b.candidates_with_stats(&q).unwrap();
        assert_eq!(first, second);
        // Logical accounting is cache-independent...
        assert_eq!(first_stats, second_stats);
        // ...but the hot slices never reach the disk.
        assert_eq!(
            disk.snapshot().reads,
            0,
            "repeat query must be pool-resident"
        );
        let cache = b.cache_stats().expect("cached facility reports pool stats");
        assert!(cache.hits > 0);
        assert!(b.buffer_pool().is_some());
    }

    #[test]
    fn uncached_bssf_reports_no_cache_stats() {
        let (_d, b) = populated(64, 2, 10);
        assert!(b.cache_stats().is_none());
        assert!(b.buffer_pool().is_none());
    }

    #[test]
    fn parallel_engine_handles_multi_page_slices() {
        let n = ROWS_PER_PAGE + 500;
        let items: Vec<(Oid, Vec<ElementKey>)> = (0..n)
            .map(|i| (Oid::new(i), vec![ElementKey::from(i % 89)]))
            .collect();
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut serial = Bssf::create(io, "m", SignatureConfig::new(32, 2).unwrap()).unwrap();
        serial.bulk_load(&items).unwrap();
        let disk2 = Arc::new(Disk::new());
        let io2: Arc<dyn PageIo> = Arc::clone(&disk2) as Arc<dyn PageIo>;
        let mut par = Bssf::create(io2, "m", SignatureConfig::new(32, 2).unwrap()).unwrap();
        par.bulk_load(&items).unwrap();
        par.set_parallelism(6);
        for q in [
            SetQuery::has_subset(vec![ElementKey::from(42u64)]),
            SetQuery::in_subset(vec![ElementKey::from(1u64), ElementKey::from(2u64)]),
        ] {
            let (cs, ss) = serial.candidates_with_stats(&q).unwrap();
            let (cp, sp) = par.candidates_with_stats(&q).unwrap();
            assert_eq!(cs, cp);
            assert_eq!(ss.unwrap().logical_pages, sp.unwrap().logical_pages);
        }
    }
}

impl Bssf {
    /// Checkpoints the BSSF's catalog state — design parameters, the OID
    /// file binding and counters, and all `F` slice file bindings — into
    /// its meta file (created on first use). Returns the meta file id to
    /// hand to [`Bssf::open`].
    pub fn sync_meta(&mut self) -> Result<setsig_pagestore::FileId> {
        let mut w = crate::meta::MetaWriter::new(b"BSF1");
        w.u32(self.cfg.f_bits());
        w.u32(self.cfg.m_weight());
        w.u64(self.cfg.seed());
        w.u32(self.oid_file.file().id().raw());
        let (len, live) = self.oid_file.state();
        w.u64(len);
        w.u64(live);
        for slice in &self.slices {
            w.u32(slice.id().raw());
        }
        let io = Arc::clone(self.oid_file.file().io());
        crate::meta::checkpoint(&io, &mut self.meta_file, "bssf", &w.finish())
    }

    /// Reopens a BSSF from the meta file written by [`Bssf::sync_meta`].
    pub fn open(io: Arc<dyn PageIo>, meta: setsig_pagestore::FileId) -> Result<Self> {
        let meta_file = PagedFile::open(Arc::clone(&io), meta);
        let blob = meta_file.read_blob()?;
        let mut r = crate::meta::MetaReader::new(&blob, b"BSF1")?;
        let cfg = SignatureConfig::with_seed(r.u32()?, r.u32()?, r.u64()?)?;
        let oid_id = setsig_pagestore::FileId::from_raw(r.u32()?);
        let len = r.u64()?;
        let live = r.u64()?;
        let slices = (0..cfg.f_bits())
            .map(|_| {
                Ok(PagedFile::open(
                    Arc::clone(&io),
                    setsig_pagestore::FileId::from_raw(r.u32()?),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        r.done()?;
        Ok(Bssf {
            cfg,
            slices,
            oid_file: OidFile::reopen(PagedFile::open(io, oid_id), len, live),
            meta_file: Some(meta_file),
            threads: 1,
            pool: None,
            obs: None,
        })
    }
}

#[cfg(test)]
mod meta_tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn keys(elems: &[&str]) -> Vec<ElementKey> {
        elems.iter().map(ElementKey::from).collect()
    }

    #[test]
    fn bssf_reopens_from_saved_image() {
        let dir = std::env::temp_dir().join(format!("setsig-bssf-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.img");

        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let cfg = SignatureConfig::new(64, 2).unwrap();
        let mut bssf = Bssf::create(io, "h", cfg).unwrap();
        bssf.insert(Oid::new(1), &keys(&["Baseball", "Fishing"]))
            .unwrap();
        bssf.insert(Oid::new(2), &keys(&["Tennis"])).unwrap();
        bssf.delete(Oid::new(2), &keys(&["Tennis"])).unwrap();
        let meta = bssf.sync_meta().unwrap();
        disk.save_to(&path).unwrap();

        let loaded = Arc::new(Disk::load_from(&path).unwrap());
        let io: Arc<dyn PageIo> = Arc::clone(&loaded) as Arc<dyn PageIo>;
        let reopened = Bssf::open(io, meta).unwrap();
        assert_eq!(reopened.indexed_count(), 1);
        let q = SetQuery::has_subset(keys(&["Baseball"]));
        assert_eq!(
            reopened.candidates(&q).unwrap().oids,
            vec![Oid::new(1)],
            "reopened BSSF answers like the original"
        );
        // And it accepts further inserts at the right position.
        let mut reopened = reopened;
        reopened.insert(Oid::new(3), &keys(&["Baseball"])).unwrap();
        let c = reopened.candidates(&q).unwrap();
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(3)]);

        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn open_rejects_foreign_meta() {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut ssf =
            crate::Ssf::create(Arc::clone(&io), "s", SignatureConfig::new(64, 2).unwrap()).unwrap();
        let ssf_meta = ssf.sync_meta().unwrap();
        assert!(
            Bssf::open(io, ssf_meta).is_err(),
            "magic mismatch must fail"
        );
    }
}

impl Bssf {
    /// Appends a batch of entries, touching each slice page **once per
    /// batch** instead of once per entry: the write-behind buffering a
    /// production system would use to amortize BSSF's `F + 1` insertion
    /// cost (§6's open problem).
    ///
    /// Cost: one write per *distinct (slice, page)* pair the batch's set
    /// bits land on (≤ `Σ m_t`, and ≤ `F` per spanned slice page), plus
    /// `⌈B/O_p⌉` OID-file writes. Equivalent to repeated
    /// [`insert_signature_sparse`](Self::insert_signature_sparse) in
    /// contents, far cheaper in page accesses.
    pub fn insert_batch(&mut self, items: &[(Oid, Vec<ElementKey>)]) -> Result<()> {
        use std::collections::BTreeMap;
        let start = self.oid_file.len();
        // (slice, page) → bits to set within that page.
        let mut updates: BTreeMap<(u32, u32), Vec<usize>> = BTreeMap::new();
        let mut oids = Vec::with_capacity(items.len());
        for (i, (oid, set)) in items.iter().enumerate() {
            let sig = Signature::for_set(&self.cfg, set);
            let (page_no, bit) = Self::row_page(start + i as u64);
            for j in sig.bitmap().iter_ones() {
                updates.entry((j, page_no)).or_default().push(bit);
            }
            oids.push(*oid);
        }
        for ((j, page_no), bits) in updates {
            let staged: Vec<(usize, bool)> = bits.into_iter().map(|b| (b, true)).collect();
            Self::write_row_bits(&self.slices[j as usize], page_no, &staged)?;
        }
        self.oid_file.bulk_append(&oids)?;
        Ok(())
    }
}

#[cfg(test)]
mod batch_tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn items(n: u64) -> Vec<(Oid, Vec<ElementKey>)> {
        (0..n)
            .map(|i| {
                (
                    Oid::new(i),
                    (0..5u64).map(|j| ElementKey::from(i * 11 + j)).collect(),
                )
            })
            .collect()
    }

    fn bssf(disk: &Arc<Disk>) -> Bssf {
        let io: Arc<dyn PageIo> = Arc::clone(disk) as Arc<dyn PageIo>;
        Bssf::create(io, "b", SignatureConfig::new(128, 2).unwrap()).unwrap()
    }

    #[test]
    fn batch_equals_incremental_contents() {
        let d1 = Arc::new(Disk::new());
        let d2 = Arc::new(Disk::new());
        let mut inc = bssf(&d1);
        let mut bat = bssf(&d2);
        let all = items(150);
        for (oid, set) in &all {
            inc.insert(*oid, set).unwrap();
        }
        // Two batches, to exercise appending to a non-empty file.
        bat.insert_batch(&all[..70]).unwrap();
        bat.insert_batch(&all[70..]).unwrap();
        for probe in [0u64, 69, 70, 149] {
            let q = SetQuery::has_subset(vec![ElementKey::from(probe * 11)]);
            assert_eq!(inc.candidates(&q).unwrap(), bat.candidates(&q).unwrap());
        }
        assert_eq!(bat.indexed_count(), 150);
    }

    #[test]
    fn batch_amortizes_writes() {
        let d1 = Arc::new(Disk::new());
        let d2 = Arc::new(Disk::new());
        let mut inc = bssf(&d1);
        let mut bat = bssf(&d2);
        let all = items(200);
        for (oid, set) in &all {
            inc.insert(*oid, set).unwrap();
        }
        bat.insert_batch(&all).unwrap();
        let inc_writes = d1.snapshot().writes;
        let bat_writes = d2.snapshot().writes;
        // Incremental: 200·(F+1) = 25,800. Batched: ≤ F slice pages + 1
        // OID page = 129.
        assert_eq!(inc_writes, 200 * 129);
        assert!(bat_writes <= 129, "batched writes {bat_writes}");
        // And both answer queries identically (spot check).
        let q = SetQuery::has_subset(vec![ElementKey::from(55u64)]);
        assert_eq!(inc.candidates(&q).unwrap(), bat.candidates(&q).unwrap());
    }

    #[test]
    fn batch_then_single_insert_positions_align() {
        let disk = Arc::new(Disk::new());
        let mut b = bssf(&disk);
        b.insert_batch(&items(10)).unwrap();
        b.insert(Oid::new(999), &[ElementKey::from(12345u64)])
            .unwrap();
        let q = SetQuery::has_subset(vec![ElementKey::from(12345u64)]);
        assert!(b.candidates(&q).unwrap().oids.contains(&Oid::new(999)));
        assert_eq!(b.indexed_count(), 11);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let disk = Arc::new(Disk::new());
        let mut b = bssf(&disk);
        b.insert_batch(&[]).unwrap();
        assert_eq!(b.indexed_count(), 0);
        assert_eq!(disk.snapshot().writes, 0);
    }
}

impl Bssf {
    /// Rebuilds the BSSF without tombstoned entries, reclaiming both OID
    /// slots and the stale slice bits deletions leave behind (an extension;
    /// §4.2 keeps tombstones forever).
    ///
    /// Signatures of the survivors are reconstructed from the slice files
    /// themselves — one pass over all `F` slices — so no access to the
    /// object store is needed. Returns the number of live entries kept.
    pub fn compact(&mut self) -> Result<u64> {
        let live = self.oid_file.scan_live()?;
        let n = self.oid_file.len();
        // Row bitmaps per slice, read once each.
        let io = Arc::clone(self.oid_file.file().io());
        let mut new_slices: Vec<PagedFile> = Vec::with_capacity(self.slices.len());
        let rows_per_page = ROWS_PER_PAGE;
        let new_len = live.len() as u64;
        let npages = new_len.div_ceil(rows_per_page) as u32;
        for (j, old) in self.slices.iter().enumerate() {
            let rows = {
                // Borrow of self via read_slice_rows needs j only.
                let _ = old;
                self.read_slice_rows(j as u32)?
            };
            let mut staged: Vec<Page> = (0..npages).map(|_| Page::zeroed()).collect();
            for (new_pos, &(old_pos, _)) in live.iter().enumerate() {
                debug_assert!(old_pos < n);
                if rows.get(old_pos as u32) {
                    let (page_no, bit) = Self::row_page(new_pos as u64);
                    staged[page_no as usize].set_bit(bit, true);
                }
            }
            let file = PagedFile::create(Arc::clone(&io), &format!("compacted.s{j}"));
            for page in &staged {
                file.append(page)?;
            }
            new_slices.push(file);
        }
        let mut new_oid = OidFile::create(io, "compacted.oid");
        new_oid.bulk_append(&live.iter().map(|&(_, oid)| oid).collect::<Vec<_>>())?;
        self.slices = new_slices;
        self.oid_file = new_oid;
        Ok(new_len)
    }
}

#[cfg(test)]
mod compact_tests {
    use super::*;
    use setsig_pagestore::Disk;

    #[test]
    fn compact_preserves_answers_and_drops_tombstones() {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut b = Bssf::create(io, "b", SignatureConfig::new(64, 2).unwrap()).unwrap();
        for i in 0..30u64 {
            b.insert(Oid::new(i), &[ElementKey::from(i % 10)]).unwrap();
        }
        for i in 0..10u64 {
            b.delete(Oid::new(i * 3), &[]).unwrap();
        }
        // Ground truth before compaction.
        let q = SetQuery::has_subset(vec![ElementKey::from(4u64)]);
        let before = b.candidates(&q).unwrap();
        let kept = b.compact().unwrap();
        assert_eq!(kept, 20);
        assert_eq!(b.indexed_count(), 20);
        let after = b.candidates(&q).unwrap();
        assert_eq!(before, after, "answers must survive compaction");
        // The compacted OID file is denser.
        assert_eq!(b.oid_file().len(), 20);
    }

    #[test]
    fn compact_then_insert_continues_cleanly() {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut b = Bssf::create(io, "b", SignatureConfig::new(64, 2).unwrap()).unwrap();
        b.insert(Oid::new(1), &[ElementKey::from(1u64)]).unwrap();
        b.insert(Oid::new(2), &[ElementKey::from(2u64)]).unwrap();
        b.delete(Oid::new(1), &[]).unwrap();
        b.compact().unwrap();
        b.insert(Oid::new(3), &[ElementKey::from(1u64)]).unwrap();
        let q = SetQuery::has_subset(vec![ElementKey::from(1u64)]);
        assert_eq!(b.candidates(&q).unwrap().oids, vec![Oid::new(3)]);
    }
}
