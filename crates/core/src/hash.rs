//! Hashing of set elements to signature bit positions.
//!
//! The paper assumes an "ideal" hash function: each of the `m` bits of an
//! element signature is uniformly and independently placed among the `F`
//! positions. We approximate that with a seeded 128-bit hash of the
//! element's canonical bytes, split into a base and a step for **double
//! hashing**: candidate positions are `(h1 + i·h2) mod F`, skipping
//! duplicates until `m` distinct positions are found. Double hashing gives
//! statistically uniform, deterministic positions without allocating.
//!
//! The hash itself is a SplitMix64-style mixer run over 8-byte chunks —
//! written here so the crate stays dependency-free and the function is
//! stable across platforms and versions (signatures are persisted).

/// Produces signature bit positions for elements, given the design
/// parameters `F` (signature width) and a seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ElementHasher {
    f_bits: u32,
    seed: u64,
}

/// SplitMix64 finalizer: a fast, well-dispersed 64-bit mixer.
#[inline]
fn mix64(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Hashes `bytes` to 64 bits under `seed`, chunked 8 bytes at a time with a
/// distinct finalization for the length so prefixes don't collide.
pub fn element_hash(bytes: &[u8], seed: u64) -> u64 {
    let mut h = mix64(seed ^ 0x9e37_79b9_7f4a_7c15);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        let v = u64::from_le_bytes(c.try_into().unwrap());
        h = mix64(h ^ v);
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut tail = [0u8; 8];
        tail[..rem.len()].copy_from_slice(rem);
        h = mix64(h ^ u64::from_le_bytes(tail));
    }
    mix64(h ^ (bytes.len() as u64).wrapping_mul(0xff51_afd7_ed55_8ccd))
}

impl ElementHasher {
    /// Creates a hasher for signatures of `f_bits` bits.
    pub fn new(f_bits: u32, seed: u64) -> Self {
        assert!(f_bits > 0, "signature width must be positive");
        ElementHasher { f_bits, seed }
    }

    /// Signature width this hasher targets.
    pub fn f_bits(&self) -> u32 {
        self.f_bits
    }

    /// Returns the `m` distinct bit positions of the element signature for
    /// `element_bytes`, in ascending order.
    ///
    /// Panics if `m > f_bits` (no `m` distinct positions exist).
    pub fn positions(&self, element_bytes: &[u8], m: u32) -> Vec<u32> {
        assert!(m <= self.f_bits, "m = {m} exceeds F = {}", self.f_bits);
        let h = element_hash(element_bytes, self.seed);
        let h2 = mix64(h ^ 0xc2b2_ae3d_27d4_eb4f);
        let base = h % self.f_bits as u64;
        // An odd step is coprime with any power of two; for general F we
        // fall back to probing successive step multiples and deduplicating.
        let step = (h2 % self.f_bits as u64) | 1;
        let mut out = Vec::with_capacity(m as usize);
        let mut i = 0u64;
        while out.len() < m as usize {
            let pos = ((base + i.wrapping_mul(step)) % self.f_bits as u64) as u32;
            if !out.contains(&pos) {
                out.push(pos);
            } else {
                // Cycle detected before m distinct positions (step shares a
                // factor with F): perturb by rehashing the index.
                let pos = (mix64(h ^ i) % self.f_bits as u64) as u32;
                if !out.contains(&pos) {
                    out.push(pos);
                }
            }
            i += 1;
        }
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_is_deterministic_and_seeded() {
        let a = element_hash(b"Baseball", 1);
        let b = element_hash(b"Baseball", 1);
        let c = element_hash(b"Baseball", 2);
        let d = element_hash(b"Fishing", 1);
        assert_eq!(a, b);
        assert_ne!(a, c);
        assert_ne!(a, d);
    }

    #[test]
    fn length_disambiguates_prefixes() {
        // Same 8-byte chunk content, different lengths.
        assert_ne!(element_hash(b"aaaaaaaa", 0), element_hash(b"aaaaaaa", 0));
        assert_ne!(element_hash(b"", 0), element_hash(b"\0", 0));
    }

    #[test]
    fn positions_are_distinct_sorted_in_range() {
        let h = ElementHasher::new(250, 42);
        for e in 0..1000u64 {
            let pos = h.positions(&e.to_le_bytes(), 5);
            assert_eq!(pos.len(), 5);
            for w in pos.windows(2) {
                assert!(w[0] < w[1], "not strictly ascending: {pos:?}");
            }
            assert!(*pos.last().unwrap() < 250);
        }
    }

    #[test]
    fn full_width_request_yields_all_positions() {
        let h = ElementHasher::new(16, 7);
        let pos = h.positions(b"x", 16);
        assert_eq!(pos, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn positions_roughly_uniform() {
        // With F=64, m=1, hashing many elements should touch every
        // position and no position should dominate. This is the "ideal
        // hash" assumption behind Eq. (2) of the paper.
        let h = ElementHasher::new(64, 9);
        let mut counts = [0u32; 64];
        let n = 64 * 200;
        for e in 0..n as u64 {
            let pos = h.positions(&e.to_le_bytes(), 1);
            counts[pos[0] as usize] += 1;
        }
        let expected = 200.0;
        for (i, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64) > expected * 0.6 && (c as f64) < expected * 1.4,
                "position {i} count {c} far from expected {expected}"
            );
        }
    }

    #[test]
    #[should_panic]
    fn m_exceeding_f_panics() {
        let h = ElementHasher::new(8, 0);
        let _ = h.positions(b"x", 9);
    }

    #[test]
    fn stable_reference_values() {
        // Pin the hash so persisted signatures stay readable; if this test
        // ever fails the on-disk format has silently changed.
        assert_eq!(element_hash(b"Baseball", 0), element_hash(b"Baseball", 0));
        let h = ElementHasher::new(250, 0);
        let p1 = h.positions(b"Baseball", 3);
        let p2 = h.positions(b"Baseball", 3);
        assert_eq!(p1, p2);
    }
}
