//! False-drop resolution (§3.1): fetching every candidate object and
//! re-checking the predicate exactly.

use std::collections::BTreeSet;

use crate::element::ElementKey;
use crate::error::Result;
use crate::facility::CandidateSet;
use crate::oid::Oid;
use crate::query::{SetPredicate, SetQuery};

/// A materialized target set: the indexed set-attribute value of one object
/// in canonical form.
pub type ElementSet = BTreeSet<ElementKey>;

/// Something that can fetch the stored target set of an object — in the
/// full system, the object store of `setsig-oodb`, which charges the
/// paper's `P_p` (unsuccessful) / `P_s` (successful) object page accesses
/// per fetch.
pub trait TargetSetSource {
    /// Fetches the indexed set value of `oid`.
    fn fetch_set(&self, oid: Oid) -> Result<ElementSet>;
}

impl<F> TargetSetSource for F
where
    F: Fn(Oid) -> Result<ElementSet>,
{
    fn fetch_set(&self, oid: Oid) -> Result<ElementSet> {
        self(oid)
    }
}

/// The outcome of resolving a candidate set.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DropReport {
    /// Objects that actually satisfy the predicate (*actual drops*).
    pub actual: Vec<Oid>,
    /// Number of candidates that failed re-checking (*false drops*).
    pub false_drops: u64,
    /// Total candidates examined.
    pub candidates: u64,
}

impl DropReport {
    /// The measured false drop ratio `false / candidates`, or 0 when there
    /// were no candidates. (The paper's `F_d` normalizes by `N − A`
    /// instead; the experiment harness computes that from this report.)
    pub fn false_ratio(&self) -> f64 {
        if self.candidates == 0 {
            0.0
        } else {
            self.false_drops as f64 / self.candidates as f64
        }
    }
}

/// Exact evaluation of a set predicate against a stored target set.
pub fn verify_predicate(
    predicate: SetPredicate,
    target: &ElementSet,
    query: &[ElementKey],
) -> bool {
    match predicate {
        SetPredicate::HasSubset | SetPredicate::Contains => {
            query.iter().all(|e| target.contains(e))
        }
        SetPredicate::InSubset => target.iter().all(|e| query.binary_search(e).is_ok()),
        SetPredicate::Equals => {
            target.len() == query.len() && target.iter().zip(query).all(|(a, b)| a == b)
        }
        SetPredicate::Overlaps => query.iter().any(|e| target.contains(e)),
    }
}

/// Resolves `candidates` for `query` against `source`: fetches each
/// candidate's stored set ([`TargetSetSource::fetch_set`], which charges the
/// object accesses `P_p·F_d(N−A) + P_s·A` of the paper's Eq. 7) and
/// classifies it as an actual or a false drop.
///
/// Exact candidate sets (e.g. NIX on `T ⊇ Q`) are fetched too — the paper's
/// query model returns *objects*, so qualifying objects cost `P_s` each —
/// and re-verified, which costs nothing extra once the object is in hand
/// and catches 64-bit key-digest collisions in the nested index.
pub fn resolve_drops(
    query: &SetQuery,
    candidates: &CandidateSet,
    source: &dyn TargetSetSource,
) -> Result<DropReport> {
    let mut actual = Vec::new();
    let mut false_drops = 0u64;
    for &oid in &candidates.oids {
        let target = source.fetch_set(oid)?;
        if verify_predicate(query.predicate, &target, &query.elements) {
            actual.push(oid);
        } else {
            false_drops += 1;
        }
    }
    Ok(DropReport {
        actual,
        false_drops,
        candidates: candidates.oids.len() as u64,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set(elems: &[&str]) -> ElementSet {
        elems.iter().map(ElementKey::from).collect()
    }

    fn sorted_keys(elems: &[&str]) -> Vec<ElementKey> {
        let mut v: Vec<ElementKey> = elems.iter().map(ElementKey::from).collect();
        v.sort_unstable();
        v
    }

    #[test]
    fn verify_has_subset() {
        let t = set(&["Baseball", "Golf", "Fishing"]);
        assert!(verify_predicate(
            SetPredicate::HasSubset,
            &t,
            &sorted_keys(&["Baseball", "Fishing"])
        ));
        assert!(!verify_predicate(
            SetPredicate::HasSubset,
            &t,
            &sorted_keys(&["Baseball", "Tennis"])
        ));
        // Empty query set: trivially satisfied.
        assert!(verify_predicate(SetPredicate::HasSubset, &t, &[]));
    }

    #[test]
    fn verify_in_subset() {
        let t = set(&["Baseball", "Football"]);
        assert!(verify_predicate(
            SetPredicate::InSubset,
            &t,
            &sorted_keys(&["Baseball", "Football", "Tennis"])
        ));
        assert!(!verify_predicate(
            SetPredicate::InSubset,
            &t,
            &sorted_keys(&["Baseball", "Tennis"])
        ));
        // Empty target: subset of anything.
        assert!(verify_predicate(SetPredicate::InSubset, &set(&[]), &[]));
    }

    #[test]
    fn verify_equals_overlaps_contains() {
        let t = set(&["a", "b"]);
        assert!(verify_predicate(
            SetPredicate::Equals,
            &t,
            &sorted_keys(&["a", "b"])
        ));
        assert!(!verify_predicate(
            SetPredicate::Equals,
            &t,
            &sorted_keys(&["a"])
        ));
        assert!(!verify_predicate(
            SetPredicate::Equals,
            &t,
            &sorted_keys(&["a", "b", "c"])
        ));
        assert!(verify_predicate(
            SetPredicate::Overlaps,
            &t,
            &sorted_keys(&["b", "z"])
        ));
        assert!(!verify_predicate(
            SetPredicate::Overlaps,
            &t,
            &sorted_keys(&["y", "z"])
        ));
        assert!(verify_predicate(
            SetPredicate::Contains,
            &t,
            &sorted_keys(&["a"])
        ));
    }

    #[test]
    fn resolve_classifies_actual_and_false() {
        // Object 1 satisfies, object 2 does not.
        let source = |oid: Oid| -> Result<ElementSet> {
            Ok(match oid.raw() {
                1 => set(&["Baseball", "Fishing", "Golf"]),
                _ => set(&["Baseball", "Tennis"]),
            })
        };
        let q = SetQuery::has_subset(sorted_keys(&["Baseball", "Fishing"]));
        let cands = CandidateSet::new(vec![Oid::new(1), Oid::new(2)], false);
        let report = resolve_drops(&q, &cands, &source).unwrap();
        assert_eq!(report.actual, vec![Oid::new(1)]);
        assert_eq!(report.false_drops, 1);
        assert_eq!(report.candidates, 2);
        assert!((report.false_ratio() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn exact_candidates_are_still_fetched() {
        // The paper returns objects, so even exact candidates cost P_s each
        // to retrieve; resolution must hit the source.
        let fetched = std::cell::Cell::new(0u32);
        let source = |_oid: Oid| -> Result<ElementSet> {
            fetched.set(fetched.get() + 1);
            Ok(set(&["x", "y"]))
        };
        let q = SetQuery::has_subset(sorted_keys(&["x"]));
        let cands = CandidateSet::new(vec![Oid::new(5)], true);
        let report = resolve_drops(&q, &cands, &source).unwrap();
        assert_eq!(report.actual, vec![Oid::new(5)]);
        assert_eq!(report.false_drops, 0);
        assert_eq!(fetched.get(), 1);
    }

    #[test]
    fn empty_candidates_resolve_trivially() {
        let source = |_oid: Oid| -> Result<ElementSet> { panic!("must not fetch") };
        let q = SetQuery::in_subset(sorted_keys(&["x"]));
        let report = resolve_drops(&q, &CandidateSet::new(vec![], false), &source).unwrap();
        assert!(report.actual.is_empty());
        assert_eq!(report.false_ratio(), 0.0);
    }
}
