//! The common interface of set access facilities.

use crate::element::ElementKey;
use crate::error::Result;
use crate::oid::Oid;
use crate::query::SetQuery;
use setsig_pagestore::CacheStats;

/// Page-access accounting for the filtering stage of one signature-file
/// scan, including the OID-file look-up that maps matching signature
/// positions to candidate OIDs (the paper's `LC_OID`).
///
/// The *logical* count is what the paper's serial protocol charges — it is
/// identical whether the engine runs serially or fans slice fetches across
/// threads, and whether reads are served from a buffer pool or from disk.
/// The *physical* count is the pages the engine actually requested from its
/// I/O layer; the parallel engine may speculatively fetch a bounded number
/// of slices past the early-termination point, so `physical_pages ≥
/// logical_pages`, with equality on the serial path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Slice/signature pages the serial protocol charges for the scan.
    pub logical_pages: u64,
    /// Slice/signature pages actually requested from the I/O layer.
    pub physical_pages: u64,
}

/// Interior-mutable page counters behind [`ScanStats`], shared by the SSF,
/// BSSF and FSSF scan engines.
///
/// A fresh instance is created for **each** `candidates*` call and threaded
/// down the scan path, so every query owns its counters outright: the
/// atomics exist only to let one query's scan workers charge pages
/// concurrently, never to share state between queries. Besides the page
/// counts the counters carry two trace facts — slices (or frames) touched
/// and whether the scan exited early — that the observability layer turns
/// into [`QueryTrace`](setsig_obs::QueryTrace) fields.
#[derive(Debug, Default)]
pub(crate) struct ScanCounters {
    pub(crate) logical: std::sync::atomic::AtomicU64,
    pub(crate) physical: std::sync::atomic::AtomicU64,
    pub(crate) slices: std::sync::atomic::AtomicU64,
    pub(crate) early_exit: std::sync::atomic::AtomicBool,
}

impl ScanCounters {
    /// Charges pages read on a non-speculative path (logical == physical).
    pub(crate) fn charge_both(&self, pages: u64) {
        use std::sync::atomic::Ordering;
        // ATOMIC: Relaxed ×2 — page charges are summed after the scan's
        // threads join; the join supplies the happens-before.
        self.logical.fetch_add(pages, Ordering::Relaxed);
        self.physical.fetch_add(pages, Ordering::Relaxed);
    }

    /// Notes `n` slices/frames touched by the scan (trace-only fact).
    pub(crate) fn note_slices(&self, n: u64) {
        use std::sync::atomic::Ordering;
        // ATOMIC: Relaxed — a trace-only tally, read after the scan ends.
        self.slices.fetch_add(n, Ordering::Relaxed);
    }

    /// Marks that the scan stopped before its slice/page budget.
    pub(crate) fn mark_early_exit(&self) {
        use std::sync::atomic::Ordering;
        // ATOMIC: Relaxed — a monotone flag; no data is published with it.
        self.early_exit.store(true, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ScanStats {
        use std::sync::atomic::Ordering;
        // ATOMIC: Relaxed ×2 — read once the scan (and any worker joins)
        // completed; the counters are quiescent here.
        ScanStats {
            logical_pages: self.logical.load(Ordering::Relaxed),
            physical_pages: self.physical.load(Ordering::Relaxed),
        }
    }

    /// The trace facts: `(slices touched, early exit)`.
    pub(crate) fn probe(&self) -> (u64, bool) {
        use std::sync::atomic::Ordering;
        // ATOMIC: Relaxed ×2 — same quiescent read as `stats`.
        (
            self.slices.load(Ordering::Relaxed),
            self.early_exit.load(Ordering::Relaxed),
        )
    }
}

impl std::ops::Add for ScanStats {
    type Output = ScanStats;

    fn add(self, rhs: ScanStats) -> ScanStats {
        ScanStats {
            logical_pages: self.logical_pages + rhs.logical_pages,
            physical_pages: self.physical_pages + rhs.physical_pages,
        }
    }
}

impl std::ops::AddAssign for ScanStats {
    fn add_assign(&mut self, rhs: ScanStats) {
        self.logical_pages += rhs.logical_pages;
        self.physical_pages += rhs.physical_pages;
    }
}

impl std::iter::Sum for ScanStats {
    fn sum<I: Iterator<Item = ScanStats>>(iter: I) -> ScanStats {
        iter.fold(ScanStats::default(), |acc, s| acc + s)
    }
}

/// The candidate objects (*drops*) produced by the filtering stage of a set
/// access facility, before false-drop resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    /// Candidate OIDs, deduplicated, in ascending order.
    pub oids: Vec<Oid>,
    /// Whether the candidates are *exact* (already known to satisfy the
    /// predicate, no resolution needed). Signature files always return
    /// `false`; the nested index returns `true` for `T ⊇ Q` (an OID-list
    /// intersection proves the predicate) and `false` for `T ⊆ Q`.
    pub exact: bool,
}

impl CandidateSet {
    /// Creates a candidate set, sorting and deduplicating the OIDs.
    pub fn new(mut oids: Vec<Oid>, exact: bool) -> Self {
        oids.sort_unstable();
        oids.dedup();
        CandidateSet { oids, exact }
    }

    /// Number of drops.
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// True when no candidate survived the filter.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }

    /// Unions candidate sets produced by disjoint partitions of one store
    /// (the sharded query path): OIDs are pooled, re-sorted and
    /// deduplicated, and the union is exact only when *every* part was —
    /// a single inexact shard means the merged drops still need
    /// resolution.
    pub fn union<I: IntoIterator<Item = CandidateSet>>(parts: I) -> CandidateSet {
        let mut oids = Vec::new();
        let mut exact = true;
        for part in parts {
            exact &= part.exact;
            oids.extend(part.oids);
        }
        CandidateSet::new(oids, exact)
    }
}

/// A *set access facility* (the paper's term): an auxiliary structure that,
/// given a set predicate, produces candidate objects far cheaper than a
/// database scan.
///
/// Implemented by [`Ssf`](crate::Ssf), [`Bssf`](crate::Bssf),
/// [`Fssf`](crate::Fssf), and the nested index `Nix` in `setsig-nix`. The
/// contract is **no false negatives**: every object whose stored set
/// satisfies the predicate must appear in the candidates.
pub trait SetAccessFacility {
    /// Short organization name ("SSF", "BSSF", "NIX") used in reports.
    fn name(&self) -> &'static str;

    /// Indexes `set` as the set-attribute value of object `oid`.
    ///
    /// Duplicate elements are tolerated and deduplicated; the paper's model
    /// assumes each object is inserted once.
    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()>;

    /// Removes object `oid` (whose indexed value was `set`) from the
    /// facility.
    fn delete(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()>;

    /// Runs the filtering stage for `query`, returning the drops together
    /// with that call's page accounting.
    ///
    /// The [`ScanStats`] belong to this call alone — the counters live on
    /// the query's own stack frame, so concurrent queries on one shared
    /// facility each observe exactly their own counts. Facilities whose
    /// scan engine does not track page accounting (the nested index, whose
    /// cost is the B-tree look-ups) return `None`.
    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)>;

    /// Runs the filtering stage for `query`, returning just the drops.
    fn candidates(&self, query: &SetQuery) -> Result<CandidateSet> {
        Ok(self.candidates_with_stats(query)?.0)
    }

    /// Number of objects currently indexed.
    fn indexed_count(&self) -> u64;

    /// Pages occupied by the facility — the measured counterpart of the
    /// paper's storage cost `SC`.
    fn storage_pages(&self) -> Result<u64>;

    /// Hit/miss counters of the facility's buffer pool, when its reads are
    /// routed through one ([`BufferPool`](setsig_pagestore::BufferPool));
    /// `None` for uncached facilities.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_sorts_and_dedups() {
        let c = CandidateSet::new(vec![Oid::new(3), Oid::new(1), Oid::new(3)], false);
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(3)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(!c.exact);
    }

    #[test]
    fn empty_candidates() {
        let c = CandidateSet::new(vec![], true);
        assert!(c.is_empty());
        assert!(c.exact);
    }

    #[test]
    fn scan_stats_sum_componentwise() {
        let a = ScanStats {
            logical_pages: 3,
            physical_pages: 5,
        };
        let b = ScanStats {
            logical_pages: 2,
            physical_pages: 2,
        };
        assert_eq!(
            a + b,
            ScanStats {
                logical_pages: 5,
                physical_pages: 7
            }
        );
        let mut c = a;
        c += b;
        assert_eq!(c, a + b);
        assert_eq!([a, b].into_iter().sum::<ScanStats>(), a + b);
        assert_eq!(
            std::iter::empty::<ScanStats>().sum::<ScanStats>(),
            ScanStats::default()
        );
    }

    #[test]
    fn union_pools_sorts_and_tracks_exactness() {
        let a = CandidateSet::new(vec![Oid::new(5), Oid::new(1)], true);
        let b = CandidateSet::new(vec![Oid::new(3), Oid::new(1)], true);
        let u = CandidateSet::union([a.clone(), b.clone()]);
        assert_eq!(u.oids, vec![Oid::new(1), Oid::new(3), Oid::new(5)]);
        assert!(u.exact, "all-exact parts stay exact");
        let inexact = CandidateSet::new(vec![Oid::new(9)], false);
        assert!(!CandidateSet::union([a, inexact]).exact);
        // The empty union is the exact empty answer.
        let empty = CandidateSet::union(std::iter::empty());
        assert!(empty.is_empty() && empty.exact);
    }

    #[test]
    fn per_call_counters_track_pages_and_trace_facts() {
        let ctr = ScanCounters::default();
        ctr.charge_both(3);
        ctr.note_slices(2);
        assert_eq!(
            ctr.stats(),
            ScanStats {
                logical_pages: 3,
                physical_pages: 3
            }
        );
        assert_eq!(ctr.probe(), (2, false));
        ctr.mark_early_exit();
        assert_eq!(ctr.probe(), (2, true));
    }
}
