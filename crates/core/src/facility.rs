//! The common interface of set access facilities.

use crate::element::ElementKey;
use crate::error::Result;
use crate::oid::Oid;
use crate::query::SetQuery;
use setsig_pagestore::CacheStats;

/// Page-access accounting for the most recent filtering stage of a
/// signature-file scan engine, including the OID-file look-up that maps
/// matching signature positions to candidate OIDs (the paper's `LC_OID`).
///
/// The *logical* count is what the paper's serial protocol charges — it is
/// identical whether the engine runs serially or fans slice fetches across
/// threads, and whether reads are served from a buffer pool or from disk.
/// The *physical* count is the pages the engine actually requested from its
/// I/O layer; the parallel engine may speculatively fetch a bounded number
/// of slices past the early-termination point, so `physical_pages ≥
/// logical_pages`, with equality on the serial path.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ScanStats {
    /// Slice/signature pages the serial protocol charges for the scan.
    pub logical_pages: u64,
    /// Slice/signature pages actually requested from the I/O layer.
    pub physical_pages: u64,
}

/// Interior-mutable page counters behind [`ScanStats`], shared by the SSF
/// and BSSF scan engines.
///
/// Counters are reset at each public `candidates*` entry, so the values are
/// meaningful for non-overlapping queries; concurrent queries on a shared
/// facility interleave their counts.
#[derive(Debug, Default)]
pub(crate) struct ScanCounters {
    pub(crate) logical: std::sync::atomic::AtomicU64,
    pub(crate) physical: std::sync::atomic::AtomicU64,
}

impl ScanCounters {
    pub(crate) fn reset(&self) {
        use std::sync::atomic::Ordering;
        self.logical.store(0, Ordering::Relaxed);
        self.physical.store(0, Ordering::Relaxed);
    }

    /// Charges pages read on a non-speculative path (logical == physical).
    pub(crate) fn charge_both(&self, pages: u64) {
        use std::sync::atomic::Ordering;
        self.logical.fetch_add(pages, Ordering::Relaxed);
        self.physical.fetch_add(pages, Ordering::Relaxed);
    }

    pub(crate) fn stats(&self) -> ScanStats {
        use std::sync::atomic::Ordering;
        ScanStats {
            logical_pages: self.logical.load(Ordering::Relaxed),
            physical_pages: self.physical.load(Ordering::Relaxed),
        }
    }
}

/// The candidate objects (*drops*) produced by the filtering stage of a set
/// access facility, before false-drop resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    /// Candidate OIDs, deduplicated, in ascending order.
    pub oids: Vec<Oid>,
    /// Whether the candidates are *exact* (already known to satisfy the
    /// predicate, no resolution needed). Signature files always return
    /// `false`; the nested index returns `true` for `T ⊇ Q` (an OID-list
    /// intersection proves the predicate) and `false` for `T ⊆ Q`.
    pub exact: bool,
}

impl CandidateSet {
    /// Creates a candidate set, sorting and deduplicating the OIDs.
    pub fn new(mut oids: Vec<Oid>, exact: bool) -> Self {
        oids.sort_unstable();
        oids.dedup();
        CandidateSet { oids, exact }
    }

    /// Number of drops.
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// True when no candidate survived the filter.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }
}

/// A *set access facility* (the paper's term): an auxiliary structure that,
/// given a set predicate, produces candidate objects far cheaper than a
/// database scan.
///
/// Implemented by [`Ssf`](crate::Ssf), [`Bssf`](crate::Bssf), and the nested
/// index `Nix` in `setsig-nix`. The contract is **no false negatives**:
/// every object whose stored set satisfies the predicate must appear in the
/// candidates.
pub trait SetAccessFacility {
    /// Short organization name ("SSF", "BSSF", "NIX") used in reports.
    fn name(&self) -> &'static str;

    /// Indexes `set` as the set-attribute value of object `oid`.
    ///
    /// Duplicate elements are tolerated and deduplicated; the paper's model
    /// assumes each object is inserted once.
    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()>;

    /// Removes object `oid` (whose indexed value was `set`) from the
    /// facility.
    fn delete(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()>;

    /// Runs the filtering stage for `query`, returning the drops.
    fn candidates(&self, query: &SetQuery) -> Result<CandidateSet>;

    /// Number of objects currently indexed.
    fn indexed_count(&self) -> u64;

    /// Pages occupied by the facility — the measured counterpart of the
    /// paper's storage cost `SC`.
    fn storage_pages(&self) -> Result<u64>;

    /// Hit/miss counters of the facility's buffer pool, when its reads are
    /// routed through one ([`BufferPool`](setsig_pagestore::BufferPool));
    /// `None` for uncached facilities.
    fn cache_stats(&self) -> Option<CacheStats> {
        None
    }

    /// Page accounting for the most recent `candidates*` call, when the
    /// facility's scan engine tracks it; `None` otherwise. The logical
    /// count is the paper's serial protocol charge regardless of engine
    /// parallelism or buffering, so measurement harnesses should prefer it
    /// over raw disk deltas.
    fn scan_stats(&self) -> Option<ScanStats> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_sorts_and_dedups() {
        let c = CandidateSet::new(vec![Oid::new(3), Oid::new(1), Oid::new(3)], false);
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(3)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(!c.exact);
    }

    #[test]
    fn empty_candidates() {
        let c = CandidateSet::new(vec![], true);
        assert!(c.is_empty());
        assert!(c.exact);
    }
}
