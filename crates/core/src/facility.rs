//! The common interface of set access facilities.

use crate::element::ElementKey;
use crate::error::Result;
use crate::oid::Oid;
use crate::query::SetQuery;

/// The candidate objects (*drops*) produced by the filtering stage of a set
/// access facility, before false-drop resolution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CandidateSet {
    /// Candidate OIDs, deduplicated, in ascending order.
    pub oids: Vec<Oid>,
    /// Whether the candidates are *exact* (already known to satisfy the
    /// predicate, no resolution needed). Signature files always return
    /// `false`; the nested index returns `true` for `T ⊇ Q` (an OID-list
    /// intersection proves the predicate) and `false` for `T ⊆ Q`.
    pub exact: bool,
}

impl CandidateSet {
    /// Creates a candidate set, sorting and deduplicating the OIDs.
    pub fn new(mut oids: Vec<Oid>, exact: bool) -> Self {
        oids.sort_unstable();
        oids.dedup();
        CandidateSet { oids, exact }
    }

    /// Number of drops.
    pub fn len(&self) -> usize {
        self.oids.len()
    }

    /// True when no candidate survived the filter.
    pub fn is_empty(&self) -> bool {
        self.oids.is_empty()
    }
}

/// A *set access facility* (the paper's term): an auxiliary structure that,
/// given a set predicate, produces candidate objects far cheaper than a
/// database scan.
///
/// Implemented by [`Ssf`](crate::Ssf), [`Bssf`](crate::Bssf), and the nested
/// index `Nix` in `setsig-nix`. The contract is **no false negatives**:
/// every object whose stored set satisfies the predicate must appear in the
/// candidates.
pub trait SetAccessFacility {
    /// Short organization name ("SSF", "BSSF", "NIX") used in reports.
    fn name(&self) -> &'static str;

    /// Indexes `set` as the set-attribute value of object `oid`.
    ///
    /// Duplicate elements are tolerated and deduplicated; the paper's model
    /// assumes each object is inserted once.
    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()>;

    /// Removes object `oid` (whose indexed value was `set`) from the
    /// facility.
    fn delete(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()>;

    /// Runs the filtering stage for `query`, returning the drops.
    fn candidates(&self, query: &SetQuery) -> Result<CandidateSet>;

    /// Number of objects currently indexed.
    fn indexed_count(&self) -> u64;

    /// Pages occupied by the facility — the measured counterpart of the
    /// paper's storage cost `SC`.
    fn storage_pages(&self) -> Result<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn candidate_set_sorts_and_dedups() {
        let c = CandidateSet::new(vec![Oid::new(3), Oid::new(1), Oid::new(3)], false);
        assert_eq!(c.oids, vec![Oid::new(1), Oid::new(3)]);
        assert_eq!(c.len(), 2);
        assert!(!c.is_empty());
        assert!(!c.exact);
    }

    #[test]
    fn empty_candidates() {
        let c = CandidateSet::new(vec![], true);
        assert!(c.is_empty());
        assert!(c.exact);
    }
}
