//! Element, set, and query signatures via superimposed coding.

use crate::bitmap::Bitmap;
use crate::config::SignatureConfig;
use crate::element::ElementKey;
use crate::hash::ElementHasher;

/// An `F`-bit signature produced by superimposed coding (§3.1 of the paper).
///
/// * An **element signature** has exactly `m` bits set, placed by hashing
///   the element.
/// * A **set signature** (*target signature* when stored, *query signature*
///   when derived from a query) is the bitwise OR of its elements'
///   signatures.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    bits: Bitmap,
}

impl Signature {
    /// The all-zero signature (of the empty set).
    pub fn empty(cfg: &SignatureConfig) -> Self {
        Signature {
            bits: Bitmap::zeroed(cfg.f_bits()),
        }
    }

    /// The element signature of `element`: `m` distinct bits out of `F`.
    pub fn for_element(cfg: &SignatureConfig, element: &ElementKey) -> Self {
        let hasher = ElementHasher::new(cfg.f_bits(), cfg.seed());
        let positions = hasher.positions(element.as_bytes(), cfg.m_weight());
        Signature {
            bits: Bitmap::from_positions(cfg.f_bits(), &positions),
        }
    }

    /// The set signature of `elements`: OR of the element signatures.
    ///
    /// Duplicates are harmless (OR is idempotent). An empty slice yields the
    /// empty signature.
    pub fn for_set<'a>(
        cfg: &SignatureConfig,
        elements: impl IntoIterator<Item = &'a ElementKey>,
    ) -> Self {
        let hasher = ElementHasher::new(cfg.f_bits(), cfg.seed());
        let mut bits = Bitmap::zeroed(cfg.f_bits());
        for e in elements {
            for p in hasher.positions(e.as_bytes(), cfg.m_weight()) {
                bits.set(p, true);
            }
        }
        Signature { bits }
    }

    /// Reconstructs a signature from its serialized bytes.
    pub fn from_bytes(f_bits: u32, bytes: &[u8]) -> Self {
        Signature {
            bits: Bitmap::from_bytes(f_bits, bytes),
        }
    }

    /// Serialized form: `⌈F/8⌉` bytes, LSB-first.
    pub fn to_bytes(&self) -> Vec<u8> {
        self.bits.to_bytes()
    }

    /// Width `F` in bits.
    pub fn f_bits(&self) -> u32 {
        self.bits.len()
    }

    /// Number of set bits — `m_t` for a target, `m_q` for a query.
    pub fn weight(&self) -> u32 {
        self.bits.count_ones()
    }

    /// The underlying bitmap.
    pub fn bitmap(&self) -> &Bitmap {
        &self.bits
    }

    /// Superimposes (ORs) `other` onto `self` — incremental set-signature
    /// maintenance when an element is added to a stored set.
    pub fn superimpose(&mut self, other: &Signature) {
        self.bits.or_assign(&other.bits);
    }

    /// Match rule for `T ⊇ Q`: every query bit present in the target.
    /// `self` is the **target** signature.
    pub fn matches_superset_of(&self, query: &Signature) -> bool {
        self.bits.covers(&query.bits)
    }

    /// Match rule for `T ⊆ Q`: every target bit present in the query.
    /// `self` is the **target** signature.
    pub fn matches_subset_of(&self, query: &Signature) -> bool {
        query.bits.covers(&self.bits)
    }

    /// Match rule for set equality: equal sets have equal signatures, so
    /// signature equality is the (one-sided) filter.
    pub fn matches_equals(&self, query: &Signature) -> bool {
        self.bits == query.bits
    }

    /// Match rule for overlap (`T ∩ Q ≠ ∅`): a shared element contributes
    /// the same `m` bits to both signatures, so fewer than `m` common bits
    /// refutes overlap.
    pub fn matches_overlaps(&self, query: &Signature, m_weight: u32) -> bool {
        self.bits.intersection_count(&query.bits) >= m_weight
    }
}

impl std::fmt::Debug for Signature {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Signature[F={}, weight={}]",
            self.f_bits(),
            self.weight()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SignatureConfig;

    fn cfg() -> SignatureConfig {
        SignatureConfig::new(64, 3).unwrap()
    }

    fn key(s: &str) -> ElementKey {
        ElementKey::from(s)
    }

    #[test]
    fn element_signature_has_weight_m() {
        let c = cfg();
        for name in ["Baseball", "Fishing", "Tennis", "Golf", "Football"] {
            let sig = Signature::for_element(&c, &key(name));
            assert_eq!(sig.weight(), 3, "element {name}");
        }
    }

    #[test]
    fn set_signature_is_or_of_elements() {
        let c = cfg();
        let e1 = Signature::for_element(&c, &key("Baseball"));
        let e2 = Signature::for_element(&c, &key("Fishing"));
        let set = Signature::for_set(&c, &[key("Baseball"), key("Fishing")]);
        let mut expected = e1.clone();
        expected.superimpose(&e2);
        assert_eq!(set, expected);
        assert!(set.weight() <= 6);
        assert!(set.weight() >= 3);
    }

    #[test]
    fn duplicates_do_not_change_signature() {
        let c = cfg();
        let once = Signature::for_set(&c, &[key("Golf")]);
        let twice = Signature::for_set(&c, &[key("Golf"), key("Golf")]);
        assert_eq!(once, twice);
    }

    #[test]
    fn empty_set_signature_is_zero() {
        let c = cfg();
        let sig = Signature::for_set(&c, &[]);
        assert_eq!(sig.weight(), 0);
        assert_eq!(sig, Signature::empty(&c));
    }

    #[test]
    fn superset_match_never_misses() {
        // Soundness: if T ⊇ Q as sets, the signatures must match.
        let c = cfg();
        let target = Signature::for_set(&c, &[key("Baseball"), key("Golf"), key("Fishing")]);
        let query = Signature::for_set(&c, &[key("Baseball"), key("Fishing")]);
        assert!(target.matches_superset_of(&query));
    }

    #[test]
    fn subset_match_never_misses() {
        let c = cfg();
        let target = Signature::for_set(&c, &[key("Baseball"), key("Football")]);
        let query = Signature::for_set(&c, &[key("Baseball"), key("Football"), key("Tennis")]);
        assert!(target.matches_subset_of(&query));
    }

    #[test]
    fn disjoint_sets_usually_fail_superset_match() {
        // With F=64 elements are unlikely to cover each other; verify at
        // least one definite non-match exists among several disjoint pairs
        // (the filter is one-sided, so we only require "not always match").
        let c = cfg();
        let target = Signature::for_set(&c, &[key("Swimming")]);
        let query = Signature::for_set(&c, &[key("Chess"), key("Skiing"), key("Running")]);
        assert!(!target.matches_superset_of(&query));
    }

    #[test]
    fn equality_filter_accepts_equal_sets() {
        let c = cfg();
        let a = Signature::for_set(&c, &[key("a"), key("b")]);
        let b = Signature::for_set(&c, &[key("b"), key("a")]);
        assert!(a.matches_equals(&b));
    }

    #[test]
    fn overlap_filter_accepts_overlapping_sets() {
        let c = cfg();
        let t = Signature::for_set(&c, &[key("Baseball"), key("Chess")]);
        let q = Signature::for_set(&c, &[key("Baseball"), key("Running")]);
        assert!(t.matches_overlaps(&q, c.m_weight()));
    }

    #[test]
    fn byte_roundtrip() {
        let c = SignatureConfig::new(250, 5).unwrap();
        let sig = Signature::for_set(&c, &[key("x"), key("y"), key("z")]);
        let bytes = sig.to_bytes();
        assert_eq!(bytes.len(), c.signature_bytes());
        let back = Signature::from_bytes(250, &bytes);
        assert_eq!(back, sig);
    }

    #[test]
    fn different_seeds_give_different_codes() {
        let c1 = SignatureConfig::with_seed(64, 3, 1).unwrap();
        let c2 = SignatureConfig::with_seed(64, 3, 2).unwrap();
        let s1 = Signature::for_element(&c1, &key("Baseball"));
        let s2 = Signature::for_element(&c2, &key("Baseball"));
        assert_ne!(s1, s2);
    }
}
