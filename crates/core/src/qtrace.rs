//! Glue between the facilities and the `setsig-obs` recorder.
//!
//! A facility holds an `Option<Arc<Recorder>>` (default `None`). At each
//! `candidates*` entry it calls [`QueryObs::start`]; with no recorder
//! attached that returns `None` without reading the clock or the cache
//! counters, so disabled observability adds nothing to the query path.

use crate::facility::{CandidateSet, ScanCounters};
use crate::query::SetQuery;
use setsig_obs::{QueryTrace, Recorder};
use setsig_pagestore::CacheStats;
use std::sync::Arc;
use std::time::Instant;

/// Everything the trace event needs that only the facility knows.
pub(crate) struct QueryOutcome<'a> {
    /// Facility short name, lowercase (`"ssf"`, `"bssf"`, …).
    pub facility: &'static str,
    /// Strategy suffix for the predicate field (`Some("smart")`), if any.
    pub strategy: Option<&'static str>,
    /// Signature geometry `(F, m)`, for facilities that have one.
    pub geometry: Option<(u32, u32)>,
    /// The query's own counters; `None` when the facility tracks no page
    /// accounting (NIX).
    pub ctr: Option<&'a ScanCounters>,
    /// Whether the slices/frames-touched counter is meaningful for this
    /// facility (BSSF slices, FSSF frames; false for SSF row scans).
    pub track_slices: bool,
    /// The drops the filter returned.
    pub set: &'a CandidateSet,
    /// Buffer-pool counters after the query, when a pool is attached.
    pub cache_after: Option<CacheStats>,
}

/// Armed observability context for one query: holds the recorder, the
/// entry timestamp and the entry cache counters.
pub(crate) struct QueryObs {
    rec: Arc<Recorder>,
    start: Instant,
    cache_before: Option<CacheStats>,
}

impl QueryObs {
    /// Arms observability for one query, or returns `None` (doing no work
    /// at all) when no recorder is attached. `cache` is only invoked when
    /// a recorder is present.
    pub(crate) fn start(
        rec: &Option<Arc<Recorder>>,
        cache: impl FnOnce() -> Option<CacheStats>,
    ) -> Option<QueryObs> {
        rec.as_ref().map(|r| QueryObs {
            rec: Arc::clone(r),
            start: Instant::now(),
            cache_before: cache(),
        })
    }

    /// Builds the [`QueryTrace`] for a completed query and hands it to the
    /// recorder (metrics + sinks).
    pub(crate) fn finish(self, query: &SetQuery, out: QueryOutcome<'_>) {
        let predicate = match out.strategy {
            Some(s) => format!("{:?}:{s}", query.predicate),
            None => format!("{:?}", query.predicate),
        };
        let stats = out.ctr.map(ScanCounters::stats);
        let (slices, early_exit) = out.ctr.map(ScanCounters::probe).unwrap_or((0, false));
        let (cache_hits, cache_misses, cache_pinned_hits) =
            match (self.cache_before, out.cache_after) {
                (Some(before), Some(after)) => (
                    Some(after.hits.saturating_sub(before.hits)),
                    Some(after.misses.saturating_sub(before.misses)),
                    Some(after.pinned_hits.saturating_sub(before.pinned_hits)),
                ),
                _ => (None, None, None),
            };
        self.rec.record_query(&QueryTrace {
            facility: out.facility.to_owned(),
            predicate,
            d_q: query.elements.len() as u64,
            f_bits: out.geometry.map(|(f, _)| f),
            m_weight: out.geometry.map(|(_, m)| m),
            slices_touched: out.track_slices.then_some(slices),
            early_exit,
            logical_pages: stats.map(|s| s.logical_pages),
            physical_pages: stats.map(|s| s.physical_pages),
            candidates: out.set.len() as u64,
            exact: out.set.exact,
            false_drops: None,
            cache_hits,
            cache_misses,
            cache_pinned_hits,
            latency_ns: self.start.elapsed().as_nanos() as u64,
        });
    }
}
