//! The OID file: position → OID mapping shared by SSF and BSSF.
//!
//! Both signature file organizations identify a matching entry by its
//! *position* (row number). The OID file translates positions to object
//! identifiers: entry `p` lives at page `p / O_p`, offset `(p mod O_p) · 8`,
//! with `O_p = ⌊P/oid⌋ = 512` entries per page — exactly the paper's layout,
//! giving `SC_OID = ⌈N/O_p⌉` pages (63 for N = 32,000).
//!
//! Deletion follows §4.1: a **delete flag** is set in the OID file entry
//! (we use the top bit of the 8-byte word, which is why OIDs are 63-bit).
//! Locating the entry for an OID requires a sequential scan — expected
//! `SC_OID/2` page reads, the paper's `UC_D`.

use setsig_pagestore::{PageIo, PagedFile, PAGE_SIZE};
use std::sync::Arc;

use crate::error::{Error, Result};
use crate::oid::Oid;

/// Bytes per OID entry (the paper's `oid = 8`).
pub const OID_ENTRY_BYTES: usize = 8;

/// Entries per page (the paper's `O_p = 512`).
pub const OIDS_PER_PAGE: u64 = (PAGE_SIZE / OID_ENTRY_BYTES) as u64;

const TOMBSTONE_BIT: u64 = 1 << 63;

/// A positional OID file.
pub struct OidFile {
    file: PagedFile,
    len: u64,
    live: u64,
}

impl OidFile {
    /// Creates an empty OID file named `name` on `io`.
    pub fn create(io: Arc<dyn PageIo>, name: &str) -> Self {
        OidFile {
            file: PagedFile::create(io, name),
            len: 0,
            live: 0,
        }
    }

    /// Number of entries ever appended (including tombstoned ones) — the
    /// paper's `N` once the database is built.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// True if no entry was ever appended.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of live (non-tombstoned) entries.
    pub fn live_count(&self) -> u64 {
        self.live
    }

    /// Pages occupied — the paper's `SC_OID`.
    pub fn storage_pages(&self) -> Result<u32> {
        Ok(self.file.len()?)
    }

    /// The underlying paged file.
    pub fn file(&self) -> &PagedFile {
        &self.file
    }

    fn page_of(pos: u64) -> u32 {
        (pos / OIDS_PER_PAGE) as u32
    }

    fn offset_of(pos: u64) -> usize {
        (pos % OIDS_PER_PAGE) as usize * OID_ENTRY_BYTES
    }

    /// Appends an OID at the end, returning its position.
    ///
    /// Costs exactly **one page write**: a new tail page when the previous
    /// one is full, otherwise an in-place update of the tail page — the OID
    /// file half of the paper's `UC_I = 2` for SSF.
    pub fn append(&mut self, oid: Oid) -> Result<u64> {
        let pos = self.len;
        let page_no = Self::page_of(pos);
        let off = Self::offset_of(pos);
        if pos.is_multiple_of(OIDS_PER_PAGE) {
            let mut page = setsig_pagestore::Page::zeroed();
            page.write_u64(off, oid.raw());
            let appended = self.file.append(&page)?;
            debug_assert_eq!(appended, page_no);
        } else {
            // Blind in-place update of the known tail slot: one write.
            self.file
                .update(page_no, |page| page.write_u64(off, oid.raw()))?;
        }
        self.len += 1;
        self.live += 1;
        Ok(pos)
    }

    /// Reads the entry at `pos`: `Ok(Some(oid))` when live, `Ok(None)` when
    /// tombstoned. Costs one page read.
    pub fn get(&self, pos: u64) -> Result<Option<Oid>> {
        if pos >= self.len {
            return Err(Error::NoSuchEntry(pos));
        }
        let page = self.file.read(Self::page_of(pos))?;
        let raw = page.read_u64(Self::offset_of(pos));
        Ok(if raw & TOMBSTONE_BIT != 0 {
            None
        } else {
            Some(Oid::new(raw))
        })
    }

    /// Pages a [`OidFile::lookup_positions`] over this **sorted** position
    /// list will read — the paper's `LC_OID` charge for the look-up step.
    pub fn pages_touched(positions: &[u64]) -> u64 {
        let mut pages = 0;
        let mut last = None;
        for &p in positions {
            let page = Self::page_of(p);
            if last != Some(page) {
                pages += 1;
                last = Some(page);
            }
        }
        pages
    }

    /// Resolves a **sorted** list of positions to live OIDs, skipping
    /// tombstones, reading each touched page exactly once.
    ///
    /// This is the paper's OID-file look-up step; its measured cost is
    /// `LC_OID` (one read per OID-file page containing at least one
    /// candidate, capped at `SC_OID`).
    // COST: oid_pages pages
    pub fn lookup_positions(&self, positions: &[u64]) -> Result<Vec<(u64, Oid)>> {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be sorted+unique"
        );
        let mut out = Vec::with_capacity(positions.len());
        let mut i = 0;
        while i < positions.len() {
            let pos = positions[i];
            if pos >= self.len {
                return Err(Error::NoSuchEntry(pos));
            }
            let page_no = Self::page_of(pos);
            let page = self.file.read(page_no)?;
            while i < positions.len() && Self::page_of(positions[i]) == page_no {
                let p = positions[i];
                if p >= self.len {
                    return Err(Error::NoSuchEntry(p));
                }
                let raw = page.read_u64(Self::offset_of(p));
                if raw & TOMBSTONE_BIT == 0 {
                    out.push((p, Oid::new(raw)));
                }
                i += 1;
            }
        }
        Ok(out)
    }

    /// Sets the delete flag at `pos`. Costs one page read + one page write.
    // COST: 1 pages
    pub fn mark_deleted_at(&mut self, pos: u64) -> Result<()> {
        if pos >= self.len {
            return Err(Error::NoSuchEntry(pos));
        }
        let off = Self::offset_of(pos);
        let mut was_live = false;
        self.file.modify(Self::page_of(pos), |page| {
            let raw = page.read_u64(off);
            was_live = raw & TOMBSTONE_BIT == 0;
            page.write_u64(off, raw | TOMBSTONE_BIT);
        })?;
        if was_live {
            self.live -= 1;
        }
        Ok(())
    }

    /// Finds the live entry holding `oid` by sequential scan and tombstones
    /// it, returning its position.
    ///
    /// Measured cost: the scan reads pages until the entry is found
    /// (expected `SC_OID/2`, the paper's `UC_D`), plus one write for the
    /// flag.
    // COST: oid_pages pages
    pub fn delete_by_oid(&mut self, oid: Oid) -> Result<u64> {
        let npages = self.file.len()?;
        for page_no in 0..npages {
            let page = self.file.read(page_no)?;
            let base = page_no as u64 * OIDS_PER_PAGE;
            let slots = (self.len - base).min(OIDS_PER_PAGE) as usize;
            for s in 0..slots {
                let raw = page.read_u64(s * OID_ENTRY_BYTES);
                if raw == oid.raw() {
                    let pos = base + s as u64;
                    // One write to set the flag; the page is already in
                    // hand so a real system would not re-read it, but we
                    // route through write() to charge exactly one write.
                    let mut p = page.clone();
                    p.write_u64(s * OID_ENTRY_BYTES, raw | TOMBSTONE_BIT);
                    self.file.write(page_no, &p)?;
                    self.live -= 1;
                    return Ok(pos);
                }
            }
        }
        Err(Error::OidNotFound(oid))
    }

    /// Iterates `(position, oid)` for all live entries, reading each page
    /// once. Used by compaction and integrity checks.
    // COST: oid_pages pages
    pub fn scan_live(&self) -> Result<Vec<(u64, Oid)>> {
        let npages = self.file.len()?;
        let mut out = Vec::with_capacity(self.live as usize);
        for page_no in 0..npages {
            let page = self.file.read(page_no)?;
            let base = page_no as u64 * OIDS_PER_PAGE;
            let slots = (self.len - base).min(OIDS_PER_PAGE) as usize;
            for s in 0..slots {
                let raw = page.read_u64(s * OID_ENTRY_BYTES);
                if raw & TOMBSTONE_BIT == 0 {
                    out.push((base + s as u64, Oid::new(raw)));
                }
            }
        }
        Ok(out)
    }
}

impl std::fmt::Debug for OidFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "OidFile {{ len: {}, live: {} }}", self.len, self.live)
    }
}

impl OidFile {
    /// Appends many OIDs at once, writing each touched page exactly once.
    ///
    /// This is the bulk-load path used when building a database: `⌈n/O_p⌉`
    /// page writes instead of one write per OID.
    pub fn bulk_append(&mut self, oids: &[Oid]) -> Result<u64> {
        let first_pos = self.len;
        let mut i = 0usize;
        while i < oids.len() {
            let pos = self.len;
            let page_no = Self::page_of(pos);
            let start_slot = (pos % OIDS_PER_PAGE) as usize;
            let take = ((OIDS_PER_PAGE as usize) - start_slot).min(oids.len() - i);
            let chunk = &oids[i..i + take];
            if start_slot == 0 {
                let mut page = setsig_pagestore::Page::zeroed();
                for (s, oid) in chunk.iter().enumerate() {
                    page.write_u64(s * OID_ENTRY_BYTES, oid.raw());
                }
                self.file.append(&page)?;
            } else {
                self.file.update(page_no, |page| {
                    for (s, oid) in chunk.iter().enumerate() {
                        page.write_u64((start_slot + s) * OID_ENTRY_BYTES, oid.raw());
                    }
                })?;
            }
            self.len += take as u64;
            self.live += take as u64;
            i += take;
        }
        Ok(first_pos)
    }
}

impl OidFile {
    /// Reconstructs an OID file from its backing file and checkpointed
    /// counters (see the facility `sync_meta`/`open` pairs).
    pub fn reopen(file: PagedFile, len: u64, live: u64) -> Self {
        OidFile { file, len, live }
    }

    /// The counters a catalog checkpoint must persist.
    pub fn state(&self) -> (u64, u64) {
        (self.len, self.live)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn oidfile() -> (Arc<Disk>, OidFile) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        (disk, OidFile::create(io, "oids"))
    }

    #[test]
    fn append_and_get() {
        let (_d, mut f) = oidfile();
        for i in 0..10u64 {
            assert_eq!(f.append(Oid::new(i * 7)).unwrap(), i);
        }
        assert_eq!(f.len(), 10);
        assert_eq!(f.live_count(), 10);
        assert_eq!(f.get(3).unwrap(), Some(Oid::new(21)));
        assert!(f.get(10).is_err());
    }

    #[test]
    fn append_costs_one_write() {
        let (disk, mut f) = oidfile();
        // First append creates the page.
        let before = disk.snapshot();
        f.append(Oid::new(1)).unwrap();
        let d = disk.snapshot().since(before);
        assert_eq!((d.reads, d.writes), (0, 1));
        // Subsequent appends blind-update the tail page.
        let before = disk.snapshot();
        f.append(Oid::new(2)).unwrap();
        let d = disk.snapshot().since(before);
        assert_eq!((d.reads, d.writes), (0, 1));
    }

    #[test]
    fn page_boundary_allocates_new_page() {
        let (_d, mut f) = oidfile();
        for i in 0..OIDS_PER_PAGE + 1 {
            f.append(Oid::new(i)).unwrap();
        }
        assert_eq!(f.storage_pages().unwrap(), 2);
        assert_eq!(f.get(OIDS_PER_PAGE).unwrap(), Some(Oid::new(OIDS_PER_PAGE)));
        assert_eq!(
            f.get(OIDS_PER_PAGE - 1).unwrap(),
            Some(Oid::new(OIDS_PER_PAGE - 1))
        );
    }

    #[test]
    fn lookup_positions_batches_page_reads() {
        let (disk, mut f) = oidfile();
        for i in 0..OIDS_PER_PAGE * 2 {
            f.append(Oid::new(i)).unwrap();
        }
        disk.reset_stats();
        // Four positions on page 0, one on page 1: exactly 2 page reads.
        let got = f.lookup_positions(&[0, 1, 2, 3, OIDS_PER_PAGE]).unwrap();
        assert_eq!(got.len(), 5);
        assert_eq!(disk.snapshot().reads, 2);
        assert_eq!(got[4], (OIDS_PER_PAGE, Oid::new(OIDS_PER_PAGE)));
    }

    #[test]
    fn tombstones_are_skipped() {
        let (_d, mut f) = oidfile();
        for i in 0..5u64 {
            f.append(Oid::new(i)).unwrap();
        }
        f.mark_deleted_at(2).unwrap();
        assert_eq!(f.live_count(), 4);
        assert_eq!(f.get(2).unwrap(), None);
        let got = f.lookup_positions(&[1, 2, 3]).unwrap();
        assert_eq!(got, vec![(1, Oid::new(1)), (3, Oid::new(3))]);
        // Double delete is idempotent.
        f.mark_deleted_at(2).unwrap();
        assert_eq!(f.live_count(), 4);
    }

    #[test]
    fn delete_by_oid_scans_and_flags() {
        let (disk, mut f) = oidfile();
        for i in 0..OIDS_PER_PAGE + 10 {
            f.append(Oid::new(i)).unwrap();
        }
        disk.reset_stats();
        // Entry on the second page: scan reads 2 pages, then 1 write.
        let pos = f.delete_by_oid(Oid::new(OIDS_PER_PAGE + 5)).unwrap();
        assert_eq!(pos, OIDS_PER_PAGE + 5);
        let d = disk.snapshot();
        assert_eq!((d.reads, d.writes), (2, 1));
        assert_eq!(f.get(pos).unwrap(), None);
        // Deleting an absent OID reports OidNotFound.
        assert!(matches!(
            f.delete_by_oid(Oid::new(999_999)),
            Err(Error::OidNotFound(_))
        ));
    }

    #[test]
    fn scan_live_returns_survivors_in_order() {
        let (_d, mut f) = oidfile();
        for i in 0..6u64 {
            f.append(Oid::new(i * 10)).unwrap();
        }
        f.mark_deleted_at(0).unwrap();
        f.mark_deleted_at(4).unwrap();
        let live = f.scan_live().unwrap();
        assert_eq!(
            live,
            vec![
                (1, Oid::new(10)),
                (2, Oid::new(20)),
                (3, Oid::new(30)),
                (5, Oid::new(50))
            ]
        );
    }
}
