//! Word-level slice kernels: the one place bytes become `u64` words.
//!
//! Every signature-scan hot path — the BSSF slice AND/OR loops, the SSF
//! row scan, the overlap counters, and [`Bitmap`](crate::Bitmap)'s
//! byte-bridge methods — combines serialized (LSB-first) signature bytes
//! with in-memory `u64` words. This module is the single implementation of
//! that bridge, so the layout and tail-masking rules live in exactly one
//! place:
//!
//! * **Word layout.** Word `wi` of a byte buffer covers bytes
//!   `8·wi .. 8·wi + 8`, little-endian, zero-padded past the end of the
//!   buffer ([`le_word`]). This matches `u64::from_le_bytes`, so bit `i`
//!   of the bitmap is bit `i % 64` of word `i / 64` — the same layout
//!   [`Bitmap`](crate::Bitmap) stores internally.
//! * **Tail-mask contract.** A width of `nbits` occupies
//!   [`words_for`]`(nbits)` words; bits at positions `>= nbits` in the
//!   last word are *padding*. Kernels that read external bytes mask the
//!   padding with [`tail_mask`] before it can influence a result, and
//!   kernels that write an accumulator leave it *canonical* (padding bits
//!   zero) so `count_ones`/`is_zero`-style folds need no re-masking.
//!   `AND` is the one exception that needs no mask: padding in the
//!   incoming bytes can only clear accumulator bits that are already
//!   zero in a canonical accumulator.
//!
//! The loops run on `chunks_exact(8)` so the compiler sees fixed-size,
//! branch-free bodies it can autovectorize; only the final partial word
//! takes the padded [`le_word`] path. The `reference` submodule keeps the
//! pre-kernel byte/bit-granular loops as the differential-testing oracle
//! and the benchmark baseline.

/// Words needed to hold `nbits` bits: `⌈nbits/64⌉`.
#[inline]
pub fn words_for(nbits: u32) -> usize {
    (nbits as usize).div_ceil(64)
}

/// The valid-bit mask for the **last** word of a width-`nbits` bitmap:
/// all ones when the width fills the word, otherwise ones at positions
/// `0 .. nbits % 64`.
#[inline]
pub fn tail_mask(nbits: u32) -> u64 {
    match nbits % 64 {
        0 => !0u64,
        rem => (1u64 << rem) - 1,
    }
}

/// Clears the padding bits (positions `>= nbits`) of a canonical word
/// buffer's last word. A no-op when `nbits` is a multiple of 64.
#[inline]
pub fn mask_tail(words: &mut [u64], nbits: u32) {
    if let Some(last) = words.last_mut() {
        *last &= tail_mask(nbits);
    }
}

/// Word `wi` of an LSB-first byte buffer, zero-padded past the end.
///
/// This is the *tail* path: the chunked loops below use it only for the
/// final partial word (and out-of-range words, which read as zero).
#[inline]
pub fn le_word(bytes: &[u8], wi: usize) -> u64 {
    let start = wi * 8;
    if start + 8 <= bytes.len() {
        u64::from_le_bytes(bytes[start..start + 8].try_into().expect("8 bytes"))
    } else if start < bytes.len() {
        let mut buf = [0u8; 8];
        buf[..bytes.len() - start].copy_from_slice(&bytes[start..]);
        u64::from_le_bytes(buf)
    } else {
        0
    }
}

/// Splits `bytes` into its full 8-byte words and the partial tail word
/// (zero-padded). The iterator body is branch-free so the combine loops
/// autovectorize.
#[inline]
fn full_words(bytes: &[u8]) -> (impl Iterator<Item = u64> + '_, Option<u64>) {
    let chunks = bytes.chunks_exact(8);
    let tail = chunks.remainder();
    let tail_word = if tail.is_empty() {
        None
    } else {
        let mut buf = [0u8; 8];
        buf[..tail.len()].copy_from_slice(tail);
        Some(u64::from_le_bytes(buf))
    };
    let words = chunks.map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
    (words, tail_word)
}

/// `acc &= bytes`, word at a time, returning the OR-fold of the result —
/// zero exactly when the accumulator emptied. The fused fold is what lets
/// the BSSF AND loop early-exit without a second pass over the words.
///
/// Bytes past the end of `bytes` read as zero, so accumulator words with
/// no corresponding bytes are cleared. No tail mask is needed: padding in
/// `bytes` can only clear padding bits, and a canonical accumulator has
/// none set.
// HOT-PATH: kernel.and
pub fn and_assign(acc: &mut [u64], bytes: &[u8]) -> u64 {
    let (words, tail) = full_words(bytes);
    let mut alive = 0u64;
    let mut covered = 0usize;
    for (a, w) in acc.iter_mut().zip(words) {
        *a &= w;
        alive |= *a;
        covered += 1;
    }
    if let (Some(a), Some(w)) = (acc.get_mut(covered), tail) {
        *a &= w;
        alive |= *a;
        covered += 1;
    }
    for a in acc.iter_mut().skip(covered) {
        *a = 0;
    }
    alive
}

/// `acc |= bytes`, word at a time, with the tail mask applied so padding
/// bits in the final byte never leak into the accumulator (`nbits` is the
/// accumulator's width; `acc.len()` must be [`words_for`]`(nbits)`).
// HOT-PATH: kernel.or
pub fn or_assign(acc: &mut [u64], bytes: &[u8], nbits: u32) {
    let (words, tail) = full_words(bytes);
    let mut covered = 0usize;
    for (a, w) in acc.iter_mut().zip(words) {
        *a |= w;
        covered += 1;
    }
    if let (Some(a), Some(w)) = (acc.get_mut(covered), tail) {
        *a |= w;
    }
    mask_tail(acc, nbits);
}

/// Fills `acc` from `bytes` (the deserialization kernel behind
/// [`Bitmap::from_bytes`](crate::Bitmap::from_bytes)), masking the tail so
/// the result is canonical.
pub fn fill(acc: &mut [u64], bytes: &[u8], nbits: u32) {
    let (words, tail) = full_words(bytes);
    let mut covered = 0usize;
    for (a, w) in acc.iter_mut().zip(words) {
        *a = w;
        covered += 1;
    }
    if let (Some(a), Some(w)) = (acc.get_mut(covered), tail) {
        *a = w;
        covered += 1;
    }
    for a in acc.iter_mut().skip(covered) {
        *a = 0;
    }
    mask_tail(acc, nbits);
}

/// True when every set bit of the canonical `query` words is also set in
/// the serialized `row` — the `T ⊇ Q` row-match rule (`query & !row == 0`
/// per word). Query words beyond the row bytes compare against zero.
// HOT-PATH: kernel.is_covered_by
pub fn is_covered_by(query: &[u64], row: &[u8]) -> bool {
    let (words, tail) = full_words(row);
    let mut q = query.iter();
    for w in words {
        match q.next() {
            Some(&qw) => {
                if qw & !w != 0 {
                    return false;
                }
            }
            None => return true,
        }
    }
    if let Some(w) = tail {
        match q.next() {
            Some(&qw) => {
                if qw & !w != 0 {
                    return false;
                }
            }
            None => return true,
        }
    }
    // Any remaining query words face all-zero row bytes.
    q.all(|&qw| qw == 0)
}

/// True when every set bit of the serialized `row` (padding masked) is
/// also set in the canonical `query` words — the `T ⊆ Q` row-match rule
/// (`row & !query == 0` per word, after tail masking the row).
// HOT-PATH: kernel.covers
pub fn covers(query: &[u64], row: &[u8], nbits: u32) -> bool {
    masked_words(row, nbits)
        .enumerate()
        .all(|(wi, w)| w & !query.get(wi).copied().unwrap_or(0) == 0)
}

/// True when the serialized `row` equals the canonical `query` words
/// bit-for-bit over the width (`nbits`), padding ignored.
// HOT-PATH: kernel.eq
pub fn eq(query: &[u64], row: &[u8], nbits: u32) -> bool {
    masked_words(row, nbits)
        .enumerate()
        .all(|(wi, w)| w == query.get(wi).copied().unwrap_or(0))
}

/// Popcount of `query & row` — the overlap row-match kernel. The query
/// words are canonical, so row padding ANDs against zero and needs no
/// mask.
// HOT-PATH: kernel.popcount_and
pub fn intersection_count(query: &[u64], row: &[u8]) -> u32 {
    let (words, tail) = full_words(row);
    let mut q = query.iter();
    let mut n = 0u32;
    for w in words {
        match q.next() {
            Some(&qw) => n += (qw & w).count_ones(),
            None => return n,
        }
    }
    if let (Some(w), Some(&qw)) = (tail, q.next()) {
        n += (qw & w).count_ones();
    }
    n
}

/// The first [`words_for`]`(nbits)` words of `row`, with the tail mask
/// applied to the last — the canonicalizing read used by the match
/// kernels whose result set bits in `row` could otherwise influence.
#[inline]
fn masked_words(row: &[u8], nbits: u32) -> impl Iterator<Item = u64> + '_ {
    let nwords = words_for(nbits);
    (0..nwords).map(move |wi| {
        let w = le_word(row, wi);
        if wi + 1 == nwords {
            w & tail_mask(nbits)
        } else {
            w
        }
    })
}

/// Iterates the set-bit positions of an LSB-first serialized bitmap of
/// width `nbits`, ascending, word at a time. The last word is tail-masked
/// up front, so the per-bit loop needs no range check.
// HOT-PATH: kernel.iter_ones
pub fn iter_ones(nbits: u32, bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    let nbytes = (nbits as usize).div_ceil(8);
    let bytes = &bytes[..nbytes.min(bytes.len())];
    let nwords = words_for(nbits);
    (0..nwords).flat_map(move |wi| {
        let mut w = le_word(bytes, wi);
        if wi + 1 == nwords {
            w &= tail_mask(nbits);
        }
        std::iter::from_fn(move || {
            if w == 0 {
                None
            } else {
                let bit = w.trailing_zeros();
                w &= w - 1;
                Some(wi as u32 * 64 + bit)
            }
        })
    })
}

/// `counts[p] += 1` for every set bit `p` of the serialized bitmap, word
/// at a time — the overlap scan's per-slice counting kernel. Counts are
/// `u32`: per-row overlap counts are bounded by the slice count `F`
/// (itself a `u32`), so unlike a `u16` they can never wrap for any legal
/// signature geometry.
// HOT-PATH: kernel.count_ones
pub fn accumulate_ones(counts: &mut [u32], bytes: &[u8]) {
    let nbits = counts.len() as u32;
    let nwords = words_for(nbits);
    for wi in 0..nwords {
        let mut w = le_word(bytes, wi);
        if wi + 1 == nwords {
            w &= tail_mask(nbits);
        }
        while w != 0 {
            let bit = w.trailing_zeros() as usize;
            w &= w - 1;
            if let Some(c) = counts.get_mut(wi * 64 + bit) {
                *c += 1;
            }
        }
    }
}

/// The pre-kernel byte/bit-granular loops, kept verbatim in spirit as the
/// differential-testing oracle and the benchmark baseline. Each function
/// mirrors one word kernel above and must stay bit-identical to it.
///
/// Compiled only under `cfg(test)` and the `bench` feature: production
/// binaries ship the word kernels alone, so a scan can never silently
/// fall back to the byte loops.
#[cfg(any(test, feature = "bench"))]
pub mod reference {
    /// Byte-loop `acc &= bytes` over serialized buffers; `acc` bytes past
    /// `bytes` are cleared (matching the word kernel's zero padding).
    pub fn and_assign(acc: &mut [u8], bytes: &[u8]) {
        let n = acc.len().min(bytes.len());
        for (a, b) in acc[..n].iter_mut().zip(bytes) {
            *a &= b;
        }
        for a in &mut acc[n..] {
            *a = 0;
        }
    }

    /// Byte-loop `acc |= bytes` with per-bit tail masking.
    pub fn or_assign(acc: &mut [u8], bytes: &[u8], nbits: u32) {
        let n = acc.len().min(bytes.len());
        for (a, b) in acc[..n].iter_mut().zip(bytes) {
            *a |= b;
        }
        mask_tail_bytes(acc, nbits);
    }

    /// Clears bits at positions `>= nbits` with a per-bit loop.
    pub fn mask_tail_bytes(acc: &mut [u8], nbits: u32) {
        for (i, a) in acc.iter_mut().enumerate() {
            for bit in 0..8 {
                if (i * 8 + bit) as u32 >= nbits {
                    *a &= !(1 << bit);
                }
            }
        }
    }

    /// Bit-loop `T ⊇ Q` row match: every query bit set in the row.
    pub fn is_covered_by(query: &[u8], row: &[u8], nbits: u32) -> bool {
        (0..nbits).all(|i| !get_bit(query, i) || get_bit(row, i))
    }

    /// Bit-loop `T ⊆ Q` row match: every row bit (within the width) set
    /// in the query.
    pub fn covers(query: &[u8], row: &[u8], nbits: u32) -> bool {
        (0..nbits).all(|i| !get_bit(row, i) || get_bit(query, i))
    }

    /// Bit-loop equality over the width.
    pub fn eq(query: &[u8], row: &[u8], nbits: u32) -> bool {
        (0..nbits).all(|i| get_bit(query, i) == get_bit(row, i))
    }

    /// Bit-loop popcount of the intersection.
    pub fn intersection_count(query: &[u8], row: &[u8], nbits: u32) -> u32 {
        (0..nbits)
            .filter(|&i| get_bit(query, i) && get_bit(row, i))
            .count() as u32
    }

    /// Bit-loop ascending set-position scan.
    pub fn iter_ones(nbits: u32, bytes: &[u8]) -> Vec<u32> {
        (0..nbits).filter(|&i| get_bit(bytes, i)).collect()
    }

    /// Bit `i` of an LSB-first buffer; bits past the end read as zero.
    fn get_bit(bytes: &[u8], i: u32) -> bool {
        bytes
            .get((i / 8) as usize)
            .is_some_and(|b| b >> (i % 8) & 1 == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Widths chosen to straddle every alignment case: sub-byte, sub-word,
    /// exact word, word+byte, word+bit, multi-word.
    const WIDTHS: [u32; 9] = [1, 7, 8, 63, 64, 65, 100, 128, 509];

    fn pattern(nbits: u32, salt: u64) -> Vec<u8> {
        let nbytes = (nbits as usize).div_ceil(8);
        (0..nbytes)
            .map(|i| (i as u64).wrapping_mul(0x9e37_79b9).wrapping_add(salt) as u8)
            .collect()
    }

    fn to_words(bytes: &[u8], nbits: u32) -> Vec<u64> {
        let mut w = vec![0u64; words_for(nbits)];
        fill(&mut w, bytes, nbits);
        w
    }

    fn to_bytes(words: &[u64], nbits: u32) -> Vec<u8> {
        let nbytes = (nbits as usize).div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for (i, b) in out.iter_mut().enumerate() {
            *b = (words[i / 8] >> ((i % 8) * 8)) as u8;
        }
        out
    }

    #[test]
    fn tail_mask_covers_all_remainders() {
        assert_eq!(tail_mask(64), !0);
        assert_eq!(tail_mask(128), !0);
        assert_eq!(tail_mask(1), 1);
        assert_eq!(tail_mask(65), 1);
        assert_eq!(tail_mask(70), 0b11_1111);
    }

    #[test]
    fn and_matches_reference_and_reports_liveness() {
        for &nbits in &WIDTHS {
            let a = pattern(nbits, 3);
            let b = pattern(nbits, 5);
            let mut acc = to_words(&a, nbits);
            let alive = and_assign(&mut acc, &b);
            let mut rf = a.clone();
            reference::and_assign(&mut rf, &b);
            reference::mask_tail_bytes(&mut rf, nbits);
            assert_eq!(to_bytes(&acc, nbits), rf, "width {nbits}");
            assert_eq!(alive != 0, acc.iter().any(|&w| w != 0), "width {nbits}");
        }
    }

    #[test]
    fn and_clears_words_past_short_input() {
        let mut acc = vec![!0u64; 3];
        let alive = and_assign(&mut acc, &[0xff, 0xff]);
        assert_eq!(acc, vec![0xffff, 0, 0]);
        assert_ne!(alive, 0);
        let mut acc = vec![!0u64; 2];
        assert_eq!(and_assign(&mut acc, &[]), 0);
        assert_eq!(acc, vec![0, 0]);
    }

    #[test]
    fn or_masks_padding_garbage() {
        for &nbits in &WIDTHS {
            let mut acc = vec![0u64; words_for(nbits)];
            let all = vec![0xffu8; (nbits as usize).div_ceil(8)];
            or_assign(&mut acc, &all, nbits);
            let ones: u32 = acc.iter().map(|w| w.count_ones()).sum();
            assert_eq!(ones, nbits, "width {nbits}");
        }
    }

    #[test]
    fn fill_is_canonical() {
        for &nbits in &WIDTHS {
            let bytes = vec![0xffu8; (nbits as usize).div_ceil(8)];
            let w = to_words(&bytes, nbits);
            assert_eq!(
                w.iter().map(|w| w.count_ones()).sum::<u32>(),
                nbits,
                "width {nbits}"
            );
        }
    }

    #[test]
    fn match_kernels_agree_with_bit_loops() {
        for &nbits in &WIDTHS {
            for salt in 0..4u64 {
                let q = pattern(nbits, salt);
                let r = pattern(nbits, salt ^ 0xa5);
                let qw = to_words(&q, nbits);
                // The bit-loop oracle reads raw bytes; mask the query the
                // same way `to_words` does before comparing.
                let qm = to_bytes(&qw, nbits);
                assert_eq!(
                    is_covered_by(&qw, &r),
                    reference::is_covered_by(&qm, &r, nbits),
                    "⊇ width {nbits} salt {salt}"
                );
                assert_eq!(
                    covers(&qw, &r, nbits),
                    reference::covers(&qm, &r, nbits),
                    "⊆ width {nbits} salt {salt}"
                );
                assert_eq!(
                    eq(&qw, &r, nbits),
                    reference::eq(&qm, &r, nbits),
                    "eq width {nbits} salt {salt}"
                );
                assert_eq!(
                    intersection_count(&qw, &r),
                    reference::intersection_count(&qm, &r, nbits),
                    "popcount width {nbits} salt {salt}"
                );
                assert_eq!(
                    iter_ones(nbits, &r).collect::<Vec<_>>(),
                    reference::iter_ones(nbits, &r),
                    "iter_ones width {nbits} salt {salt}"
                );
            }
        }
    }

    #[test]
    fn short_rows_read_as_zero_padded() {
        // An SSF row buffer is exactly sig_bytes long; a query word past it
        // must compare against zeros, not panic.
        let q = to_words(&[0b1, 0, 0, 0, 0, 0, 0, 0, 0b1], 65);
        assert!(!is_covered_by(&q, &[0b1]));
        assert!(is_covered_by(&to_words(&[0b1], 65), &[0b1]));
        assert!(covers(&q, &[0b1], 65));
        assert_eq!(intersection_count(&q, &[0b1]), 1);
    }

    #[test]
    fn accumulate_ones_counts_every_position_once() {
        let mut counts = vec![0u32; 20];
        let bm = [0b1000_0001u8, 0b0000_0001, 0b1111_1000];
        accumulate_ones(&mut counts, &bm);
        accumulate_ones(&mut counts, &bm);
        assert_eq!(counts[0], 2);
        assert_eq!(counts[7], 2);
        assert_eq!(counts[8], 2);
        assert_eq!(counts[19], 2);
        assert_eq!(counts.iter().sum::<u32>(), 2 * 4); // bits 20+ masked off
    }

    #[test]
    fn accumulate_ones_survives_the_u16_boundary() {
        // Regression for the overlap-count truncation: 65,536 single-bit
        // accumulations must count 65,536, not wrap to 0 as a u16 did.
        let mut counts = vec![0u32; 8];
        for _ in 0..=u16::MAX as u32 {
            accumulate_ones(&mut counts, &[0b1]);
        }
        assert_eq!(counts[0], u16::MAX as u32 + 1);
        assert!(counts[0] > u16::MAX as u32, "count must not wrap at 2^16");
    }
}
