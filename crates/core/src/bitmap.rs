//! A fixed-width bit vector used for signatures and slice combination.

use crate::kernel;

/// A fixed-width bit vector backed by 64-bit words.
///
/// `Bitmap` is the in-memory representation of signatures ([`Signature`]
/// wraps one) and of combined BSSF slice results. The byte serialization is
/// LSB-first within each byte, matching the bit layout of
/// [`Page::get_bit`](setsig_pagestore::Page::get_bit), so signatures move
/// between memory and disk pages without reshuffling.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Bitmap {
    nbits: u32,
    words: Vec<u64>,
}

impl Bitmap {
    /// Creates an all-zero bitmap of `nbits` bits.
    pub fn zeroed(nbits: u32) -> Self {
        Bitmap {
            nbits,
            words: vec![0; Self::words_for(nbits)],
        }
    }

    /// Creates an all-one bitmap of `nbits` bits.
    pub fn ones(nbits: u32) -> Self {
        let mut bm = Bitmap {
            nbits,
            words: vec![!0u64; Self::words_for(nbits)],
        };
        bm.mask_tail();
        bm
    }

    /// Creates a bitmap with exactly the given bit positions set.
    ///
    /// Panics if a position is out of range.
    pub fn from_positions(nbits: u32, positions: &[u32]) -> Self {
        let mut bm = Bitmap::zeroed(nbits);
        for &p in positions {
            bm.set(p, true);
        }
        bm
    }

    fn words_for(nbits: u32) -> usize {
        kernel::words_for(nbits)
    }

    /// Clears any bits beyond `nbits` in the last word.
    fn mask_tail(&mut self) {
        kernel::mask_tail(&mut self.words, self.nbits);
    }

    /// Width in bits.
    #[inline]
    pub fn len(&self) -> u32 {
        self.nbits
    }

    /// True when the width is zero.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Tests bit `i`. Panics if out of range.
    #[inline]
    pub fn get(&self, i: u32) -> bool {
        assert!(i < self.nbits, "bit {i} out of range ({})", self.nbits);
        (self.words[(i / 64) as usize] >> (i % 64)) & 1 == 1
    }

    /// Sets bit `i` to `v`. Panics if out of range.
    #[inline]
    pub fn set(&mut self, i: u32, v: bool) {
        assert!(i < self.nbits, "bit {i} out of range ({})", self.nbits);
        let word = &mut self.words[(i / 64) as usize];
        let mask = 1u64 << (i % 64);
        if v {
            *word |= mask;
        } else {
            *word &= !mask;
        }
    }

    /// Number of set bits — the *weight* of a signature.
    pub fn count_ones(&self) -> u32 {
        self.words.iter().map(|w| w.count_ones()).sum()
    }

    /// True if no bit is set.
    pub fn is_zero(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    fn assert_same_width(&self, other: &Bitmap) {
        assert_eq!(
            self.nbits, other.nbits,
            "bitmap width mismatch: {} vs {}",
            self.nbits, other.nbits
        );
    }

    /// `self |= other` — superimposing an element signature onto a set
    /// signature.
    pub fn or_assign(&mut self, other: &Bitmap) {
        self.assert_same_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// `self &= other` — combining BSSF slices for a `T ⊇ Q` scan.
    pub fn and_assign(&mut self, other: &Bitmap) {
        self.assert_same_width(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// Returns `self | other`.
    pub fn or(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.or_assign(other);
        out
    }

    /// Returns `self & other`.
    pub fn and(&self, other: &Bitmap) -> Bitmap {
        let mut out = self.clone();
        out.and_assign(other);
        out
    }

    /// True if every set bit of `other` is also set in `self` — the match
    /// rule "for all bit positions set in the query signature, the target
    /// signature has 1" with `self` as target.
    pub fn covers(&self, other: &Bitmap) -> bool {
        self.assert_same_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| b & !a == 0)
    }

    /// True if `self` and `other` share at least one set bit.
    pub fn intersects(&self, other: &Bitmap) -> bool {
        self.assert_same_width(other);
        self.words.iter().zip(&other.words).any(|(a, b)| a & b != 0)
    }

    /// Number of bits set in both.
    pub fn intersection_count(&self, other: &Bitmap) -> u32 {
        self.assert_same_width(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones())
            .sum()
    }

    /// Iterates the positions of set bits in ascending order.
    pub fn iter_ones(&self) -> impl Iterator<Item = u32> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            let mut w = w;
            std::iter::from_fn(move || {
                if w == 0 {
                    None
                } else {
                    let bit = w.trailing_zeros();
                    w &= w - 1;
                    Some(wi as u32 * 64 + bit)
                }
            })
        })
    }

    /// Iterates the positions of clear bits in ascending order.
    pub fn iter_zeros(&self) -> impl Iterator<Item = u32> + '_ {
        (0..self.nbits).filter(move |&i| !self.get(i))
    }

    /// Serializes to `ceil(nbits/8)` bytes, LSB-first within each byte.
    pub fn to_bytes(&self) -> Vec<u8> {
        let nbytes = (self.nbits as usize).div_ceil(8);
        let mut out = vec![0u8; nbytes];
        for (i, b) in out.iter_mut().enumerate() {
            let word = self.words[i / 8];
            *b = (word >> ((i % 8) * 8)) as u8;
        }
        out
    }

    /// Deserializes from the [`to_bytes`](Bitmap::to_bytes) layout. Bits
    /// beyond `nbits` in the final byte are ignored.
    pub fn from_bytes(nbits: u32, bytes: &[u8]) -> Bitmap {
        let nbytes = (nbits as usize).div_ceil(8);
        assert!(
            bytes.len() >= nbytes,
            "need {nbytes} bytes for {nbits} bits"
        );
        let mut bm = Bitmap::zeroed(nbits);
        kernel::fill(&mut bm.words, &bytes[..nbytes], nbits);
        bm
    }

    /// The backing 64-bit words, least-significant position first.
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    fn assert_byte_width(&self, bytes: &[u8]) -> usize {
        let nbytes = (self.nbits as usize).div_ceil(8);
        assert!(
            bytes.len() >= nbytes,
            "need {nbytes} bytes for {} bits",
            self.nbits
        );
        nbytes
    }

    /// `self &= bytes` — word-at-a-time AND straight from the serialized
    /// (LSB-first) form, the BSSF slice-combining kernel: no intermediate
    /// `Bitmap` is materialized for the incoming slice.
    pub fn and_assign_bytes(&mut self, bytes: &[u8]) {
        let nbytes = self.assert_byte_width(bytes);
        kernel::and_assign(&mut self.words, &bytes[..nbytes]);
    }

    /// Like [`and_assign_bytes`](Bitmap::and_assign_bytes) but also reports
    /// whether any bit survived — the fused liveness check the BSSF AND loop
    /// uses to early-exit without a second pass over the words.
    pub fn and_assign_bytes_alive(&mut self, bytes: &[u8]) -> bool {
        let nbytes = self.assert_byte_width(bytes);
        kernel::and_assign(&mut self.words, &bytes[..nbytes]) != 0
    }

    /// `self |= bytes` — the OR counterpart of
    /// [`and_assign_bytes`](Bitmap::and_assign_bytes), used by the `T ⊆ Q`
    /// slice scan.
    pub fn or_assign_bytes(&mut self, bytes: &[u8]) {
        let nbytes = self.assert_byte_width(bytes);
        kernel::or_assign(&mut self.words, &bytes[..nbytes], self.nbits);
    }

    /// True if every set bit of `self` is also set in the serialized bitmap
    /// `bytes` — the `T ⊇ Q` row-match rule with `self` as the query
    /// signature and `bytes` a stored row, evaluated word-at-a-time.
    pub fn is_covered_by_bytes(&self, bytes: &[u8]) -> bool {
        let nbytes = self.assert_byte_width(bytes);
        kernel::is_covered_by(&self.words, &bytes[..nbytes])
    }

    /// True if every set bit of the serialized bitmap `bytes` is also set in
    /// `self` — the `T ⊆ Q` row-match rule with `self` as the query
    /// signature.
    pub fn covers_bytes(&self, bytes: &[u8]) -> bool {
        let nbytes = self.assert_byte_width(bytes);
        kernel::covers(&self.words, &bytes[..nbytes], self.nbits)
    }

    /// True if the serialized bitmap `bytes` equals `self` bit-for-bit
    /// (padding bits beyond the width ignored).
    pub fn eq_bytes(&self, bytes: &[u8]) -> bool {
        let nbytes = self.assert_byte_width(bytes);
        kernel::eq(&self.words, &bytes[..nbytes], self.nbits)
    }

    /// Popcount of the intersection with the serialized bitmap `bytes` —
    /// the overlap row-match kernel.
    pub fn intersection_count_bytes(&self, bytes: &[u8]) -> u32 {
        let nbytes = self.assert_byte_width(bytes);
        kernel::intersection_count(&self.words, &bytes[..nbytes])
    }
}

/// Iterates the set-bit positions of an LSB-first serialized bitmap of
/// width `nbits`, ascending, without materializing a [`Bitmap`] — the
/// overlap scan's per-slice counting kernel. Padding bits beyond `nbits`
/// in the final byte are ignored.
pub fn iter_ones_bytes(nbits: u32, bytes: &[u8]) -> impl Iterator<Item = u32> + '_ {
    kernel::iter_ones(nbits, bytes)
}

impl std::fmt::Debug for Bitmap {
    /// Renders as a bit string, most significant position last — e.g. the
    /// paper's Figure 1 signature `01000100` is `Bitmap(00100010)` reversed;
    /// we print position 0 first for unambiguous indexing.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Bitmap[{}; ", self.nbits)?;
        let limit = self.nbits.min(64);
        for i in 0..limit {
            write!(f, "{}", if self.get(i) { '1' } else { '0' })?;
        }
        if self.nbits > 64 {
            write!(f, "…")?;
        }
        write!(f, "]")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeroed_and_ones() {
        let z = Bitmap::zeroed(100);
        assert_eq!(z.count_ones(), 0);
        assert!(z.is_zero());
        let o = Bitmap::ones(100);
        assert_eq!(o.count_ones(), 100);
        assert!(o.get(99));
    }

    #[test]
    fn ones_masks_tail_bits() {
        // Width not a multiple of 64: bits past the width must not leak
        // into count_ones or covers.
        let o = Bitmap::ones(70);
        assert_eq!(o.count_ones(), 70);
    }

    #[test]
    fn set_get_roundtrip() {
        let mut bm = Bitmap::zeroed(129);
        for i in [0u32, 63, 64, 65, 128] {
            assert!(!bm.get(i));
            bm.set(i, true);
            assert!(bm.get(i));
        }
        assert_eq!(bm.count_ones(), 5);
        bm.set(64, false);
        assert_eq!(bm.count_ones(), 4);
        assert!(!bm.get(64));
    }

    #[test]
    fn from_positions() {
        let bm = Bitmap::from_positions(16, &[1, 3, 5, 3]);
        assert_eq!(bm.count_ones(), 3);
        assert!(bm.get(1) && bm.get(3) && bm.get(5));
    }

    #[test]
    fn covers_matches_subset_semantics() {
        let target = Bitmap::from_positions(8, &[1, 2, 3, 5, 6, 7]);
        let query = Bitmap::from_positions(8, &[1, 3, 5]);
        assert!(target.covers(&query));
        assert!(!query.covers(&target));
        let other = Bitmap::from_positions(8, &[0, 1]);
        assert!(!target.covers(&other));
        // Everything covers the empty signature.
        assert!(target.covers(&Bitmap::zeroed(8)));
        assert!(Bitmap::zeroed(8).covers(&Bitmap::zeroed(8)));
    }

    #[test]
    fn paper_figure1_example() {
        // Query signature 01010100 (positions 1,3,5 reading left-to-right
        // as positions 0..7). Target "01101011" covers it? Using the
        // paper's left-to-right rendering as positions 0..=7:
        // query = {1,3,5}; actual-drop target = {1,2,4,6,7}... The paper's
        // strings are illustrative; we verify the rule itself: a target
        // that has 1s everywhere the query does matches, one that lacks a
        // query bit does not.
        let query = Bitmap::from_positions(8, &[1, 3, 5]);
        let matching = Bitmap::from_positions(8, &[1, 2, 3, 5, 7]);
        let missing = Bitmap::from_positions(8, &[1, 3, 6]);
        assert!(matching.covers(&query));
        assert!(!missing.covers(&query));
    }

    #[test]
    fn or_and_ops() {
        let a = Bitmap::from_positions(128, &[0, 64, 127]);
        let b = Bitmap::from_positions(128, &[1, 64]);
        let o = a.or(&b);
        assert_eq!(o.count_ones(), 4);
        let i = a.and(&b);
        assert_eq!(i.count_ones(), 1);
        assert!(i.get(64));
    }

    #[test]
    fn intersects_and_count() {
        let a = Bitmap::from_positions(32, &[3, 9]);
        let b = Bitmap::from_positions(32, &[9, 10]);
        let c = Bitmap::from_positions(32, &[4]);
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        assert_eq!(a.intersection_count(&b), 1);
        assert_eq!(a.intersection_count(&c), 0);
    }

    #[test]
    fn iter_ones_ascending() {
        let bm = Bitmap::from_positions(200, &[199, 0, 64, 65, 3]);
        let ones: Vec<u32> = bm.iter_ones().collect();
        assert_eq!(ones, vec![0, 3, 64, 65, 199]);
    }

    #[test]
    fn iter_zeros_complements_ones() {
        let bm = Bitmap::from_positions(10, &[2, 5]);
        let zeros: Vec<u32> = bm.iter_zeros().collect();
        assert_eq!(zeros, vec![0, 1, 3, 4, 6, 7, 8, 9]);
    }

    #[test]
    fn byte_roundtrip() {
        let bm = Bitmap::from_positions(20, &[0, 7, 8, 19]);
        let bytes = bm.to_bytes();
        assert_eq!(bytes.len(), 3);
        assert_eq!(bytes[0], 0b1000_0001);
        assert_eq!(bytes[1], 0b0000_0001);
        assert_eq!(bytes[2], 0b0000_1000);
        let back = Bitmap::from_bytes(20, &bytes);
        assert_eq!(back, bm);
    }

    #[test]
    fn from_bytes_ignores_padding_bits() {
        // A final byte with garbage beyond nbits must be masked off.
        let back = Bitmap::from_bytes(4, &[0xff]);
        assert_eq!(back.count_ones(), 4);
    }

    #[test]
    fn byte_kernels_agree_with_bitmap_ops() {
        // The word-at-a-time byte kernels must agree with the reference
        // Bitmap operations for widths straddling word boundaries.
        for nbits in [7u32, 64, 70, 128, 200, 500] {
            let a = Bitmap::from_positions(nbits, &[0, nbits / 3, nbits - 1]);
            let b = Bitmap::from_positions(nbits, &[0, nbits / 2, nbits - 1]);
            let bb = b.to_bytes();

            let mut and_ref = a.clone();
            and_ref.and_assign(&b);
            let mut and_k = a.clone();
            and_k.and_assign_bytes(&bb);
            assert_eq!(and_k, and_ref, "AND width {nbits}");

            let mut or_ref = a.clone();
            or_ref.or_assign(&b);
            let mut or_k = a.clone();
            or_k.or_assign_bytes(&bb);
            assert_eq!(or_k, or_ref, "OR width {nbits}");

            assert_eq!(a.is_covered_by_bytes(&bb), b.covers(&a), "⊇ width {nbits}");
            assert_eq!(a.covers_bytes(&bb), a.covers(&b), "⊆ width {nbits}");
            assert_eq!(a.eq_bytes(&bb), a == b, "eq width {nbits}");
            assert_eq!(
                a.intersection_count_bytes(&bb),
                a.intersection_count(&b),
                "popcount width {nbits}"
            );
            assert!(b.eq_bytes(&bb));
        }
    }

    #[test]
    fn byte_kernels_mask_padding_bits() {
        // Garbage bits beyond the width in the final byte must not affect
        // any kernel (stored pages can carry neighbouring rows there).
        let q = Bitmap::from_positions(4, &[1, 2]);
        assert!(q.covers_bytes(&[0b1111_0110])); // high nibble is padding
        assert!(!q.eq_bytes(&[0b1111_0111]));
        assert!(q.eq_bytes(&[0b1111_0110]));
        assert_eq!(q.intersection_count_bytes(&[0b1111_1110]), 2);
        let mut o = Bitmap::zeroed(4);
        o.or_assign_bytes(&[0xff]);
        assert_eq!(o.count_ones(), 4);
    }

    #[test]
    fn iter_ones_bytes_agrees_with_bitmap() {
        for nbits in [4u32, 7, 64, 70, 128, 200] {
            let bm = Bitmap::from_positions(nbits, &[0, nbits / 3, nbits - 1]);
            let bytes = bm.to_bytes();
            let direct: Vec<u32> = iter_ones_bytes(nbits, &bytes).collect();
            let reference: Vec<u32> = bm.iter_ones().collect();
            assert_eq!(direct, reference, "width {nbits}");
        }
        // Padding garbage in the final byte must be ignored.
        let padded: Vec<u32> = iter_ones_bytes(4, &[0b1111_0110]).collect();
        assert_eq!(padded, vec![1, 2]);
    }

    #[test]
    fn words_accessor_exposes_backing_storage() {
        let bm = Bitmap::from_positions(130, &[0, 64, 129]);
        assert_eq!(bm.words(), &[1u64, 1u64, 2u64]);
    }

    #[test]
    #[should_panic]
    fn width_mismatch_panics() {
        let a = Bitmap::zeroed(8);
        let b = Bitmap::zeroed(16);
        let _ = a.covers(&b);
    }

    #[test]
    #[should_panic]
    fn out_of_range_get_panics() {
        let bm = Bitmap::zeroed(8);
        let _ = bm.get(8);
    }
}
