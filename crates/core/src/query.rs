//! Set predicates and queries.

use crate::config::SignatureConfig;
use crate::element::ElementKey;
use crate::signature::Signature;

/// The set comparison operators of §2.
///
/// The paper analyzes [`HasSubset`](SetPredicate::HasSubset) (`T ⊇ Q`) and
/// [`InSubset`](SetPredicate::InSubset) (`T ⊆ Q`) in depth and lists the
/// others as variations; all five are implemented here (equality, overlap
/// and membership are the "other set operations" named as further work in
/// §6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SetPredicate {
    /// `target ⊇ query` — the query's `has-subset`. Query Q1 of the paper.
    HasSubset,
    /// `target ⊆ query` — the query's `in-subset`. Query Q2 of the paper.
    InSubset,
    /// `target = query` — set equality.
    Equals,
    /// `target ∩ query ≠ ∅` — the overlap operator.
    Overlaps,
    /// `element ∈ target` — membership; a singleton `HasSubset`.
    Contains,
}

impl SetPredicate {
    /// The paper's notation for the predicate.
    pub fn notation(self) -> &'static str {
        match self {
            SetPredicate::HasSubset => "T ⊇ Q",
            SetPredicate::InSubset => "T ⊆ Q",
            SetPredicate::Equals => "T = Q",
            SetPredicate::Overlaps => "T ∩ Q ≠ ∅",
            SetPredicate::Contains => "e ∈ T",
        }
    }
}

impl std::fmt::Display for SetPredicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.notation())
    }
}

/// A set query: a predicate plus the query set `Q`.
///
/// The query set is stored deduplicated and sorted, so `d_q = elements.len()`
/// is the paper's query cardinality `D_q`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetQuery {
    /// The comparison operator.
    pub predicate: SetPredicate,
    /// The query set `Q`, deduplicated, in canonical order.
    pub elements: Vec<ElementKey>,
}

impl SetQuery {
    /// Creates a query, deduplicating and sorting the elements.
    pub fn new(predicate: SetPredicate, mut elements: Vec<ElementKey>) -> Self {
        elements.sort_unstable();
        elements.dedup();
        SetQuery {
            predicate,
            elements,
        }
    }

    /// `T ⊇ Q` — "find objects whose set includes all of `elements`".
    pub fn has_subset(elements: Vec<ElementKey>) -> Self {
        SetQuery::new(SetPredicate::HasSubset, elements)
    }

    /// `T ⊆ Q` — "find objects whose set is contained in `elements`".
    pub fn in_subset(elements: Vec<ElementKey>) -> Self {
        SetQuery::new(SetPredicate::InSubset, elements)
    }

    /// `T = Q`.
    pub fn equals(elements: Vec<ElementKey>) -> Self {
        SetQuery::new(SetPredicate::Equals, elements)
    }

    /// `T ∩ Q ≠ ∅`.
    pub fn overlaps(elements: Vec<ElementKey>) -> Self {
        SetQuery::new(SetPredicate::Overlaps, elements)
    }

    /// `element ∈ T`.
    pub fn contains(element: ElementKey) -> Self {
        SetQuery::new(SetPredicate::Contains, vec![element])
    }

    /// Query cardinality `D_q`.
    pub fn d_q(&self) -> usize {
        self.elements.len()
    }

    /// The query signature under `cfg`.
    pub fn signature(&self, cfg: &SignatureConfig) -> Signature {
        Signature::for_set(cfg, &self.elements)
    }

    /// Whether a **target signature** is a drop for this query — the
    /// signature-level filter of §3.1, extended to all five operators.
    pub fn signature_matches(
        &self,
        cfg: &SignatureConfig,
        target: &Signature,
        query_sig: &Signature,
    ) -> bool {
        match self.predicate {
            SetPredicate::HasSubset | SetPredicate::Contains => {
                target.matches_superset_of(query_sig)
            }
            SetPredicate::InSubset => target.matches_subset_of(query_sig),
            SetPredicate::Equals => target.matches_equals(query_sig),
            SetPredicate::Overlaps => target.matches_overlaps(query_sig, cfg.m_weight()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn keys(elems: &[&str]) -> Vec<ElementKey> {
        elems.iter().map(ElementKey::from).collect()
    }

    #[test]
    fn query_deduplicates_and_sorts() {
        let q = SetQuery::has_subset(keys(&["b", "a", "b"]));
        assert_eq!(q.d_q(), 2);
        assert_eq!(q.elements, keys(&["a", "b"]));
    }

    #[test]
    fn constructors_set_predicates() {
        assert_eq!(
            SetQuery::has_subset(vec![]).predicate,
            SetPredicate::HasSubset
        );
        assert_eq!(
            SetQuery::in_subset(vec![]).predicate,
            SetPredicate::InSubset
        );
        assert_eq!(SetQuery::equals(vec![]).predicate, SetPredicate::Equals);
        assert_eq!(SetQuery::overlaps(vec![]).predicate, SetPredicate::Overlaps);
        let c = SetQuery::contains(ElementKey::from("x"));
        assert_eq!(c.predicate, SetPredicate::Contains);
        assert_eq!(c.d_q(), 1);
    }

    #[test]
    fn notation_strings() {
        assert_eq!(SetPredicate::HasSubset.to_string(), "T ⊇ Q");
        assert_eq!(SetPredicate::InSubset.to_string(), "T ⊆ Q");
    }

    #[test]
    fn signature_filter_is_sound_for_all_predicates() {
        // For each predicate: a target that truly satisfies it must be a
        // signature-level drop (no false negatives).
        let cfg = SignatureConfig::new(128, 3).unwrap();
        let target_set = keys(&["Baseball", "Fishing"]);
        let target_sig = Signature::for_set(&cfg, &target_set);

        let cases = vec![
            SetQuery::has_subset(keys(&["Baseball"])),
            SetQuery::in_subset(keys(&["Baseball", "Fishing", "Tennis"])),
            SetQuery::equals(keys(&["Fishing", "Baseball"])),
            SetQuery::overlaps(keys(&["Fishing", "Chess"])),
            SetQuery::contains(ElementKey::from("Fishing")),
        ];
        for q in cases {
            let qs = q.signature(&cfg);
            assert!(
                q.signature_matches(&cfg, &target_sig, &qs),
                "predicate {} missed a true match",
                q.predicate
            );
        }
    }

    #[test]
    fn superset_filter_rejects_obvious_nonmatch() {
        let cfg = SignatureConfig::new(256, 3).unwrap();
        let target = Signature::for_set(&cfg, &keys(&["Swimming"]));
        let q = SetQuery::has_subset(keys(&["Chess", "Running", "Skiing"]));
        let qs = q.signature(&cfg);
        assert!(!q.signature_matches(&cfg, &target, &qs));
    }
}
