//! Object identifiers.

/// An object identifier — the paper's 8-byte `oid` (Table 2).
///
/// OIDs are opaque 63-bit values; the top bit is reserved by the
/// [`OidFile`](crate::OidFile) as its tombstone flag, which keeps OID-file
/// entries at exactly 8 bytes and therefore the paper's `O_p = ⌊P/oid⌋ = 512`
/// entries per page.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Oid(u64);

impl Oid {
    /// Largest representable OID value.
    pub const MAX_VALUE: u64 = (1 << 63) - 1;

    /// Creates an OID. Panics if `v` exceeds 63 bits.
    pub fn new(v: u64) -> Self {
        assert!(v <= Self::MAX_VALUE, "oid {v} exceeds 63 bits");
        Oid(v)
    }

    /// The raw value.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }
}

impl std::fmt::Display for Oid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "oid:{}", self.0)
    }
}

impl From<Oid> for u64 {
    fn from(oid: Oid) -> u64 {
        oid.0
    }
}

/// A monotonically increasing OID allocator.
#[derive(Debug, Default, Clone)]
pub struct OidAllocator {
    next: u64,
}

impl OidAllocator {
    /// Creates an allocator starting at 0.
    pub fn new() -> Self {
        OidAllocator { next: 0 }
    }

    /// Creates an allocator whose first OID is `start`.
    pub fn starting_at(start: u64) -> Self {
        OidAllocator { next: start }
    }

    /// Allocates the next OID.
    pub fn allocate(&mut self) -> Oid {
        let oid = Oid::new(self.next);
        self.next += 1;
        oid
    }

    /// Value the next allocation will use.
    pub fn peek(&self) -> u64 {
        self.next
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let oid = Oid::new(12345);
        assert_eq!(oid.raw(), 12345);
        assert_eq!(u64::from(oid), 12345);
        assert_eq!(oid.to_string(), "oid:12345");
    }

    #[test]
    fn max_value_ok() {
        let oid = Oid::new(Oid::MAX_VALUE);
        assert_eq!(oid.raw(), (1 << 63) - 1);
    }

    #[test]
    #[should_panic]
    fn oversized_rejected() {
        let _ = Oid::new(1 << 63);
    }

    #[test]
    fn allocator_is_sequential() {
        let mut a = OidAllocator::new();
        assert_eq!(a.allocate(), Oid::new(0));
        assert_eq!(a.allocate(), Oid::new(1));
        assert_eq!(a.peek(), 2);
        let mut b = OidAllocator::starting_at(100);
        assert_eq!(b.allocate(), Oid::new(100));
    }

    #[test]
    fn ordering_follows_raw_value() {
        assert!(Oid::new(1) < Oid::new(2));
    }
}
