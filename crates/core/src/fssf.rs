//! The frame-sliced signature file (FSSF) organization — an extension.
//!
//! The paper closes (§6) noting BSSF's one weakness: insertion touches all
//! `F` slice files. The *frame-sliced* organization (Lin & Faloutsos'
//! design from the same literature) fixes that by partitioning the `F` bits
//! into `k` frames of `s = F/k` bits. Each element hashes to **one frame**
//! and sets its `m` bits inside it; frames are stored as vertical stripes
//! (one file per frame, rows packed `⌊P·b/s⌋` to a page).
//!
//! The trade-offs, all visible in the `extorgs` exhibit and ablation bench:
//!
//! * **Insert** touches only the frames used by the set's elements —
//!   expected `k·(1 − (1 − 1/k)^{D_t}) + 1` page writes, ≈ `D_t + 1` for
//!   `D_t ≪ k`, instead of `F + 1`.
//! * **`T ⊇ Q`** reads the distinct frames of the query's elements:
//!   ≈ `D_q` frames of `⌈N/⌊P·b/s⌋⌉` pages each — more than BSSF's `m_q`
//!   single-slice pages, but far less than SSF's full scan.
//! * **`T ⊆ Q`** must read *every* frame (a target element may live in any
//!   of them), degenerating to a striped full scan — BSSF keeps the clear
//!   win on the paper's second query type.
//! * The false drop probability matches BSSF's Eq. (2): within a frame the
//!   ones-fraction is `1 − (1 − m/s)^{D_t/k} ≈ 1 − e^{−m·D_t/F}`.

use setsig_pagestore::{PageIo, PagedFile, PAGE_SIZE};
use std::collections::BTreeMap;
use std::sync::Arc;

use crate::bitmap::Bitmap;
use crate::element::ElementKey;
use crate::error::{Error, Result};
use crate::facility::{CandidateSet, ScanCounters, ScanStats, SetAccessFacility};
use crate::hash::{element_hash, ElementHasher};
use crate::oid::Oid;
use crate::oidfile::OidFile;
use crate::qtrace::{QueryObs, QueryOutcome};
use crate::query::{SetPredicate, SetQuery};

/// Design parameters of a frame-sliced signature file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FssfConfig {
    f_bits: u32,
    frames: u32,
    m_weight: u32,
    seed: u64,
}

impl FssfConfig {
    /// Creates a configuration: total width `F`, `k` frames, `m` bits per
    /// element within its frame. Requires `k | F` and `m ≤ F/k`.
    pub fn new(f_bits: u32, frames: u32, m_weight: u32) -> Result<Self> {
        Self::with_seed(f_bits, frames, m_weight, 0x5e75_1650_5ed5_16aa)
    }

    /// As [`new`](Self::new) with an explicit hash seed.
    pub fn with_seed(f_bits: u32, frames: u32, m_weight: u32, seed: u64) -> Result<Self> {
        if frames == 0 || f_bits == 0 || !f_bits.is_multiple_of(frames) {
            return Err(Error::BadConfig(format!(
                "frames ({frames}) must evenly divide F ({f_bits})"
            )));
        }
        let s = f_bits / frames;
        if m_weight == 0 || m_weight > s {
            return Err(Error::BadConfig(format!(
                "m = {m_weight} must be in 1..={s} (the frame width)"
            )));
        }
        if s as usize > PAGE_SIZE * 8 {
            return Err(Error::BadConfig(format!("frame width {s} exceeds a page")));
        }
        Ok(FssfConfig {
            f_bits,
            frames,
            m_weight,
            seed,
        })
    }

    /// Total signature width `F`.
    pub fn f_bits(&self) -> u32 {
        self.f_bits
    }

    /// Number of frames `k`.
    pub fn frames(&self) -> u32 {
        self.frames
    }

    /// Frame width `s = F/k` in bits.
    pub fn frame_bits(&self) -> u32 {
        self.f_bits / self.frames
    }

    /// Bits per element `m`.
    pub fn m_weight(&self) -> u32 {
        self.m_weight
    }

    /// Rows per frame page: `⌊P·b/s⌋`.
    pub fn rows_per_page(&self) -> u64 {
        (PAGE_SIZE as u64 * 8) / self.frame_bits() as u64
    }

    /// The frame an element hashes to.
    pub fn frame_of(&self, element: &ElementKey) -> u32 {
        (element_hash(element.as_bytes(), self.seed ^ 0x00f7_a3e5) % self.frames as u64) as u32
    }

    /// The element's `m` bit positions *within its frame*.
    pub fn frame_positions(&self, element: &ElementKey) -> Vec<u32> {
        ElementHasher::new(self.frame_bits(), self.seed)
            .positions(element.as_bytes(), self.m_weight)
    }
}

/// A frame-sliced signature file with its companion OID file.
pub struct Fssf {
    cfg: FssfConfig,
    frames: Vec<PagedFile>,
    oid_file: OidFile,
    /// Catalog checkpoint file; created lazily by [`Fssf::sync_meta`].
    meta_file: Option<PagedFile>,
    /// Observability recorder; `None` (the default) keeps the query path
    /// free of any clock or metrics work.
    obs: Option<Arc<setsig_obs::Recorder>>,
}

impl Fssf {
    /// Creates an empty FSSF named `name` on `io`.
    pub fn create(io: Arc<dyn PageIo>, name: &str, cfg: FssfConfig) -> Result<Self> {
        let frames = (0..cfg.frames())
            .map(|j| PagedFile::create(Arc::clone(&io), &format!("{name}.fr{j}")))
            .collect();
        Ok(Fssf {
            cfg,
            frames,
            oid_file: OidFile::create(io, &format!("{name}.oid")),
            meta_file: None,
            obs: None,
        })
    }

    /// Attaches (or with `None`, detaches) an observability recorder.
    /// Attached, every `candidates*` call emits a
    /// [`QueryTrace`](setsig_obs::QueryTrace) and updates the `fssf.*`
    /// metrics; detached, the query path does no observability work at all.
    pub fn set_recorder(&mut self, rec: Option<Arc<setsig_obs::Recorder>>) {
        self.obs = rec;
    }

    /// The design parameters.
    pub fn config(&self) -> &FssfConfig {
        &self.cfg
    }

    /// The companion OID file.
    pub fn oid_file(&self) -> &OidFile {
        &self.oid_file
    }

    fn row_location(&self, pos: u64) -> (u32, usize) {
        let rpp = self.cfg.rows_per_page();
        (
            (pos / rpp) as u32,
            (pos % rpp) as usize * self.cfg.frame_bits() as usize,
        )
    }

    /// Groups a set's elements by frame, OR-ing their frame signatures.
    fn frame_signatures(&self, set: &[ElementKey]) -> BTreeMap<u32, Bitmap> {
        let s = self.cfg.frame_bits();
        let mut by_frame: BTreeMap<u32, Bitmap> = BTreeMap::new();
        for e in set {
            let frame = self.cfg.frame_of(e);
            let bits = by_frame.entry(frame).or_insert_with(|| Bitmap::zeroed(s));
            for p in self.cfg.frame_positions(e) {
                bits.set(p, true);
            }
        }
        by_frame
    }

    /// Reads frame `j` and invokes `visit(row, row_bits)` for every stored
    /// row, charging one read per frame page to `ctr`.
    ///
    /// [`Fssf::insert`] keeps every frame file long enough for the indexed
    /// row count, so a frame shorter than `⌈n/rpp⌉` pages can only mean the
    /// file was truncated or the catalog is stale. The scan refuses to run
    /// — treating missing pages as zeros would silently drop qualifying
    /// rows, violating the facility's no-false-negatives contract.
    // COST: frame_pages pages
    fn scan_frame(
        &self,
        j: u32,
        ctr: &ScanCounters,
        mut visit: impl FnMut(u64, &Bitmap),
    ) -> Result<()> {
        let n = self.oid_file.len();
        let s = self.cfg.frame_bits() as usize;
        let rpp = self.cfg.rows_per_page();
        let file = &self.frames[j as usize];
        let have = file.len()?;
        let expected = n.div_ceil(rpp) as u32;
        if have < expected {
            return Err(Error::Corrupted(format!(
                "frame {j} has {have} pages but {n} indexed rows require {expected}"
            )));
        }
        ctr.note_slices(1);
        let mut page_no = 0u32;
        let mut row = 0u64;
        while row < n {
            let page = file.read(page_no)?;
            ctr.charge_both(1);
            let rows_here = (n - row).min(rpp);
            for r in 0..rows_here {
                let base = r as usize * s;
                let mut bits = Bitmap::zeroed(s as u32);
                for b in 0..s {
                    if page.get_bit(base + b) {
                        bits.set(b as u32, true);
                    }
                }
                visit(row + r, &bits);
            }
            row += rows_here;
            page_no += 1;
        }
        Ok(())
    }

    /// `T ⊇ Q`: read each distinct query frame once; a row survives iff in
    /// every such frame it covers the query's frame signature.
    fn superset_positions(&self, query: &SetQuery, ctr: &ScanCounters) -> Result<Vec<u64>> {
        let n = self.oid_file.len();
        let by_frame = self.frame_signatures(&query.elements);
        if by_frame.is_empty() {
            return Ok((0..n).collect());
        }
        let total = by_frame.len();
        let mut acc = Bitmap::ones(n as u32);
        for (consumed, (j, want)) in by_frame.into_iter().enumerate() {
            let mut frame_match = Bitmap::zeroed(n as u32);
            self.scan_frame(j, ctr, |row, bits| {
                if bits.covers(&want) {
                    frame_match.set(row as u32, true);
                }
            })?;
            acc.and_assign(&frame_match);
            if acc.is_zero() {
                if consumed + 1 < total {
                    ctr.mark_early_exit();
                }
                break;
            }
        }
        Ok(acc.iter_ones().map(u64::from).collect())
    }

    /// `T ⊆ Q`: every frame must be read; a row survives iff each frame's
    /// row bits are covered by the query's bits in that frame.
    fn subset_positions(&self, query: &SetQuery, ctr: &ScanCounters) -> Result<Vec<u64>> {
        let n = self.oid_file.len();
        let by_frame = self.frame_signatures(&query.elements);
        let s = self.cfg.frame_bits();
        let empty = Bitmap::zeroed(s);
        let mut acc = Bitmap::ones(n as u32);
        for j in 0..self.cfg.frames() {
            let allowed = by_frame.get(&j).unwrap_or(&empty);
            let mut frame_match = Bitmap::zeroed(n as u32);
            self.scan_frame(j, ctr, |row, bits| {
                if allowed.covers(bits) {
                    frame_match.set(row as u32, true);
                }
            })?;
            acc.and_assign(&frame_match);
            if acc.is_zero() {
                if j + 1 < self.cfg.frames() {
                    ctr.mark_early_exit();
                }
                break;
            }
        }
        Ok(acc.iter_ones().map(u64::from).collect())
    }

    /// Equality: covers in both directions in every frame.
    fn equals_positions(&self, query: &SetQuery, ctr: &ScanCounters) -> Result<Vec<u64>> {
        let sup: std::collections::BTreeSet<u64> =
            self.superset_positions(query, ctr)?.into_iter().collect();
        Ok(self
            .subset_positions(query, ctr)?
            .into_iter()
            .filter(|p| sup.contains(p))
            .collect())
    }

    /// Overlap: some query element's frame signature is covered by the row.
    fn overlap_positions(&self, query: &SetQuery, ctr: &ScanCounters) -> Result<Vec<u64>> {
        let n = self.oid_file.len();
        let mut acc = Bitmap::zeroed(n as u32);
        // Per element (not per frame): overlap needs one *element* fully
        // present, so elements sharing a frame are tested separately.
        let mut by_frame: BTreeMap<u32, Vec<Bitmap>> = BTreeMap::new();
        let s = self.cfg.frame_bits();
        for e in &query.elements {
            let mut bits = Bitmap::zeroed(s);
            for p in self.cfg.frame_positions(e) {
                bits.set(p, true);
            }
            by_frame.entry(self.cfg.frame_of(e)).or_default().push(bits);
        }
        for (j, sigs) in by_frame {
            self.scan_frame(j, ctr, |row, bits| {
                if sigs.iter().any(|sig| bits.covers(sig)) {
                    acc.set(row as u32, true);
                }
            })?;
        }
        Ok(acc.iter_ones().map(u64::from).collect())
    }

    // COST: oid_pages pages
    fn resolve(&self, positions: Vec<u64>, ctr: &ScanCounters) -> Result<CandidateSet> {
        // The OID look-up is part of the filtering stage's protocol charge
        // (the paper's LC_OID).
        ctr.charge_both(OidFile::pages_touched(&positions));
        let resolved = self.oid_file.lookup_positions(&positions)?;
        Ok(CandidateSet::new(
            resolved.into_iter().map(|(_, oid)| oid).collect(),
            false,
        ))
    }
}

impl SetAccessFacility for Fssf {
    fn name(&self) -> &'static str {
        "FSSF"
    }

    /// Insertion — the organization's raison d'être: one page write per
    /// *distinct frame* the set's elements hash to, plus the OID file.
    ///
    /// Every frame file — not just the ones this set's elements hash to —
    /// is kept long enough for the new row, so [`Fssf::scan_frame`] can
    /// treat a short frame as corruption rather than guessing its tail is
    /// zeros. The extension writes happen only when a row crosses a page
    /// boundary (once per `rows_per_page` inserts), so the amortized cost
    /// stays ≈ `D_t + 1`.
    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        let pos = self.oid_file.len();
        let (page_no, bit_base) = self.row_location(pos);
        for file in &self.frames {
            if file.len()? <= page_no {
                file.extend_to(page_no + 1)?;
            }
        }
        for (j, bits) in self.frame_signatures(set) {
            self.frames[j as usize].update(page_no, |page| {
                for b in bits.iter_ones() {
                    page.set_bit(bit_base + b as usize, true);
                }
            })?;
        }
        let opos = self.oid_file.append(oid)?;
        debug_assert_eq!(opos, pos);
        Ok(())
    }

    fn delete(&mut self, oid: Oid, _set: &[ElementKey]) -> Result<()> {
        self.oid_file.delete_by_oid(oid)?;
        Ok(())
    }

    // COST: frames * frame_pages + oid_pages pages
    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)> {
        let obs = QueryObs::start(&self.obs, || self.cache_stats());
        let ctr = ScanCounters::default();
        let positions = match query.predicate {
            SetPredicate::HasSubset | SetPredicate::Contains => {
                self.superset_positions(query, &ctr)?
            }
            SetPredicate::InSubset => self.subset_positions(query, &ctr)?,
            SetPredicate::Equals => self.equals_positions(query, &ctr)?,
            SetPredicate::Overlaps => self.overlap_positions(query, &ctr)?,
        };
        let set = self.resolve(positions, &ctr)?;
        let stats = ctr.stats();
        if let Some(o) = obs {
            o.finish(
                query,
                QueryOutcome {
                    facility: "fssf",
                    strategy: None,
                    geometry: Some((self.cfg.f_bits(), self.cfg.m_weight())),
                    ctr: Some(&ctr),
                    track_slices: true,
                    set: &set,
                    cache_after: self.cache_stats(),
                },
            );
        }
        Ok((set, Some(stats)))
    }

    fn indexed_count(&self) -> u64 {
        self.oid_file.live_count()
    }

    fn storage_pages(&self) -> Result<u64> {
        let mut total = self.oid_file.storage_pages()? as u64;
        for f in &self.frames {
            total += f.len()? as u64;
        }
        Ok(total)
    }
}

impl std::fmt::Debug for Fssf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Fssf {{ F: {}, k: {}, m: {}, entries: {} }}",
            self.cfg.f_bits(),
            self.cfg.frames(),
            self.cfg.m_weight(),
            self.oid_file.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SignatureConfig;
    use setsig_pagestore::Disk;

    fn fssf(f: u32, k: u32, m: u32) -> (Arc<Disk>, Fssf) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let cfg = FssfConfig::new(f, k, m).unwrap();
        (disk.clone(), Fssf::create(io, "test", cfg).unwrap())
    }

    fn keys(elems: &[&str]) -> Vec<ElementKey> {
        elems.iter().map(ElementKey::from).collect()
    }

    #[test]
    fn config_validation() {
        assert!(FssfConfig::new(500, 50, 3).is_ok());
        assert!(FssfConfig::new(500, 7, 3).is_err(), "k must divide F");
        assert!(
            FssfConfig::new(500, 50, 11).is_err(),
            "m must fit the frame"
        );
        assert!(FssfConfig::new(500, 0, 1).is_err());
        let c = FssfConfig::new(500, 50, 3).unwrap();
        assert_eq!(c.frame_bits(), 10);
        assert_eq!(c.rows_per_page(), 3276);
    }

    #[test]
    fn superset_query_finds_matches() {
        let (_d, mut f) = fssf(160, 16, 2);
        f.insert(Oid::new(1), &keys(&["Baseball", "Fishing"]))
            .unwrap();
        f.insert(Oid::new(2), &keys(&["Tennis"])).unwrap();
        f.insert(Oid::new(3), &keys(&["Baseball", "Golf", "Fishing"]))
            .unwrap();
        let q = SetQuery::has_subset(keys(&["Baseball", "Fishing"]));
        let c = f.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(1)));
        assert!(c.oids.contains(&Oid::new(3)));
    }

    #[test]
    fn subset_equality_overlap_membership() {
        let (_d, mut f) = fssf(160, 16, 2);
        f.insert(Oid::new(1), &keys(&["a", "b"])).unwrap();
        f.insert(Oid::new(2), &keys(&["a", "c", "d", "e"])).unwrap();
        f.insert(Oid::new(3), &keys(&["x"])).unwrap();

        let c = f
            .candidates(&SetQuery::in_subset(keys(&["a", "b", "z"])))
            .unwrap();
        assert!(c.oids.contains(&Oid::new(1)));

        let c = f.candidates(&SetQuery::equals(keys(&["b", "a"]))).unwrap();
        assert!(c.oids.contains(&Oid::new(1)));

        let c = f
            .candidates(&SetQuery::overlaps(keys(&["c", "q"])))
            .unwrap();
        assert!(c.oids.contains(&Oid::new(2)));
        assert!(!c.oids.contains(&Oid::new(3)));

        let c = f
            .candidates(&SetQuery::contains(ElementKey::from("x")))
            .unwrap();
        assert!(c.oids.contains(&Oid::new(3)));
    }

    #[test]
    fn insert_touches_only_used_frames() {
        let (disk, mut f) = fssf(500, 50, 3);
        let set = keys(&["Baseball", "Fishing", "Tennis"]);
        // Warm up so page-extension writes don't blur the count.
        f.insert(Oid::new(0), &set).unwrap();
        disk.reset_stats();
        f.insert(Oid::new(1), &set).unwrap();
        let writes = disk.snapshot().writes;
        let distinct_frames = {
            let cfg = f.config();
            let mut frames: Vec<u32> = set.iter().map(|e| cfg.frame_of(e)).collect();
            frames.sort_unstable();
            frames.dedup();
            frames.len() as u64
        };
        assert_eq!(
            writes,
            distinct_frames + 1,
            "≈ D_t + 1 writes, not F + 1 = 501"
        );
        assert!(writes <= 4);
    }

    #[test]
    fn superset_scan_reads_only_query_frames() {
        let (disk, mut f) = fssf(500, 50, 3);
        for i in 0..100u64 {
            f.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::has_subset(vec![ElementKey::from(42u64)]);
        disk.reset_stats();
        let (c, stats) = f.candidates_with_stats(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(42)));
        // 1 frame × 1 page + 1 OID page.
        assert_eq!(disk.snapshot().reads, 2);
        // The per-query stats charge exactly the disk traffic.
        let stats = stats.unwrap();
        assert_eq!(stats.logical_pages, 2);
        assert_eq!(stats.physical_pages, 2);
    }

    #[test]
    fn short_frame_file_is_reported_as_corruption() {
        // k = 1, s = 160 → 204 rows per frame page. Grow the OID file past
        // one page's worth of rows WITHOUT extending the frame (as a
        // truncated or stale frame file would look) and every scan must
        // refuse to run rather than treat the missing page as zeros.
        let (_d, mut f) = fssf(160, 1, 2);
        f.insert(Oid::new(0), &[ElementKey::from(0u64)]).unwrap();
        for i in 1..=210u64 {
            f.oid_file.append(Oid::new(i)).unwrap();
        }
        let q = SetQuery::has_subset(vec![ElementKey::from(0u64)]);
        match f.candidates(&q) {
            Err(Error::Corrupted(msg)) => {
                assert!(msg.contains("frame 0"), "unexpected message: {msg}")
            }
            other => panic!("expected Corrupted, got {other:?}"),
        }
        // A subset scan (which visits every frame) refuses too.
        let q = SetQuery::in_subset(vec![ElementKey::from(0u64)]);
        assert!(matches!(f.candidates(&q), Err(Error::Corrupted(_))));
    }

    #[test]
    fn insert_keeps_every_frame_long_enough() {
        let (_d, mut f) = fssf(500, 50, 3);
        for i in 0..10u64 {
            f.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let rpp = f.config().rows_per_page();
        let expected = 10u64.div_ceil(rpp) as u32;
        for (j, file) in f.frames.iter().enumerate() {
            assert!(
                file.len().unwrap() >= expected,
                "frame {j} shorter than the indexed row count requires"
            );
        }
    }

    #[test]
    fn subset_scan_reads_every_frame() {
        let (disk, mut f) = fssf(160, 16, 2);
        for i in 0..50u64 {
            f.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::in_subset(vec![ElementKey::from(1u64), ElementKey::from(2u64)]);
        disk.reset_stats();
        let _ = f.candidates(&q).unwrap();
        // All 16 frames (1 page each) must be consulted (early exit may
        // save a few once the accumulator empties; with matches present it
        // cannot).
        assert!(
            disk.snapshot().reads >= 16,
            "reads {}",
            disk.snapshot().reads
        );
    }

    #[test]
    fn agrees_with_bssf_on_answer_soundness() {
        // FSSF and BSSF hash differently, so candidate sets differ — but
        // both must contain every true answer.
        let (_d1, mut f) = fssf(128, 16, 2);
        let disk2 = Arc::new(Disk::new());
        let io2: Arc<dyn PageIo> = Arc::clone(&disk2) as Arc<dyn PageIo>;
        let mut b = crate::Bssf::create(io2, "b", SignatureConfig::new(128, 2).unwrap()).unwrap();
        let sets: Vec<Vec<ElementKey>> = (0..80u64)
            .map(|i| (0..4).map(|j| ElementKey::from(i * 13 + j)).collect())
            .collect();
        for (i, set) in sets.iter().enumerate() {
            f.insert(Oid::new(i as u64), set).unwrap();
            b.insert(Oid::new(i as u64), set).unwrap();
        }
        for probe in [0usize, 17, 79] {
            let q = SetQuery::has_subset(sets[probe][..2].to_vec());
            let fc = f.candidates(&q).unwrap();
            let bc = b.candidates(&q).unwrap();
            assert!(fc.oids.contains(&Oid::new(probe as u64)));
            assert!(bc.oids.contains(&Oid::new(probe as u64)));
        }
    }

    #[test]
    fn deleted_entries_filtered() {
        let (_d, mut f) = fssf(160, 16, 2);
        let set = keys(&["Baseball"]);
        f.insert(Oid::new(1), &set).unwrap();
        f.insert(Oid::new(2), &set).unwrap();
        f.delete(Oid::new(1), &set).unwrap();
        let c = f.candidates(&SetQuery::has_subset(set)).unwrap();
        assert_eq!(c.oids, vec![Oid::new(2)]);
        assert_eq!(f.indexed_count(), 1);
    }

    #[test]
    fn rows_cross_page_boundaries() {
        // s = 160/16... choose s so rpp is small: F=160, k=1 gives s=160,
        // rpp = 204; insert past one page.
        let (_d, mut f) = fssf(160, 1, 2);
        assert_eq!(f.config().rows_per_page(), 204);
        for i in 0..300u64 {
            f.insert(Oid::new(i), &[ElementKey::from(i % 7)]).unwrap();
        }
        let q = SetQuery::has_subset(vec![ElementKey::from(3u64)]);
        let c = f.candidates(&q).unwrap();
        // Row 255 (on the second page) has element 255 % 7 == 3.
        assert!(c.oids.contains(&Oid::new(255)));
        assert!(c.oids.contains(&Oid::new(3)));
    }

    #[test]
    fn storage_counts_frames_and_oids() {
        let (_d, mut f) = fssf(500, 50, 3);
        for i in 0..10u64 {
            f.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        // Only touched frames have pages (sparse) + 1 OID page.
        let pages = f.storage_pages().unwrap();
        assert!((2..=51).contains(&pages), "pages {pages}");
    }
}

impl Fssf {
    /// Checkpoints the FSSF's catalog state (config, frame and OID file
    /// bindings, counters) into its meta file, like
    /// [`Bssf::sync_meta`](crate::Bssf::sync_meta). Returns the meta file
    /// id for [`Fssf::open`].
    pub fn sync_meta(&mut self) -> Result<setsig_pagestore::FileId> {
        let mut w = crate::meta::MetaWriter::new(b"FSF1");
        w.u32(self.cfg.f_bits());
        w.u32(self.cfg.frames());
        w.u32(self.cfg.m_weight());
        w.u64(self.cfg.seed);
        w.u32(self.oid_file.file().id().raw());
        let (len, live) = self.oid_file.state();
        w.u64(len);
        w.u64(live);
        for frame in &self.frames {
            w.u32(frame.id().raw());
        }
        let io = Arc::clone(self.oid_file.file().io());
        crate::meta::checkpoint(&io, &mut self.meta_file, "fssf", &w.finish())
    }

    /// Reopens an FSSF from a [`Fssf::sync_meta`] checkpoint.
    pub fn open(io: Arc<dyn PageIo>, meta: setsig_pagestore::FileId) -> Result<Self> {
        let meta_file = PagedFile::open(Arc::clone(&io), meta);
        let blob = meta_file.read_blob()?;
        let mut r = crate::meta::MetaReader::new(&blob, b"FSF1")?;
        let cfg = FssfConfig::with_seed(r.u32()?, r.u32()?, r.u32()?, r.u64()?)?;
        let oid_id = setsig_pagestore::FileId::from_raw(r.u32()?);
        let len = r.u64()?;
        let live = r.u64()?;
        let frames = (0..cfg.frames())
            .map(|_| {
                Ok(PagedFile::open(
                    Arc::clone(&io),
                    setsig_pagestore::FileId::from_raw(r.u32()?),
                ))
            })
            .collect::<Result<Vec<_>>>()?;
        r.done()?;
        Ok(Fssf {
            cfg,
            frames,
            oid_file: OidFile::reopen(PagedFile::open(io, oid_id), len, live),
            meta_file: Some(meta_file),
            obs: None,
        })
    }
}

#[cfg(test)]
mod meta_tests {
    use super::*;
    use setsig_pagestore::Disk;

    #[test]
    fn fssf_reopens_from_saved_image() {
        let dir = std::env::temp_dir().join(format!("setsig-fssf-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.img");

        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let cfg = FssfConfig::new(160, 16, 2).unwrap();
        let mut f = Fssf::create(io, "h", cfg).unwrap();
        f.insert(Oid::new(1), &[ElementKey::from("Baseball")])
            .unwrap();
        f.insert(Oid::new(2), &[ElementKey::from("Tennis")])
            .unwrap();
        let meta = f.sync_meta().unwrap();
        disk.save_to(&path).unwrap();

        let loaded = Arc::new(Disk::load_from(&path).unwrap());
        let io: Arc<dyn PageIo> = Arc::clone(&loaded) as Arc<dyn PageIo>;
        let mut reopened = Fssf::open(io, meta).unwrap();
        assert_eq!(reopened.indexed_count(), 2);
        let q = SetQuery::contains(ElementKey::from("Baseball"));
        assert_eq!(reopened.candidates(&q).unwrap().oids, vec![Oid::new(1)]);
        reopened
            .insert(Oid::new(3), &[ElementKey::from("Baseball")])
            .unwrap();
        assert_eq!(
            reopened.candidates(&q).unwrap().oids,
            vec![Oid::new(1), Oid::new(3)]
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
