//! Signature design parameters.

use crate::error::{Error, Result};

/// The design parameters of a signature scheme: signature width `F`, element
/// weight `m`, and the hash seed.
///
/// `F` and `m` are the paper's two tuning knobs (§3.1). Text retrieval
/// folklore sets `m = m_opt = F·ln2/D_t` (Eq. 3), which minimizes the false
/// drop probability; the paper's central finding is that a **much smaller
/// `m` (1–3)** gives better *total* retrieval cost for BSSF, because each
/// query-signature bit costs a bit-slice scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SignatureConfig {
    f_bits: u32,
    m_weight: u32,
    seed: u64,
}

impl SignatureConfig {
    /// Creates a configuration with the default seed.
    ///
    /// Fails unless `1 ≤ m ≤ F` and `F ≥ 8`.
    pub fn new(f_bits: u32, m_weight: u32) -> Result<Self> {
        Self::with_seed(f_bits, m_weight, 0x5e75_1650_5ed5_16aa)
    }

    /// Creates a configuration with an explicit hash seed.
    pub fn with_seed(f_bits: u32, m_weight: u32, seed: u64) -> Result<Self> {
        if f_bits < 8 {
            return Err(Error::BadConfig(format!(
                "F = {f_bits} too small (need ≥ 8)"
            )));
        }
        if m_weight == 0 {
            return Err(Error::BadConfig("m must be at least 1".into()));
        }
        if m_weight > f_bits {
            return Err(Error::BadConfig(format!(
                "m = {m_weight} exceeds F = {f_bits}"
            )));
        }
        Ok(SignatureConfig {
            f_bits,
            m_weight,
            seed,
        })
    }

    /// Signature width `F` in bits.
    #[inline]
    pub fn f_bits(&self) -> u32 {
        self.f_bits
    }

    /// Element signature weight `m` (bits set per element).
    #[inline]
    pub fn m_weight(&self) -> u32 {
        self.m_weight
    }

    /// Hash seed.
    #[inline]
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Bytes occupied by one serialized signature: `⌈F/8⌉`.
    pub fn signature_bytes(&self) -> usize {
        (self.f_bits as usize).div_ceil(8)
    }

    /// The text-retrieval optimum `m_opt = ⌈F·ln2/D_t⌉` (Eq. 3): the weight
    /// minimizing the false drop probability for target sets of cardinality
    /// `d_t`. Clamped to at least 1.
    pub fn m_opt(f_bits: u32, d_t: u32) -> u32 {
        assert!(d_t > 0, "target cardinality must be positive");
        (((f_bits as f64) * std::f64::consts::LN_2 / d_t as f64).round() as u32).max(1)
    }

    /// A configuration using [`m_opt`](Self::m_opt) for the given expected
    /// target cardinality.
    pub fn optimal_for(f_bits: u32, d_t: u32) -> Result<Self> {
        Self::new(f_bits, Self::m_opt(f_bits, d_t).min(f_bits))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn valid_config() {
        let c = SignatureConfig::new(500, 2).unwrap();
        assert_eq!(c.f_bits(), 500);
        assert_eq!(c.m_weight(), 2);
        assert_eq!(c.signature_bytes(), 63);
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(SignatureConfig::new(4, 1).is_err());
        assert!(SignatureConfig::new(64, 0).is_err());
        assert!(SignatureConfig::new(64, 65).is_err());
    }

    #[test]
    fn m_opt_matches_paper_parameters() {
        // F = 500, D_t = 10 → 500·0.693/10 ≈ 34.7 → 35.
        assert_eq!(SignatureConfig::m_opt(500, 10), 35);
        // F = 250, D_t = 10 → ≈ 17.3 → 17.
        assert_eq!(SignatureConfig::m_opt(250, 10), 17);
        // F = 2500, D_t = 100 → ≈ 17.3 → 17.
        assert_eq!(SignatureConfig::m_opt(2500, 100), 17);
        // Tiny F never rounds to zero.
        assert_eq!(SignatureConfig::m_opt(8, 1000), 1);
    }

    #[test]
    fn optimal_for_builds_valid_config() {
        let c = SignatureConfig::optimal_for(500, 10).unwrap();
        assert_eq!(c.m_weight(), 35);
    }

    #[test]
    fn seed_is_part_of_identity() {
        let a = SignatureConfig::with_seed(64, 2, 1).unwrap();
        let b = SignatureConfig::with_seed(64, 2, 2).unwrap();
        assert_ne!(a, b);
    }
}
