//! The sequential signature file (SSF) organization.
//!
//! The simplest physical organization (§3.1, Figure 3): set signatures are
//! stored row-wise, fixed-width, packed `⌊P/⌈F/8⌉⌋` to a page. Retrieval
//! scans **every** signature page — which is why the paper finds SSF's
//! retrieval cost dominated by its own storage cost `SC_SIG` (Eq. 7) — then
//! looks up candidate positions in the [`OidFile`].
//!
//! Updates are cheap, the organization's one strength: insertion blind-
//! writes the tail page of the signature file and the tail page of the OID
//! file (`UC_I = 2`), deletion tombstones the OID file entry (`UC_D =
//! SC_OID/2`).

use setsig_pagestore::{BufferPool, Page, PageIo, PagedFile, PAGE_SIZE};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use crate::config::SignatureConfig;
use crate::element::ElementKey;
use crate::error::{Error, Result};
use crate::facility::{CandidateSet, ScanCounters, ScanStats, SetAccessFacility};
use crate::kernel;
use crate::oid::Oid;
use crate::oidfile::OidFile;
use crate::qtrace::{QueryObs, QueryOutcome};
use crate::query::{SetPredicate, SetQuery};
use crate::signature::Signature;

/// A sequential signature file with its companion OID file.
pub struct Ssf {
    cfg: SignatureConfig,
    sig_file: PagedFile,
    oid_file: OidFile,
    sig_bytes: usize,
    per_page: u64,
    /// Catalog checkpoint file; created lazily by [`Ssf::sync_meta`].
    meta_file: Option<PagedFile>,
    /// Worker threads for signature scans; `1` scans serially.
    threads: usize,
    /// The buffer pool signature reads are routed through when built via
    /// [`Ssf::create_cached`].
    pool: Option<Arc<BufferPool>>,
    /// Optional observability recorder; `None` (the default) disables all
    /// tracing/metrics work on the query path.
    obs: Option<Arc<setsig_obs::Recorder>>,
}

impl Ssf {
    /// Creates an empty SSF named `name` (files `<name>.ssf` / `<name>.oid`)
    /// on `io`.
    pub fn create(io: Arc<dyn PageIo>, name: &str, cfg: SignatureConfig) -> Result<Self> {
        let sig_bytes = cfg.signature_bytes();
        let per_page = (PAGE_SIZE / sig_bytes) as u64;
        if per_page == 0 {
            return Err(Error::BadConfig(format!(
                "signature of {sig_bytes} bytes does not fit a {PAGE_SIZE}-byte page"
            )));
        }
        Ok(Ssf {
            cfg,
            sig_file: PagedFile::create(Arc::clone(&io), &format!("{name}.ssf")),
            oid_file: OidFile::create(io, &format!("{name}.oid")),
            sig_bytes,
            per_page,
            meta_file: None,
            threads: 1,
            pool: None,
            obs: None,
        })
    }

    /// Creates an empty SSF whose signature and OID reads are routed
    /// through a fresh [`BufferPool`] of `pool_pages` frames over `disk`.
    pub fn create_cached(
        disk: Arc<setsig_pagestore::Disk>,
        name: &str,
        cfg: SignatureConfig,
        pool_pages: usize,
    ) -> Result<Self> {
        Self::create_tiered(disk, name, cfg, pool_pages, 0)
    }

    /// Like [`Ssf::create_cached`], with a pinned in-RAM tier of up to
    /// `pinned_pages` pages above the LRU pool (see
    /// [`BufferPool::with_pinned`]); `0` disables the tier.
    pub fn create_tiered(
        disk: Arc<setsig_pagestore::Disk>,
        name: &str,
        cfg: SignatureConfig,
        pool_pages: usize,
        pinned_pages: usize,
    ) -> Result<Self> {
        let pool = Arc::new(BufferPool::with_pinned(disk, pool_pages, pinned_pages));
        let io: Arc<dyn PageIo> = Arc::clone(&pool) as Arc<dyn PageIo>;
        let mut ssf = Self::create(io, name, cfg)?;
        ssf.pool = Some(pool);
        Ok(ssf)
    }

    /// Sets the number of worker threads for signature scans. `1` (the
    /// default) scans serially; higher values partition the signature pages
    /// across scoped threads. Candidate sets and page counts are identical
    /// either way — every page is read exactly once.
    pub fn set_parallelism(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// Current worker-thread count for signature scans.
    pub fn parallelism(&self) -> usize {
        self.threads
    }

    /// The buffer pool reads are routed through, when built via
    /// [`Ssf::create_cached`].
    pub fn buffer_pool(&self) -> Option<&Arc<BufferPool>> {
        self.pool.as_ref()
    }

    /// Attaches (or with `None` detaches) an observability recorder. With
    /// a recorder attached, every `candidates*` call emits a
    /// [`QueryTrace`](setsig_obs::QueryTrace) and updates the recorder's
    /// metrics; without one, the query path does no observability work.
    pub fn set_recorder(&mut self, rec: Option<Arc<setsig_obs::Recorder>>) {
        self.obs = rec;
    }

    /// The signature design parameters.
    pub fn config(&self) -> &SignatureConfig {
        &self.cfg
    }

    /// Signatures stored per page: `⌊P/⌈F/8⌉⌋`.
    pub fn signatures_per_page(&self) -> u64 {
        self.per_page
    }

    /// The companion OID file.
    pub fn oid_file(&self) -> &OidFile {
        &self.oid_file
    }

    /// Pages in the signature file alone — the paper's `SC_SIG`.
    pub fn signature_pages(&self) -> Result<u64> {
        Ok(self.sig_file.len()? as u64)
    }

    fn slot_of(&self, pos: u64) -> (u32, usize) {
        (
            (pos / self.per_page) as u32,
            (pos % self.per_page) as usize * self.sig_bytes,
        )
    }

    /// Appends `sig` for `oid`, returning the entry position.
    ///
    /// Cost on an uncached disk: exactly 2 page writes (`UC_I = 2`).
    pub fn insert_signature(&mut self, oid: Oid, sig: &Signature) -> Result<u64> {
        if sig.f_bits() != self.cfg.f_bits() {
            return Err(Error::WidthMismatch {
                expected: self.cfg.f_bits(),
                got: sig.f_bits(),
            });
        }
        let pos = self.oid_file.len();
        let (page_no, off) = self.slot_of(pos);
        let bytes = sig.to_bytes();
        if pos.is_multiple_of(self.per_page) {
            let mut page = Page::zeroed();
            page.write_slice(off, &bytes);
            let appended = self.sig_file.append(&page)?;
            debug_assert_eq!(appended, page_no);
        } else {
            self.sig_file
                .update(page_no, |page| page.write_slice(off, &bytes))?;
        }
        let opos = self.oid_file.append(oid)?;
        debug_assert_eq!(opos, pos);
        Ok(pos)
    }

    /// Reads the stored signature at `pos` (one page read).
    // COST: 1 pages
    pub fn signature_at(&self, pos: u64) -> Result<Signature> {
        if pos >= self.oid_file.len() {
            return Err(Error::NoSuchEntry(pos));
        }
        let (page_no, off) = self.slot_of(pos);
        let page = self.sig_file.read(page_no)?;
        Ok(Signature::from_bytes(
            self.cfg.f_bits(),
            page.read_slice(off, self.sig_bytes),
        ))
    }

    /// Full scan of the signature file, returning the positions whose
    /// signatures match `query` (§4.1 step 2). Reads every signature page
    /// exactly once, serial or parallel.
    ///
    /// This is the batched row-scan path: each fetched page's rows are
    /// matched **in place** with the word-at-a-time byte kernels of
    /// [`Bitmap`](crate::Bitmap) — no per-row signature is materialized.
    /// With `threads > 1` the page range is partitioned across scoped
    /// worker threads and the per-page hit lists are merged in page order,
    /// so the result is byte-identical to the serial scan.
    pub fn scan_matching_positions(&self, query: &SetQuery) -> Result<Vec<u64>> {
        self.scan_matching_positions_counted(query, &ScanCounters::default())
    }

    /// [`Ssf::scan_matching_positions`] charging its page accounting to
    /// `ctr` — the query-owned counters of the calling `candidates*` frame.
    // COST: sig_pages pages
    fn scan_matching_positions_counted(
        &self,
        query: &SetQuery,
        ctr: &ScanCounters,
    ) -> Result<Vec<u64>> {
        let query_sig = query.signature(&self.cfg);
        let total = self.oid_file.len();
        let npages = self.sig_file.len()?;
        if self.threads > 1 && npages > 1 {
            return self.scan_parallel(query, &query_sig, total, npages, ctr);
        }
        let mut positions = Vec::new();
        for page_no in 0..npages {
            self.scan_page(query, &query_sig, total, page_no, &mut positions)?;
            ctr.charge_both(1);
        }
        Ok(positions)
    }

    /// Matches one signature page's rows in place, appending hits to `out`.
    // HOT-PATH: ssf.row_scan
    // COST: 1 pages
    fn scan_page(
        &self,
        query: &SetQuery,
        query_sig: &Signature,
        total: u64,
        page_no: u32,
        out: &mut Vec<u64>,
    ) -> Result<()> {
        let page = self.sig_file.read(page_no)?;
        let base = page_no as u64 * self.per_page;
        let slots = (total - base).min(self.per_page) as usize;
        // Hoist the query's words and width once; the per-row loop then
        // calls the word kernels directly with no per-row width re-checks.
        let qw = query_sig.bitmap().words();
        let nbits = self.cfg.f_bits();
        let m = self.cfg.m_weight();
        for s in 0..slots {
            let row = page.read_slice(s * self.sig_bytes, self.sig_bytes);
            let hit = match query.predicate {
                SetPredicate::HasSubset | SetPredicate::Contains => kernel::is_covered_by(qw, row),
                SetPredicate::InSubset => kernel::covers(qw, row, nbits),
                SetPredicate::Equals => kernel::eq(qw, row, nbits),
                SetPredicate::Overlaps => kernel::intersection_count(qw, row) >= m,
            };
            if hit {
                out.push(base + s as u64);
            }
        }
        Ok(())
    }

    /// The parallel scan: workers claim pages from a shared counter,
    /// producing `(page, hits)` lists that are merged in page order.
    fn scan_parallel(
        &self,
        query: &SetQuery,
        query_sig: &Signature,
        total: u64,
        npages: u32,
        ctr: &ScanCounters,
    ) -> Result<Vec<u64>> {
        /// A worker's `(page, start, end)` segments into its flat hit list.
        type Segments = Vec<(u32, usize, usize)>;
        /// A worker's flat hit list, its segments, and its page count. One
        /// growable buffer per worker — no per-page allocation in the claim
        /// loop.
        type WorkerScan = Result<(Vec<u64>, Segments, u64)>;
        let threads = self.threads.min(npages as usize);
        // Lock-free work claim: workers race on one atomic page cursor and
        // hold no lock while scanning, so the storage locks (pool, disk)
        // are the only ones taken and never nest. `join().expect` re-raises
        // a worker panic on the coordinator rather than returning a scan
        // missing that worker's pages.
        let next = AtomicUsize::new(0);
        std::thread::scope(|s| -> Result<Vec<u64>> {
            let handles: Vec<_> = (0..threads)
                .map(|_| {
                    s.spawn(|| -> WorkerScan {
                        let mut flat = Vec::new();
                        let mut segs = Vec::new();
                        let mut pages = 0u64;
                        loop {
                            // ATOMIC: Relaxed — the RMW alone makes tickets
                            // unique; page data flows through `scan_page`,
                            // never through this counter.
                            let p = next.fetch_add(1, Ordering::Relaxed);
                            if p >= npages as usize {
                                break;
                            }
                            let start = flat.len();
                            self.scan_page(query, query_sig, total, p as u32, &mut flat)?;
                            pages += 1;
                            segs.push((p as u32, start, flat.len()));
                        }
                        Ok((flat, segs, pages))
                    })
                })
                .collect();
            let mut parts: Vec<(Vec<u64>, Segments)> = Vec::with_capacity(threads);
            for h in handles {
                let (flat, segs, pages) = h.join().expect("scan worker panicked")?;
                ctr.charge_both(pages);
                parts.push((flat, segs));
            }
            // Merge in page order so the result is byte-identical to the
            // serial scan.
            let mut index: Vec<(u32, usize, usize, usize)> = Vec::new();
            for (pi, (_, segs)) in parts.iter().enumerate() {
                for &(page, start, end) in segs {
                    index.push((page, pi, start, end));
                }
            }
            index.sort_unstable_by_key(|&(p, ..)| p);
            let mut out = Vec::with_capacity(index.iter().map(|&(_, _, s, e)| e - s).sum());
            for (_, pi, start, end) in index {
                out.extend_from_slice(&parts[pi].0[start..end]);
            }
            Ok(out)
        })
    }

    /// The pre-kernel reference scan: materializes a [`Signature`] per row
    /// and matches through [`SetQuery::signature_matches`]. Kept as the
    /// oracle the batched path is differentially tested against.
    #[cfg(test)]
    fn scan_matching_positions_reference(&self, query: &SetQuery) -> Result<Vec<u64>> {
        let query_sig = query.signature(&self.cfg);
        let total = self.oid_file.len();
        let npages = self.sig_file.len()?;
        let mut positions = Vec::new();
        for page_no in 0..npages {
            let page = self.sig_file.read(page_no)?;
            let base = page_no as u64 * self.per_page;
            let slots = (total - base).min(self.per_page) as usize;
            for s in 0..slots {
                let sig = Signature::from_bytes(
                    self.cfg.f_bits(),
                    page.read_slice(s * self.sig_bytes, self.sig_bytes),
                );
                if query.signature_matches(&self.cfg, &sig, &query_sig) {
                    positions.push(base + s as u64);
                }
            }
        }
        Ok(positions)
    }

    /// Rebuilds the SSF without tombstoned entries, reclaiming the space of
    /// deleted objects (an extension; the paper leaves tombstones forever).
    ///
    /// Returns the number of live entries carried over.
    pub fn compact(&mut self) -> Result<u64> {
        let live = self.oid_file.scan_live()?;
        let io = Arc::clone(self.sig_file.io());
        let new_sig = PagedFile::create(Arc::clone(&io), "compacted.ssf");
        let mut new_oid = OidFile::create(io, "compacted.oid");
        let mut tail = Page::zeroed();
        let mut next: u64 = 0;
        for &(pos, oid) in &live {
            let (page_no, off) = self.slot_of(pos);
            let page = self.sig_file.read(page_no)?;
            let noff = (next % self.per_page) as usize * self.sig_bytes;
            tail.write_slice(noff, page.read_slice(off, self.sig_bytes));
            next += 1;
            if next.is_multiple_of(self.per_page) {
                new_sig.append(&tail)?;
                tail = Page::zeroed();
            }
            new_oid.append(oid)?;
        }
        if !next.is_multiple_of(self.per_page) {
            new_sig.append(&tail)?;
        }
        self.sig_file = new_sig;
        self.oid_file = new_oid;
        Ok(next)
    }
}

impl SetAccessFacility for Ssf {
    fn name(&self) -> &'static str {
        "SSF"
    }

    fn insert(&mut self, oid: Oid, set: &[ElementKey]) -> Result<()> {
        let sig = Signature::for_set(&self.cfg, set);
        self.insert_signature(oid, &sig)?;
        Ok(())
    }

    fn delete(&mut self, oid: Oid, _set: &[ElementKey]) -> Result<()> {
        // §4.1: deletion only flags the OID file entry; the stale signature
        // stays and is filtered at OID look-up time.
        self.oid_file.delete_by_oid(oid)?;
        Ok(())
    }

    // COST: sig_pages + oid_pages pages
    fn candidates_with_stats(&self, query: &SetQuery) -> Result<(CandidateSet, Option<ScanStats>)> {
        let obs = QueryObs::start(&self.obs, || self.cache_stats());
        let ctr = ScanCounters::default();
        let positions = self.scan_matching_positions_counted(query, &ctr)?;
        // The OID look-up is part of the filtering stage's protocol charge
        // (the paper's LC_OID); it is never speculative or parallel.
        ctr.charge_both(OidFile::pages_touched(&positions));
        let resolved = self.oid_file.lookup_positions(&positions)?;
        let set = CandidateSet::new(resolved.into_iter().map(|(_, oid)| oid).collect(), false);
        let stats = ctr.stats();
        if let Some(o) = obs {
            o.finish(
                query,
                QueryOutcome {
                    facility: "ssf",
                    strategy: None,
                    geometry: Some((self.cfg.f_bits(), self.cfg.m_weight())),
                    ctr: Some(&ctr),
                    track_slices: false,
                    set: &set,
                    cache_after: self.cache_stats(),
                },
            );
        }
        Ok((set, Some(stats)))
    }

    fn indexed_count(&self) -> u64 {
        self.oid_file.live_count()
    }

    fn storage_pages(&self) -> Result<u64> {
        Ok(self.sig_file.len()? as u64 + self.oid_file.storage_pages()? as u64)
    }

    fn cache_stats(&self) -> Option<setsig_pagestore::CacheStats> {
        self.pool.as_ref().map(|p| p.stats())
    }
}

impl std::fmt::Debug for Ssf {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Ssf {{ F: {}, m: {}, entries: {} }}",
            self.cfg.f_bits(),
            self.cfg.m_weight(),
            self.oid_file.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn ssf(f_bits: u32, m: u32) -> (Arc<Disk>, Ssf) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let cfg = SignatureConfig::new(f_bits, m).unwrap();
        (disk.clone(), Ssf::create(io, "test", cfg).unwrap())
    }

    fn keys(elems: &[&str]) -> Vec<ElementKey> {
        elems.iter().map(ElementKey::from).collect()
    }

    #[test]
    fn insert_and_query_superset() {
        let (_d, mut ssf) = ssf(128, 3);
        ssf.insert(Oid::new(1), &keys(&["Baseball", "Fishing"]))
            .unwrap();
        ssf.insert(Oid::new(2), &keys(&["Tennis", "Chess"]))
            .unwrap();
        ssf.insert(Oid::new(3), &keys(&["Baseball", "Golf", "Fishing"]))
            .unwrap();

        let q = SetQuery::has_subset(keys(&["Baseball", "Fishing"]));
        let c = ssf.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(1)));
        assert!(c.oids.contains(&Oid::new(3)));
        assert!(!c.exact);
    }

    #[test]
    fn query_subset_finds_contained_sets() {
        let (_d, mut ssf) = ssf(128, 3);
        ssf.insert(Oid::new(1), &keys(&["Baseball"])).unwrap();
        ssf.insert(
            Oid::new(2),
            &keys(&["Baseball", "Football", "Rugby", "Cricket"]),
        )
        .unwrap();

        let q = SetQuery::in_subset(keys(&["Baseball", "Football", "Tennis"]));
        let c = ssf.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(1)));
        // oid 2 has Rugby+Cricket whose bits are very unlikely to be
        // covered with F=128; not asserted to avoid flakiness.
    }

    #[test]
    fn insert_costs_two_writes_within_page() {
        let (disk, mut ssf) = ssf(128, 3);
        ssf.insert(Oid::new(1), &keys(&["a"])).unwrap();
        disk.reset_stats();
        ssf.insert(Oid::new(2), &keys(&["b"])).unwrap();
        let s = disk.snapshot();
        // One blind write to the signature tail page + one to the OID tail
        // page — the paper's UC_I = 2.
        assert_eq!((s.reads, s.writes), (0, 2));
    }

    #[test]
    fn retrieval_reads_every_signature_page() {
        let (disk, mut ssf) = ssf(500, 5);
        let per_page = ssf.signatures_per_page();
        assert_eq!(per_page, (PAGE_SIZE / 63) as u64);
        let n = per_page * 3 + 10;
        for i in 0..n {
            ssf.insert(Oid::new(i), &keys(&[&format!("e{i}")])).unwrap();
        }
        assert_eq!(ssf.signature_pages().unwrap(), 4);
        disk.reset_stats();
        let q = SetQuery::has_subset(keys(&["never-inserted-element"]));
        let _ = ssf.candidates(&q).unwrap();
        // Full scan: exactly the 4 signature pages; with (almost surely) no
        // drops, the OID file is untouched.
        let fs = disk.file_stats(ssf.sig_file.id()).unwrap();
        assert_eq!(fs.reads, 4);
    }

    #[test]
    fn deleted_objects_disappear_from_results() {
        let (_d, mut ssf) = ssf(128, 3);
        let set = keys(&["Baseball", "Fishing"]);
        ssf.insert(Oid::new(1), &set).unwrap();
        ssf.insert(Oid::new(2), &set).unwrap();
        ssf.delete(Oid::new(1), &set).unwrap();
        let q = SetQuery::has_subset(keys(&["Baseball"]));
        let c = ssf.candidates(&q).unwrap();
        assert!(!c.oids.contains(&Oid::new(1)));
        assert!(c.oids.contains(&Oid::new(2)));
        assert_eq!(ssf.indexed_count(), 1);
    }

    #[test]
    fn signature_at_roundtrips() {
        let (_d, mut ssf) = ssf(256, 4);
        let set = keys(&["x", "y", "z"]);
        let pos = ssf
            .insert_signature(Oid::new(9), &Signature::for_set(ssf.config(), &set))
            .unwrap();
        let stored = ssf.signature_at(pos).unwrap();
        assert_eq!(stored, Signature::for_set(ssf.config(), &set));
        assert!(ssf.signature_at(pos + 1).is_err());
    }

    #[test]
    fn no_false_negatives_bulk() {
        // Soundness under volume: every truly-matching object is a drop.
        let (_d, mut ssf) = ssf(64, 2);
        for i in 0..500u64 {
            let set: Vec<ElementKey> = (0..5).map(|j| ElementKey::from(i * 31 + j)).collect();
            ssf.insert(Oid::new(i), &set).unwrap();
        }
        // Object 123's own first two elements as a ⊇ query.
        let q = SetQuery::has_subset(vec![
            ElementKey::from(123u64 * 31),
            ElementKey::from(123u64 * 31 + 1),
        ]);
        let c = ssf.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(123)));
    }

    #[test]
    fn compact_reclaims_tombstones() {
        let (_d, mut ssf) = ssf(128, 3);
        for i in 0..10u64 {
            ssf.insert(Oid::new(i), &keys(&[&format!("e{i}")])).unwrap();
        }
        for i in 0..5u64 {
            ssf.delete(Oid::new(i * 2), &[]).unwrap();
        }
        let live = ssf.compact().unwrap();
        assert_eq!(live, 5);
        assert_eq!(ssf.indexed_count(), 5);
        // Survivors still retrievable.
        let q = SetQuery::has_subset(keys(&["e3"]));
        let c = ssf.candidates(&q).unwrap();
        assert!(c.oids.contains(&Oid::new(3)));
        // Victims gone.
        let q = SetQuery::has_subset(keys(&["e4"]));
        let c = ssf.candidates(&q).unwrap();
        assert!(!c.oids.contains(&Oid::new(4)));
    }

    #[test]
    fn width_mismatch_rejected() {
        let (_d, mut ssf) = ssf(128, 3);
        let other = SignatureConfig::new(64, 3).unwrap();
        let sig = Signature::for_set(&other, &keys(&["a"]));
        assert!(matches!(
            ssf.insert_signature(Oid::new(1), &sig),
            Err(Error::WidthMismatch {
                expected: 128,
                got: 64
            })
        ));
    }

    #[test]
    fn oversized_signature_rejected_at_create() {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = disk as Arc<dyn PageIo>;
        let cfg = SignatureConfig::new((PAGE_SIZE as u32 + 8) * 8, 2).unwrap();
        assert!(Ssf::create(io, "big", cfg).is_err());
    }
}

#[cfg(test)]
mod engine_tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn populated(f_bits: u32, m: u32, n: u64) -> (Arc<Disk>, Ssf) {
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let cfg = SignatureConfig::new(f_bits, m).unwrap();
        let mut s = Ssf::create(io, "e", cfg).unwrap();
        for i in 0..n {
            let set: Vec<ElementKey> = (0..4).map(|j| ElementKey::from(i * 13 + j)).collect();
            s.insert(Oid::new(i), &set).unwrap();
        }
        (disk, s)
    }

    fn probes() -> Vec<SetQuery> {
        let mut qs = Vec::new();
        for i in [0u64, 5, 29, 64] {
            qs.push(SetQuery::has_subset(vec![
                ElementKey::from(i * 13),
                ElementKey::from(i * 13 + 1),
            ]));
            qs.push(SetQuery::in_subset(
                (0..6).map(|j| ElementKey::from(i * 13 + j)).collect(),
            ));
            qs.push(SetQuery::equals(
                (0..4).map(|j| ElementKey::from(i * 13 + j)).collect(),
            ));
            qs.push(SetQuery::overlaps(vec![ElementKey::from(i * 13 + 3)]));
        }
        qs.push(SetQuery::has_subset(vec![ElementKey::from(444_444u64)]));
        qs
    }

    #[test]
    fn batched_scan_agrees_with_reference_scan() {
        // F=500 → 63-byte rows, several pages; exercises the tail-byte
        // masking of the word kernels on every predicate.
        let (_d, s) = populated(500, 4, 300);
        for q in probes() {
            assert_eq!(
                s.scan_matching_positions(&q).unwrap(),
                s.scan_matching_positions_reference(&q).unwrap(),
                "batched scan diverged ({:?})",
                q.predicate
            );
        }
    }

    #[test]
    fn parallel_scan_is_byte_identical_to_serial() {
        let (_d1, serial) = populated(256, 3, 400);
        let (_d2, mut par) = populated(256, 3, 400);
        par.set_parallelism(8);
        assert_eq!(par.parallelism(), 8);
        for q in probes() {
            let (cs, ss) = serial.candidates_with_stats(&q).unwrap();
            let ss = ss.unwrap();
            let (cp, sp) = par.candidates_with_stats(&q).unwrap();
            let sp = sp.unwrap();
            assert_eq!(cs, cp, "candidates diverged ({:?})", q.predicate);
            assert_eq!(ss, sp, "page accounting diverged ({:?})", q.predicate);
            assert_eq!(sp.logical_pages, sp.physical_pages, "SSF never speculates");
        }
    }

    #[test]
    fn scan_stats_count_signature_pages() {
        let (disk, s) = populated(500, 4, 300);
        let q = SetQuery::has_subset(vec![ElementKey::from(999_999u64)]);
        disk.reset_stats();
        let (_, stats) = s.candidates_with_stats(&q).unwrap();
        let stats = stats.unwrap();
        let sig = s.signature_pages().unwrap();
        // Scan pages plus at most one OID page of (unlikely) false drops.
        assert!(stats.logical_pages >= sig && stats.logical_pages <= sig + 1);
        // The filtering stage's charge is exactly its disk traffic.
        assert_eq!(disk.snapshot().reads, stats.physical_pages);
    }

    #[test]
    fn cached_ssf_serves_repeat_scans_from_pool() {
        let disk = Arc::new(Disk::new());
        let cfg = SignatureConfig::new(128, 2).unwrap();
        let mut s = Ssf::create_cached(Arc::clone(&disk), "c", cfg, 64).unwrap();
        for i in 0..200u64 {
            s.insert(Oid::new(i), &[ElementKey::from(i)]).unwrap();
        }
        let q = SetQuery::has_subset(vec![ElementKey::from(7u64)]);
        let first = s.candidates(&q).unwrap();
        disk.reset_stats();
        let second = s.candidates(&q).unwrap();
        assert_eq!(first, second);
        assert_eq!(
            disk.snapshot().reads,
            0,
            "repeat scan must be pool-resident"
        );
        assert!(s.cache_stats().unwrap().hits > 0);
        assert!(s.buffer_pool().is_some());
    }

    #[test]
    fn uncached_ssf_reports_no_cache_stats() {
        let (_d, s) = populated(64, 2, 5);
        assert!(s.cache_stats().is_none());
    }

    #[test]
    fn attached_recorder_traces_each_query() {
        let (_d, mut s) = populated(128, 2, 50);
        let ring = Arc::new(setsig_obs::RingSink::new(16));
        let rec = Arc::new(
            setsig_obs::Recorder::new()
                .with_sink(Arc::clone(&ring) as Arc<dyn setsig_obs::TraceSink>),
        );
        s.set_recorder(Some(Arc::clone(&rec)));
        let q = SetQuery::has_subset(vec![ElementKey::from(0u64), ElementKey::from(1u64)]);
        let (set, stats) = s.candidates_with_stats(&q).unwrap();
        let stats = stats.unwrap();
        let events = ring.snapshot();
        assert_eq!(events.len(), 1);
        let ev = &events[0];
        assert_eq!(ev.facility, "ssf");
        assert_eq!(ev.predicate, "HasSubset");
        assert_eq!(ev.d_q, 2);
        assert_eq!(ev.f_bits, Some(128));
        assert_eq!(ev.logical_pages, Some(stats.logical_pages));
        assert_eq!(ev.physical_pages, Some(stats.physical_pages));
        assert_eq!(ev.candidates, set.len() as u64);
        assert_eq!(ev.slices_touched, None, "SSF row scans touch no slices");
        let snap = rec.registry().snapshot();
        assert_eq!(snap.get_counter("ssf.queries"), Some(1));
        // Detached again: no further events, identical answers.
        s.set_recorder(None);
        let again = s.candidates(&q).unwrap();
        assert_eq!(again, set);
        assert_eq!(ring.len(), 1);
    }
}

impl Ssf {
    /// Checkpoints the SSF's catalog state (design parameters, file
    /// bindings, entry counters) into its meta file, creating the file on
    /// first use. Returns the meta file id to hand to [`Ssf::open`].
    ///
    /// Checkpoints are explicit so per-operation costs keep the paper's
    /// values; call after bulk loading or before shutdown.
    pub fn sync_meta(&mut self) -> Result<setsig_pagestore::FileId> {
        let mut w = crate::meta::MetaWriter::new(b"SSF1");
        w.u32(self.cfg.f_bits());
        w.u32(self.cfg.m_weight());
        w.u64(self.cfg.seed());
        w.u32(self.sig_file.id().raw());
        w.u32(self.oid_file.file().id().raw());
        let (len, live) = self.oid_file.state();
        w.u64(len);
        w.u64(live);
        let io = Arc::clone(self.sig_file.io());
        crate::meta::checkpoint(&io, &mut self.meta_file, "ssf", &w.finish())
    }

    /// Reopens an SSF from the meta file written by
    /// [`Ssf::sync_meta`] — e.g. after [`setsig_pagestore::Disk::load_from`].
    pub fn open(io: Arc<dyn PageIo>, meta: setsig_pagestore::FileId) -> Result<Self> {
        let meta_file = PagedFile::open(Arc::clone(&io), meta);
        let blob = meta_file.read_blob()?;
        let mut r = crate::meta::MetaReader::new(&blob, b"SSF1")?;
        let cfg = SignatureConfig::with_seed(r.u32()?, r.u32()?, r.u64()?)?;
        let sig_id = setsig_pagestore::FileId::from_raw(r.u32()?);
        let oid_id = setsig_pagestore::FileId::from_raw(r.u32()?);
        let len = r.u64()?;
        let live = r.u64()?;
        r.done()?;
        let sig_bytes = cfg.signature_bytes();
        let per_page = (PAGE_SIZE / sig_bytes) as u64;
        Ok(Ssf {
            cfg,
            sig_file: PagedFile::open(Arc::clone(&io), sig_id),
            oid_file: OidFile::reopen(PagedFile::open(io, oid_id), len, live),
            sig_bytes,
            per_page,
            meta_file: Some(meta_file),
            threads: 1,
            pool: None,
            obs: None,
        })
    }
}

#[cfg(test)]
mod meta_tests {
    use super::*;
    use setsig_pagestore::Disk;

    fn keys(elems: &[&str]) -> Vec<ElementKey> {
        elems.iter().map(ElementKey::from).collect()
    }

    #[test]
    fn ssf_reopens_from_saved_image() {
        let dir = std::env::temp_dir().join(format!("setsig-ssf-meta-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("db.img");

        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut ssf = Ssf::create(io, "h", SignatureConfig::new(128, 2).unwrap()).unwrap();
        ssf.insert(Oid::new(1), &keys(&["Baseball", "Fishing"]))
            .unwrap();
        ssf.insert(Oid::new(2), &keys(&["Tennis"])).unwrap();
        let meta = ssf.sync_meta().unwrap();
        disk.save_to(&path).unwrap();

        let loaded = Arc::new(Disk::load_from(&path).unwrap());
        let io: Arc<dyn PageIo> = Arc::clone(&loaded) as Arc<dyn PageIo>;
        let mut reopened = Ssf::open(io, meta).unwrap();
        assert_eq!(reopened.indexed_count(), 2);
        assert_eq!(reopened.config(), &SignatureConfig::new(128, 2).unwrap());
        let q = SetQuery::has_subset(keys(&["Baseball"]));
        assert_eq!(reopened.candidates(&q).unwrap().oids, vec![Oid::new(1)]);
        // Appends continue at the correct position.
        reopened.insert(Oid::new(3), &keys(&["Baseball"])).unwrap();
        assert_eq!(
            reopened.candidates(&q).unwrap().oids,
            vec![Oid::new(1), Oid::new(3)]
        );

        std::fs::remove_dir_all(&dir).ok();
    }
}
