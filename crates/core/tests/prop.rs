//! Property-based tests on the signature layer and the two organizations.

use proptest::prelude::*;
use setsig_core::{
    Bitmap, Bssf, ElementKey, Oid, SetAccessFacility, SetQuery, Signature, SignatureConfig, Ssf,
};
use setsig_pagestore::{Disk, PageIo};
use std::sync::Arc;

fn keys(v: &[u64]) -> Vec<ElementKey> {
    v.iter().map(|&e| ElementKey::from(e)).collect()
}

proptest! {
    /// Bitmap::covers is exactly "set of one-positions is a superset".
    #[test]
    fn covers_equals_position_superset(
        a in proptest::collection::btree_set(0u32..96, 0..20),
        b in proptest::collection::btree_set(0u32..96, 0..20),
    ) {
        let ba = Bitmap::from_positions(96, &a.iter().copied().collect::<Vec<_>>());
        let bb = Bitmap::from_positions(96, &b.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.covers(&bb), b.is_subset(&a));
        prop_assert_eq!(ba.intersects(&bb), !a.is_disjoint(&b));
    }

    /// Bitmap byte serialization round-trips for arbitrary widths.
    #[test]
    fn bitmap_bytes_roundtrip(
        nbits in 1u32..300,
        seed_positions in proptest::collection::vec(0u32..300, 0..40),
    ) {
        let positions: Vec<u32> = seed_positions.into_iter().filter(|&p| p < nbits).collect();
        let bm = Bitmap::from_positions(nbits, &positions);
        let back = Bitmap::from_bytes(nbits, &bm.to_bytes());
        prop_assert_eq!(back, bm);
    }

    /// Garbage bits past `nbits` in a serialized buffer never leak into the
    /// bitmap: `from_bytes` and `or_assign_bytes` mask the tail, so widths
    /// with `nbits % 8 != 0` behave exactly like byte-aligned ones.
    #[test]
    fn bitmap_bytes_mask_garbage_tail(
        nbits in 1u32..300,
        seed_positions in proptest::collection::vec(0u32..300, 0..40),
        garbage in 0u8..=255,
    ) {
        let positions: Vec<u32> = seed_positions.into_iter().filter(|&p| p < nbits).collect();
        let bm = Bitmap::from_positions(nbits, &positions);
        let mut bytes = bm.to_bytes();
        // Smear garbage over the final byte's unused high bits.
        let rem = (nbits % 8) as usize;
        if rem != 0 {
            if let Some(last) = bytes.last_mut() {
                *last |= garbage << rem;
            }
        }
        let back = Bitmap::from_bytes(nbits, &bytes);
        prop_assert_eq!(&back, &bm);
        prop_assert_eq!(back.count_ones(), positions.iter().collect::<std::collections::BTreeSet<_>>().len() as u32);
        // OR-ing dirty bytes into a clean bitmap must not leak tail bits
        // either (is_zero and count_ones read raw words).
        let mut acc = Bitmap::zeroed(nbits);
        acc.or_assign_bytes(&bytes);
        prop_assert_eq!(&acc, &bm);
        prop_assert_eq!(acc.is_zero(), positions.is_empty());
    }

    /// Superimposed coding is sound: if T ⊇ Q as sets then the signatures
    /// match, for any F, m, and sets — the no-false-negative guarantee.
    #[test]
    fn superset_signature_never_misses(
        f_exp in 3u32..9,            // F in 8..256
        m in 1u32..6,
        target in proptest::collection::btree_set(0u64..1000, 1..20),
        extra_query_from_target in proptest::collection::vec(0usize..20, 1..10),
    ) {
        let f = 1u32 << f_exp;
        let cfg = SignatureConfig::new(f, m.min(f)).unwrap();
        let telems: Vec<u64> = target.iter().copied().collect();
        // Query = arbitrary subset of the target.
        let qelems: Vec<u64> = extra_query_from_target
            .iter()
            .map(|&i| telems[i % telems.len()])
            .collect();
        let tsig = Signature::for_set(&cfg, &keys(&telems));
        let qsig = Signature::for_set(&cfg, &keys(&qelems));
        prop_assert!(tsig.matches_superset_of(&qsig));
        // And symmetrically T ⊆ (T ∪ anything).
        let mut superset = telems.clone();
        superset.extend_from_slice(&qelems);
        superset.push(9999);
        let ssig = Signature::for_set(&cfg, &keys(&superset));
        prop_assert!(tsig.matches_subset_of(&ssig));
    }

    /// SSF and BSSF are different physical layouts of the same logical
    /// filter: identical candidates for every query type.
    #[test]
    fn ssf_and_bssf_agree(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..60, 1..6), 1..25),
        qset in proptest::collection::btree_set(0u64..60, 1..6),
        pred in 0u8..4,
    ) {
        let cfg = SignatureConfig::new(64, 2).unwrap();
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut ssf = Ssf::create(Arc::clone(&io), "s", cfg).unwrap();
        let mut bssf = Bssf::create(io, "b", cfg).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let elems = keys(&set.iter().copied().collect::<Vec<_>>());
            ssf.insert(Oid::new(i as u64), &elems).unwrap();
            bssf.insert(Oid::new(i as u64), &elems).unwrap();
        }
        let qelems = keys(&qset.iter().copied().collect::<Vec<_>>());
        let query = match pred {
            0 => SetQuery::has_subset(qelems),
            1 => SetQuery::in_subset(qelems),
            2 => SetQuery::equals(qelems),
            _ => SetQuery::overlaps(qelems),
        };
        prop_assert_eq!(
            ssf.candidates(&query).unwrap(),
            bssf.candidates(&query).unwrap()
        );
    }

    /// End-to-end soundness on both organizations: every object whose set
    /// truly satisfies the predicate appears among the candidates.
    #[test]
    fn facilities_have_no_false_negatives(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..40, 1..8), 1..30),
        query_raw in proptest::collection::btree_set(0u64..40, 1..8),
    ) {
        let cfg = SignatureConfig::new(128, 3).unwrap();
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut ssf = Ssf::create(Arc::clone(&io), "s", cfg).unwrap();
        let mut bssf = Bssf::create(io, "b", cfg).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let elems = keys(&set.iter().copied().collect::<Vec<_>>());
            ssf.insert(Oid::new(i as u64), &elems).unwrap();
            bssf.insert(Oid::new(i as u64), &elems).unwrap();
        }
        let q_sup = SetQuery::has_subset(keys(&query_raw.iter().copied().collect::<Vec<_>>()));
        let q_sub = SetQuery::in_subset(keys(&query_raw.iter().copied().collect::<Vec<_>>()));
        let sup_ssf = ssf.candidates(&q_sup).unwrap();
        let sup_bssf = bssf.candidates(&q_sup).unwrap();
        let sub_ssf = ssf.candidates(&q_sub).unwrap();
        let sub_bssf = bssf.candidates(&q_sub).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let oid = Oid::new(i as u64);
            if query_raw.is_subset(set) {
                prop_assert!(sup_ssf.oids.contains(&oid), "SSF missed ⊇ match {i}");
                prop_assert!(sup_bssf.oids.contains(&oid), "BSSF missed ⊇ match {i}");
            }
            if set.is_subset(&query_raw) {
                prop_assert!(sub_ssf.oids.contains(&oid), "SSF missed ⊆ match {i}");
                prop_assert!(sub_bssf.oids.contains(&oid), "BSSF missed ⊆ match {i}");
            }
        }
    }

    /// Smart strategies are relaxations: their candidate sets contain the
    /// plain strategy's candidates (they only ever read fewer slices).
    #[test]
    fn smart_strategies_are_supersets_of_plain(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..40, 1..6), 1..20),
        query_raw in proptest::collection::btree_set(0u64..40, 2..8),
        cap in 1usize..4,
    ) {
        let cfg = SignatureConfig::new(64, 2).unwrap();
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut bssf = Bssf::create(io, "b", cfg).unwrap();
        for (i, set) in sets.iter().enumerate() {
            bssf.insert(Oid::new(i as u64), &keys(&set.iter().copied().collect::<Vec<_>>())).unwrap();
        }
        let qelems = keys(&query_raw.iter().copied().collect::<Vec<_>>());
        let q_sup = SetQuery::has_subset(qelems.clone());
        let plain = bssf.candidates(&q_sup).unwrap();
        let (smart, _) = bssf.candidates_superset_smart(&q_sup, cap).unwrap();
        for oid in &plain.oids {
            prop_assert!(smart.oids.contains(oid));
        }
        let q_sub = SetQuery::in_subset(qelems);
        let plain = bssf.candidates(&q_sub).unwrap();
        let (smart, _) = bssf.candidates_subset_smart(&q_sub, cap * 8).unwrap();
        for oid in &plain.oids {
            prop_assert!(smart.oids.contains(oid));
        }
    }
}
