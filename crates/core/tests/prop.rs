//! Property-based tests on the signature layer and the two organizations.

use proptest::prelude::*;
use setsig_core::{
    kernel, Bitmap, Bssf, ElementKey, Oid, SetAccessFacility, SetQuery, Signature, SignatureConfig,
    Ssf,
};
use setsig_pagestore::{Disk, PageIo};
use std::sync::Arc;

fn keys(v: &[u64]) -> Vec<ElementKey> {
    v.iter().map(|&e| ElementKey::from(e)).collect()
}

/// Widths that are never a multiple of 8 (hence never of 64): the word
/// kernels' partial-tail paths, which a byte- or word-aligned width would
/// silently skip.
fn unaligned_width() -> impl Strategy<Value = u32> {
    (1u32..512).prop_map(|n| if n % 8 == 0 { n + 1 } else { n })
}

/// Canonical word view of an LSB-first byte buffer (padding bits zero).
fn canonical_words(nbits: u32, bytes: &[u8]) -> Vec<u64> {
    let mut words = vec![0u64; kernel::words_for(nbits)];
    kernel::fill(&mut words, bytes, nbits);
    words
}

/// Serializes canonical words back to the `ceil(nbits/8)` LE byte form the
/// reference loops operate on.
fn words_to_bytes(words: &[u64], nbits: u32) -> Vec<u8> {
    (0..(nbits as usize).div_ceil(8))
        .map(|i| (words[i / 8] >> (8 * (i % 8))) as u8)
        .collect()
}

/// Smears garbage over the final byte's bits at positions `>= nbits`, so
/// differential runs prove the kernels mask (or are immune to) tail junk.
fn smear_tail(bytes: &mut [u8], nbits: u32, garbage: u8) {
    let rem = nbits % 8;
    if rem != 0 {
        if let Some(last) = bytes.last_mut() {
            *last |= garbage << rem;
        }
    }
}

proptest! {
    /// Bitmap::covers is exactly "set of one-positions is a superset".
    #[test]
    fn covers_equals_position_superset(
        a in proptest::collection::btree_set(0u32..96, 0..20),
        b in proptest::collection::btree_set(0u32..96, 0..20),
    ) {
        let ba = Bitmap::from_positions(96, &a.iter().copied().collect::<Vec<_>>());
        let bb = Bitmap::from_positions(96, &b.iter().copied().collect::<Vec<_>>());
        prop_assert_eq!(ba.covers(&bb), b.is_subset(&a));
        prop_assert_eq!(ba.intersects(&bb), !a.is_disjoint(&b));
    }

    /// Bitmap byte serialization round-trips for arbitrary widths.
    #[test]
    fn bitmap_bytes_roundtrip(
        nbits in 1u32..300,
        seed_positions in proptest::collection::vec(0u32..300, 0..40),
    ) {
        let positions: Vec<u32> = seed_positions.into_iter().filter(|&p| p < nbits).collect();
        let bm = Bitmap::from_positions(nbits, &positions);
        let back = Bitmap::from_bytes(nbits, &bm.to_bytes());
        prop_assert_eq!(back, bm);
    }

    /// Garbage bits past `nbits` in a serialized buffer never leak into the
    /// bitmap: `from_bytes` and `or_assign_bytes` mask the tail, so widths
    /// with `nbits % 8 != 0` behave exactly like byte-aligned ones.
    #[test]
    fn bitmap_bytes_mask_garbage_tail(
        nbits in 1u32..300,
        seed_positions in proptest::collection::vec(0u32..300, 0..40),
        garbage in 0u8..=255,
    ) {
        let positions: Vec<u32> = seed_positions.into_iter().filter(|&p| p < nbits).collect();
        let bm = Bitmap::from_positions(nbits, &positions);
        let mut bytes = bm.to_bytes();
        // Smear garbage over the final byte's unused high bits.
        let rem = (nbits % 8) as usize;
        if rem != 0 {
            if let Some(last) = bytes.last_mut() {
                *last |= garbage << rem;
            }
        }
        let back = Bitmap::from_bytes(nbits, &bytes);
        prop_assert_eq!(&back, &bm);
        prop_assert_eq!(back.count_ones(), positions.iter().collect::<std::collections::BTreeSet<_>>().len() as u32);
        // OR-ing dirty bytes into a clean bitmap must not leak tail bits
        // either (is_zero and count_ones read raw words).
        let mut acc = Bitmap::zeroed(nbits);
        acc.or_assign_bytes(&bytes);
        prop_assert_eq!(&acc, &bm);
        prop_assert_eq!(acc.is_zero(), positions.is_empty());
    }

    /// Superimposed coding is sound: if T ⊇ Q as sets then the signatures
    /// match, for any F, m, and sets — the no-false-negative guarantee.
    #[test]
    fn superset_signature_never_misses(
        f_exp in 3u32..9,            // F in 8..256
        m in 1u32..6,
        target in proptest::collection::btree_set(0u64..1000, 1..20),
        extra_query_from_target in proptest::collection::vec(0usize..20, 1..10),
    ) {
        let f = 1u32 << f_exp;
        let cfg = SignatureConfig::new(f, m.min(f)).unwrap();
        let telems: Vec<u64> = target.iter().copied().collect();
        // Query = arbitrary subset of the target.
        let qelems: Vec<u64> = extra_query_from_target
            .iter()
            .map(|&i| telems[i % telems.len()])
            .collect();
        let tsig = Signature::for_set(&cfg, &keys(&telems));
        let qsig = Signature::for_set(&cfg, &keys(&qelems));
        prop_assert!(tsig.matches_superset_of(&qsig));
        // And symmetrically T ⊆ (T ∪ anything).
        let mut superset = telems.clone();
        superset.extend_from_slice(&qelems);
        superset.push(9999);
        let ssig = Signature::for_set(&cfg, &keys(&superset));
        prop_assert!(tsig.matches_subset_of(&ssig));
    }

    /// SSF and BSSF are different physical layouts of the same logical
    /// filter: identical candidates for every query type.
    #[test]
    fn ssf_and_bssf_agree(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..60, 1..6), 1..25),
        qset in proptest::collection::btree_set(0u64..60, 1..6),
        pred in 0u8..4,
    ) {
        let cfg = SignatureConfig::new(64, 2).unwrap();
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut ssf = Ssf::create(Arc::clone(&io), "s", cfg).unwrap();
        let mut bssf = Bssf::create(io, "b", cfg).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let elems = keys(&set.iter().copied().collect::<Vec<_>>());
            ssf.insert(Oid::new(i as u64), &elems).unwrap();
            bssf.insert(Oid::new(i as u64), &elems).unwrap();
        }
        let qelems = keys(&qset.iter().copied().collect::<Vec<_>>());
        let query = match pred {
            0 => SetQuery::has_subset(qelems),
            1 => SetQuery::in_subset(qelems),
            2 => SetQuery::equals(qelems),
            _ => SetQuery::overlaps(qelems),
        };
        prop_assert_eq!(
            ssf.candidates(&query).unwrap(),
            bssf.candidates(&query).unwrap()
        );
    }

    /// End-to-end soundness on both organizations: every object whose set
    /// truly satisfies the predicate appears among the candidates.
    #[test]
    fn facilities_have_no_false_negatives(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..40, 1..8), 1..30),
        query_raw in proptest::collection::btree_set(0u64..40, 1..8),
    ) {
        let cfg = SignatureConfig::new(128, 3).unwrap();
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut ssf = Ssf::create(Arc::clone(&io), "s", cfg).unwrap();
        let mut bssf = Bssf::create(io, "b", cfg).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let elems = keys(&set.iter().copied().collect::<Vec<_>>());
            ssf.insert(Oid::new(i as u64), &elems).unwrap();
            bssf.insert(Oid::new(i as u64), &elems).unwrap();
        }
        let q_sup = SetQuery::has_subset(keys(&query_raw.iter().copied().collect::<Vec<_>>()));
        let q_sub = SetQuery::in_subset(keys(&query_raw.iter().copied().collect::<Vec<_>>()));
        let sup_ssf = ssf.candidates(&q_sup).unwrap();
        let sup_bssf = bssf.candidates(&q_sup).unwrap();
        let sub_ssf = ssf.candidates(&q_sub).unwrap();
        let sub_bssf = bssf.candidates(&q_sub).unwrap();
        for (i, set) in sets.iter().enumerate() {
            let oid = Oid::new(i as u64);
            if query_raw.is_subset(set) {
                prop_assert!(sup_ssf.oids.contains(&oid), "SSF missed ⊇ match {i}");
                prop_assert!(sup_bssf.oids.contains(&oid), "BSSF missed ⊇ match {i}");
            }
            if set.is_subset(&query_raw) {
                prop_assert!(sub_ssf.oids.contains(&oid), "SSF missed ⊆ match {i}");
                prop_assert!(sub_bssf.oids.contains(&oid), "BSSF missed ⊆ match {i}");
            }
        }
    }

    /// Smart strategies are relaxations: their candidate sets contain the
    /// plain strategy's candidates (they only ever read fewer slices).
    #[test]
    fn smart_strategies_are_supersets_of_plain(
        sets in proptest::collection::vec(
            proptest::collection::btree_set(0u64..40, 1..6), 1..20),
        query_raw in proptest::collection::btree_set(0u64..40, 2..8),
        cap in 1usize..4,
    ) {
        let cfg = SignatureConfig::new(64, 2).unwrap();
        let disk = Arc::new(Disk::new());
        let io: Arc<dyn PageIo> = Arc::clone(&disk) as Arc<dyn PageIo>;
        let mut bssf = Bssf::create(io, "b", cfg).unwrap();
        for (i, set) in sets.iter().enumerate() {
            bssf.insert(Oid::new(i as u64), &keys(&set.iter().copied().collect::<Vec<_>>())).unwrap();
        }
        let qelems = keys(&query_raw.iter().copied().collect::<Vec<_>>());
        let q_sup = SetQuery::has_subset(qelems.clone());
        let plain = bssf.candidates(&q_sup).unwrap();
        let (smart, _) = bssf.candidates_superset_smart(&q_sup, cap).unwrap();
        for oid in &plain.oids {
            prop_assert!(smart.oids.contains(oid));
        }
        let q_sub = SetQuery::in_subset(qelems);
        let plain = bssf.candidates(&q_sub).unwrap();
        let (smart, _) = bssf.candidates_subset_smart(&q_sub, cap * 8).unwrap();
        for oid in &plain.oids {
            prop_assert!(smart.oids.contains(oid));
        }
    }

    /// Word AND/OR kernels are bit-identical to the byte-loop references at
    /// unaligned widths, garbage tail bits and all, and the fused AND
    /// liveness flag equals "result is nonzero".
    #[test]
    fn kernel_and_or_match_byte_references(
        nbits in unaligned_width(),
        acc_seed in proptest::collection::vec(0u8..=255, 0..70),
        row_seed in proptest::collection::vec(0u8..=255, 0..70),
        garbage in 0u8..=255,
    ) {
        let nbytes = (nbits as usize).div_ceil(8);
        let mut acc_bytes: Vec<u8> = acc_seed.into_iter().cycle().take(nbytes).collect();
        if acc_bytes.len() < nbytes {
            acc_bytes.resize(nbytes, 0); // empty seed → all-zero accumulator
        }
        let mut row: Vec<u8> = row_seed.into_iter().cycle().take(nbytes).collect();
        row.resize(nbytes, 0);
        smear_tail(&mut row, nbits, garbage);

        // AND: canonical word accumulator vs. byte loop on the same start.
        let mut words = canonical_words(nbits, &acc_bytes);
        let mut ref_bytes = words_to_bytes(&words, nbits);
        let alive = kernel::and_assign(&mut words, &row);
        kernel::reference::and_assign(&mut ref_bytes, &row);
        // The byte loop leaves row tail garbage wherever acc padding would
        // allow it — only positions < nbits are contractual.
        kernel::reference::mask_tail_bytes(&mut ref_bytes, nbits);
        prop_assert_eq!(&words_to_bytes(&words, nbits), &ref_bytes);
        prop_assert_eq!(alive != 0, ref_bytes.iter().any(|&b| b != 0));
        // The AND result stays canonical without any explicit masking.
        let recanon = canonical_words(nbits, &words_to_bytes(&words, nbits));
        prop_assert_eq!(&words, &recanon);

        // OR: same differential, and the result must be canonical too.
        let mut words = canonical_words(nbits, &acc_bytes);
        let mut ref_bytes = words_to_bytes(&words, nbits);
        kernel::or_assign(&mut words, &row, nbits);
        kernel::reference::or_assign(&mut ref_bytes, &row, nbits);
        prop_assert_eq!(&words_to_bytes(&words, nbits), &ref_bytes);
        let recanon = canonical_words(nbits, &words_to_bytes(&words, nbits));
        prop_assert_eq!(&words, &recanon);
    }

    /// Word-level row predicates (⊇, ⊆, =, overlap popcount) agree with the
    /// bit-loop references on every width, including rows shorter than the
    /// width (sparse zero-padded tails) and rows with garbage tail bits.
    #[test]
    fn kernel_predicates_match_bit_loops(
        nbits in unaligned_width(),
        q_seed in proptest::collection::vec(0u8..=255, 0..70),
        row_seed in proptest::collection::vec(0u8..=255, 0..70),
        garbage in 0u8..=255,
        truncate in 0usize..8,
    ) {
        let nbytes = (nbits as usize).div_ceil(8);
        let mut q_bytes: Vec<u8> = q_seed.into_iter().cycle().take(nbytes).collect();
        q_bytes.resize(nbytes, 0);
        let query = canonical_words(nbits, &q_bytes);
        let q_clean = words_to_bytes(&query, nbits);

        let mut row: Vec<u8> = row_seed.into_iter().cycle().take(nbytes).collect();
        row.resize(nbytes, 0);
        // Either a short row (zero-padded past the end) or a full-width row
        // with garbage in the final byte's padding bits.
        if truncate > 0 {
            row.truncate(nbytes.saturating_sub(truncate));
        } else {
            smear_tail(&mut row, nbits, garbage);
        }

        prop_assert_eq!(
            kernel::is_covered_by(&query, &row),
            kernel::reference::is_covered_by(&q_clean, &row, nbits)
        );
        prop_assert_eq!(
            kernel::covers(&query, &row, nbits),
            kernel::reference::covers(&q_clean, &row, nbits)
        );
        prop_assert_eq!(
            kernel::eq(&query, &row, nbits),
            kernel::reference::eq(&q_clean, &row, nbits)
        );
        prop_assert_eq!(
            kernel::intersection_count(&query, &row),
            kernel::reference::intersection_count(&q_clean, &row, nbits)
        );
    }

    /// Word-at-a-time `iter_ones` and the overlap accumulator visit exactly
    /// the reference bit-scan's positions, in ascending order.
    #[test]
    fn kernel_iter_ones_matches_bit_scan(
        nbits in unaligned_width(),
        row_seed in proptest::collection::vec(0u8..=255, 0..70),
        garbage in 0u8..=255,
        truncate in 0usize..8,
    ) {
        let nbytes = (nbits as usize).div_ceil(8);
        let mut row: Vec<u8> = row_seed.into_iter().cycle().take(nbytes).collect();
        row.resize(nbytes, 0);
        if truncate > 0 {
            row.truncate(nbytes.saturating_sub(truncate));
        } else {
            smear_tail(&mut row, nbits, garbage);
        }

        let expect = kernel::reference::iter_ones(nbits, &row);
        let got: Vec<u32> = kernel::iter_ones(nbits, &row).collect();
        prop_assert_eq!(&got, &expect);

        // accumulate_ones bumps exactly those positions by one.
        let mut counts = vec![0u32; nbits as usize];
        kernel::accumulate_ones(&mut counts, &row);
        for (p, &c) in counts.iter().enumerate() {
            prop_assert_eq!(c, u32::from(expect.contains(&(p as u32))), "position {}", p);
        }
    }
}
