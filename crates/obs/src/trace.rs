//! Structured per-query trace events and the sinks that receive them.

use parking_lot::Mutex;
use std::collections::VecDeque;
use std::io::Write;

/// One completed `candidates*` call, as seen by the facility that ran it.
///
/// Fields that do not apply to a facility are `None` (e.g. NIX has no
/// signature geometry and reports no page stats of its own; SSF touches no
/// slices). The JSONL rendering of this struct is the stable trace schema
/// documented in DESIGN.md §7.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryTrace {
    /// Facility short name, lowercase (`ssf`, `bssf`, `fssf`, `nix`).
    pub facility: String,
    /// Predicate kind (`HasSubset`, `InSubset`, `Equals`, `Overlaps`,
    /// `Contains`), optionally suffixed with the strategy (`:smart`).
    pub predicate: String,
    /// Query cardinality `D_q`.
    pub d_q: u64,
    /// Signature width `F` in bits, where the facility has one.
    pub f_bits: Option<u32>,
    /// Element signature weight `m`, where the facility has one.
    pub m_weight: Option<u32>,
    /// Bit slices (BSSF) or frames (FSSF) touched by the scan.
    pub slices_touched: Option<u64>,
    /// True when the scan stopped before its slice/page budget because the
    /// candidate accumulator emptied.
    pub early_exit: bool,
    /// Logical page accesses (the serial protocol charge).
    pub logical_pages: Option<u64>,
    /// Physical page accesses (actual I/O, incl. speculative prefetch).
    pub physical_pages: Option<u64>,
    /// Candidates (drops) returned by the filter.
    pub candidates: u64,
    /// True when the candidate set is exact (no verification needed).
    pub exact: bool,
    /// False drops eliminated by verification; `None` until a resolution
    /// stage has run (the facility alone cannot know).
    pub false_drops: Option<u64>,
    /// Buffer-pool (LRU) hits during this query, when a pool is attached.
    pub cache_hits: Option<u64>,
    /// Buffer-pool misses during this query, when a pool is attached.
    pub cache_misses: Option<u64>,
    /// Pinned-tier hits during this query, when a pool with a pinned tier
    /// is attached.
    pub cache_pinned_hits: Option<u64>,
    /// Wall-clock latency of the call in nanoseconds.
    pub latency_ns: u64,
}

/// Minimal JSON string escaping (quotes, backslash, control chars).
fn escape_json(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
}

fn push_opt_u64(out: &mut String, key: &str, v: Option<u64>) {
    match v {
        Some(v) => out.push_str(&format!(",\"{key}\":{v}")),
        None => out.push_str(&format!(",\"{key}\":null")),
    }
}

impl QueryTrace {
    /// Renders the event as one JSON object (no trailing newline). The
    /// key set is fixed; absent measurements render as `null`.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256);
        out.push_str("{\"facility\":\"");
        escape_json(&self.facility, &mut out);
        out.push_str("\",\"predicate\":\"");
        escape_json(&self.predicate, &mut out);
        out.push_str(&format!("\",\"d_q\":{}", self.d_q));
        push_opt_u64(&mut out, "f_bits", self.f_bits.map(u64::from));
        push_opt_u64(&mut out, "m_weight", self.m_weight.map(u64::from));
        push_opt_u64(&mut out, "slices_touched", self.slices_touched);
        out.push_str(&format!(",\"early_exit\":{}", self.early_exit));
        push_opt_u64(&mut out, "logical_pages", self.logical_pages);
        push_opt_u64(&mut out, "physical_pages", self.physical_pages);
        out.push_str(&format!(",\"candidates\":{}", self.candidates));
        out.push_str(&format!(",\"exact\":{}", self.exact));
        push_opt_u64(&mut out, "false_drops", self.false_drops);
        push_opt_u64(&mut out, "cache_hits", self.cache_hits);
        push_opt_u64(&mut out, "cache_misses", self.cache_misses);
        push_opt_u64(&mut out, "cache_pinned_hits", self.cache_pinned_hits);
        out.push_str(&format!(",\"latency_ns\":{}}}", self.latency_ns));
        out
    }
}

/// A destination for [`QueryTrace`] events. Implementations must be cheap
/// and infallible — a sink failure may not take the query path down.
pub trait TraceSink: Send + Sync {
    /// Receives one completed query event.
    fn record(&self, ev: &QueryTrace);
}

/// A bounded in-memory ring of the most recent events.
pub struct RingSink {
    // LOCK-ORDER: obs.trace_ring leaf
    buf: Mutex<VecDeque<QueryTrace>>,
    cap: usize,
}

impl RingSink {
    /// A ring keeping the most recent `cap` events (`cap ≥ 1`).
    pub fn new(cap: usize) -> Self {
        RingSink {
            buf: Mutex::new(VecDeque::new()),
            cap: cap.max(1),
        }
    }

    /// Copies out the buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<QueryTrace> {
        self.buf.lock().iter().cloned().collect()
    }

    /// Copies out and clears the buffered events, oldest first.
    pub fn drain(&self) -> Vec<QueryTrace> {
        self.buf.lock().drain(..).collect()
    }

    /// Number of buffered events.
    pub fn len(&self) -> usize {
        self.buf.lock().len()
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.buf.lock().is_empty()
    }
}

impl TraceSink for RingSink {
    fn record(&self, ev: &QueryTrace) {
        let mut buf = self.buf.lock();
        if buf.len() == self.cap {
            buf.pop_front();
        }
        buf.push_back(ev.clone());
    }
}

impl std::fmt::Debug for RingSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "RingSink {{ cap: {}, len: {} }}", self.cap, self.len())
    }
}

/// Writes one JSON object per event to any `Write` (a file, a `Vec<u8>`
/// for tests). Write errors are swallowed: tracing must never fail the
/// query.
pub struct JsonlSink {
    // The mutex IS this sink's serialization point: `flush` necessarily
    // flushes the writer under it (allowlisted in locks.allow).
    // LOCK-ORDER: obs.trace_jsonl leaf
    out: Mutex<Box<dyn Write + Send>>,
}

impl JsonlSink {
    /// A sink writing JSONL to `out`.
    pub fn new(out: Box<dyn Write + Send>) -> Self {
        JsonlSink {
            out: Mutex::new(out),
        }
    }

    /// Flushes the underlying writer.
    pub fn flush(&self) {
        let _ = self.out.lock().flush();
    }
}

impl TraceSink for JsonlSink {
    fn record(&self, ev: &QueryTrace) {
        let mut line = ev.to_json();
        line.push('\n');
        let _ = self.out.lock().write_all(line.as_bytes());
    }
}

impl std::fmt::Debug for JsonlSink {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "JsonlSink")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn ev(tag: &str) -> QueryTrace {
        QueryTrace {
            facility: tag.to_owned(),
            predicate: "InSubset".to_owned(),
            d_q: 30,
            f_bits: Some(500),
            m_weight: Some(2),
            slices_touched: None,
            early_exit: true,
            logical_pages: Some(41),
            physical_pages: Some(41),
            candidates: 7,
            exact: false,
            false_drops: None,
            cache_hits: None,
            cache_misses: None,
            cache_pinned_hits: None,
            latency_ns: 5150,
        }
    }

    #[test]
    fn json_schema_is_stable() {
        let json = ev("bssf").to_json();
        assert_eq!(
            json,
            "{\"facility\":\"bssf\",\"predicate\":\"InSubset\",\"d_q\":30,\
             \"f_bits\":500,\"m_weight\":2,\"slices_touched\":null,\
             \"early_exit\":true,\"logical_pages\":41,\"physical_pages\":41,\
             \"candidates\":7,\"exact\":false,\"false_drops\":null,\
             \"cache_hits\":null,\"cache_misses\":null,\
             \"cache_pinned_hits\":null,\"latency_ns\":5150}"
        );
    }

    #[test]
    fn json_escapes_special_characters() {
        let mut e = ev("x");
        e.predicate = "a\"b\\c\nd".to_owned();
        let json = e.to_json();
        assert!(json.contains("a\\\"b\\\\c\\nd"));
    }

    #[test]
    fn ring_sink_drops_oldest_beyond_capacity() {
        let ring = RingSink::new(3);
        for i in 0..5 {
            ring.record(&ev(&format!("f{i}")));
        }
        let events = ring.snapshot();
        assert_eq!(events.len(), 3);
        assert_eq!(events[0].facility, "f2");
        assert_eq!(events[2].facility, "f4");
        assert_eq!(ring.drain().len(), 3);
        assert!(ring.is_empty());
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        // Shared byte buffer so the written output is observable.
        #[derive(Clone, Default)]
        struct SharedBuf(Arc<Mutex<Vec<u8>>>);
        impl Write for SharedBuf {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }
        let buf = SharedBuf::default();
        let sink = JsonlSink::new(Box::new(buf.clone()));
        sink.record(&ev("a"));
        sink.record(&ev("b"));
        sink.flush();
        let text = String::from_utf8(buf.0.lock().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"facility\":\"a\""));
        assert!(lines[1].ends_with("}"));
    }
}
