//! The metrics registry: counters, gauges and log2-bucket histograms.
//!
//! Updates are lock-free (`AtomicU64`); only name→metric resolution takes
//! the registry lock, and callers that care hold the returned `Arc` so the
//! lookup happens once. Snapshots are point-in-time copies safe to render
//! or diff while queries keep running.

use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        // ATOMIC: Relaxed — an event tally; nothing is published through it.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // ATOMIC: Relaxed — monitoring read; a stale count is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-write-wins signed gauge.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Sets the gauge.
    pub fn set(&self, v: i64) {
        // ATOMIC: Relaxed — last-write-wins level; no cross-cell ordering.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adjusts the gauge by `delta` (negative to decrement) — the shape a
    /// level gauge (queue depth, in-flight work) wants, where concurrent
    /// increments and decrements must not lose updates the way
    /// read-modify-`set` would.
    pub fn add(&self, delta: i64) {
        // ATOMIC: Relaxed — the RMW already makes the adjustment lossless.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Raises the gauge to `v` if `v` exceeds the current value — a
    /// high-water mark (peak queue depth), race-free under concurrent
    /// observers.
    pub fn set_max(&self, v: i64) {
        // ATOMIC: Relaxed — fetch_max is race-free on its own cell.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // ATOMIC: Relaxed — monitoring read; a stale level is acceptable.
        self.0.load(Ordering::Relaxed)
    }
}

/// Bucket count for [`Histogram`]: bucket 0 holds zeros, bucket `i ≥ 1`
/// holds values in `[2^(i-1), 2^i)`, so 65 buckets cover all of `u64`.
const HISTOGRAM_BUCKETS: usize = 65;

/// A log2-bucket histogram of `u64` samples (latencies, page counts).
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

/// Bucket index of a sample: 0 for 0, else `64 - leading_zeros`.
fn bucket_of(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        64 - v.leading_zeros() as usize
    }
}

impl Histogram {
    fn new() -> Self {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        // ATOMIC: Relaxed ×3 — the cells advance independently; a snapshot
        // racing this record may see count without sum, and the snapshot
        // contract (below) allows exactly that skew.
        self.buckets[bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Point-in-time copy of the histogram state.
    pub fn snapshot(&self) -> HistogramSnapshot {
        // ATOMIC: Relaxed ×3 — a copy taken under concurrent records is
        // approximate by design; per-cell loads never tear.
        HistogramSnapshot {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
        }
    }
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

/// A point-in-time copy of a [`Histogram`].
#[derive(Debug, Clone)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see [`Histogram`] for the bucket scheme).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total samples.
    pub count: u64,
    /// Sum of all samples.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Upper bound of the bucket holding the `q`-quantile sample
    /// (`0.0 ≤ q ≤ 1.0`); 0 with no samples. Log2 buckets make this an
    /// order-of-magnitude estimate, which is all the drift checks need.
    pub fn quantile_upper_bound(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((self.count as f64) * q.clamp(0.0, 1.0)).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return match i {
                    0 => 0,
                    64 => u64::MAX,
                    _ => 1u64 << i,
                };
            }
        }
        u64::MAX
    }
}

/// One metric's current value inside a [`MetricsSnapshot`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram state (boxed: the bucket array dwarfs the other variants).
    Histogram(Box<HistogramSnapshot>),
}

/// A point-in-time copy of every metric in a [`MetricsRegistry`], keyed by
/// name (sorted — `BTreeMap` — so renders are deterministic).
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    values: BTreeMap<String, MetricValue>,
}

impl MetricsSnapshot {
    /// Counter value by name, if present and a counter.
    pub fn get_counter(&self, name: &str) -> Option<u64> {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => Some(*v),
            _ => None,
        }
    }

    /// Gauge value by name, if present and a gauge.
    pub fn get_gauge(&self, name: &str) -> Option<i64> {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => Some(*v),
            _ => None,
        }
    }

    /// Histogram state by name, if present and a histogram.
    pub fn get_histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        match self.values.get(name) {
            Some(MetricValue::Histogram(h)) => Some(h.as_ref()),
            _ => None,
        }
    }

    /// Iterates `(name, value)` in name order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &MetricValue)> {
        self.values.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Number of metrics captured.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True when no metrics were captured.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Renders the snapshot as aligned `name value` text, one metric per
    /// line; histograms show count / sum / mean / p99 bound.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        for (name, value) in &self.values {
            match value {
                MetricValue::Counter(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Gauge(v) => out.push_str(&format!("{name} {v}\n")),
                MetricValue::Histogram(h) => out.push_str(&format!(
                    "{name} count={} sum={} mean={:.1} p99<={}\n",
                    h.count,
                    h.sum,
                    h.mean(),
                    h.quantile_upper_bound(0.99)
                )),
            }
        }
        out
    }
}

enum Metric {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

/// A named collection of metrics. Lookups get-or-create; a name keeps the
/// kind of its first registration (a counter name asked for as a gauge
/// yields a detached gauge rather than panicking — observability must
/// never take the query path down).
#[derive(Default)]
pub struct MetricsRegistry {
    // LOCK-ORDER: obs.metrics leaf
    metrics: Mutex<BTreeMap<String, Metric>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        MetricsRegistry {
            metrics: Mutex::new(BTreeMap::new()),
        }
    }

    /// The counter named `name`, created on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Counter(Arc::new(Counter::default())))
        {
            Metric::Counter(c) => Arc::clone(c),
            _ => Arc::new(Counter::default()),
        }
    }

    /// The gauge named `name`, created on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Gauge(Arc::new(Gauge::default())))
        {
            Metric::Gauge(g) => Arc::clone(g),
            _ => Arc::new(Gauge::default()),
        }
    }

    /// The histogram named `name`, created on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut m = self.metrics.lock();
        match m
            .entry(name.to_owned())
            .or_insert_with(|| Metric::Histogram(Arc::new(Histogram::new())))
        {
            Metric::Histogram(h) => Arc::clone(h),
            _ => Arc::new(Histogram::new()),
        }
    }

    /// Captures every metric's current value.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let m = self.metrics.lock();
        let values = m
            .iter()
            .map(|(k, v)| {
                let value = match v {
                    Metric::Counter(c) => MetricValue::Counter(c.get()),
                    Metric::Gauge(g) => MetricValue::Gauge(g.get()),
                    Metric::Histogram(h) => MetricValue::Histogram(Box::new(h.snapshot())),
                };
                (k.clone(), value)
            })
            .collect();
        MetricsSnapshot { values }
    }
}

impl std::fmt::Debug for MetricsRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "MetricsRegistry {{ metrics: {} }}",
            self.metrics.lock().len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_snapshot() {
        let r = MetricsRegistry::new();
        let c = r.counter("q.total");
        c.inc();
        c.add(4);
        r.counter("q.total").inc(); // same counter by name
        assert_eq!(r.snapshot().get_counter("q.total"), Some(6));
    }

    #[test]
    fn gauges_are_last_write_wins() {
        let r = MetricsRegistry::new();
        let g = r.gauge("pool.pages");
        g.set(42);
        g.set(-3);
        assert_eq!(r.snapshot().get_gauge("pool.pages"), Some(-3));
    }

    #[test]
    fn gauge_add_and_high_water_mark() {
        let r = MetricsRegistry::new();
        let g = r.gauge("q.depth");
        g.add(5);
        g.add(-2);
        assert_eq!(g.get(), 3);
        let peak = r.gauge("q.peak");
        peak.set_max(3);
        peak.set_max(1); // lower value must not regress the mark
        assert_eq!(peak.get(), 3);
        peak.set_max(9);
        assert_eq!(peak.get(), 9);
    }

    #[test]
    fn concurrent_gauge_adds_balance_to_zero() {
        let r = Arc::new(MetricsRegistry::new());
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let g = r.gauge("level");
                    for _ in 0..500 {
                        g.add(1);
                        g.add(-1);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        assert_eq!(r.snapshot().get_gauge("level"), Some(0));
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 1);
        assert_eq!(bucket_of(2), 2);
        assert_eq!(bucket_of(3), 2);
        assert_eq!(bucket_of(4), 3);
        assert_eq!(bucket_of(u64::MAX), 64);

        let r = MetricsRegistry::new();
        let h = r.histogram("lat");
        for v in [0u64, 1, 3, 900, 1000] {
            h.record(v);
        }
        let snap = r.snapshot();
        let hs = snap.get_histogram("lat").unwrap();
        assert_eq!(hs.count, 5);
        assert_eq!(hs.sum, 1904);
        assert_eq!(hs.buckets[0], 1); // the zero
        assert_eq!(hs.buckets[1], 1); // 1
        assert_eq!(hs.buckets[2], 1); // 3
        assert_eq!(hs.buckets[10], 2); // 900 and 1000 in [512, 1024)
                                       // p99 bound covers the largest bucket touched.
        assert_eq!(hs.quantile_upper_bound(0.99), 1024);
        assert!((hs.mean() - 380.8).abs() < 1e-9);
    }

    #[test]
    fn kind_mismatch_yields_detached_metric_not_panic() {
        let r = MetricsRegistry::new();
        r.counter("x").inc();
        // Asking for the same name as a gauge must not panic or clobber.
        r.gauge("x").set(7);
        assert_eq!(r.snapshot().get_counter("x"), Some(1));
    }

    #[test]
    fn concurrent_updates_are_exact() {
        let r = Arc::new(MetricsRegistry::new());
        let threads = 8;
        let per = 1000;
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let r = Arc::clone(&r);
                std::thread::spawn(move || {
                    let c = r.counter("n");
                    let h = r.histogram("h");
                    for i in 0..per {
                        c.inc();
                        h.record(i);
                    }
                })
            })
            .collect();
        for t in handles {
            t.join().unwrap();
        }
        let snap = r.snapshot();
        assert_eq!(snap.get_counter("n"), Some(threads * per));
        assert_eq!(snap.get_histogram("h").unwrap().count, threads * per);
    }

    #[test]
    fn render_text_is_deterministic_and_sorted() {
        let r = MetricsRegistry::new();
        r.counter("b.count").add(2);
        r.gauge("a.gauge").set(1);
        r.histogram("c.hist").record(8);
        let text = r.snapshot().render_text();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("a.gauge 1"));
        assert!(lines[1].starts_with("b.count 2"));
        assert!(lines[2].contains("count=1 sum=8"));
    }
}
