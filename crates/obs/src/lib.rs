//! # setsig-obs — per-query tracing and metrics
//!
//! A small observability layer for the set access facilities: the paper's
//! whole argument rests on page-access counts, so every measured number
//! should be attributable to one query and cross-checkable against the
//! analytic cost model. This crate provides the three pieces the rest of
//! the workspace threads through:
//!
//! * [`MetricsRegistry`] — named [`Counter`]s, [`Gauge`]s and log2-bucket
//!   [`Histogram`]s, lock-free on the update path,
//! * [`QueryTrace`] — one structured event per `candidates*` call (query
//!   shape, pages, slices, early exit, cache traffic, latency), emitted
//!   through pluggable [`TraceSink`]s ([`RingSink`], [`JsonlSink`]),
//! * [`Recorder`] — the bundle a facility holds (as an
//!   `Option<Arc<Recorder>>`): when absent, the facilities skip all clock
//!   reads and event construction, so disabled observability costs
//!   nothing.
//!
//! The crate sits at the bottom of the workspace DAG (it may not see the
//! facilities or the harness) and uses no external dependencies beyond the
//! vendored `parking_lot` stand-in.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    Counter, Gauge, Histogram, HistogramSnapshot, MetricValue, MetricsRegistry, MetricsSnapshot,
};
pub use trace::{JsonlSink, QueryTrace, RingSink, TraceSink};

use std::sync::Arc;

/// The per-facility observability bundle: a metrics registry plus zero or
/// more trace sinks. Facilities hold `Option<Arc<Recorder>>` — `None` (the
/// default) means no clocks are read and no events are built.
pub struct Recorder {
    registry: MetricsRegistry,
    sinks: Vec<Arc<dyn TraceSink>>,
}

impl Recorder {
    /// A recorder with a fresh registry and no sinks.
    pub fn new() -> Self {
        Recorder {
            registry: MetricsRegistry::new(),
            sinks: Vec::new(),
        }
    }

    /// Adds a trace sink (builder style).
    #[must_use]
    pub fn with_sink(mut self, sink: Arc<dyn TraceSink>) -> Self {
        self.sinks.push(sink);
        self
    }

    /// The metrics registry fed by [`Recorder::record_query`].
    pub fn registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// Records one completed query: updates the standard per-facility
    /// metrics (see DESIGN.md §7 for the name schema) and forwards the
    /// event to every sink.
    pub fn record_query(&self, ev: &QueryTrace) {
        let f = &ev.facility;
        self.registry.counter(&format!("{f}.queries")).inc();
        self.registry
            .histogram(&format!("{f}.latency_ns"))
            .record(ev.latency_ns);
        if let Some(p) = ev.logical_pages {
            self.registry
                .histogram(&format!("{f}.logical_pages"))
                .record(p);
        }
        if let Some(p) = ev.physical_pages {
            self.registry
                .histogram(&format!("{f}.physical_pages"))
                .record(p);
        }
        self.registry
            .counter(&format!("{f}.candidates"))
            .add(ev.candidates);
        if let Some(d) = ev.false_drops {
            self.registry.counter(&format!("{f}.false_drops")).add(d);
        }
        if let Some(h) = ev.cache_hits {
            self.registry.counter(&format!("{f}.cache_hits")).add(h);
        }
        if let Some(m) = ev.cache_misses {
            self.registry.counter(&format!("{f}.cache_misses")).add(m);
        }
        if let Some(p) = ev.cache_pinned_hits {
            self.registry
                .counter(&format!("{f}.cache_pinned_hits"))
                .add(p);
        }
        if ev.early_exit {
            self.registry.counter(&format!("{f}.early_exits")).inc();
        }
        for sink in &self.sinks {
            sink.record(ev);
        }
    }
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Recorder {{ sinks: {} }}", self.sinks.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace(facility: &str, latency: u64) -> QueryTrace {
        QueryTrace {
            facility: facility.to_owned(),
            predicate: "HasSubset".to_owned(),
            d_q: 2,
            f_bits: Some(500),
            m_weight: Some(2),
            slices_touched: Some(4),
            early_exit: false,
            logical_pages: Some(5),
            physical_pages: Some(5),
            candidates: 3,
            exact: false,
            false_drops: Some(1),
            cache_hits: Some(2),
            cache_misses: Some(3),
            cache_pinned_hits: Some(5),
            latency_ns: latency,
        }
    }

    #[test]
    fn recorder_updates_standard_metrics() {
        let rec = Recorder::new();
        rec.record_query(&trace("bssf", 1000));
        rec.record_query(&trace("bssf", 3000));
        let snap = rec.registry().snapshot();
        assert_eq!(snap.get_counter("bssf.queries"), Some(2));
        assert_eq!(snap.get_counter("bssf.candidates"), Some(6));
        assert_eq!(snap.get_counter("bssf.false_drops"), Some(2));
        assert_eq!(snap.get_counter("bssf.cache_hits"), Some(4));
        assert_eq!(snap.get_counter("bssf.cache_pinned_hits"), Some(10));
        let h = snap.get_histogram("bssf.latency_ns").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4000);
    }

    #[test]
    fn recorder_forwards_to_sinks() {
        let ring = Arc::new(RingSink::new(8));
        let rec = Recorder::new().with_sink(Arc::clone(&ring) as Arc<dyn TraceSink>);
        rec.record_query(&trace("ssf", 10));
        rec.record_query(&trace("nix", 20));
        let events = ring.snapshot();
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].facility, "ssf");
        assert_eq!(events[1].facility, "nix");
    }
}
