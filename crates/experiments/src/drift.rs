//! Drift reporter: measured page counts vs. the analytical cost model.
//!
//! Every exhibit prints model and measured columns side by side, but
//! nothing *enforced* their agreement — a regression in the scan path (or
//! in the model) would only show up to a human reading the tables. This
//! module runs a small, fixed checkpoint per measured exhibit family and
//! flags any point where the two diverge beyond tolerance. CI runs it via
//! the `report-metrics` binary.
//!
//! ## Tolerance
//!
//! The comparison is two-sided and deliberately loose:
//!
//! * a multiplicative factor [`DriftReport::TOLERANCE`] — the models are
//!   expectations over random signatures while a run measures one seeded
//!   instance, and the implementation's early exits legitimately undercut
//!   the closed forms (e.g. BSSF stops ANDing slices once the accumulator
//!   empties, which Eq. (8) does not model);
//! * an additive slack of [`DriftReport::SLACK`] pages — at small `--scale`
//!   the absolute counts are tens of pages, where rounding and OID-file
//!   look-ups dominate any ratio.
//!
//! A point drifts only if it escapes *both* allowances in either
//! direction. That still catches the failure modes that matter: a scan
//! reading entire files instead of slices, double-charged pages, or a
//! model edit that shifts a curve by an order of magnitude.

use setsig_core::{ElementKey, SetQuery};
use setsig_costmodel::{BssfModel, FssfModel, NixModel, SsfModel};

use crate::exhibits::Options;
use crate::report::Exhibit;

/// One model-vs-measured checkpoint.
#[derive(Debug, Clone)]
pub struct DriftPoint {
    /// Exhibit family the checkpoint represents (`fig5`, `fig8`, …).
    pub exhibit: &'static str,
    /// Facility and strategy, e.g. `"bssf ⊇"`.
    pub series: &'static str,
    /// Query cardinality `D_q`.
    pub d_q: u32,
    /// The cost model's RC in pages.
    pub model: f64,
    /// Measured average total pages over the trials.
    pub measured: f64,
}

impl DriftPoint {
    /// Whether the point is within tolerance (see module docs).
    pub fn within_tolerance(&self, factor: f64, slack: f64) -> bool {
        let lo = (self.model / factor - slack).max(0.0);
        let hi = self.model * factor + slack;
        (lo..=hi).contains(&self.measured)
    }
}

/// The full report: every checkpoint plus the tolerance it was judged by.
#[derive(Debug)]
pub struct DriftReport {
    /// All checkpoints, in exhibit order.
    pub points: Vec<DriftPoint>,
    /// Observability artifacts of the run itself: the metrics snapshot and
    /// the JSONL query trace, as `(file name, content)`.
    pub artifacts: Vec<(String, String)>,
}

impl DriftReport {
    /// Multiplicative tolerance factor (either direction).
    pub const TOLERANCE: f64 = 3.0;
    /// Additive slack in pages (either direction).
    pub const SLACK: f64 = 16.0;

    /// Checkpoints that escaped the tolerance band.
    pub fn drifted(&self) -> Vec<&DriftPoint> {
        self.points
            .iter()
            .filter(|p| !p.within_tolerance(Self::TOLERANCE, Self::SLACK))
            .collect()
    }

    /// True when every checkpoint is within tolerance.
    pub fn ok(&self) -> bool {
        self.drifted().is_empty()
    }

    /// Renders the report as an [`Exhibit`] table (id `drift`).
    pub fn exhibit(&self) -> Exhibit {
        let mut ex = Exhibit::new(
            "drift",
            "Model vs measured page counts per exhibit family",
            vec![
                "exhibit", "series", "D_q", "model", "measured", "ratio", "status",
            ],
        );
        for p in &self.points {
            let ratio = p.measured / p.model.max(f64::MIN_POSITIVE);
            let ok = p.within_tolerance(Self::TOLERANCE, Self::SLACK);
            ex.push_row(vec![
                p.exhibit.to_owned(),
                p.series.to_owned(),
                p.d_q.to_string(),
                Exhibit::fmt(p.model),
                Exhibit::fmt(p.measured),
                format!("{ratio:.2}"),
                if ok { "ok" } else { "DRIFT" }.to_owned(),
            ]);
        }
        ex.note(format!(
            "tolerance: within {}x of the model ± {} pages, both directions; \
             see crates/experiments/src/drift.rs for why the band is loose",
            Self::TOLERANCE,
            Self::SLACK
        ));
        ex.artifacts = self.artifacts.clone();
        ex
    }
}

/// Runs every checkpoint at the given scale and trial count.
///
/// Checkpoints (all at the paper's `D_t = 10` workload):
/// * `fig5` — plain `T ⊇ Q` on BSSF (`F = 500, m = 2`) and NIX;
/// * `fig8` — `T ⊆ Q` on SSF, BSSF and NIX (`F = 500, m = 2`);
/// * `extorgs` — `T ⊇ Q` on FSSF (`F = 500, k = 50, m = 3`).
pub fn run(scale: u64, trials: u32) -> DriftReport {
    let opts = Options {
        simulate: true,
        scale: scale.max(1),
        trials: trials.max(1),
    };
    let d_t = 10;
    let p = opts.params();
    let sim = crate::exhibits::obs_sim(&opts, d_t);
    let mut points = Vec::new();

    // fig5: plain superset, BSSF small m vs NIX. The BSSF runs behind
    // the sharded query service (1 shard unless SETSIG_SHARDS says
    // otherwise, where it is answer- and page-identical to the flat
    // facility) so the drift gate also guards the service path.
    {
        let (f, m) = (500u32, 2u32);
        let bssf = sim.build_bssf_service(f, m);
        let nix = sim.build_nix();
        let bssf_model = BssfModel::new(p, f, m, d_t);
        let nix_model = NixModel::new(p, d_t);
        for d_q in [1u32, 3] {
            let mut qg = sim.query_gen(100 + d_q as u64);
            let measured = sim.measure_avg(&bssf, opts.trials, |_| {
                SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            });
            points.push(DriftPoint {
                exhibit: "fig5",
                series: "bssf ⊇",
                d_q,
                model: bssf_model.rc_superset(d_q),
                measured,
            });
            let mut qg = sim.query_gen(100 + d_q as u64);
            let measured = sim.measure_avg(&nix, opts.trials, |_| {
                SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            });
            points.push(DriftPoint {
                exhibit: "fig5",
                series: "nix ⊇",
                d_q,
                model: nix_model.rc_superset(d_q),
                measured,
            });
        }
    }

    // fig8: plain subset across all three paper facilities.
    {
        let (f, m) = (500u32, 2u32);
        let ssf = sim.build_ssf(f, m);
        let bssf = sim.build_bssf_service(f, m);
        let nix = sim.build_nix();
        let ssf_model = SsfModel::new(p, f, m, d_t);
        let bssf_model = BssfModel::new(p, f, m, d_t);
        let nix_model = NixModel::new(p, d_t);
        let d_q = 50u32.min(p.v as u32);
        for (series, model, facility) in [
            (
                "ssf ⊆",
                ssf_model.rc_subset(d_q),
                &ssf as &dyn setsig_core::SetAccessFacility,
            ),
            ("bssf ⊆", bssf_model.rc_subset(d_q), &bssf as _),
            ("nix ⊆", nix_model.rc_subset(d_q), &nix as _),
        ] {
            let mut qg = sim.query_gen(800 + d_q as u64);
            let measured = sim.measure_avg(facility, opts.trials, |_| {
                SetQuery::in_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            });
            points.push(DriftPoint {
                exhibit: "fig8",
                series,
                d_q,
                model,
                measured,
            });
        }
    }

    // extorgs: frame-sliced superset.
    {
        let (f, k, m) = (500u32, 50u32, 3u32);
        let fssf = sim.build_fssf(f, k, m);
        let fssf_model = FssfModel::new(p, f, k, m, d_t);
        let d_q = 3u32;
        let mut qg = sim.query_gen(31);
        let measured = sim.measure_avg(&fssf, opts.trials, |_| {
            SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
        });
        points.push(DriftPoint {
            exhibit: "extorgs",
            series: "fssf ⊇",
            d_q,
            model: fssf_model.rc_superset(d_q),
            measured,
        });
    }

    let mut artifacts = Vec::new();
    if let Some(rec) = sim.recorder() {
        let text = rec.registry().snapshot().render_text();
        artifacts.push(("drift.metrics.txt".to_owned(), text));
    }
    if let Some(ring) = sim.trace_ring() {
        let mut jsonl = String::new();
        for ev in ring.drain() {
            jsonl.push_str(&ev.to_json());
            jsonl.push('\n');
        }
        artifacts.push(("drift.trace.jsonl".to_owned(), jsonl));
    }
    DriftReport { points, artifacts }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tolerance_band_is_two_sided() {
        let p = DriftPoint {
            exhibit: "t",
            series: "s",
            d_q: 1,
            model: 100.0,
            measured: 100.0,
        };
        assert!(p.within_tolerance(3.0, 16.0));
        let high = DriftPoint {
            measured: 100.0 * 3.0 + 17.0,
            ..p.clone()
        };
        assert!(!high.within_tolerance(3.0, 16.0));
        let low = DriftPoint {
            measured: 100.0 / 3.0 - 17.0,
            ..p.clone()
        };
        assert!(!low.within_tolerance(3.0, 16.0));
        // The slack keeps tiny absolute counts from tripping the ratio.
        let tiny = DriftPoint {
            model: 2.0,
            measured: 14.0,
            ..p
        };
        assert!(tiny.within_tolerance(3.0, 16.0));
    }

    #[test]
    fn checkpoints_agree_with_the_model_at_small_scale() {
        let report = run(64, 2);
        assert_eq!(report.points.len(), 8);
        assert!(
            report.ok(),
            "drifted: {:?}",
            report
                .drifted()
                .iter()
                .map(|p| format!(
                    "{} {} D_q={} model={:.1} measured={:.1}",
                    p.exhibit, p.series, p.d_q, p.model, p.measured
                ))
                .collect::<Vec<_>>()
        );
    }
}
