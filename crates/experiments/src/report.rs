//! Exhibit rendering: aligned text tables plus CSV files.

use std::io::Write;
use std::path::Path;

/// One regenerated table or figure: a grid of cells with a header row.
///
/// Figures are represented as tables whose first column is the x-axis
/// (`D_q`) and whose remaining columns are the series — the same rows a
/// plot of the paper's figure would be drawn from.
#[derive(Debug, Clone)]
pub struct Exhibit {
    /// Short id, e.g. `"fig5"` — also the CSV file stem.
    pub id: String,
    /// Human title, e.g. the paper's caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes printed under the table (assumptions, deviations).
    pub notes: Vec<String>,
    /// Side-channel files written next to the CSV: `(file name, content)`.
    /// Measured exhibits attach their metrics snapshot and JSONL query
    /// trace here.
    pub artifacts: Vec<(String, String)>,
}

impl Exhibit {
    /// Creates an empty exhibit.
    pub fn new(id: &str, title: &str, headers: Vec<&str>) -> Self {
        Exhibit {
            id: id.to_owned(),
            title: title.to_owned(),
            headers: headers.into_iter().map(str::to_owned).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
            artifacts: Vec::new(),
        }
    }

    /// Appends a data row; must match the header arity.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.headers.len(),
            "row arity mismatch in {}",
            self.id
        );
        self.rows.push(row);
    }

    /// Appends a note.
    pub fn note(&mut self, text: impl Into<String>) {
        self.notes.push(text.into());
    }

    /// Formats a float the way the paper's tables read: integers plain,
    /// small values with enough precision to compare.
    pub fn fmt(v: f64) -> String {
        if !v.is_finite() {
            return "∞".into();
        }
        if v == v.trunc() && v.abs() < 1e12 {
            format!("{}", v as i64)
        } else if v.abs() >= 100.0 {
            format!("{v:.0}")
        } else if v.abs() >= 1.0 {
            format!("{v:.1}")
        } else {
            format!("{v:.3}")
        }
    }

    /// Renders the aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.chars().count()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.chars().count());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{:>width$}", c, width = widths[i]))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for note in &self.notes {
            out.push_str(&format!("note: {note}\n"));
        }
        out
    }

    /// Prints the exhibit to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
        println!();
    }

    /// Writes `<dir>/<id>.csv`.
    pub fn write_csv(&self, dir: &Path) -> std::io::Result<()> {
        std::fs::create_dir_all(dir)?;
        let mut f =
            std::io::BufWriter::new(std::fs::File::create(dir.join(format!("{}.csv", self.id)))?);
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        f.flush()
    }

    /// Writes every attached artifact into `dir` under its own file name.
    pub fn write_artifacts(&self, dir: &Path) -> std::io::Result<()> {
        if self.artifacts.is_empty() {
            return Ok(());
        }
        std::fs::create_dir_all(dir)?;
        for (name, content) in &self.artifacts {
            std::fs::write(dir.join(name), content)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut e = Exhibit::new("t", "test", vec!["D_q", "RC"]);
        e.push_row(vec!["1".into(), "10.5".into()]);
        e.push_row(vec!["100".into(), "3".into()]);
        e.note("hello");
        let s = e.render();
        assert!(s.contains("D_q"));
        assert!(s.contains("note: hello"));
        // Right-aligned: the 1 lines up under the q of D_q.
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines[1].len(), lines[3].len());
    }

    #[test]
    fn fmt_rules() {
        assert_eq!(Exhibit::fmt(3.0), "3");
        assert_eq!(Exhibit::fmt(123.4), "123");
        assert_eq!(Exhibit::fmt(3.25), "3.2");
        assert_eq!(Exhibit::fmt(0.001234), "0.001");
        assert_eq!(Exhibit::fmt(f64::INFINITY), "∞");
    }

    #[test]
    #[should_panic]
    fn arity_mismatch_panics() {
        let mut e = Exhibit::new("t", "test", vec!["a", "b"]);
        e.push_row(vec!["1".into()]);
    }

    #[test]
    fn csv_roundtrip() {
        let dir = std::env::temp_dir().join(format!("setsig-csv-{}", std::process::id()));
        let mut e = Exhibit::new("sample", "test", vec!["x", "y"]);
        e.push_row(vec!["1".into(), "2".into()]);
        e.write_csv(&dir).unwrap();
        let text = std::fs::read_to_string(dir.join("sample.csv")).unwrap();
        assert_eq!(text, "x,y\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
