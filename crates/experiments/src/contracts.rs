//! Runtime verification of the static `// COST:` page contracts.
//!
//! `cargo xtask cost` proves statically that no scan entry point's I/O
//! loop nest exceeds its declared polynomial degree, and commits every
//! contract to `crates/xtask/cost.baseline.json`. This module closes the
//! loop dynamically: it replays the drift-gate exhibit families on the
//! accounting disk and asserts that the **measured filter-stage pages**
//! of every query stay at or below the committed contract evaluated with
//! worst-case bindings from the paper's [`Params`] and the exhibit's
//! geometry.
//!
//! The two halves catch different regressions. The static lint catches a
//! loop accidentally nested around a slice read before anything runs;
//! this evaluator catches a contract that *parses* fine but lies — e.g.
//! the `COST-SPLIT` annotation on the parallel pipeline's spawn loop
//! claims the workers partition the slice reads, which no static check
//! can prove; here the claim meets the disk counters.
//!
//! Bindings are worst-case, not expected-case: `slices` binds to
//! `min(F, m·D_q)` for a superset scan (every query bit set distinct)
//! and to `F` for a subset scan (every zero-slice read); `oid_pages`
//! binds to `SC_OID` (a full OID-file sweep, which `LC_OID` saturates
//! at); `chain` binds to the whole leaf level. A measured query has no
//! business exceeding those even on an adversarial seed.

use setsig_core::{ElementKey, SetQuery};
use setsig_costmodel::{BoundExpr, BssfModel, Env, FssfModel, NixModel, Params, SsfModel};

use crate::exhibits::{obs_sim, Options};
use crate::sim::SimDb;

/// The committed static baseline, compiled in so the runtime check can
/// never drift from the lint's view of the contracts.
const BASELINE: &str = include_str!("../../xtask/cost.baseline.json");

/// One contract evaluated against a measured exhibit family.
#[derive(Debug, Clone)]
pub struct ContractCheck {
    /// Baseline key (`crates/core/src/bssf.rs::Bssf::candidates_with_stats`).
    pub fn_key: &'static str,
    /// Exhibit family and predicate the measurement came from.
    pub series: String,
    /// The contract expression, as committed.
    pub expr: String,
    /// The bound: the expression under the worst-case bindings.
    pub bound: f64,
    /// Worst single-query filter-stage pages over the trials.
    pub measured: u64,
}

impl ContractCheck {
    /// True when the measurement respects the contract.
    pub fn ok(&self) -> bool {
        (self.measured as f64) <= self.bound + 1e-9
    }
}

/// Looks up `fn_key` in the committed baseline and parses its expression.
///
/// The baseline is the version-1 one-contract-per-line format the
/// `cost --update` writer emits; a missing key or an unparsable
/// expression is a panic, not a skip — a renamed entry point must fail
/// the gate, not silently stop being checked.
pub fn committed_contract(fn_key: &str) -> BoundExpr {
    let needle = format!("\"{fn_key}\": {{\"expr\": \"");
    let line = BASELINE
        .lines()
        .find(|l| l.contains(&needle))
        .unwrap_or_else(|| panic!("contract `{fn_key}` missing from cost.baseline.json"));
    let start = line.find(&needle).unwrap() + needle.len();
    let rest = &line[start..];
    let end = rest
        .find('"')
        .unwrap_or_else(|| panic!("unterminated expr for `{fn_key}`"));
    BoundExpr::parse(&rest[..end])
        .unwrap_or_else(|e| panic!("contract `{fn_key}` does not parse: {e}"))
}

fn eval(expr: &BoundExpr, env: &Env) -> f64 {
    expr.eval(env)
        .unwrap_or_else(|e| panic!("contract `{expr}`: {e}"))
}

/// Worst filter-stage pages for `trials` queries drawn by `make`.
fn worst_filter_pages(
    sim: &SimDb,
    facility: &dyn setsig_core::SetAccessFacility,
    trials: u32,
    mut make: impl FnMut(u32) -> SetQuery,
) -> u64 {
    (0..trials)
        .map(|t| sim.measure_facility(facility, &make(t)).filter_pages)
        .max()
        .unwrap_or(0)
}

/// Runs every contract checkpoint at the given scale and trial count.
///
/// Families mirror the drift gate: BSSF superset and subset, SSF subset,
/// NIX superset and subset, FSSF superset, and the sharded service's
/// serial dispatch over BSSF.
pub fn check(scale: u64, trials: u32) -> Vec<ContractCheck> {
    let opts = Options {
        simulate: true,
        scale: scale.max(1),
        trials: trials.max(1),
    };
    let d_t = 10;
    let p: Params = opts.params();
    let sim = obs_sim(&opts, d_t);
    let (f, m) = (500u32, 2u32);
    let mut out = Vec::new();

    // BSSF: the slice scans and their composition into the facility
    // entry point. Superset reads the m_s ≤ min(F, m·D_q) one-slices;
    // subset reads the F − m_s ≤ F zero-slices.
    {
        let bssf = sim.build_bssf(f, m);
        let model = BssfModel::new(p, f, m, d_t);
        let key = "crates/core/src/bssf.rs::Bssf::candidates_with_stats";
        let expr = committed_contract(key);
        for (pred, d_q, slices) in [
            ("⊇", 3u32, f.min(m * 3) as f64),
            ("⊆", 50u32, f as f64),
            ("≬", 3u32, f.min(m * 3) as f64),
        ] {
            let env = Env::new()
                .bind("slices", slices)
                .bind("pages_per_slice", model.slice_pages() as f64)
                .bind("oid_pages", p.sc_oid() as f64);
            let mut qg = sim.query_gen(9000 + d_q as u64);
            let measured = worst_filter_pages(&sim, &bssf, opts.trials, |_| {
                let elems: Vec<ElementKey> =
                    qg.random(d_q).into_iter().map(ElementKey::from).collect();
                match pred {
                    "⊇" => SetQuery::has_subset(elems),
                    "⊆" => SetQuery::in_subset(elems),
                    _ => SetQuery::overlaps(elems),
                }
            });
            out.push(ContractCheck {
                fn_key: key,
                series: format!("bssf {pred} d_q={d_q}"),
                expr: expr.to_string(),
                bound: eval(&expr, &env),
                measured,
            });
        }
    }

    // SSF: a sequential scan is SC_SIG pages whatever the predicate.
    {
        let ssf = sim.build_ssf(f, m);
        let model = SsfModel::new(p, f, m, d_t);
        let key = "crates/core/src/ssf.rs::Ssf::candidates_with_stats";
        let expr = committed_contract(key);
        let env = Env::new()
            .bind("sig_pages", model.sc_sig() as f64)
            .bind("oid_pages", p.sc_oid() as f64);
        let d_q = 50u32;
        let mut qg = sim.query_gen(9100);
        let measured = worst_filter_pages(&sim, &ssf, opts.trials, |_| {
            SetQuery::in_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
        });
        out.push(ContractCheck {
            fn_key: key,
            series: format!("ssf ⊆ d_q={d_q}"),
            expr: expr.to_string(),
            bound: eval(&expr, &env),
            measured,
        });
    }

    // NIX: D_q probes, each a root-to-leaf descent plus the duplicate
    // chain. `chain` binds to the whole leaf level — loose, but the
    // point is the probe count: a regression that scans the tree per
    // candidate (probes × N) sails past even this slack.
    {
        let nix = sim.build_nix();
        let model = NixModel::new(p, d_t);
        let key = "crates/nix/src/index.rs::Nix::candidates_with_stats";
        let expr = committed_contract(key);
        for (pred, d_q) in [("⊇", 3u32), ("⊆", 20u32)] {
            let env = Env::new()
                .bind("probes", d_q as f64)
                .bind("height", (model.height() + 1) as f64)
                .bind("chain", model.lp() as f64);
            let mut qg = sim.query_gen(9200 + d_q as u64);
            let measured = worst_filter_pages(&sim, &nix, opts.trials, |_| {
                let elems: Vec<ElementKey> =
                    qg.random(d_q).into_iter().map(ElementKey::from).collect();
                if pred == "⊇" {
                    SetQuery::has_subset(elems)
                } else {
                    SetQuery::in_subset(elems)
                }
            });
            out.push(ContractCheck {
                fn_key: key,
                series: format!("nix {pred} d_q={d_q}"),
                expr: expr.to_string(),
                bound: eval(&expr, &env),
                measured,
            });
        }
    }

    // FSSF: at most every frame, each frame_pages long.
    {
        let (k, fm) = (50u32, 3u32);
        let fssf = sim.build_fssf(f, k, fm);
        let model = FssfModel::new(p, f, k, fm, d_t);
        let key = "crates/core/src/fssf.rs::Fssf::candidates_with_stats";
        let expr = committed_contract(key);
        let env = Env::new()
            .bind("frames", model.k as f64)
            .bind("frame_pages", model.frame_pages() as f64)
            .bind("oid_pages", p.sc_oid() as f64);
        let d_q = 3u32;
        let mut qg = sim.query_gen(9300);
        let measured = worst_filter_pages(&sim, &fssf, opts.trials, |_| {
            SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
        });
        out.push(ContractCheck {
            fn_key: key,
            series: format!("fssf ⊇ d_q={d_q}"),
            expr: expr.to_string(),
            bound: eval(&expr, &env),
            measured,
        });
    }

    // Service: the serial dispatch over a sharded BSSF. Each shard holds
    // a partition of N but the full slice geometry, so the flat per-shard
    // bound times the shard count covers it.
    {
        let service = sim.build_bssf_service(f, m);
        let model = BssfModel::new(p, f, m, d_t);
        let shards = crate::sim::EngineConfig::from_env().shards.max(1);
        let key = "crates/service/src/router.rs::ShardRouter::query_serial";
        let expr = committed_contract(key);
        let d_q = 3u32;
        let env = Env::new()
            .bind("shards", shards as f64)
            .bind("slices", f.min(m * d_q) as f64)
            .bind("pages_per_slice", model.slice_pages() as f64)
            .bind("oid_pages", p.sc_oid() as f64);
        let mut qg = sim.query_gen(9400);
        let measured = worst_filter_pages(&sim, &service, opts.trials, |_| {
            SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
        });
        out.push(ContractCheck {
            fn_key: key,
            series: format!("service ⊇ d_q={d_q} shards={shards}"),
            expr: expr.to_string(),
            bound: eval(&expr, &env),
            measured,
        });
    }

    out
}

/// Renders the checks as an aligned text table (a drift-gate artifact).
pub fn render(checks: &[ContractCheck]) -> String {
    let mut out = String::from("series                        measured  bound      contract\n");
    for c in checks {
        out.push_str(&format!(
            "{:28}  {:>8}  {:>9.1}  {}  [{}]\n",
            c.series,
            c.measured,
            c.bound,
            c.expr,
            if c.ok() { "ok" } else { "OVER" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn committed_contracts_parse_and_have_expected_shape() {
        let e = committed_contract("crates/core/src/bssf.rs::Bssf::candidates_with_stats");
        assert_eq!(e.degree(), 2);
        assert_eq!(e.symbols(), ["slices", "pages_per_slice", "oid_pages"]);
        let e = committed_contract("crates/service/src/router.rs::ShardRouter::query_serial");
        assert_eq!(e.degree(), 3);
    }

    #[test]
    fn measured_filter_pages_respect_every_contract() {
        let checks = check(40, 3);
        assert!(!checks.is_empty());
        let over: Vec<_> = checks.iter().filter(|c| !c.ok()).collect();
        assert!(
            over.is_empty(),
            "measured pages exceed static contracts:\n{}",
            render(&checks)
        );
    }

    #[test]
    fn bounds_are_not_vacuous() {
        // The worst-case bindings must still be in the realm of the
        // exhibit: a bound looser than reading the whole database would
        // make the assertion meaningless.
        let opts = Options {
            simulate: false,
            scale: 40,
            trials: 1,
        };
        let p = opts.params();
        let db_pages = (p.n * p.o_p()).max(1) as f64;
        for c in check(40, 1) {
            assert!(
                c.bound < db_pages,
                "{}: bound {} exceeds whole-database {}",
                c.series,
                c.bound,
                db_pages
            );
        }
    }
}
