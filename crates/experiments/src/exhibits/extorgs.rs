//! Extension exhibit: the four organizations side by side — SSF, BSSF,
//! FSSF (frame-sliced) and NIX — on the axes the paper compares (storage,
//! both query types, insert, delete). The frame-sliced column answers §6's
//! closing concern: BSSF's `F + 1` insertion cost.

use setsig_core::{ElementKey, Oid, SetAccessFacility, SetQuery};
use setsig_costmodel::{BssfModel, FssfModel, NixModel, SsfModel};

use super::Options;
use crate::report::Exhibit;
use crate::sim::{EngineConfig, SimDb};

/// `extorgs`: one row per cost axis, one column per organization
/// (analytic; measured columns with `--simulate`).
pub fn extorgs(opts: &Options) -> Exhibit {
    let p = opts.params();
    let d_t = 10;
    let (f, m) = (500u32, 2u32);
    let k = 50u32;
    let (d_q_sup, d_q_sub) = (3u32, 100u32);

    let ssf = SsfModel::new(p, f, m, d_t);
    let bssf = BssfModel::new(p, f, m, d_t);
    let fssf = FssfModel::new(p, f, k, 3, d_t);
    let nix = NixModel::new(p, d_t);

    let mut headers = vec!["axis", "SSF", "BSSF", "FSSF", "NIX"];
    if opts.simulate {
        headers.extend(["meas SSF", "meas BSSF", "meas FSSF", "meas NIX"]);
    }
    let mut ex = Exhibit::new(
        "extorgs",
        &format!("Extension: four organizations at F = {f}, D_t = {d_t} (FSSF: k = {k}, m = 3)"),
        headers,
    );

    let analytic: Vec<(&str, [f64; 4])> = vec![
        (
            "storage SC (pages)",
            [
                ssf.sc() as f64,
                bssf.sc() as f64,
                fssf.sc() as f64,
                nix.sc() as f64,
            ],
        ),
        (
            &format!("RC ⊇ (D_q = {d_q_sup})"),
            [
                ssf.rc_superset(d_q_sup),
                bssf.rc_superset(d_q_sup),
                fssf.rc_superset(d_q_sup),
                nix.rc_superset(d_q_sup),
            ],
        ),
        (
            &format!("RC ⊆ (D_q = {d_q_sub})"),
            [
                ssf.rc_subset(d_q_sub),
                bssf.rc_subset(d_q_sub),
                fssf.rc_subset(d_q_sub),
                nix.rc_subset(d_q_sub),
            ],
        ),
        (
            "UC insert",
            [
                ssf.uc_insert(),
                bssf.uc_insert(),
                fssf.uc_insert(),
                nix.uc_insert(),
            ],
        ),
        (
            "UC delete",
            [
                ssf.uc_delete(),
                bssf.uc_delete(),
                fssf.uc_delete(),
                nix.uc_delete(),
            ],
        ),
    ]
    .into_iter()
    .map(|(label, vals)| (Box::leak(label.to_owned().into_boxed_str()) as &str, vals))
    .collect();

    let measured: Option<(Vec<[f64; 4]>, SimDb)> = opts.simulate.then(|| {
        let sim = super::obs_sim(opts, d_t);
        // This exhibit also measures update costs, which are defined on
        // the paper's serial, unbuffered protocol — pin that engine.
        let mut ssf_i = sim.build_ssf_with(f, m, EngineConfig::serial());
        let mut bssf_i = sim.build_bssf_with(f, m, EngineConfig::serial());
        let mut fssf_i = sim.build_fssf(f, k, 3);
        let mut nix_i = sim.build_nix();
        let disk = sim.db.disk();

        let storage = [
            ssf_i.storage_pages().unwrap() as f64,
            bssf_i.storage_pages().unwrap() as f64,
            fssf_i.storage_pages().unwrap() as f64,
            nix_i.storage_pages().unwrap() as f64,
        ];
        let mut rc_sup = [0.0f64; 4];
        let mut rc_sub = [0.0f64; 4];
        {
            let facilities: [&dyn SetAccessFacility; 4] = [&ssf_i, &bssf_i, &fssf_i, &nix_i];
            for (i, fac) in facilities.iter().enumerate() {
                let mut qg = sim.query_gen(31);
                rc_sup[i] = sim.measure_avg(*fac, opts.trials, |_| {
                    SetQuery::has_subset(
                        qg.random(d_q_sup)
                            .into_iter()
                            .map(ElementKey::from)
                            .collect(),
                    )
                });
                let mut qg = sim.query_gen(37);
                rc_sub[i] = sim.measure_avg(*fac, opts.trials, |_| {
                    SetQuery::in_subset(
                        qg.random(d_q_sub)
                            .into_iter()
                            .map(ElementKey::from)
                            .collect(),
                    )
                });
            }
        }
        let probe: Vec<ElementKey> = sim.sets[0].iter().map(|&e| ElementKey::from(e)).collect();
        let mut insert = [0.0f64; 4];
        let mut delete = [0.0f64; 4];
        let mut probe_oid = sim.sets.len() as u64 + 100;
        {
            let mut run = |idx: usize, fac: &mut dyn SetAccessFacility| {
                probe_oid += 1;
                let s0 = disk.snapshot();
                fac.insert(Oid::new(probe_oid), &probe).unwrap();
                let s1 = disk.snapshot();
                fac.delete(Oid::new(probe_oid), &probe).unwrap();
                let s2 = disk.snapshot();
                insert[idx] = s1.since(s0).accesses() as f64;
                delete[idx] = s2.since(s1).accesses() as f64;
            };
            run(0, &mut ssf_i);
            run(1, &mut bssf_i);
            run(2, &mut fssf_i);
            run(3, &mut nix_i);
        }
        (vec![storage, rc_sup, rc_sub, insert, delete], sim)
    });

    for (i, (label, vals)) in analytic.iter().enumerate() {
        let mut row = vec![label.to_string()];
        row.extend(vals.iter().map(|&v| Exhibit::fmt(v)));
        if let Some((meas, _)) = &measured {
            row.extend(meas[i].iter().map(|&v| Exhibit::fmt(v)));
        }
        ex.push_row(row);
    }
    ex.note("FSSF trades ⊇ retrieval (reads whole frames, not single slices) for insertion ≈ D_t+1 writes instead of F+1 — the fix §6 anticipates");
    ex.note("FSSF ⊆ degenerates to a striped full scan: BSSF keeps the decisive win on the paper's second query type");
    opts.annotate_scale(&mut ex);
    if let Some((_, sim)) = &measured {
        super::attach_observability(&mut ex, [sim]);
    }
    ex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn analytic_orderings_hold() {
        let ex = extorgs(&Options::default());
        let get = |row: usize, col: usize| -> f64 { ex.rows[row][col].parse().unwrap() };
        // Insert: FSSF ≪ BSSF.
        assert!(get(3, 3) < get(3, 2) / 20.0);
        // ⊇ retrieval: BSSF < FSSF < SSF.
        assert!(get(1, 2) < get(1, 3));
        assert!(get(1, 3) < get(1, 1));
        // ⊆ retrieval: BSSF < FSSF (striped scan ≈ SSF).
        assert!(get(2, 2) < get(2, 3));
    }

    #[test]
    fn simulated_extorgs_runs_at_small_scale() {
        let opts = Options {
            simulate: true,
            scale: 32,
            trials: 1,
        };
        let ex = extorgs(&opts);
        assert_eq!(ex.headers.len(), 9);
        // Measured insert costs: FSSF ≤ D_t + 2, BSSF = F + 1.
        let fssf_ins: f64 = ex.rows[3][7].parse().unwrap();
        let bssf_ins: f64 = ex.rows[3][6].parse().unwrap();
        assert!(fssf_ins <= 12.0, "fssf insert {fssf_ins}");
        assert_eq!(bssf_ins, 501.0);
    }
}

/// `advisor`: the cost-model design advisor's verdicts under several
/// workload profiles — §6's conclusion, mechanized.
pub fn advisor_exhibit(opts: &Options) -> Exhibit {
    use setsig_costmodel::{advise, WorkloadProfile};
    let p = opts.params();
    let mut ex = Exhibit::new(
        "advisor",
        "Design advisor: best organization per workload profile (page accesses/op)",
        vec![
            "profile",
            "recommended",
            "cost/op",
            "storage",
            "runner-up",
            "runner-up cost",
        ],
    );
    let profiles: Vec<(&str, WorkloadProfile)> = vec![
        (
            "paper mix (45% ⊇, 45% ⊆, 10% ins)",
            WorkloadProfile::paper_default(),
        ),
        (
            "superset-only",
            WorkloadProfile {
                superset_fraction: 1.0,
                subset_fraction: 0.0,
                insert_fraction: 0.0,
                ..WorkloadProfile::paper_default()
            },
        ),
        (
            "subset-only",
            WorkloadProfile {
                superset_fraction: 0.0,
                subset_fraction: 1.0,
                insert_fraction: 0.0,
                ..WorkloadProfile::paper_default()
            },
        ),
        (
            "insert-heavy (90% ins)",
            WorkloadProfile {
                superset_fraction: 0.05,
                subset_fraction: 0.05,
                insert_fraction: 0.90,
                ..WorkloadProfile::paper_default()
            },
        ),
        (
            "tight storage (≤ 200 pages)",
            WorkloadProfile {
                storage_budget_pages: Some(200),
                ..WorkloadProfile::paper_default()
            },
        ),
        (
            "D_t = 100 mix",
            WorkloadProfile {
                d_t: 100,
                d_q_subset: 500,
                ..WorkloadProfile::paper_default()
            },
        ),
    ];
    for (label, profile) in profiles {
        let rec = advise(p, &profile);
        let runner = rec.candidates.get(1);
        ex.push_row(vec![
            label.into(),
            format!("{:?}", rec.organization),
            Exhibit::fmt(rec.expected_cost),
            rec.storage_pages.to_string(),
            runner.map(|(o, _, _)| format!("{o:?}")).unwrap_or_default(),
            runner.map(|(_, c, _)| Exhibit::fmt(*c)).unwrap_or_default(),
        ]);
    }
    ex.note("§6's conclusion mechanized: query-mixed profiles choose BSSF with a small m; insert-heavy traffic flips to FSSF/SSF; NIX never wins a mixed profile");
    opts.annotate_scale(&mut ex);
    ex
}

#[cfg(test)]
mod advisor_tests {
    use super::*;

    #[test]
    fn advisor_exhibit_covers_profiles() {
        let ex = advisor_exhibit(&Options::default());
        assert_eq!(ex.rows.len(), 6);
        // The paper-mix row recommends BSSF.
        assert!(ex.rows[0][1].starts_with("Bssf"), "{:?}", ex.rows[0]);
        // The insert-heavy row does not.
        assert!(!ex.rows[3][1].starts_with("Bssf"), "{:?}", ex.rows[3]);
    }
}
