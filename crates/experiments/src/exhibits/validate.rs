//! Model validation and extension studies: measured false-drop rates vs.
//! Eq. (2)/(6), the Appendix C optimum, and the variable-cardinality
//! extension (§6 further work).

use setsig_core::{ElementKey, SetQuery};
use setsig_costmodel::{fd_subset, fd_superset, fd_superset_uniform_range, BssfModel, Params};
use setsig_workload::{Cardinality, WorkloadConfig};

use super::Options;
use crate::report::Exhibit;
use crate::sim::SimDb;

/// Measured false-drop probability over random queries: the fraction
/// `false drops / (N − A)` (the paper's definition in §3.2), averaged.
fn measured_fd(
    sim: &SimDb,
    facility: &dyn setsig_core::SetAccessFacility,
    superset: bool,
    d_q: u32,
    trials: u32,
    seed: u64,
) -> f64 {
    let mut qg = sim.query_gen(seed);
    let n = sim.sets.len() as f64;
    let mut total = 0.0;
    for _ in 0..trials {
        let elems: Vec<ElementKey> = qg.random(d_q).into_iter().map(ElementKey::from).collect();
        let q = if superset {
            SetQuery::has_subset(elems)
        } else {
            SetQuery::in_subset(elems)
        };
        let m = sim.measure_facility(facility, &q);
        total += m.false_drops as f64 / (n - m.actual as f64);
    }
    total / trials as f64
}

/// `validate`: Eq. (2) and Eq. (6) against measured false-drop rates from
/// the real BSSF (always simulated — that is the point; honors `--scale`).
pub fn validate_fd(opts: &Options) -> Exhibit {
    // Validation needs real runs even without --simulate; scale down by
    // default so `repro validate` is quick in any build.
    let scale = if opts.scale > 1 { opts.scale } else { 8 };
    let run_opts = Options {
        simulate: true,
        scale,
        trials: opts.trials.max(3),
    };
    let mut ex = Exhibit::new(
        "validate",
        "False drop probability: Eq. (2)/(6) vs measured (random queries on the real BSSF)",
        vec![
            "predicate",
            "F",
            "m",
            "D_t",
            "D_q",
            "F_d model",
            "F_d measured",
        ],
    );
    let d_t = 10;
    let sim = super::obs_sim(&run_opts, d_t);

    // Superset: small m admits measurable false drops (m_opt would round
    // everything to zero and validate nothing).
    for (f, m) in [(250u32, 1u32), (250, 2), (500, 2)] {
        let bssf = sim.build_bssf(f, m);
        for d_q in [1u32, 2, 3] {
            let model = fd_superset(f, m, d_t, d_q);
            let measured =
                measured_fd(&sim, &bssf, true, d_q, run_opts.trials * 4, 71 + d_q as u64);
            ex.push_row(vec![
                "T ⊇ Q".into(),
                f.to_string(),
                m.to_string(),
                d_t.to_string(),
                d_q.to_string(),
                format!("{model:.2e}"),
                format!("{measured:.2e}"),
            ]);
        }
    }

    // Subset: the interesting regime is D_q around and above D_q^opt.
    let (f, m) = (500u32, 2u32);
    let bssf = sim.build_bssf(f, m);
    for d_q in [100u32, 300, 700, 1500] {
        let d_q = d_q.min(sim.cfg.domain as u32);
        let model = fd_subset(f, m, d_t, d_q);
        let measured = measured_fd(&sim, &bssf, false, d_q, run_opts.trials, 171 + d_q as u64);
        ex.push_row(vec![
            "T ⊆ Q".into(),
            f.to_string(),
            m.to_string(),
            d_t.to_string(),
            d_q.to_string(),
            format!("{model:.2e}"),
            format!("{measured:.2e}"),
        ]);
    }
    let p = run_opts.params();
    ex.note(format!(
        "measured on a scaled instance N = {}, V = {} with {} random queries per point; rates are instance-level fractions, so tiny probabilities quantize to multiples of 1/N",
        p.n, p.v, run_opts.trials * 4
    ));
    super::attach_observability(&mut ex, [&sim]);
    ex
}

/// `appc`: Appendix C's closed-form `D_q^opt` against a grid search over
/// the exact subset cost model.
pub fn appendix_c() -> Exhibit {
    let p = Params::paper();
    let mut ex = Exhibit::new(
        "appc",
        "Appendix C: closed-form D_q^opt vs grid minimum of RC_⊆(D_q)",
        vec![
            "F",
            "m",
            "D_t",
            "D_q^opt (formula)",
            "D_q* (grid)",
            "RC at formula",
            "RC at grid",
        ],
    );
    for (f, m, d_t) in [
        (500u32, 2u32, 10u32),
        (250, 2, 10),
        (1000, 3, 100),
        (2500, 3, 100),
    ] {
        let model = BssfModel::new(p, f, m, d_t);
        let formula = model.d_q_opt();
        let grid = (1..=600)
            .map(|i| i * 10)
            .min_by(|&a, &b| model.rc_subset(a).partial_cmp(&model.rc_subset(b)).unwrap())
            .unwrap();
        ex.push_row(vec![
            f.to_string(),
            m.to_string(),
            d_t.to_string(),
            Exhibit::fmt(formula),
            grid.to_string(),
            Exhibit::fmt(model.rc_subset(formula.round() as u32)),
            Exhibit::fmt(model.rc_subset(grid)),
        ]);
    }
    ex.note("the closed form lands within a few percent of the grid optimum's cost — the basis of the §5.2.2 smart strategy");
    ex
}

/// `varcard`: the §6 extension — what happens to the Eq. (2) prediction
/// when target cardinality varies around the design `D_t` instead of being
/// fixed.
pub fn varcard(opts: &Options) -> Exhibit {
    let scale = if opts.scale > 1 { opts.scale } else { 8 };
    let run_opts = Options {
        simulate: true,
        scale,
        trials: opts.trials.max(3),
    };
    let p = run_opts.params();
    let (f, m, d_t) = (250u32, 2u32, 10u32);
    let mut ex = Exhibit::new(
        "varcard",
        "Extension (§6): variable target cardinality vs the fixed-D_t model, BSSF F=250 m=2, T ⊇ Q",
        vec![
            "cardinality",
            "D_q",
            "F_d model (mean D_t)",
            "F_d model (mixture)",
            "F_d measured",
        ],
    );
    let mut sims = Vec::new();
    for cardinality in [
        Cardinality::Fixed(10),
        Cardinality::UniformRange(5, 15),
        Cardinality::UniformRange(1, 19),
    ] {
        let cfg = WorkloadConfig {
            n_objects: p.n,
            domain: p.v,
            cardinality,
            distribution: setsig_workload::Distribution::Uniform,
            seed: 0xcafe + d_t as u64,
        };
        let mut sim = SimDb::build(cfg);
        sim.enable_observability(super::OBS_RING_CAP);
        let bssf = sim.build_bssf(f, m);
        for d_q in [1u32, 2] {
            let model = fd_superset(f, m, d_t, d_q);
            let mixture = match cardinality {
                Cardinality::Fixed(d) => fd_superset(f, m, d, d_q),
                Cardinality::UniformRange(lo, hi) => fd_superset_uniform_range(f, m, lo, hi, d_q),
            };
            let measured = measured_fd(&sim, &bssf, true, d_q, run_opts.trials * 4, 7 + d_q as u64);
            ex.push_row(vec![
                format!("{cardinality:?}"),
                d_q.to_string(),
                format!("{model:.2e}"),
                format!("{mixture:.2e}"),
                format!("{measured:.2e}"),
            ]);
        }
        sims.push(sim);
    }
    ex.note("widening the cardinality spread raises the measured rate above the mean-D_t prediction (Jensen's inequality on Eq. 2); the mixture model Σ w_d·F_d(d) recovers the correction — the quantitative answer to the §6 further-work item");
    super::attach_observability(&mut ex, &sims);
    ex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validate_model_and_measured_agree_in_order_of_magnitude() {
        let opts = Options {
            simulate: true,
            scale: 16,
            trials: 3,
        };
        let ex = validate_fd(&opts);
        // For the (250, 1) rows the probability is large enough for a
        // stable comparison: within ~3x.
        let row = &ex.rows[0]; // F=250, m=1, D_q=1
        let model: f64 = row[5].parse().unwrap();
        let measured: f64 = row[6].parse().unwrap();
        assert!(model > 1e-4);
        assert!(
            measured / model < 3.0 && model / measured.max(1e-12) < 3.0,
            "model {model:e} vs measured {measured:e}"
        );
    }

    #[test]
    fn appendix_c_formula_near_grid() {
        let ex = appendix_c();
        for row in &ex.rows {
            let at_formula: f64 = row[5].parse().unwrap();
            let at_grid: f64 = row[6].parse().unwrap();
            assert!(at_formula <= at_grid * 1.10, "{row:?}");
        }
    }

    #[test]
    fn varcard_spread_increases_false_drops() {
        let opts = Options {
            simulate: true,
            scale: 16,
            trials: 3,
        };
        let ex = varcard(&opts);
        // Compare Fixed(10) vs UniformRange(1,19) at D_q = 1.
        let fixed: f64 = ex.rows[0][3].parse().unwrap();
        let wide: f64 = ex.rows[4][3].parse().unwrap();
        assert!(
            wide > fixed,
            "wide-spread cardinality should raise the measured rate: {fixed:e} vs {wide:e}"
        );
    }
}
