//! Figures 8–10: retrieval cost for `T ⊆ Q`.

use setsig_core::{ElementKey, SetQuery};
use setsig_costmodel::{BssfModel, NixModel, SsfModel};

use super::Options;
use crate::report::Exhibit;

/// Figure 8: overall `T ⊆ Q` retrieval cost, `D_t = 10`, `F = 500`,
/// `m = 2`, `D_q = 10…1000`: SSF vs BSSF vs NIX.
pub fn fig8(opts: &Options) -> Exhibit {
    let p = opts.params();
    let d_t = 10;
    let f = 500;
    let m = 2;
    let d_q_points = [10u32, 20, 30, 50, 70, 100, 150, 200, 300, 500, 700, 1000];

    let mut headers: Vec<String> = vec!["D_q".into(), "SSF".into(), "BSSF".into(), "NIX".into()];
    let sim = opts.simulate.then(|| super::obs_sim(opts, d_t));
    let meas = sim
        .as_ref()
        .map(|s| (s.build_ssf(f, m), s.build_bssf(f, m), s.build_nix()));
    if opts.simulate {
        headers.push("meas SSF".into());
        headers.push("meas BSSF".into());
        headers.push("meas NIX".into());
    }

    let mut ex = Exhibit::new(
        "fig8",
        "Retrieval cost RC, T ⊆ Q, D_t = 10, F = 500, m = 2 (paper Figure 8)",
        headers.iter().map(String::as_str).collect(),
    );
    let ssf = SsfModel::new(p, f, m, d_t);
    let bssf = BssfModel::new(p, f, m, d_t);
    let nix = NixModel::new(p, d_t);
    for &d_q in &d_q_points {
        let d_q = d_q.min(p.v as u32);
        let mut row = vec![d_q.to_string()];
        row.push(Exhibit::fmt(ssf.rc_subset(d_q)));
        row.push(Exhibit::fmt(bssf.rc_subset(d_q)));
        row.push(Exhibit::fmt(nix.rc_subset(d_q)));
        if let (Some(sim), Some((ssf_i, bssf_i, nix_i))) = (&sim, &meas) {
            for facility in [
                ssf_i as &dyn setsig_core::SetAccessFacility,
                bssf_i as &dyn setsig_core::SetAccessFacility,
                nix_i as &dyn setsig_core::SetAccessFacility,
            ] {
                let mut qg = sim.query_gen(d_q as u64 * 31 + 5);
                row.push(Exhibit::fmt(sim.measure_avg(facility, opts.trials, |_| {
                    SetQuery::in_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
                })));
            }
        }
        ex.push_row(row);
    }
    ex.note("paper finding: BSSF beats SSF at every D_q; both saturate near P_p·N as F_d → 1; NIX grows with the posting-list union and is worst in the mid range");
    opts.annotate_scale(&mut ex);
    super::attach_observability(&mut ex, &sim);
    ex
}

fn smart_subset_exhibit(
    id: &str,
    title: &str,
    d_t: u32,
    m: u32,
    f_values: [u32; 2],
    d_q_points: &[u32],
    opts: &Options,
) -> Exhibit {
    let p = opts.params();
    let mut headers: Vec<String> = vec!["D_q".into()];
    for f in f_values {
        headers.push(format!("BSSF smart F={f}"));
    }
    headers.push("NIX".into());

    let sim = opts.simulate.then(|| super::obs_sim(opts, d_t));
    let meas = sim
        .as_ref()
        .map(|s| (s.build_bssf(f_values[1], m), s.build_nix()));
    if opts.simulate {
        headers.push(format!("meas BSSF F={}", f_values[1]));
        headers.push("meas NIX".into());
    }

    let mut ex = Exhibit::new(id, title, headers.iter().map(String::as_str).collect());
    let bssf_models: Vec<BssfModel> = f_values
        .iter()
        .map(|&f| BssfModel::new(p, f, m, d_t))
        .collect();
    let nix = NixModel::new(p, d_t);

    // The measured smart strategy reads only the slice budget implied by
    // D_q^opt: F − m_s(D_q^opt) zero-slices.
    let slice_cap = {
        let b = &bssf_models[1];
        let opt = b.d_q_opt();
        (b.f as f64 - b.m_s(opt.round().max(1.0) as u32))
            .round()
            .max(1.0) as usize
    };

    for &d_q in d_q_points {
        let d_q = d_q.min(p.v as u32);
        let mut row = vec![d_q.to_string()];
        for b in &bssf_models {
            row.push(Exhibit::fmt(b.rc_subset_smart(d_q)));
        }
        row.push(Exhibit::fmt(nix.rc_subset(d_q)));
        if let (Some(sim), Some((bssf, nixi))) = (&sim, &meas) {
            let mut qg = sim.query_gen(d_q as u64 * 13 + 3);
            let mut total = 0u64;
            for _ in 0..opts.trials {
                let q =
                    SetQuery::in_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect());
                total += sim
                    .measure_smart(bssf, &q, || bssf.candidates_subset_smart(&q, slice_cap))
                    .total_pages();
            }
            row.push(Exhibit::fmt(total as f64 / opts.trials as f64));
            let mut qg = sim.query_gen(d_q as u64 * 13 + 3);
            row.push(Exhibit::fmt(sim.measure_avg(nixi, opts.trials, |_| {
                SetQuery::in_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            })));
        }
        ex.push_row(row);
    }
    let opt = bssf_models[1].d_q_opt();
    ex.note(format!(
        "Appendix C: D_q^opt ≈ {:.0} for F = {}, m = {m} — below it the smart strategy reads only {} zero-slices, making the cost constant",
        opt, f_values[1], slice_cap
    ));
    ex.note("paper finding: smart BSSF answers T ⊆ Q in a small constant number of pages for probable D_q and overwhelms NIX");
    opts.annotate_scale(&mut ex);
    super::attach_observability(&mut ex, &sim);
    ex
}

/// Figure 9: smart `T ⊆ Q` retrieval, `D_t = 10` (BSSF `m = 2`,
/// `F ∈ {250, 500}` vs NIX).
pub fn fig9(opts: &Options) -> Exhibit {
    smart_subset_exhibit(
        "fig9",
        "Smart retrieval cost, T ⊆ Q, D_t = 10, BSSF m = 2 (paper Figure 9)",
        10,
        2,
        [250, 500],
        &[10, 20, 30, 50, 70, 100, 150, 200, 300, 500, 700, 1000],
        opts,
    )
}

/// Figure 10: smart `T ⊆ Q` retrieval, `D_t = 100` (BSSF `m = 3`,
/// `F ∈ {1000, 2500}` vs NIX).
pub fn fig10(opts: &Options) -> Exhibit {
    smart_subset_exhibit(
        "fig10",
        "Smart retrieval cost, T ⊆ Q, D_t = 100, BSSF m = 3 (paper Figure 10)",
        100,
        3,
        [1000, 2500],
        &[100, 150, 200, 300, 500, 700, 1000, 1500, 2000],
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Options {
        Options {
            simulate: false,
            scale: 1,
            trials: 1,
        }
    }

    #[test]
    fn fig8_bssf_beats_ssf_everywhere() {
        let ex = fig8(&fast());
        for row in &ex.rows {
            let ssf: f64 = row[1].parse().unwrap();
            let bssf: f64 = row[2].parse().unwrap();
            assert!(bssf < ssf, "D_q = {}", row[0]);
        }
    }

    #[test]
    fn fig8_nix_worst_in_mid_range() {
        let ex = fig8(&fast());
        // At D_q = 100 the paper has NIX far above both signature files.
        let row = ex.rows.iter().find(|r| r[0] == "100").unwrap();
        let bssf: f64 = row[2].parse().unwrap();
        let nix: f64 = row[3].parse().unwrap();
        assert!(nix > 5.0 * bssf, "bssf {bssf} nix {nix}");
    }

    #[test]
    fn fig9_smart_cost_constant_below_opt() {
        let ex = fig9(&fast());
        let first: f64 = ex.rows[0][2].parse().unwrap();
        let at100: f64 = ex.rows.iter().find(|r| r[0] == "100").unwrap()[2]
            .parse()
            .unwrap();
        assert_eq!(first, at100, "flat below D_q^opt");
        // And far below NIX at the same D_q.
        let nix: f64 = ex.rows.iter().find(|r| r[0] == "100").unwrap()[3]
            .parse()
            .unwrap();
        assert!(at100 * 5.0 < nix);
    }

    #[test]
    fn fig10_rows_cover_dt_100_range() {
        let ex = fig10(&fast());
        assert_eq!(ex.rows[0][0], "100");
        assert!(ex.rows.len() >= 8);
    }

    #[test]
    fn simulated_fig8_runs_at_small_scale() {
        let opts = Options {
            simulate: true,
            scale: 64,
            trials: 1,
        };
        let ex = fig8(&opts);
        assert_eq!(ex.headers.len(), 7);
        for row in &ex.rows {
            let meas_bssf: f64 = row[5].parse().unwrap();
            assert!(meas_bssf > 0.0);
        }
    }
}
