//! Extension exhibit: the "other set operations" of §6 — equality,
//! overlap, and membership — measured across all four facilities.
//!
//! The paper analyzes only ⊇ and ⊆; these three operators are listed as
//! further work. The signature match rules (`setsig_core::query`) and the
//! index schemes (`setsig_nix`) implement them; this exhibit measures what
//! they cost.

use setsig_core::{ElementKey, SetAccessFacility, SetQuery};

use super::Options;
use crate::report::Exhibit;

/// `extops`: measured retrieval cost (page accesses) per predicate per
/// facility. Always simulated; honors `--scale`.
pub fn extops(opts: &Options) -> Exhibit {
    let scale = if opts.scale > 1 { opts.scale } else { 8 };
    let run = Options {
        simulate: true,
        scale,
        trials: opts.trials.max(3),
    };
    let d_t = 10;
    let sim = super::obs_sim(&run, d_t);
    let ssf = sim.build_ssf(500, 2);
    let bssf = sim.build_bssf(500, 2);
    let fssf = sim.build_fssf(500, 50, 3);
    let nix = sim.build_nix();

    let mut ex = Exhibit::new(
        "extops",
        "Extension (§6): other set operations, measured page accesses",
        vec!["predicate", "D_q", "SSF", "BSSF", "FSSF", "NIX", "answers"],
    );

    // Query generators per predicate. Equality gets a real target so the
    // answer set is nonempty; overlap and membership use random sets.
    let make = |pred: u8, trial: u64| -> SetQuery {
        let mut qg = sim.query_gen(1000 + pred as u64 * 31 + trial);
        match pred {
            0 => {
                // equality on an existing target
                let t = &sim.sets[(trial as usize * 131) % sim.sets.len()];
                SetQuery::equals(t.iter().map(|&e| ElementKey::from(e)).collect())
            }
            1 => SetQuery::overlaps(qg.random(3).into_iter().map(ElementKey::from).collect()),
            _ => SetQuery::contains(ElementKey::from(qg.random(1)[0])),
        }
    };

    for (pred, label) in [(0u8, "T = Q"), (1, "T ∩ Q ≠ ∅"), (2, "e ∈ T")] {
        let mut totals = [0u64; 4];
        let mut answers = 0u64;
        let mut d_q = 0usize;
        for t in 0..run.trials as u64 {
            let q = make(pred, t);
            d_q = q.d_q();
            let facilities: [&dyn SetAccessFacility; 4] = [&ssf, &bssf, &fssf, &nix];
            for (i, fac) in facilities.iter().enumerate() {
                let m = sim.measure_facility(*fac, &q);
                totals[i] += m.total_pages();
                if i == 0 {
                    answers += m.actual;
                }
            }
        }
        let trials = run.trials as f64;
        ex.push_row(vec![
            label.into(),
            d_q.to_string(),
            Exhibit::fmt(totals[0] as f64 / trials),
            Exhibit::fmt(totals[1] as f64 / trials),
            Exhibit::fmt(totals[2] as f64 / trials),
            Exhibit::fmt(totals[3] as f64 / trials),
            Exhibit::fmt(answers as f64 / trials),
        ]);
    }
    ex.note("equality reads all F slices on BSSF (both bit polarities) — SSF's single scan is competitive there");
    ex.note("overlap and membership behave like small-⊇ queries: BSSF reads m_q slices, NIX unions/looks up posting lists exactly");
    let p = run.params();
    ex.note(format!(
        "measured on N = {}, V = {}, {} trials per point",
        p.n, p.v, run.trials
    ));
    super::attach_observability(&mut ex, [&sim]);
    ex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extops_runs_and_reports_all_predicates() {
        let opts = Options {
            simulate: true,
            scale: 32,
            trials: 2,
        };
        let ex = extops(&opts);
        assert_eq!(ex.rows.len(), 3);
        for row in &ex.rows {
            for col in 2..6 {
                let v: f64 = row[col].parse().unwrap();
                assert!(v > 0.0, "{row:?}");
            }
        }
        // Membership answers ≈ d = D_t·N/V objects on average.
        let member_row = &ex.rows[2];
        let answers: f64 = member_row[6].parse().unwrap();
        assert!(answers >= 0.0);
    }
}
