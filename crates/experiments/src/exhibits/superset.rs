//! Figures 4–7: retrieval cost for `T ⊇ Q`.

use setsig_core::{ElementKey, SetQuery};
use setsig_costmodel::{BssfModel, NixModel, SsfModel};

use super::Options;
use crate::report::Exhibit;

/// Figure 4: overall `T ⊇ Q` retrieval cost with the text-retrieval weight
/// `m = m_opt`; SSF and BSSF at `F ∈ {250, 500}` against NIX, `D_t = 10`,
/// `D_q = 1…10`.
pub fn fig4(opts: &Options) -> Exhibit {
    let p = opts.params();
    let d_t = 10;
    let configs = [(250u32, 17u32), (500, 35)]; // (F, m_opt)
    let mut headers = vec!["D_q".to_owned()];
    for (f, m) in configs {
        headers.push(format!("SSF F={f} m={m}"));
        headers.push(format!("BSSF F={f} m={m}"));
    }
    headers.push("NIX".into());

    let sim = opts.simulate.then(|| super::obs_sim(opts, d_t));
    let mut measured_cols: Vec<String> = Vec::new();
    if opts.simulate {
        measured_cols.push("meas BSSF F=500".into());
        measured_cols.push("meas NIX".into());
        headers.extend(measured_cols.iter().cloned());
    }

    let mut ex = Exhibit::new(
        "fig4",
        "Retrieval cost RC, T ⊇ Q, D_t = 10, m = m_opt (paper Figure 4)",
        headers.iter().map(String::as_str).collect(),
    );

    let nix = NixModel::new(p, d_t);
    let meas = sim.as_ref().map(|s| (s.build_bssf(500, 35), s.build_nix()));
    for d_q in 1..=10u32 {
        let mut row = vec![d_q.to_string()];
        for (f, m) in configs {
            row.push(Exhibit::fmt(SsfModel::new(p, f, m, d_t).rc_superset(d_q)));
            row.push(Exhibit::fmt(BssfModel::new(p, f, m, d_t).rc_superset(d_q)));
        }
        row.push(Exhibit::fmt(nix.rc_superset(d_q)));
        if let (Some(sim), Some((bssf, nixi))) = (&sim, &meas) {
            let mut qg = sim.query_gen(d_q as u64);
            row.push(Exhibit::fmt(sim.measure_avg(bssf, opts.trials, |_| {
                SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            })));
            let mut qg = sim.query_gen(d_q as u64);
            row.push(Exhibit::fmt(sim.measure_avg(nixi, opts.trials, |_| {
                SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            })));
        }
        ex.push_row(row);
    }
    ex.note("paper finding: at m = m_opt both signature files lose to NIX — SSF pays its full scan, BSSF pays m_s ≈ m·D_q slice reads");
    if opts.simulate {
        ex.note("measured BSSF undercuts Eq. (8): the implementation stops ANDing slices once the accumulator empties, which at m_opt happens after a few dozen of the m_s slices — an optimization the paper's model does not include (the loss to NIX still reproduces)");
    }
    opts.annotate_scale(&mut ex);
    super::attach_observability(&mut ex, &sim);
    ex
}

/// Figure 5: `T ⊇ Q` cost of BSSF with a *small* `m ∈ 1…4` (`F = 500`,
/// `D_t = 10`) against NIX — the paper's case for small weights.
pub fn fig5(opts: &Options) -> Exhibit {
    let p = opts.params();
    let d_t = 10;
    let f = 500;
    let mut headers: Vec<String> = vec!["D_q".into()];
    for m in 1..=4u32 {
        headers.push(format!("BSSF m={m}"));
    }
    headers.push("NIX".into());

    let sim = opts.simulate.then(|| super::obs_sim(opts, d_t));
    let meas = sim.as_ref().map(|s| (s.build_bssf(f, 2), s.build_nix()));
    if opts.simulate {
        headers.push("meas BSSF m=2".into());
        headers.push("meas NIX".into());
    }

    let mut ex = Exhibit::new(
        "fig5",
        "Retrieval cost RC, T ⊇ Q, D_t = 10, F = 500, small m (paper Figure 5)",
        headers.iter().map(String::as_str).collect(),
    );
    let nix = NixModel::new(p, d_t);
    for d_q in 1..=10u32 {
        let mut row = vec![d_q.to_string()];
        for m in 1..=4u32 {
            row.push(Exhibit::fmt(BssfModel::new(p, f, m, d_t).rc_superset(d_q)));
        }
        row.push(Exhibit::fmt(nix.rc_superset(d_q)));
        if let (Some(sim), Some((bssf, nixi))) = (&sim, &meas) {
            let mut qg = sim.query_gen(100 + d_q as u64);
            row.push(Exhibit::fmt(sim.measure_avg(bssf, opts.trials, |_| {
                SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            })));
            let mut qg = sim.query_gen(100 + d_q as u64);
            row.push(Exhibit::fmt(sim.measure_avg(nixi, opts.trials, |_| {
                SetQuery::has_subset(qg.random(d_q).into_iter().map(ElementKey::from).collect())
            })));
        }
        ex.push_row(row);
    }
    ex.note(
        "paper finding: except at D_q = 1, BSSF with m = 2 is comparable to or cheaper than NIX",
    );
    opts.annotate_scale(&mut ex);
    super::attach_observability(&mut ex, &sim);
    ex
}

fn smart_superset_exhibit(
    id: &str,
    title: &str,
    d_t: u32,
    m: u32,
    f_values: [u32; 2],
    d_q_points: &[u32],
    opts: &Options,
) -> Exhibit {
    let p = opts.params();
    let mut headers: Vec<String> = vec!["D_q".into()];
    for f in f_values {
        headers.push(format!("BSSF smart F={f}"));
    }
    headers.push("NIX smart".into());

    let sim = opts.simulate.then(|| super::obs_sim(opts, d_t));
    let meas = sim
        .as_ref()
        .map(|s| (s.build_bssf(f_values[1], m), s.build_nix()));
    if opts.simulate {
        headers.push(format!("meas BSSF F={}", f_values[1]));
        headers.push("meas NIX".into());
    }

    let mut ex = Exhibit::new(id, title, headers.iter().map(String::as_str).collect());

    // The smart caps: the j minimizing the model cost (the paper fixes
    // j = 2 for m = 2, which best_superset_cap reproduces).
    let bssf_models: Vec<BssfModel> = f_values
        .iter()
        .map(|&f| BssfModel::new(p, f, m, d_t))
        .collect();
    let caps: Vec<u32> = bssf_models
        .iter()
        .map(|b| b.best_superset_cap(10))
        .collect();
    let nix = NixModel::new(p, d_t);
    let nix_cap = 2; // §5.1.3's rule for NIX

    for &d_q in d_q_points {
        let mut row = vec![d_q.to_string()];
        for (b, &cap) in bssf_models.iter().zip(&caps) {
            row.push(Exhibit::fmt(b.rc_superset_smart(d_q, cap)));
        }
        row.push(Exhibit::fmt(nix.rc_superset_smart(d_q, nix_cap)));
        if let (Some(sim), Some((bssf, nixi))) = (&sim, &meas) {
            let cap = caps[1] as usize;
            let mut qg = sim.query_gen(d_q as u64 * 7 + 1);
            let mut total = 0u64;
            for _ in 0..opts.trials {
                let q = SetQuery::has_subset(
                    qg.random(d_q).into_iter().map(ElementKey::from).collect(),
                );
                total += sim
                    .measure_smart(bssf, &q, || bssf.candidates_superset_smart(&q, cap))
                    .total_pages();
            }
            row.push(Exhibit::fmt(total as f64 / opts.trials as f64));

            let mut qg = sim.query_gen(d_q as u64 * 7 + 1);
            let mut total = 0u64;
            for _ in 0..opts.trials {
                let q = SetQuery::has_subset(
                    qg.random(d_q).into_iter().map(ElementKey::from).collect(),
                );
                total += sim
                    .measure_smart(nixi, &q, || {
                        nixi.candidates_superset_smart(&q, nix_cap as usize)
                    })
                    .total_pages();
            }
            row.push(Exhibit::fmt(total as f64 / opts.trials as f64));
        }
        ex.push_row(row);
    }
    ex.note(format!(
        "smart caps: BSSF j* = {:?} (model-minimizing; the paper fixes 2), NIX j = 2",
        caps
    ));
    ex.note("paper finding: NIX wins only at D_q = 1; from D_q ≥ 2–3 smart BSSF is equal or cheaper, and both flatten to a constant");
    opts.annotate_scale(&mut ex);
    super::attach_observability(&mut ex, &sim);
    ex
}

/// Figure 6: smart `T ⊇ Q` retrieval, `D_t = 10` (BSSF `m = 2`,
/// `F ∈ {250, 500}` vs NIX).
pub fn fig6(opts: &Options) -> Exhibit {
    smart_superset_exhibit(
        "fig6",
        "Smart retrieval cost, T ⊇ Q, D_t = 10, BSSF m = 2 (paper Figure 6)",
        10,
        2,
        [250, 500],
        &[1, 2, 3, 4, 5, 6, 7, 8, 9, 10],
        opts,
    )
}

/// Figure 7: smart `T ⊇ Q` retrieval, `D_t = 100` (BSSF `m = 3`,
/// `F ∈ {1000, 2500}` vs NIX).
pub fn fig7(opts: &Options) -> Exhibit {
    smart_superset_exhibit(
        "fig7",
        "Smart retrieval cost, T ⊇ Q, D_t = 100, BSSF m = 3 (paper Figure 7)",
        100,
        3,
        [1000, 2500],
        &[1, 2, 3, 4, 5, 7, 10, 20, 50, 100],
        opts,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fast() -> Options {
        Options {
            simulate: false,
            scale: 1,
            trials: 1,
        }
    }

    #[test]
    fn fig4_shape_matches_paper() {
        let ex = fig4(&fast());
        assert_eq!(ex.rows.len(), 10);
        // At m_opt, NIX (last analytic column) beats both signature files
        // for every D_q ≥ 2 — the paper's §5.1.1 conclusion.
        for row in &ex.rows[1..] {
            let nix: f64 = row[5].parse().unwrap();
            for col in 1..5 {
                let sig: f64 = row[col].parse().unwrap();
                assert!(nix < sig, "D_q = {}: NIX {nix} vs col{col} {sig}", row[0]);
            }
        }
    }

    #[test]
    fn fig5_small_m_competitive() {
        let ex = fig5(&fast());
        // m = 2 column vs NIX: comparable or better for D_q ≥ 2.
        for row in &ex.rows[1..] {
            let m2: f64 = row[2].parse().unwrap();
            let nix: f64 = row[5].parse().unwrap();
            assert!(m2 <= nix * 1.6, "D_q = {}: m2 {m2} vs nix {nix}", row[0]);
        }
        // And at D_q = 1 NIX wins.
        let m2: f64 = ex.rows[0][2].parse().unwrap();
        let nix: f64 = ex.rows[0][5].parse().unwrap();
        assert!(nix < m2);
    }

    #[test]
    fn fig6_flattens_to_constant() {
        let ex = fig6(&fast());
        // Smart BSSF F=500 constant from the cap onward.
        let at3: f64 = ex.rows[2][2].parse().unwrap();
        let at10: f64 = ex.rows[9][2].parse().unwrap();
        assert_eq!(at3, at10);
    }

    #[test]
    fn fig7_has_expected_rows() {
        let ex = fig7(&fast());
        assert_eq!(ex.rows.len(), 10);
        assert_eq!(ex.rows[0][0], "1");
        assert_eq!(ex.rows[9][0], "100");
    }

    #[test]
    fn simulated_fig5_runs_at_small_scale() {
        let opts = Options {
            simulate: true,
            scale: 64,
            trials: 1,
        };
        let ex = fig5(&opts);
        // Measured columns exist and are positive.
        assert_eq!(ex.headers.len(), 8);
        for row in &ex.rows {
            let meas: f64 = row[6].parse().unwrap();
            assert!(meas > 0.0);
        }
    }
}
