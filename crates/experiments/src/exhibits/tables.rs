//! Tables 2, 5, 6 and 7.

use setsig_core::{ElementKey, Oid, SetAccessFacility};
use setsig_costmodel::{BssfModel, NixModel, Params, SsfModel};

use super::Options;
use crate::report::Exhibit;
use crate::sim::{EngineConfig, SimDb};

/// Table 2: the constant parameters, with the derived values the paper
/// lists.
pub fn params() -> Exhibit {
    let p = Params::paper();
    let mut ex = Exhibit::new(
        "params",
        "Constant parameters (paper Table 2)",
        vec!["symbol", "definition", "value"],
    );
    let rows: Vec<(&str, &str, String)> = vec![
        ("N", "total number of objects", p.n.to_string()),
        ("P", "disk page size (bytes)", p.p.to_string()),
        ("oid", "OID size (bytes)", p.oid.to_string()),
        ("V", "cardinality of the set domain", p.v.to_string()),
        ("b", "bits per byte", p.b.to_string()),
        ("O_p", "OIDs per page ⌊P/oid⌋", p.o_p().to_string()),
        ("SC_OID", "OID file pages ⌈N/O_p⌉", p.sc_oid().to_string()),
        ("P_p", "pages/object, unsuccessful", Exhibit::fmt(p.p_p)),
        ("P_s", "pages/object, successful", Exhibit::fmt(p.p_s)),
    ];
    for (s, d, v) in rows {
        ex.push_row(vec![s.into(), d.into(), v]);
    }
    ex
}

/// Table 5: NIX storage cost (`lp`, `nlp`, `SC`) for `D_t ∈ {10, 100}`.
pub fn table5() -> Exhibit {
    let p = Params::paper();
    let mut ex = Exhibit::new(
        "table5",
        "Storage cost of NIX (paper Table 5)",
        vec!["D_t", "lp", "nlp", "SC", "paper SC"],
    );
    for (d_t, paper_sc) in [(10u32, 690u64), (100, 6531)] {
        let m = NixModel::new(p, d_t);
        ex.push_row(vec![
            d_t.to_string(),
            m.lp().to_string(),
            m.nlp().to_string(),
            m.sc().to_string(),
            paper_sc.to_string(),
        ]);
    }
    ex.note("exact match with the paper: lp = 685/6500, nlp = 5/31");
    ex
}

/// The facility configurations Tables 6 and 7 cover.
fn facility_configs() -> Vec<(u32, u32, u32)> {
    // (D_t, F, m) — the paper's §5.3/§6 study points (small m).
    vec![(10, 250, 2), (10, 500, 2), (100, 1000, 3), (100, 2500, 3)]
}

/// Table 6: storage costs of SSF, BSSF and NIX.
pub fn table6(opts: &Options) -> Exhibit {
    let p = opts.params();
    let mut headers = vec!["D_t", "F", "SSF", "BSSF", "NIX"];
    if opts.simulate {
        headers.extend(["meas SSF", "meas BSSF", "meas NIX"]);
    }
    let mut ex = Exhibit::new("table6", "Storage cost in pages (paper Table 6)", headers);
    let mut sims: std::collections::BTreeMap<u32, SimDb> = Default::default();
    for (d_t, f, m) in facility_configs() {
        let ssf = SsfModel::new(p, f, m, d_t);
        let bssf = BssfModel::new(p, f, m, d_t);
        let nix = NixModel::new(p, d_t);
        let mut row = vec![
            d_t.to_string(),
            f.to_string(),
            ssf.sc().to_string(),
            bssf.sc().to_string(),
            nix.sc().to_string(),
        ];
        if opts.simulate {
            let sim = sims.entry(d_t).or_insert_with(|| super::obs_sim(opts, d_t));
            let ssf_i = sim.build_ssf(f, m);
            let bssf_i = sim.build_bssf(f, m);
            let nix_i = sim.build_nix();
            row.push(ssf_i.storage_pages().unwrap().to_string());
            row.push(bssf_i.storage_pages().unwrap().to_string());
            row.push(nix_i.storage_pages().unwrap().to_string());
        }
        ex.push_row(row);
    }
    ex.note("§6: SSF/BSSF cost ≈ 45%/80% of NIX at D_t = 10 and ≈ 16%/38% at D_t = 100");
    if opts.simulate {
        ex.note("measured NIX includes interior fragmentation and overflow pages the model's ⌊P/il⌋ packing ignores");
    }
    opts.annotate_scale(&mut ex);
    super::attach_observability(&mut ex, sims.values());
    ex
}

/// Table 7: update costs (`UC_I`, `UC_D`).
pub fn table7(opts: &Options) -> Exhibit {
    let p = opts.params();
    let mut headers = vec!["D_t", "F", "facility", "UC_I", "UC_D"];
    if opts.simulate {
        headers.extend(["meas UC_I", "meas UC_D"]);
    }
    let mut ex = Exhibit::new(
        "table7",
        "Update cost in page accesses (paper Table 7)",
        headers,
    );
    let mut sims: std::collections::BTreeMap<u32, SimDb> = Default::default();
    for (d_t, f, m) in facility_configs() {
        let models: Vec<(&str, f64, f64)> = vec![
            (
                "SSF",
                SsfModel::new(p, f, m, d_t).uc_insert(),
                SsfModel::new(p, f, m, d_t).uc_delete(),
            ),
            (
                "BSSF",
                BssfModel::new(p, f, m, d_t).uc_insert(),
                BssfModel::new(p, f, m, d_t).uc_delete(),
            ),
            (
                "NIX",
                NixModel::new(p, d_t).uc_insert(),
                NixModel::new(p, d_t).uc_delete(),
            ),
        ];
        let measured: Option<Vec<(f64, f64)>> = opts.simulate.then(|| {
            let sim = sims.entry(d_t).or_insert_with(|| super::obs_sim(opts, d_t));
            let mut out = Vec::new();
            let disk = sim.db.disk();
            let probe_oid = Oid::new(sim.sets.len() as u64 + 7);
            let probe_set: Vec<ElementKey> =
                sim.sets[0].iter().map(|&e| ElementKey::from(e)).collect();

            // Updates measure the paper's serial, unbuffered protocol;
            // the engine knobs only select how *queries* run.
            let mut ssf_i = sim.build_ssf_with(f, m, EngineConfig::serial());
            let s0 = disk.snapshot();
            ssf_i.insert(probe_oid, &probe_set).unwrap();
            let s1 = disk.snapshot();
            ssf_i.delete(probe_oid, &probe_set).unwrap();
            let s2 = disk.snapshot();
            out.push((
                s1.since(s0).accesses() as f64,
                s2.since(s1).accesses() as f64,
            ));

            let mut bssf_i = sim.build_bssf_with(f, m, EngineConfig::serial());
            let s0 = disk.snapshot();
            bssf_i.insert(probe_oid, &probe_set).unwrap();
            let s1 = disk.snapshot();
            bssf_i.delete(probe_oid, &probe_set).unwrap();
            let s2 = disk.snapshot();
            out.push((
                s1.since(s0).accesses() as f64,
                s2.since(s1).accesses() as f64,
            ));

            let mut nix_i = sim.build_nix();
            let s0 = disk.snapshot();
            nix_i.insert(probe_oid, &probe_set).unwrap();
            let s1 = disk.snapshot();
            nix_i.delete(probe_oid, &probe_set).unwrap();
            let s2 = disk.snapshot();
            out.push((
                s1.since(s0).accesses() as f64,
                s2.since(s1).accesses() as f64,
            ));
            out
        });
        for (i, (name, uci, ucd)) in models.into_iter().enumerate() {
            let mut row = vec![
                d_t.to_string(),
                f.to_string(),
                name.to_string(),
                Exhibit::fmt(uci),
                Exhibit::fmt(ucd),
            ];
            if let Some(meas) = &measured {
                row.push(Exhibit::fmt(meas[i].0));
                row.push(Exhibit::fmt(meas[i].1));
            }
            ex.push_row(row);
        }
    }
    ex.note("BSSF UC_I = F + 1 is the paper's worst case; the sparse insert variant costs ≈ m_t + 1 (see the ablation bench)");
    ex.note("measured deletes include the flag write on top of the model's SC_OID/2 expected scan; measured NIX updates pay real read-modify-write and split costs");
    opts.annotate_scale(&mut ex);
    super::attach_observability(&mut ex, sims.values());
    ex
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table5_matches_paper_exactly() {
        let ex = table5();
        assert_eq!(ex.rows[0], vec!["10", "685", "5", "690", "690"]);
        assert_eq!(ex.rows[1], vec!["100", "6500", "31", "6531", "6531"]);
    }

    #[test]
    fn table6_ratios_match_section6() {
        let ex = table6(&Options::default());
        // D_t = 10, F = 250: SSF ≈ 45% of NIX.
        let ssf: f64 = ex.rows[0][2].parse().unwrap();
        let nix: f64 = ex.rows[0][4].parse().unwrap();
        let ratio = ssf / nix;
        assert!((0.40..0.50).contains(&ratio), "ratio {ratio}");
        // D_t = 100, F = 2500: BSSF ≈ 38% of NIX.
        let bssf: f64 = ex.rows[3][3].parse().unwrap();
        let nix: f64 = ex.rows[3][4].parse().unwrap();
        let ratio = bssf / nix;
        assert!((0.35..0.42).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn table7_analytic_values() {
        let ex = table7(&Options::default());
        // SSF row for D_t = 10, F = 250.
        assert_eq!(ex.rows[0][3], "2");
        assert_eq!(ex.rows[0][4], "31.5");
        // BSSF UC_I = F + 1.
        assert_eq!(ex.rows[1][3], "251");
        // NIX rc·D_t = 30.
        assert_eq!(ex.rows[2][3], "30");
    }

    #[test]
    fn params_table_lists_table2() {
        let ex = params();
        assert!(ex.rows.iter().any(|r| r[0] == "SC_OID" && r[2] == "63"));
    }

    #[test]
    fn simulated_tables_run_at_small_scale() {
        let opts = Options {
            simulate: true,
            scale: 64,
            trials: 1,
        };
        let t6 = table6(&opts);
        assert_eq!(t6.headers.len(), 8);
        let t7 = table7(&opts);
        assert_eq!(t7.headers.len(), 7);
        // Measured SSF insert = 2 writes, like the model.
        assert_eq!(t7.rows[0][5], "2");
        // Measured BSSF insert = F + 1.
        assert_eq!(t7.rows[1][5], "251");
    }
}
