//! One module per paper exhibit, plus the extension studies.

mod extops;
mod extorgs;
mod subset;
mod superset;
mod tables;
mod validate;

pub use extops::extops;
pub use extorgs::{advisor_exhibit, extorgs};
pub use subset::{fig10, fig8, fig9};
pub use superset::{fig4, fig5, fig6, fig7};
pub use tables::{params, table5, table6, table7};
pub use validate::{appendix_c, validate_fd, varcard};

use crate::report::Exhibit;
use crate::sim::SimDb;
use setsig_costmodel::Params;
use setsig_workload::{Cardinality, Distribution, WorkloadConfig};

/// Trace events kept per measured exhibit; old events are evicted first,
/// so the tail of a long run survives.
const OBS_RING_CAP: usize = 4096;

/// Builds the simulated database for a measured exhibit with the
/// observability recorder attached: every facility the exhibit builds from
/// it traces its queries and feeds the shared metrics registry.
pub(crate) fn obs_sim(opts: &Options, d_t: u32) -> SimDb {
    let mut sim = SimDb::build(opts.workload(d_t));
    sim.enable_observability(OBS_RING_CAP);
    sim
}

/// Attaches the metrics snapshot (`<id>.metrics.txt`) and the JSONL query
/// trace (`<id>.trace.jsonl`) gathered by `sims` to the exhibit. Exhibits
/// spanning several simulated databases pass them all; their registries
/// are rendered in sequence and their rings concatenated.
pub(crate) fn attach_observability<'a>(
    ex: &mut Exhibit,
    sims: impl IntoIterator<Item = &'a SimDb>,
) {
    let mut metrics = String::new();
    let mut trace = String::new();
    for sim in sims {
        if let Some(rec) = sim.recorder() {
            metrics.push_str(&rec.registry().snapshot().render_text());
        }
        if let Some(ring) = sim.trace_ring() {
            for ev in ring.drain() {
                trace.push_str(&ev.to_json());
                trace.push('\n');
            }
        }
    }
    if !metrics.is_empty() {
        ex.artifacts
            .push((format!("{}.metrics.txt", ex.id), metrics));
    }
    if !trace.is_empty() {
        ex.artifacts.push((format!("{}.trace.jsonl", ex.id), trace));
    }
}

/// Knobs shared by every exhibit.
#[derive(Debug, Clone, Copy)]
pub struct Options {
    /// Also run the real implementations and add measured columns.
    pub simulate: bool,
    /// Divide `N` and `V` by this factor for faster simulation (1 = the
    /// paper's full scale). Analytic columns are computed at the same
    /// scale so the comparison stays apples-to-apples.
    pub scale: u64,
    /// Queries averaged per measured point.
    pub trials: u32,
}

impl Default for Options {
    fn default() -> Self {
        Options {
            simulate: false,
            scale: 1,
            trials: 3,
        }
    }
}

impl Options {
    /// Cost-model constants at the chosen scale.
    pub fn params(&self) -> Params {
        let paper = Params::paper();
        if self.scale <= 1 {
            paper
        } else {
            Params::scaled(paper.n / self.scale, paper.v / self.scale)
        }
    }

    /// Workload matching [`Options::params`] for cardinality `d_t`.
    pub fn workload(&self, d_t: u32) -> WorkloadConfig {
        let p = self.params();
        WorkloadConfig {
            n_objects: p.n,
            domain: p.v,
            cardinality: Cardinality::Fixed(d_t),
            distribution: Distribution::Uniform,
            seed: 0x1993_5160 + d_t as u64,
        }
    }

    /// Scale note appended to exhibits when not at paper scale.
    pub fn annotate_scale(&self, exhibit: &mut Exhibit) {
        if self.scale > 1 {
            let p = self.params();
            exhibit.note(format!(
                "scaled instance: N = {}, V = {} (paper: 32000 / 13000); analytic columns use the same scale",
                p.n, p.v
            ));
        }
    }
}

/// Every exhibit id, in paper order.
pub const ALL: &[&str] = &[
    "params", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "table5", "table6",
    "table7", "validate", "appc", "varcard", "extorgs", "extops", "advisor",
];

/// Runs one exhibit by id.
pub fn run(id: &str, opts: &Options) -> Option<Exhibit> {
    Some(match id {
        "params" => params(),
        "fig4" => fig4(opts),
        "fig5" => fig5(opts),
        "fig6" => fig6(opts),
        "fig7" => fig7(opts),
        "fig8" => fig8(opts),
        "fig9" => fig9(opts),
        "fig10" => fig10(opts),
        "table5" => table5(),
        "table6" => table6(opts),
        "table7" => table7(opts),
        "validate" => validate_fd(opts),
        "appc" => appendix_c(),
        "varcard" => varcard(opts),
        "extorgs" => extorgs(opts),
        "extops" => extops(opts),
        "advisor" => advisor_exhibit(opts),
        _ => return None,
    })
}
