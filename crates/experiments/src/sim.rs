//! Simulated database instances: the measured half of every exhibit.
//!
//! A [`SimDb`] is a full paper-style database — object store with `N`
//! synthetic objects on the accounting disk — from which SSF, BSSF and NIX
//! facilities can be built (sharing the same disk) and queries measured in
//! actual page accesses.

use setsig_core::{
    resolve_drops, Bssf, CandidateSet, ElementKey, Fssf, FssfConfig, Oid, Result as CoreResult,
    ScanStats, SetAccessFacility, SetQuery, SignatureConfig, Ssf,
};
use setsig_nix::Nix;
use setsig_obs::{Recorder, RingSink, TraceSink};
use setsig_oodb::{AttrType, ClassDef, ClassId, Database, Value};
use setsig_pagestore::PageIo;
use setsig_service::{shard_of, QueryService, ServiceConfig};
use setsig_workload::{QueryGen, SetGenerator, WorkloadConfig};
use std::sync::Arc;

/// What a filter-stage closure hands back to the measurement harness: the
/// drops, plus the scan's own [`ScanStats`] when the facility tracks them.
///
/// Implemented for every shape the `candidates*` family returns, so
/// `measure_smart` accepts `Bssf::candidates_superset_smart` (which returns
/// `(CandidateSet, ScanStats)`), `Nix::candidates_superset_smart` (a bare
/// `CandidateSet`), and `candidates_with_stats` alike.
pub trait FilterOutcome {
    /// Splits into candidates and optional per-query scan stats.
    fn into_parts(self) -> (CandidateSet, Option<ScanStats>);
}

impl FilterOutcome for CandidateSet {
    fn into_parts(self) -> (CandidateSet, Option<ScanStats>) {
        (self, None)
    }
}

impl FilterOutcome for (CandidateSet, ScanStats) {
    fn into_parts(self) -> (CandidateSet, Option<ScanStats>) {
        (self.0, Some(self.1))
    }
}

impl FilterOutcome for (CandidateSet, Option<ScanStats>) {
    fn into_parts(self) -> (CandidateSet, Option<ScanStats>) {
        self
    }
}

/// Measured cost breakdown of one query through one facility.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasuredQuery {
    /// Pages touched by the filtering stage (signature scan / slice reads /
    /// index look-ups, including the OID file).
    pub filter_pages: u64,
    /// Pages touched fetching candidate objects during drop resolution.
    pub object_pages: u64,
    /// Candidates produced by the filter (drops).
    pub candidates: u64,
    /// Candidates that failed verification (false drops).
    pub false_drops: u64,
    /// Qualifying objects.
    pub actual: u64,
}

impl MeasuredQuery {
    /// Total measured retrieval cost — the counterpart of the paper's `RC`.
    pub fn total_pages(&self) -> u64 {
        self.filter_pages + self.object_pages
    }
}

/// Query-engine knobs for the measured facilities: how many scan threads
/// and whether reads are routed through a buffer pool.
///
/// The default — one thread, no pool — is the paper's protocol, and every
/// published number is measured that way. The knobs exist so each exhibit
/// can be re-run serial vs. parallel (the candidate sets and logical page
/// counts are identical by construction) or with a hot cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EngineConfig {
    /// Worker threads for slice/signature scans (`1` = serial).
    pub threads: usize,
    /// Buffer-pool capacity in frames; `None` leaves reads uncached.
    pub pool_pages: Option<usize>,
    /// Pinned in-RAM tier above the pool, in pages; requires `pool_pages`.
    /// `None` disables the tier.
    pub pinned_pages: Option<usize>,
    /// OID-hash shards for the query service (`1` = unsharded; answers
    /// and page charges are then identical to the flat facility).
    pub shards: usize,
    /// Admission-queue depth of the query service, in shard-tasks.
    pub queue_depth: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            threads: 1,
            pool_pages: None,
            pinned_pages: None,
            shards: 1,
            queue_depth: ServiceConfig::DEFAULT_QUEUE_DEPTH,
        }
    }
}

impl EngineConfig {
    /// The paper's serial, uncached protocol.
    pub fn serial() -> Self {
        Self::default()
    }

    /// Reads `SETSIG_THREADS` (scan worker count, default 1),
    /// `SETSIG_POOL_PAGES` (buffer-pool frames, default none),
    /// `SETSIG_PINNED_PAGES` (pinned tier above the pool, default none;
    /// requires `SETSIG_POOL_PAGES`), `SETSIG_SHARDS` (query-service
    /// shards, default 1), and `SETSIG_QUEUE_DEPTH` (service admission
    /// queue, default 64) so any exhibit binary can flip engines without a
    /// rebuild.
    ///
    /// Panics on an invalid value. A knob that silently fell back to the
    /// serial default would let a typo masquerade as an 8-thread
    /// measurement, which is exactly the kind of quiet corruption the
    /// harness must fail loudly on instead.
    pub fn from_env() -> Self {
        match Self::from_lookup(|k| std::env::var(k).ok()) {
            Ok(cfg) => cfg,
            Err(e) => panic!("{e}"),
        }
    }

    /// The parsing core behind [`from_env`](Self::from_env), taking the
    /// environment as a lookup function so tests can exercise every
    /// malformed input without mutating process-global state.
    ///
    /// Rules: an unset or empty/whitespace variable means "default";
    /// anything else must parse as an integer ≥ 1 (zero threads cannot
    /// scan, and a zero-frame pool is spelled by unsetting the variable).
    /// Surrounding whitespace is tolerated. There is no upper clamp:
    /// oversubscribed thread counts are legal, and the engines already cap
    /// workers at the number of pages/slices to scan.
    pub fn from_lookup(get: impl Fn(&str) -> Option<String>) -> Result<Self, String> {
        fn knob(name: &str, val: Option<String>) -> Result<Option<usize>, String> {
            let Some(v) = val.filter(|v| !v.trim().is_empty()) else {
                return Ok(None);
            };
            match v.trim().parse::<usize>() {
                Ok(n) if n >= 1 => Ok(Some(n)),
                _ => Err(format!(
                    "{name} must be an integer >= 1, got {v:?} \
                     (unset it for the default)"
                )),
            }
        }
        let pool_pages = knob("SETSIG_POOL_PAGES", get("SETSIG_POOL_PAGES"))?;
        let pinned_pages = knob("SETSIG_PINNED_PAGES", get("SETSIG_PINNED_PAGES"))?;
        if pinned_pages.is_some() && pool_pages.is_none() {
            // The pinned tier sits above the LRU pool; without a pool there
            // is nothing to tier. A silent fallback would report pinned-hit
            // numbers from an engine that cannot produce them.
            return Err(
                "SETSIG_PINNED_PAGES requires SETSIG_POOL_PAGES (the pinned tier \
                 sits above the buffer pool; unset it for uncached reads)"
                    .into(),
            );
        }
        Ok(EngineConfig {
            threads: knob("SETSIG_THREADS", get("SETSIG_THREADS"))?.unwrap_or(1),
            pool_pages,
            pinned_pages,
            shards: knob("SETSIG_SHARDS", get("SETSIG_SHARDS"))?.unwrap_or(1),
            queue_depth: knob("SETSIG_QUEUE_DEPTH", get("SETSIG_QUEUE_DEPTH"))?
                .unwrap_or(ServiceConfig::DEFAULT_QUEUE_DEPTH),
        })
    }

    /// The service-layer sizing these knobs spell: `shards` partitions,
    /// the configured queue depth, workers tracking shards (capped in
    /// [`ServiceConfig::new`]).
    pub fn service_config(&self) -> ServiceConfig {
        ServiceConfig::new(self.shards).with_queue_depth(self.queue_depth)
    }
}

/// A synthetic database instance: `N` objects, each with one indexed set
/// attribute drawn per the workload config.
pub struct SimDb {
    /// The database (object store + accounting disk).
    pub db: Database,
    /// The synthetic class.
    pub class: ClassId,
    /// Ground-truth target sets, indexed by OID.
    pub sets: Vec<Vec<u64>>,
    /// The workload that generated the instance.
    pub cfg: WorkloadConfig,
    /// Recorder attached to facilities built after
    /// [`SimDb::enable_observability`]; `None` (the default) builds
    /// facilities with observability off.
    recorder: Option<Arc<Recorder>>,
    /// The ring sink behind `recorder`, for draining trace events.
    ring: Option<Arc<RingSink>>,
}

impl SimDb {
    /// Builds the instance: generates all target sets and stores them as
    /// objects (OID `i` holds `sets[i]`).
    pub fn build(cfg: WorkloadConfig) -> Self {
        let sets = SetGenerator::new(cfg).generate_all();
        let mut db = Database::in_memory();
        let class = db
            .define_class(ClassDef::new(
                "Synthetic",
                vec![("elems", AttrType::set_of(AttrType::Int))],
            ))
            .expect("fresh database");
        for set in &sets {
            let value = Value::Set(set.iter().map(|&e| Value::Int(e as i64)).collect());
            db.insert_object(class, vec![value])
                .expect("schema-valid insert");
        }
        db.disk().reset_stats();
        SimDb {
            db,
            class,
            sets,
            cfg,
            recorder: None,
            ring: None,
        }
    }

    /// Turns observability on: facilities built *after* this call share one
    /// fresh [`Recorder`] (metrics registry + a ring sink holding the last
    /// `ring_cap` trace events). Returns the recorder for snapshots.
    pub fn enable_observability(&mut self, ring_cap: usize) -> Arc<Recorder> {
        let ring = Arc::new(RingSink::new(ring_cap));
        let rec = Arc::new(Recorder::new().with_sink(Arc::clone(&ring) as Arc<dyn TraceSink>));
        self.ring = Some(ring);
        self.recorder = Some(Arc::clone(&rec));
        rec
    }

    /// The recorder facilities are built with, when observability is on.
    pub fn recorder(&self) -> Option<&Arc<Recorder>> {
        self.recorder.as_ref()
    }

    /// The trace ring behind the recorder, when observability is on.
    pub fn trace_ring(&self) -> Option<&Arc<RingSink>> {
        self.ring.as_ref()
    }

    /// Elements of target `oid` as query keys.
    pub fn target_keys(&self, oid: u64) -> Vec<ElementKey> {
        self.sets[oid as usize]
            .iter()
            .map(|&e| ElementKey::from(e))
            .collect()
    }

    /// A deterministic query generator over this instance's domain.
    pub fn query_gen(&self, seed: u64) -> QueryGen {
        QueryGen::new(self.cfg.domain, seed)
    }

    fn io(&self) -> Arc<dyn PageIo> {
        Arc::clone(self.db.disk()) as Arc<dyn PageIo>
    }

    /// Builds an SSF over the instance (inserting every target signature),
    /// with engine knobs from the environment (see [`EngineConfig::from_env`]).
    pub fn build_ssf(&self, f: u32, m: u32) -> Ssf {
        self.build_ssf_with(f, m, EngineConfig::from_env())
    }

    /// Builds an SSF with explicit engine knobs.
    pub fn build_ssf_with(&self, f: u32, m: u32, engine: EngineConfig) -> Ssf {
        let cfg = SignatureConfig::new(f, m).expect("valid signature config");
        let name = format!("ssf-f{f}-m{m}");
        let mut ssf = match engine.pool_pages {
            Some(pages) => Ssf::create_tiered(
                Arc::clone(self.db.disk()),
                &name,
                cfg,
                pages,
                engine.pinned_pages.unwrap_or(0),
            )
            .expect("fits page"),
            None => Ssf::create(self.io(), &name, cfg).expect("fits page"),
        };
        ssf.set_parallelism(engine.threads);
        ssf.set_recorder(self.recorder.clone());
        for (i, set) in self.sets.iter().enumerate() {
            let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
            ssf.insert(Oid::new(i as u64), &keys).expect("insert");
        }
        self.db.disk().reset_stats();
        ssf
    }

    /// Builds a BSSF over the instance via the bulk loader, with engine
    /// knobs from the environment (see [`EngineConfig::from_env`]).
    pub fn build_bssf(&self, f: u32, m: u32) -> Bssf {
        self.build_bssf_with(f, m, EngineConfig::from_env())
    }

    /// Builds a BSSF with explicit engine knobs.
    pub fn build_bssf_with(&self, f: u32, m: u32, engine: EngineConfig) -> Bssf {
        let cfg = SignatureConfig::new(f, m).expect("valid signature config");
        let name = format!("bssf-f{f}-m{m}");
        let mut bssf = match engine.pool_pages {
            Some(pages) => Bssf::create_tiered(
                Arc::clone(self.db.disk()),
                &name,
                cfg,
                pages,
                engine.pinned_pages.unwrap_or(0),
            )
            .expect("create"),
            None => Bssf::create(self.io(), &name, cfg).expect("create"),
        };
        bssf.set_parallelism(engine.threads);
        bssf.set_recorder(self.recorder.clone());
        let items: Vec<(Oid, Vec<ElementKey>)> = self
            .sets
            .iter()
            .enumerate()
            .map(|(i, set)| {
                (
                    Oid::new(i as u64),
                    set.iter().map(|&e| ElementKey::from(e)).collect(),
                )
            })
            .collect();
        bssf.bulk_load(&items).expect("bulk load");
        self.db.disk().reset_stats();
        bssf
    }

    /// Builds a sharded BSSF query service over the instance, with engine
    /// knobs (shard count, queue depth, scan threads, pool pages) from the
    /// environment. With `SETSIG_SHARDS` unset this is a 1-shard service
    /// whose answers and page charges are identical to [`build_bssf`]
    /// (see [`Self::build_bssf`]) — which is what lets the drift gates run
    /// through the service without loosening a tolerance.
    pub fn build_bssf_service(&self, f: u32, m: u32) -> QueryService<Bssf> {
        self.build_bssf_service_with(f, m, EngineConfig::from_env())
    }

    /// Builds a sharded BSSF query service with explicit engine knobs:
    /// the instance's objects are partitioned by [`shard_of`], each
    /// shard bulk-loads its slice into its own BSSF (named
    /// `bssf-f{f}-m{m}-s{shard}` on the shared accounting disk), and the
    /// shards are wired into a [`QueryService`] worker pool sharing this
    /// instance's recorder.
    pub fn build_bssf_service_with(
        &self,
        f: u32,
        m: u32,
        engine: EngineConfig,
    ) -> QueryService<Bssf> {
        let cfg = SignatureConfig::new(f, m).expect("valid signature config");
        let service_cfg = engine.service_config();
        let mut partitions: Vec<Vec<(Oid, Vec<ElementKey>)>> = vec![Vec::new(); engine.shards];
        for (i, set) in self.sets.iter().enumerate() {
            let oid = Oid::new(i as u64);
            partitions[shard_of(oid, engine.shards)]
                .push((oid, set.iter().map(|&e| ElementKey::from(e)).collect()));
        }
        let facilities: Vec<Bssf> = partitions
            .iter()
            .enumerate()
            .map(|(shard, items)| {
                let name = format!("bssf-f{f}-m{m}-s{shard}");
                let mut bssf = match engine.pool_pages {
                    Some(pages) => Bssf::create_tiered(
                        Arc::clone(self.db.disk()),
                        &name,
                        cfg,
                        pages,
                        engine.pinned_pages.unwrap_or(0),
                    )
                    .expect("create"),
                    None => Bssf::create(self.io(), &name, cfg).expect("create"),
                };
                bssf.set_parallelism(engine.threads);
                bssf.set_recorder(self.recorder.clone());
                bssf.bulk_load(items).expect("bulk load");
                bssf
            })
            .collect();
        self.db.disk().reset_stats();
        QueryService::with_recorder(facilities, service_cfg, self.recorder.clone())
            .expect("valid service config")
    }

    /// Builds a frame-sliced signature file over the instance.
    pub fn build_fssf(&self, f: u32, k: u32, m: u32) -> Fssf {
        let cfg = FssfConfig::new(f, k, m).expect("valid FSSF config");
        let mut fssf =
            Fssf::create(self.io(), &format!("fssf-f{f}-k{k}-m{m}"), cfg).expect("create");
        fssf.set_recorder(self.recorder.clone());
        for (i, set) in self.sets.iter().enumerate() {
            let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
            fssf.insert(Oid::new(i as u64), &keys).expect("insert");
        }
        self.db.disk().reset_stats();
        fssf
    }

    /// Builds a NIX over the instance.
    pub fn build_nix(&self) -> Nix {
        let mut nix = Nix::on_io(self.io(), "nix");
        nix.set_recorder(self.recorder.clone());
        for (i, set) in self.sets.iter().enumerate() {
            let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
            nix.insert(Oid::new(i as u64), &keys).expect("insert");
        }
        self.db.disk().reset_stats();
        nix
    }

    /// Measures one query: `filter` produces the candidates (so smart
    /// strategies plug in), then drop resolution fetches and verifies each
    /// candidate against the object store.
    ///
    /// A `filter` returning a bare [`CandidateSet`] is charged the raw disk
    /// delta, which is only engine-independent for serial, unbuffered
    /// facilities; prefer [`SimDb::measure_facility`] /
    /// [`SimDb::measure_smart`], which charge the *logical* scan pages the
    /// call itself reports.
    pub fn measure(
        &self,
        query: &SetQuery,
        filter: impl FnOnce() -> CoreResult<CandidateSet>,
    ) -> MeasuredQuery {
        self.measure_inner(query, filter)
    }

    /// Measures a plain facility query. The filter stage is charged the
    /// [`ScanStats`] returned by *this very call* — exact even when other
    /// queries run concurrently on the same facility.
    pub fn measure_facility(
        &self,
        facility: &dyn SetAccessFacility,
        query: &SetQuery,
    ) -> MeasuredQuery {
        self.measure_inner(query, || facility.candidates_with_stats(query))
    }

    /// Measures a smart-strategy query (`filter` calls one of the
    /// facility's `candidates_*_smart` methods): like
    /// [`SimDb::measure_facility`], the filter stage is charged the logical
    /// scan pages the call returns. The `_facility` parameter is retained
    /// for call-site symmetry with [`SimDb::measure_facility`].
    pub fn measure_smart<R: FilterOutcome>(
        &self,
        _facility: &dyn SetAccessFacility,
        query: &SetQuery,
        filter: impl FnOnce() -> CoreResult<R>,
    ) -> MeasuredQuery {
        self.measure_inner(query, filter)
    }

    fn measure_inner<R: FilterOutcome>(
        &self,
        query: &SetQuery,
        filter: impl FnOnce() -> CoreResult<R>,
    ) -> MeasuredQuery {
        let disk = self.db.disk();
        let start = disk.snapshot();
        let (candidates, stats) = filter().expect("filter stage").into_parts();
        let after_filter = disk.snapshot();
        // The paper's RC charges the serial protocol's page accesses. A
        // call that returns its own scan stats reports exactly that logical
        // count whatever its engine does physically (thread speculation,
        // pool hits); calls without stats (NIX) run serial and unbuffered,
        // where the disk delta is the same number.
        let filter_pages = stats
            .map(|s| s.logical_pages)
            .unwrap_or_else(|| after_filter.since(start).accesses());
        let source = self
            .db
            .target_source(self.class, "elems")
            .expect("class has elems");
        let report = resolve_drops(query, &candidates, &source).expect("resolution");
        let end = disk.snapshot();
        MeasuredQuery {
            filter_pages,
            object_pages: end.since(after_filter).accesses(),
            candidates: report.candidates,
            false_drops: report.false_drops,
            actual: report.actual.len() as u64,
        }
    }

    /// Averages `trials` measured queries produced by `make_query`.
    pub fn measure_avg(
        &self,
        facility: &dyn SetAccessFacility,
        trials: u32,
        mut make_query: impl FnMut(u32) -> SetQuery,
    ) -> f64 {
        let mut total = 0u64;
        for t in 0..trials {
            let q = make_query(t);
            total += self.measure_facility(facility, &q).total_pages();
        }
        total as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsig_workload::{Cardinality, Distribution};

    fn lookup<'a>(pairs: &'a [(&'a str, &'a str)]) -> impl Fn(&str) -> Option<String> + 'a {
        move |k| {
            pairs
                .iter()
                .find(|(name, _)| *name == k)
                .map(|(_, v)| (*v).to_string())
        }
    }

    #[test]
    fn engine_env_defaults_when_unset_or_blank() {
        assert_eq!(
            EngineConfig::from_lookup(lookup(&[])).unwrap(),
            EngineConfig::serial()
        );
        assert_eq!(
            EngineConfig::from_lookup(lookup(&[
                ("SETSIG_THREADS", ""),
                ("SETSIG_POOL_PAGES", "   "),
            ]))
            .unwrap(),
            EngineConfig::serial()
        );
    }

    #[test]
    fn engine_env_parses_valid_values_with_whitespace() {
        let cfg = EngineConfig::from_lookup(lookup(&[
            ("SETSIG_THREADS", " 8 "),
            ("SETSIG_POOL_PAGES", "256"),
        ]))
        .unwrap();
        assert_eq!(cfg.threads, 8);
        assert_eq!(cfg.pool_pages, Some(256));
    }

    #[test]
    fn engine_env_spells_the_service_layout() {
        let cfg = EngineConfig::from_lookup(lookup(&[
            ("SETSIG_SHARDS", "4"),
            ("SETSIG_QUEUE_DEPTH", " 16 "),
        ]))
        .unwrap();
        assert_eq!(cfg.shards, 4);
        assert_eq!(cfg.queue_depth, 16);
        let svc = cfg.service_config();
        assert_eq!(svc.shards, 4);
        assert_eq!(svc.queue_depth, 16);
        assert!(svc.validate().is_ok());
        // Unset shards means the unsharded, drift-identical layout.
        let default = EngineConfig::from_lookup(lookup(&[])).unwrap();
        assert_eq!(default.shards, 1);
        assert_eq!(default.queue_depth, ServiceConfig::DEFAULT_QUEUE_DEPTH);
        let err = EngineConfig::from_lookup(lookup(&[("SETSIG_SHARDS", "0")])).unwrap_err();
        assert!(err.contains("SETSIG_SHARDS"), "{err}");
    }

    #[test]
    fn engine_env_rejects_zero_negative_and_garbage() {
        for bad in ["0", "-3", "eight", "2.5", "1e3"] {
            let err = EngineConfig::from_lookup(lookup(&[("SETSIG_THREADS", bad)])).unwrap_err();
            assert!(
                err.contains("SETSIG_THREADS") && err.contains(bad),
                "error must name the variable and value: {err}"
            );
        }
        let err = EngineConfig::from_lookup(lookup(&[("SETSIG_POOL_PAGES", "0")])).unwrap_err();
        assert!(err.contains("SETSIG_POOL_PAGES"), "{err}");
    }

    #[test]
    fn engine_env_parses_pinned_tier_above_the_pool() {
        let cfg = EngineConfig::from_lookup(lookup(&[
            ("SETSIG_POOL_PAGES", "256"),
            ("SETSIG_PINNED_PAGES", " 32 "),
        ]))
        .unwrap();
        assert_eq!(cfg.pool_pages, Some(256));
        assert_eq!(cfg.pinned_pages, Some(32));
        // Blank means default (no tier), same as the other knobs.
        let cfg = EngineConfig::from_lookup(lookup(&[
            ("SETSIG_POOL_PAGES", "256"),
            ("SETSIG_PINNED_PAGES", "  "),
        ]))
        .unwrap();
        assert_eq!(cfg.pinned_pages, None);
        for bad in ["0", "-1", "many"] {
            let err = EngineConfig::from_lookup(lookup(&[
                ("SETSIG_POOL_PAGES", "256"),
                ("SETSIG_PINNED_PAGES", bad),
            ]))
            .unwrap_err();
            assert!(err.contains("SETSIG_PINNED_PAGES"), "{err}");
        }
    }

    #[test]
    fn engine_env_pinned_tier_requires_a_pool() {
        let err = EngineConfig::from_lookup(lookup(&[("SETSIG_PINNED_PAGES", "8")])).unwrap_err();
        assert!(
            err.contains("SETSIG_PINNED_PAGES") && err.contains("SETSIG_POOL_PAGES"),
            "error must name both knobs: {err}"
        );
    }

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            n_objects: 500,
            domain: 200,
            cardinality: Cardinality::Fixed(10),
            distribution: Distribution::Uniform,
            seed: 17,
        }
    }

    #[test]
    fn build_creates_consistent_instance() {
        let sim = SimDb::build(small_cfg());
        assert_eq!(sim.sets.len(), 500);
        // Object i's stored set matches the ground truth.
        let obj = sim.db.get_object(Oid::new(42)).unwrap();
        let stored = obj.values[0].as_element_set().unwrap();
        let expected: Vec<ElementKey> = sim.sets[42].iter().map(|&e| ElementKey::from(e)).collect();
        let mut sorted = expected.clone();
        sorted.sort_unstable();
        let mut stored_sorted = stored.clone();
        stored_sorted.sort_unstable();
        assert_eq!(stored_sorted, sorted);
    }

    #[test]
    fn all_three_facilities_agree_on_actual_answers() {
        let sim = SimDb::build(small_cfg());
        let ssf = sim.build_ssf(128, 2);
        let bssf = sim.build_bssf(128, 2);
        let nix = sim.build_nix();

        let mut qg = sim.query_gen(3);
        for trial in 0..5u64 {
            // Force hits by querying subsets of real targets.
            let target = &sim.sets[(trial * 97 % 500) as usize];
            let q = SetQuery::has_subset(
                qg.subset_of_target(target, 3)
                    .into_iter()
                    .map(ElementKey::from)
                    .collect(),
            );
            let a = sim.measure_facility(&ssf, &q);
            let b = sim.measure_facility(&bssf, &q);
            let c = sim.measure_facility(&nix, &q);
            assert_eq!(a.actual, b.actual, "trial {trial}");
            assert_eq!(b.actual, c.actual, "trial {trial}");
            assert!(a.actual >= 1, "forced hit must match");
            assert_eq!(c.false_drops, 0, "NIX ⊇ is exact");
        }
    }

    #[test]
    fn measured_costs_are_positive_and_split() {
        let sim = SimDb::build(small_cfg());
        let bssf = sim.build_bssf(128, 2);
        let q = SetQuery::has_subset(vec![ElementKey::from(7u64)]);
        let m = sim.measure_facility(&bssf, &q);
        assert!(m.filter_pages > 0);
        assert!(m.actual + m.false_drops == m.candidates);
        assert_eq!(m.total_pages(), m.filter_pages + m.object_pages);
    }

    #[test]
    fn engine_config_variants_measure_identically() {
        let sim = SimDb::build(small_cfg());
        let serial = sim.build_bssf_with(128, 2, EngineConfig::serial());
        let parallel = sim.build_bssf_with(
            128,
            2,
            EngineConfig {
                threads: 4,
                ..EngineConfig::serial()
            },
        );
        let mut qg = sim.query_gen(9);
        for trial in 0..4u64 {
            let target = &sim.sets[(trial * 131 % 500) as usize];
            let q = SetQuery::has_subset(
                qg.subset_of_target(target, 3)
                    .into_iter()
                    .map(ElementKey::from)
                    .collect(),
            );
            let (a, sa) = serial.candidates_with_stats(&q).unwrap();
            let (b, sb) = parallel.candidates_with_stats(&q).unwrap();
            assert_eq!(a, b, "trial {trial}");
            assert_eq!(
                sa.expect("bssf reports stats").logical_pages,
                sb.expect("bssf reports stats").logical_pages,
                "trial {trial}"
            );
            // The exhibits' measured RC must not depend on the engine:
            // measure_facility charges the logical scan pages, not the
            // (speculation- and cache-dependent) physical disk delta.
            let ms = sim.measure_facility(&serial, &q);
            let mp = sim.measure_facility(&parallel, &q);
            assert_eq!(ms.filter_pages, mp.filter_pages, "trial {trial}");
            assert_eq!(ms.total_pages(), mp.total_pages(), "trial {trial}");
        }
        // A pooled engine still answers identically.
        let cached = sim.build_ssf_with(
            128,
            2,
            EngineConfig {
                threads: 2,
                pool_pages: Some(64),
                ..EngineConfig::serial()
            },
        );
        let plain = sim.build_ssf_with(128, 2, EngineConfig::serial());
        let q = SetQuery::has_subset(vec![ElementKey::from(7u64)]);
        assert_eq!(
            plain.candidates(&q).unwrap(),
            cached.candidates(&q).unwrap()
        );
        assert!(cached.cache_stats().is_some());
    }

    #[test]
    fn pinned_tier_engine_answers_identically_and_reports_pinned_hits() {
        let sim = SimDb::build(small_cfg());
        let serial = sim.build_bssf_with(128, 2, EngineConfig::serial());
        let tiered = sim.build_bssf_with(
            128,
            2,
            EngineConfig {
                pool_pages: Some(64),
                pinned_pages: Some(16),
                ..EngineConfig::serial()
            },
        );
        let q = SetQuery::has_subset(vec![ElementKey::from(7u64)]);
        // Repeat the query: pass 1 misses, pass 2 promotes the slice pages
        // into the pinned tier, pass 3 must hit it.
        for pass in 0..3 {
            assert_eq!(
                serial.candidates(&q).unwrap(),
                tiered.candidates(&q).unwrap(),
                "pass {pass}"
            );
            // Logical page charges are engine-independent (drift gate).
            let ms = sim.measure_facility(&serial, &q);
            let mt = sim.measure_facility(&tiered, &q);
            assert_eq!(ms.filter_pages, mt.filter_pages, "pass {pass}");
            assert_eq!(ms.total_pages(), mt.total_pages(), "pass {pass}");
        }
        let stats = tiered.cache_stats().expect("tiered engine reports stats");
        assert!(
            stats.pinned_hits > 0,
            "repeated scans must land in the pinned tier: {stats:?}"
        );
        assert!(stats.misses > 0, "first pass read from disk: {stats:?}");
    }

    #[test]
    fn measure_avg_averages() {
        let sim = SimDb::build(small_cfg());
        let nix = sim.build_nix();
        let avg = sim.measure_avg(&nix, 4, |t| {
            SetQuery::has_subset(vec![ElementKey::from(t as u64)])
        });
        assert!(avg > 0.0);
    }
}
