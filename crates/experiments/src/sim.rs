//! Simulated database instances: the measured half of every exhibit.
//!
//! A [`SimDb`] is a full paper-style database — object store with `N`
//! synthetic objects on the accounting disk — from which SSF, BSSF and NIX
//! facilities can be built (sharing the same disk) and queries measured in
//! actual page accesses.

use setsig_core::{
    resolve_drops, Bssf, CandidateSet, ElementKey, Fssf, FssfConfig, Oid,
    Result as CoreResult, SetAccessFacility, SetQuery, SignatureConfig, Ssf,
};
use setsig_nix::Nix;
use setsig_oodb::{AttrType, ClassDef, ClassId, Database, Value};
use setsig_pagestore::PageIo;
use setsig_workload::{QueryGen, SetGenerator, WorkloadConfig};
use std::sync::Arc;

/// Measured cost breakdown of one query through one facility.
#[derive(Debug, Clone, Copy, Default)]
pub struct MeasuredQuery {
    /// Pages touched by the filtering stage (signature scan / slice reads /
    /// index look-ups, including the OID file).
    pub filter_pages: u64,
    /// Pages touched fetching candidate objects during drop resolution.
    pub object_pages: u64,
    /// Candidates produced by the filter (drops).
    pub candidates: u64,
    /// Candidates that failed verification (false drops).
    pub false_drops: u64,
    /// Qualifying objects.
    pub actual: u64,
}

impl MeasuredQuery {
    /// Total measured retrieval cost — the counterpart of the paper's `RC`.
    pub fn total_pages(&self) -> u64 {
        self.filter_pages + self.object_pages
    }
}

/// A synthetic database instance: `N` objects, each with one indexed set
/// attribute drawn per the workload config.
pub struct SimDb {
    /// The database (object store + accounting disk).
    pub db: Database,
    /// The synthetic class.
    pub class: ClassId,
    /// Ground-truth target sets, indexed by OID.
    pub sets: Vec<Vec<u64>>,
    /// The workload that generated the instance.
    pub cfg: WorkloadConfig,
}

impl SimDb {
    /// Builds the instance: generates all target sets and stores them as
    /// objects (OID `i` holds `sets[i]`).
    pub fn build(cfg: WorkloadConfig) -> Self {
        let sets = SetGenerator::new(cfg).generate_all();
        let mut db = Database::in_memory();
        let class = db
            .define_class(ClassDef::new(
                "Synthetic",
                vec![("elems", AttrType::set_of(AttrType::Int))],
            ))
            .expect("fresh database");
        for set in &sets {
            let value = Value::Set(set.iter().map(|&e| Value::Int(e as i64)).collect());
            db.insert_object(class, vec![value]).expect("schema-valid insert");
        }
        db.disk().reset_stats();
        SimDb { db, class, sets, cfg }
    }

    /// Elements of target `oid` as query keys.
    pub fn target_keys(&self, oid: u64) -> Vec<ElementKey> {
        self.sets[oid as usize].iter().map(|&e| ElementKey::from(e)).collect()
    }

    /// A deterministic query generator over this instance's domain.
    pub fn query_gen(&self, seed: u64) -> QueryGen {
        QueryGen::new(self.cfg.domain, seed)
    }

    fn io(&self) -> Arc<dyn PageIo> {
        Arc::clone(self.db.disk()) as Arc<dyn PageIo>
    }

    /// Builds an SSF over the instance (inserting every target signature).
    pub fn build_ssf(&self, f: u32, m: u32) -> Ssf {
        let cfg = SignatureConfig::new(f, m).expect("valid signature config");
        let mut ssf = Ssf::create(self.io(), &format!("ssf-f{f}-m{m}"), cfg).expect("fits page");
        for (i, set) in self.sets.iter().enumerate() {
            let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
            ssf.insert(Oid::new(i as u64), &keys).expect("insert");
        }
        self.db.disk().reset_stats();
        ssf
    }

    /// Builds a BSSF over the instance via the bulk loader.
    pub fn build_bssf(&self, f: u32, m: u32) -> Bssf {
        let cfg = SignatureConfig::new(f, m).expect("valid signature config");
        let mut bssf = Bssf::create(self.io(), &format!("bssf-f{f}-m{m}"), cfg).expect("create");
        let items: Vec<(Oid, Vec<ElementKey>)> = self
            .sets
            .iter()
            .enumerate()
            .map(|(i, set)| {
                (Oid::new(i as u64), set.iter().map(|&e| ElementKey::from(e)).collect())
            })
            .collect();
        bssf.bulk_load(&items).expect("bulk load");
        self.db.disk().reset_stats();
        bssf
    }

    /// Builds a frame-sliced signature file over the instance.
    pub fn build_fssf(&self, f: u32, k: u32, m: u32) -> Fssf {
        let cfg = FssfConfig::new(f, k, m).expect("valid FSSF config");
        let mut fssf =
            Fssf::create(self.io(), &format!("fssf-f{f}-k{k}-m{m}"), cfg).expect("create");
        for (i, set) in self.sets.iter().enumerate() {
            let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
            fssf.insert(Oid::new(i as u64), &keys).expect("insert");
        }
        self.db.disk().reset_stats();
        fssf
    }

    /// Builds a NIX over the instance.
    pub fn build_nix(&self) -> Nix {
        let mut nix = Nix::on_io(self.io(), "nix");
        for (i, set) in self.sets.iter().enumerate() {
            let keys: Vec<ElementKey> = set.iter().map(|&e| ElementKey::from(e)).collect();
            nix.insert(Oid::new(i as u64), &keys).expect("insert");
        }
        self.db.disk().reset_stats();
        nix
    }

    /// Measures one query: `filter` produces the candidates (so smart
    /// strategies plug in), then drop resolution fetches and verifies each
    /// candidate against the object store.
    pub fn measure(
        &self,
        query: &SetQuery,
        filter: impl FnOnce() -> CoreResult<CandidateSet>,
    ) -> MeasuredQuery {
        let disk = self.db.disk();
        let start = disk.snapshot();
        let candidates = filter().expect("filter stage");
        let after_filter = disk.snapshot();
        let source = self
            .db
            .target_source(self.class, "elems")
            .expect("class has elems");
        let report = resolve_drops(query, &candidates, &source).expect("resolution");
        let end = disk.snapshot();
        MeasuredQuery {
            filter_pages: after_filter.since(start).accesses(),
            object_pages: end.since(after_filter).accesses(),
            candidates: report.candidates,
            false_drops: report.false_drops,
            actual: report.actual.len() as u64,
        }
    }

    /// Measures a plain facility query.
    pub fn measure_facility(&self, facility: &dyn SetAccessFacility, query: &SetQuery) -> MeasuredQuery {
        self.measure(query, || facility.candidates(query))
    }

    /// Averages `trials` measured queries produced by `make_query`.
    pub fn measure_avg(
        &self,
        facility: &dyn SetAccessFacility,
        trials: u32,
        mut make_query: impl FnMut(u32) -> SetQuery,
    ) -> f64 {
        let mut total = 0u64;
        for t in 0..trials {
            let q = make_query(t);
            total += self.measure_facility(facility, &q).total_pages();
        }
        total as f64 / trials as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use setsig_workload::{Cardinality, Distribution};

    fn small_cfg() -> WorkloadConfig {
        WorkloadConfig {
            n_objects: 500,
            domain: 200,
            cardinality: Cardinality::Fixed(10),
            distribution: Distribution::Uniform,
            seed: 17,
        }
    }

    #[test]
    fn build_creates_consistent_instance() {
        let sim = SimDb::build(small_cfg());
        assert_eq!(sim.sets.len(), 500);
        // Object i's stored set matches the ground truth.
        let obj = sim.db.get_object(Oid::new(42)).unwrap();
        let stored = obj.values[0].as_element_set().unwrap();
        let expected: Vec<ElementKey> =
            sim.sets[42].iter().map(|&e| ElementKey::from(e)).collect();
        let mut sorted = expected.clone();
        sorted.sort_unstable();
        let mut stored_sorted = stored.clone();
        stored_sorted.sort_unstable();
        assert_eq!(stored_sorted, sorted);
    }

    #[test]
    fn all_three_facilities_agree_on_actual_answers() {
        let sim = SimDb::build(small_cfg());
        let ssf = sim.build_ssf(128, 2);
        let bssf = sim.build_bssf(128, 2);
        let nix = sim.build_nix();

        let mut qg = sim.query_gen(3);
        for trial in 0..5u64 {
            // Force hits by querying subsets of real targets.
            let target = &sim.sets[(trial * 97 % 500) as usize];
            let q = SetQuery::has_subset(
                qg.subset_of_target(target, 3).into_iter().map(ElementKey::from).collect(),
            );
            let a = sim.measure_facility(&ssf, &q);
            let b = sim.measure_facility(&bssf, &q);
            let c = sim.measure_facility(&nix, &q);
            assert_eq!(a.actual, b.actual, "trial {trial}");
            assert_eq!(b.actual, c.actual, "trial {trial}");
            assert!(a.actual >= 1, "forced hit must match");
            assert_eq!(c.false_drops, 0, "NIX ⊇ is exact");
        }
    }

    #[test]
    fn measured_costs_are_positive_and_split() {
        let sim = SimDb::build(small_cfg());
        let bssf = sim.build_bssf(128, 2);
        let q = SetQuery::has_subset(vec![ElementKey::from(7u64)]);
        let m = sim.measure_facility(&bssf, &q);
        assert!(m.filter_pages > 0);
        assert!(m.actual + m.false_drops == m.candidates);
        assert_eq!(m.total_pages(), m.filter_pages + m.object_pages);
    }

    #[test]
    fn measure_avg_averages() {
        let sim = SimDb::build(small_cfg());
        let nix = sim.build_nix();
        let avg = sim.measure_avg(&nix, 4, |t| {
            SetQuery::has_subset(vec![ElementKey::from(t as u64)])
        });
        assert!(avg > 0.0);
    }
}
