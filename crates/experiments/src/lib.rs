//! # setsig-experiments — regenerating every table and figure of the paper
//!
//! One module per exhibit of Ishikawa, Kitagawa & Ohbo (SIGMOD 1993). Each
//! module produces an [`Exhibit`]: the analytic series straight from
//! `setsig-costmodel` (the paper is analytical, so these ARE the paper's
//! curves), optionally cross-checked by **measured** series obtained by
//! running the real SSF / BSSF / NIX implementations on the accounting disk
//! simulator.
//!
//! The `repro` binary drives everything:
//!
//! ```text
//! repro all                 # every exhibit, analytic only
//! repro all --simulate      # add measured page counts from the real code
//! repro fig5 --simulate     # one exhibit
//! repro validate            # false-drop formulas vs. measured rates
//! ```
//!
//! CSV copies of every exhibit land in `results/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod contracts;
pub mod drift;
pub mod exhibits;
mod report;
mod sim;

pub use report::Exhibit;
pub use sim::{EngineConfig, MeasuredQuery, SimDb};
