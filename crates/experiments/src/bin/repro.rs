//! `repro` — regenerate the tables and figures of Ishikawa, Kitagawa & Ohbo
//! (SIGMOD 1993).
//!
//! ```text
//! repro all [--simulate] [--scale K] [--trials T] [--out DIR]
//! repro fig4 fig5 … table7 validate appc varcard
//! repro list
//! ```

use setsig_experiments::exhibits::{self, Options, ALL};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: repro <exhibit…|all|list> [--simulate] [--scale K] [--trials T] [--out DIR]

exhibits: {}

  --simulate   also run the real SSF/BSSF/NIX implementations and report
               measured page accesses next to the analytic columns
  --scale K    divide N and V by K for faster simulation (default 1 = the
               paper's 32,000 objects; analytic columns follow the scale)
  --trials T   queries averaged per measured point (default 3)
  --out DIR    directory for CSV copies (default results/)",
        ALL.join(" ")
    );
    std::process::exit(2);
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        usage();
    }
    let mut opts = Options::default();
    let mut out_dir = PathBuf::from("results");
    let mut wanted: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--simulate" => opts.simulate = true,
            "--scale" => {
                opts.scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--trials" => {
                opts.trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            "--help" | "-h" => usage(),
            "list" => {
                for id in ALL {
                    println!("{id}");
                }
                return;
            }
            "all" => wanted.extend(ALL.iter().map(|s| s.to_string())),
            other if other.starts_with("--") => usage(),
            other => wanted.push(other.to_owned()),
        }
    }
    if wanted.is_empty() {
        usage();
    }

    println!(
        "setsig repro — Ishikawa, Kitagawa & Ohbo, SIGMOD 1993 (simulate: {}, scale: 1/{}, trials: {})\n",
        opts.simulate, opts.scale, opts.trials
    );
    for id in wanted {
        match exhibits::run(&id, &opts) {
            Some(exhibit) => {
                exhibit.print();
                if let Err(e) = exhibit.write_csv(&out_dir) {
                    eprintln!(
                        "warning: failed to write {}/{}.csv: {e}",
                        out_dir.display(),
                        id
                    );
                }
                if let Err(e) = exhibit.write_artifacts(&out_dir) {
                    eprintln!(
                        "warning: failed to write {} observability artifacts: {e}",
                        id
                    );
                }
            }
            None => {
                eprintln!("unknown exhibit {id:?} — run `repro list`");
                std::process::exit(2);
            }
        }
    }
    println!("CSV copies written to {}/", out_dir.display());
}
