//! `report-metrics` — run the drift checkpoints (measured page counts vs.
//! the analytical cost model) and print the observability summary.
//!
//! ```text
//! report-metrics [--scale K] [--trials T] [--out DIR]
//! ```
//!
//! Exits nonzero when any checkpoint drifts beyond tolerance, so CI can
//! gate on it. The drift table, the metrics snapshot and the JSONL query
//! trace of the run land in `--out` (default `results/`).

use setsig_experiments::{contracts, drift};
use std::path::PathBuf;

fn usage() -> ! {
    eprintln!(
        "usage: report-metrics [--scale K] [--trials T] [--out DIR]

  --scale K    divide N and V by K (default 64: a quick CI-sized instance)
  --trials T   queries averaged per checkpoint (default 2)
  --out DIR    directory for the drift table and trace artifacts (default results/)"
    );
    std::process::exit(2);
}

fn main() {
    let mut scale = 64u64;
    let mut trials = 2u32;
    let mut out_dir = PathBuf::from("results");
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                scale = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--trials" => {
                trials = it
                    .next()
                    .and_then(|v| v.parse().ok())
                    .filter(|&v| v >= 1)
                    .unwrap_or_else(|| usage())
            }
            "--out" => out_dir = PathBuf::from(it.next().unwrap_or_else(|| usage())),
            _ => usage(),
        }
    }

    let report = drift::run(scale, trials);
    let ex = report.exhibit();
    ex.print();
    if let Err(e) = ex.write_csv(&out_dir) {
        eprintln!("warning: failed to write drift.csv: {e}");
    }
    if let Err(e) = ex.write_artifacts(&out_dir) {
        eprintln!("warning: failed to write drift artifacts: {e}");
    }

    let mut failed = false;
    let drifted = report.drifted();
    if drifted.is_empty() {
        println!(
            "drift: all {} checkpoints within {}x ± {} pages",
            report.points.len(),
            drift::DriftReport::TOLERANCE,
            drift::DriftReport::SLACK
        );
    } else {
        failed = true;
        eprintln!(
            "drift: {}/{} checkpoints diverged from the cost model:",
            drifted.len(),
            report.points.len()
        );
        for p in drifted {
            eprintln!(
                "  {} {} D_q={}: model {:.1} pages, measured {:.1}",
                p.exhibit, p.series, p.d_q, p.model, p.measured
            );
        }
    }

    // The static `// COST:` contracts, re-checked against the disk: every
    // measured filter stage must stay at or below its committed bound.
    let checks = contracts::check(scale, trials);
    let table = contracts::render(&checks);
    if let Err(e) = std::fs::write(out_dir.join("drift.contracts.txt"), &table) {
        eprintln!("warning: failed to write drift.contracts.txt: {e}");
    }
    let over: Vec<_> = checks.iter().filter(|c| !c.ok()).collect();
    if over.is_empty() {
        println!(
            "contracts: all {} measured series within their static page bounds",
            checks.len()
        );
    } else {
        failed = true;
        eprintln!(
            "contracts: {}/{} measured series exceed their static page bounds:",
            over.len(),
            checks.len()
        );
        eprint!("{table}");
    }

    if failed {
        std::process::exit(1);
    }
}
