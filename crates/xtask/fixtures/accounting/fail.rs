//! Accounting-lint FAIL fixture: raw page I/O outside any accounting
//! wrapper. Every marked line must produce a diagnostic.

use setsig_pagestore::{Disk, FileId, Page, PageIo};

/// A scan that bypasses the accounting wrappers entirely.
pub fn rogue_scan(disk: &Disk, f: FileId) -> u64 {
    let page = disk.read_page(f, 0); //~ ERROR accounting
    let _ = disk.write_page(f, 0, &Page::zeroed()); //~ ERROR accounting
    if page.is_ok() {
        1
    } else {
        0
    }
}

/// Fully-qualified calls are calls too.
pub fn qualified(disk: &Disk, f: FileId) {
    let _ = PageIo::read_page(disk, f, 1); //~ ERROR accounting
}
