//! Accounting-lint PASS fixture: I/O routed through the accounting
//! wrappers, plus every shape that must NOT fire — definitions, comments,
//! strings, test modules, and one allowlisted raw site.

use setsig_pagestore::{Disk, FileId, Page, PagedFile};

/// Reads through the accounting wrapper: clean.
pub fn wrapped_scan(file: &PagedFile) -> u64 {
    let _ = file.read(0);
    let _ = file.write(0, &Page::zeroed());
    1
}

/// A definition is not a call: clean. So is `read_page` in this doc
/// comment, or `x.read_page(…)` in the string below.
pub trait MyIo {
    /// Declares, does not call.
    fn read_page(&self, n: u32);
}

/// Mentions of raw I/O in non-code positions never fire.
pub fn chatter() -> &'static str {
    // .read_page( in a comment is fine
    ".read_page("
}

/// Calls raw I/O but is carved out by the self-test allowlist.
pub fn allowlisted_site(disk: &Disk, f: FileId) {
    let _ = disk.read_page(f, 0);
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests may assert on raw counters freely.
    fn in_tests(disk: &Disk, f: FileId) {
        let _ = disk.read_page(f, 0);
        let _ = disk.write_page(f, 0, &Page::zeroed());
    }
}
