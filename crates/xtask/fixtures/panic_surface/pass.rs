//! Panic-surface PASS fixture: error-returning code, assertions, non-panic
//! `unwrap_*` variants, doc comments like `x.unwrap()`, test modules, and
//! one allowlisted site.

/// Returns errors instead of panicking; assertions are encouraged.
pub fn good(x: Option<u32>) -> Result<u32, String> {
    assert!(x.is_none() || x >= Some(0), "invariant documented here");
    debug_assert_eq!(1 + 1, 2);
    let v = x.unwrap_or(3);
    let w = x.unwrap_or_else(|| 4);
    let d = x.unwrap_or_default();
    x.ok_or_else(|| "missing".to_string())
        .map(|y| y + v + w + d)
}

/// Allowlisted as `justified` by the self-test harness.
pub fn justified(x: Option<u32>) -> u32 {
    x.unwrap()
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_panic_freely() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        v.expect("present");
        if v.is_none() {
            panic!("fine in tests");
        }
    }
}
