//! Panic-surface FAIL fixture: every panicking shape the lint must catch
//! in library code.

/// Unwraps and expects.
pub fn methods(x: Option<u32>) -> u32 {
    let a = x.unwrap(); //~ ERROR panic-surface
    let b = x.expect("present"); //~ ERROR panic-surface
    a + b
}

/// Macro panics.
pub fn macros(a: u32) -> u32 {
    if a > 100 {
        panic!("too big"); //~ ERROR panic-surface
    }
    match a {
        0 => unreachable!(), //~ ERROR panic-surface
        1 => todo!(), //~ ERROR panic-surface
        2 => unimplemented!(), //~ ERROR panic-surface
        n => n,
    }
}
