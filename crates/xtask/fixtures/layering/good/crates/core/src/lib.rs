//! Layering PASS fixture: downward references only.

use setsig_pagestore::Disk;

/// Storage-layer code stays in the storage layer.
pub fn f(_d: &Disk) {}
