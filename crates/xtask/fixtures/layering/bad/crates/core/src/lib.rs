//! Layering FAIL fixture: the source reference mirrors the manifest edge.

use setsig_experiments::SimDb; //~ ERROR layering
use setsig_pagestore::Disk;

/// Build code consulting workload knowledge would break the protocol.
pub fn f(_d: &Disk, _s: &SimDb) {}
