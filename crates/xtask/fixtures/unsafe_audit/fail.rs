//! Unsafe-audit FAIL fixture: `unsafe` with no `// SAFETY:` comment in
//! range.

/// An unsafe fn whose docs never state the contract.
pub unsafe fn no_comment(p: *const u8) -> u8 { //~ ERROR unsafe-audit
    *p
}

/// A block with a comment that is not a SAFETY comment.
pub fn block() -> u8 {
    let x = [1u8, 2];
    // Reads in bounds, trust me.
    unsafe { *x.as_ptr() } //~ ERROR unsafe-audit
}
