//! Unsafe-audit PASS fixture: every `unsafe` carries a `// SAFETY:`
//! comment on the same line or within the three lines above it.

/// Reads the first byte of `p`.
///
/// # Safety
/// `p` must point at a readable byte.
// SAFETY: the caller contract above guarantees `p` is valid.
pub unsafe fn commented(p: *const u8) -> u8 {
    // SAFETY: the function's contract guarantees `p` points at a
    // readable byte.
    unsafe { *p }
}

/// Same-line comments count too.
pub fn inline() -> u8 {
    let x = [7u8];
    unsafe { *x.as_ptr() } // SAFETY: x is a live local array, in bounds.
}
