//! A crate root fenced with `deny`: enough for `pagestore`/`core` (which
//! may opt in per site), not for anyone else.

#![deny(unsafe_code)]

/// Safe, revocably.
pub fn f() {}
