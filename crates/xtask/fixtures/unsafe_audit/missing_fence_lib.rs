//! A crate root with no `unsafe_code` fence attribute: one diagnostic.

/// Nothing unsafe here, but the crate never says so.
pub fn f() {}
