//! A properly fenced crate root: clean for every crate.

#![forbid(unsafe_code)]

/// Safe and says so.
pub fn f() {}
