//! cost PASS fixture: tight contracts at every level — the page
//! primitive, a linear scan, a composed degree-2 pipeline, a contracted
//! hot-path root, a pure kernel root that owes nothing, an uncontracted
//! entry that only enters a composite contract, and an allowlisted
//! maintenance read. Nothing here may produce a diagnostic.

/// The page-primitive wrapper: one page per call, degree 0.
// COST: 1 pages
pub fn read_one(p: u32) -> u32 {
    read_page(p);
    p / 2
}

/// A linear scan: one lexical loop over a degree-0 contract.
// COST: npages pages
pub fn row_scan(npages: u32) {
    for p in 0..npages {
        read_one(p);
    }
}

/// One slice is `pages_per_slice` sequential page reads…
// COST: pages_per_slice pages
pub fn read_slice(pages_per_slice: u32) {
    for p in 0..pages_per_slice {
        read_page(p);
    }
}

/// …and the pipeline loops slices over it: 1 lexical level + the
/// callee's declared degree 1 = exactly the declared degree 2.
// COST: slices * pages_per_slice pages
pub fn and_pipeline(ones: &[u32]) {
    for j in ones {
        read_slice(*j);
    }
}

/// A contracted hot-path root: the registry is satisfied, and the
/// overflow-chain `while` counts one opaque level within `height + chain`.
// HOT-PATH: fixture.probe
// COST: height + chain pages
pub fn probe(mut link: u32) -> u32 {
    while link != 0 {
        link = read_one(link);
    }
    link
}

/// A pure compute kernel on the hot path owes no contract: no page I/O,
/// no registry entry.
// HOT-PATH: fixture.kernel
pub fn kernel(a: u64, b: u64) -> u64 {
    a & b
}

/// A work-partitioning spawn loop multiplies nothing: the annotated
/// `for` distributes disjoint slice claims across workers, so the claim
/// loop under it is the only extra level and degree 2 still holds.
// COST: slices * pages_per_slice pages
pub fn and_parallel(workers: u32, ones: &[u32]) {
    // COST-SPLIT: slices
    for _ in 0..workers {
        loop {
            read_slice(8);
        }
    }
}

/// An uncontracted entry point that only *enters* a composite (degree
/// ≥ 1) contract is sanctioned: the callee's bound accounts the pages.
pub fn service_entry(ones: &[u32]) {
    and_pipeline(ones);
}

/// A maintenance read justified in the allowlist
/// (`fixture.rs::compact` in the self-test's cost allowlist).
pub fn compact(npages: u32) {
    for p in 0..npages {
        read_page(p);
    }
}

/// Prose may mention the grammar — `COST: <expr> pages` — without
/// becoming an annotation, and test code is invisible to the analysis.
#[cfg(test)]
mod tests {
    use super::*;

    fn tests_read_freely() {
        read_page(0);
        assert_eq!(kernel(6, 3), 2);
    }
}
