//! cost FAIL fixture: every contract error class — malformed shapes, a
//! hot-path root that reads pages with no declared bound, loop nests
//! deeper than the declared degree (directly and through contract
//! composition), and page I/O outside every contracted root. Every
//! marked line must produce a diagnostic.

/// A hot-path root that reaches page I/O but declares no cost: the root
/// registry demands a contract, and its read is outside every contract.
// HOT-PATH: fixture.scan
pub fn scan(npages: u32) { //~ ERROR cost: missing-contract
    for p in 0..npages {
        read_page(p); //~ ERROR cost: uncontracted-io
    }
}

/// Declared linear, actually quadratic: the classic superlinear blow-up
/// the lint exists for.
// COST: rows pages
pub fn nested(rows: u32, cols: u32) { //~ ERROR cost: superlinear-io
    for r in 0..rows {
        for c in 0..cols {
            read_page(r + c);
        }
    }
}

/// The slice read promises one symbolic level…
// COST: pages_per_slice pages
pub fn read_slice(pages_per_slice: u32) {
    for p in 0..pages_per_slice {
        read_page(p);
    }
}

/// …so looping over it composes to degree 2, more than the declared
/// degree 1: contract composition is checked, not just lexical nesting.
// COST: slices pages
pub fn and_loop(slices: u32) { //~ ERROR cost: superlinear-io
    for s in 0..slices {
        read_slice(s);
    }
}

/// An unconctracted maintenance chain: the direct read is flagged where
/// it happens, and the caller's entry into the reading helper too.
fn maintenance() {
    rebuild(); //~ ERROR cost: uncontracted-io
}

fn rebuild() {
    read_page(0); //~ ERROR cost: uncontracted-io
}

/// Malformed annotations, one per shape.
/* COST: 3 sheep */ pub fn wrong_unit() {} //~ ERROR cost: unit

/* COST: slices + pages */ pub fn bad_expr() {} //~ ERROR cost: cannot parse

pub struct NotAFn;
// COST: 1 pages //~ ERROR cost: attaches to no fn
pub const NOT_A_FN: u32 = 1;
