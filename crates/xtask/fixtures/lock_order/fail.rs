//! lock-order fail fixture: one marked line per error code (cycles have
//! their own fixture). Markers pin both the position and the code word
//! in the message.

use std::sync::Mutex;

struct Unannotated {
    plain: Mutex<u32>, //~ ERROR lock-order: unannotated
}

struct Malformed {
    // LOCK-ORDER: fix.bad name!
    oops: Mutex<u32>, //~ ERROR lock-order: malformed
}

struct Dup {
    // LOCK-ORDER: fix.dup
    first: Mutex<u32>,
    // LOCK-ORDER: fix.dup
    second: Mutex<u32>, //~ ERROR lock-order: duplicate-name
}

struct OwnerA {
    // LOCK-ORDER: fix.a1
    state: Mutex<u32>,
}

struct OwnerB {
    // LOCK-ORDER: fix.a2
    state: Mutex<u32>, //~ ERROR lock-order: ambiguous-field
}

struct Orphan {
    // LOCK-ORDER: fix.orphan < fix.missing
    child: Mutex<u32>, //~ ERROR lock-order: unknown-parent
}

struct UnderLeaf {
    // LOCK-ORDER: fix.leaf leaf
    terminal: Mutex<u32>,
    // LOCK-ORDER: fix.below < fix.leaf
    below: Mutex<u32>, //~ ERROR lock-order: leaf-parent
}

impl UnderLeaf {
    fn acquire_under_leaf(&self) {
        let t = self.terminal.lock();
        let b = self.below.lock(); //~ ERROR lock-order: order-violation
        let _ = (t, b);
    }
}

struct Engine {
    // LOCK-ORDER: fix.engine
    engine: Mutex<u32>,
    // LOCK-ORDER: fix.stats < fix.engine
    stats: Mutex<u32>,
}

impl Engine {
    fn against_declared_order(&self) {
        let s = self.stats.lock();
        let e = self.engine.lock(); //~ ERROR lock-order: order-violation
        let _ = (s, e);
    }

    fn self_deadlock(&self) {
        let g = self.engine.lock();
        let h = self.engine.lock(); //~ ERROR lock-order: order-violation
        let _ = (g, h);
    }
}

fn invisible_lock(handle: &std::io::Stdout) {
    let g = handle.lock(); //~ ERROR lock-order: unattributed
    let _ = g;
}
