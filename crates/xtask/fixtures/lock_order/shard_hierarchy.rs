//! lock-order fixture for the query-service shard hierarchy: the
//! admission queue ranks above the per-shard facility locks (a worker
//! may touch a shard after queue bookkeeping, and the lexical ranges of
//! the two guards may overlap), with the per-query pending latch as the
//! leaf. Clean worker/writer paths pass; inverting either edge is an
//! order violation.

use std::sync::{Mutex, RwLock};

struct ServicePool {
    // LOCK-ORDER: svc.admission
    admission: Mutex<u32>,
    // LOCK-ORDER: svc.shard < svc.admission
    shard: RwLock<u32>,
    // LOCK-ORDER: svc.pending < svc.shard leaf
    pending: Mutex<u32>,
}

impl ServicePool {
    fn worker_pops_then_scans(&self) {
        let q = self.admission.lock();
        let s = self.shard.read();
        drop(s);
        drop(q);
    }

    fn writer_updates_then_completes(&self) {
        let s = self.shard.write();
        let p = self.pending.lock();
        let _ = (s, p);
    }

    fn admission_to_leaf_transitively(&self) {
        let q = self.admission.lock();
        let p = self.pending.lock();
        let _ = (q, p);
    }

    fn queue_bookkeeping_under_a_shard_guard(&self) {
        let s = self.shard.read();
        let q = self.admission.lock(); //~ ERROR lock-order: order-violation
        let _ = (s, q);
    }

    fn shard_under_the_pending_leaf(&self) {
        let p = self.pending.lock();
        let s = self.shard.write(); //~ ERROR lock-order: order-violation
        let _ = (p, s);
    }
}
