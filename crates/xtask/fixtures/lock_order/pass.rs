//! lock-order pass fixture: a three-level hierarchy (catalog over pool
//! over disk) with legal direct and transitive nesting, RwLock
//! acquisitions, and one deliberate violation that the self-test
//! allowlist (`…::allowlisted_site`) suppresses.

use std::sync::{Mutex, RwLock};

struct Facility {
    // LOCK-ORDER: fix.catalog
    catalog: RwLock<u32>,
    // LOCK-ORDER: fix.pool < fix.catalog
    pool: Mutex<u32>,
    // LOCK-ORDER: fix.disk < fix.pool leaf
    disk: Mutex<u32>,
}

impl Facility {
    fn legal_direct_nesting(&self) {
        let c = self.catalog.read();
        let p = self.pool.lock();
        let d = self.disk.lock();
        drop(d);
        drop(p);
        drop(c);
    }

    fn legal_transitive_nesting(&self) {
        let c = self.catalog.write();
        let d = self.disk.lock();
        let _ = (c, d);
    }

    fn allowlisted_site(&self) {
        // Backwards (pool under leaf disk) — justified via the allowlist.
        let d = self.disk.lock();
        let p = self.pool.lock();
        let _ = (d, p);
    }
}
