//! lock-order cycle fixture: the declared order forms a three-lock
//! cycle, so every participating declaration is reported.

use std::sync::Mutex;

struct Cyclic {
    // LOCK-ORDER: cyc.a < cyc.b
    a: Mutex<u32>, //~ ERROR lock-order: cycle
    // LOCK-ORDER: cyc.b < cyc.c
    b: Mutex<u32>, //~ ERROR lock-order: cycle
    // LOCK-ORDER: cyc.c < cyc.a
    c: Mutex<u32>, //~ ERROR lock-order: cycle
}
