//! swallowed-result PASS fixture: every shape that handles, propagates,
//! binds, or legitimately ignores a value. Nothing here may produce a
//! diagnostic.

pub fn fallible() -> Result<u32, String> {
    Ok(1)
}

pub fn unit_helper() {}

/// `?` at statement depth is propagation, not a swallow.
pub fn propagated() -> Result<u32, String> {
    fallible()?;
    let v = fallible()?;
    Ok(v)
}

/// Binding or matching the `Result` is handling it.
pub fn bound_and_handled() -> u32 {
    let r = fallible();
    match fallible() {
        Ok(v) => v,
        Err(_) => r.unwrap_or(0),
    }
}

/// Discarding a unit-returning call is fine.
pub fn unit_call_discarded() {
    unit_helper();
}

/// A named placeholder binding is rustc's `unused_variables` territory,
/// not this lint's.
pub fn named_placeholder() {
    let _r = fallible();
}

/// An unresolved receiver stays silent rather than guessing.
pub fn unresolved_stays_silent(x: &std::time::Instant) {
    let _ = x.elapsed();
}

/// An intentional swallow, justified in the self-test allowlist
/// (`fixture.rs::allowlisted_site`).
pub fn allowlisted_site() {
    let _ = fallible();
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tests_may_discard() {
        let _ = fallible();
    }
}
