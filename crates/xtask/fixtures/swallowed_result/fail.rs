//! swallowed-result FAIL fixture: `Result`s dropped on the floor, in both
//! shapes the lint knows. Every marked line must produce a diagnostic.

/// A workspace fn whose `Result` return the call graph resolves.
pub fn fallible() -> Result<u32, String> {
    Ok(1)
}

pub struct Sink;

impl Sink {
    pub fn send_row(&self) -> Result<(), String> {
        Ok(())
    }
}

/// Explicit discard of a resolved `Result`-returning free call.
pub fn drops_free_call() {
    let _ = fallible(); //~ ERROR swallowed-result: let-underscore
}

/// Explicit discard of a resolved `Result`-returning method call.
pub fn drops_method_call(s: &Sink) {
    let _ = s.send_row(); //~ ERROR swallowed-result: let-underscore
}

/// The std builtin list: `join` returns a `Result` even though nothing in
/// the workspace resolves it.
pub fn drops_builtin(h: std::thread::JoinHandle<()>) {
    let _ = h.join(); //~ ERROR swallowed-result: let-underscore
}

/// A bare statement dropping the `Result` is the same bug without the
/// fig leaf.
pub fn bare_discard() {
    fallible(); //~ ERROR swallowed-result: discarded
}
