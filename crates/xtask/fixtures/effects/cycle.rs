//! effects CYCLE fixture: `descend` ↔ `ascend` form a strongly connected
//! component, so the panic inside the cycle (and the one past it) must
//! reach both pub entry points through the SCC fixed point. Each sink is
//! reported exactly once — the first entry in definition order (`walk`)
//! claims it, which the witness-chain pins below check — so `walk_again`
//! adds no diagnostics.

/// First entry point: claims every sink it can reach.
pub fn walk(n: u32) -> u32 {
    descend(n)
}

/// Second entry point into the same cycle: dedup-by-sink keeps it quiet.
pub fn walk_again(n: u32) -> u32 {
    descend(n)
}

fn descend(n: u32) -> u32 {
    if n == 0 {
        bottom(n)
    } else {
        ascend(n - 1)
    }
}

fn ascend(n: u32) -> u32 {
    let head = [n].first().copied().unwrap(); //~ ERROR panic-reachability: pub fn `walk` can reach `.unwrap()`: walk (crates/experiments/src/fixture.rs:9) → descend (crates/experiments/src/fixture.rs:10)
    if head > 9 {
        descend(head)
    } else {
        head
    }
}

fn bottom(n: u32) -> u32 {
    let xs = [1u32, 2];
    xs[n as usize] //~ ERROR panic-reachability: pub fn `walk` can reach `xs[..]`
}
