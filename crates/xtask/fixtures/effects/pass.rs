//! effects PASS fixture: a dispatch root that stays non-blocking past
//! its own body, effect look-alikes that must not count, and a panic
//! sink the self-test allowlist justifies. Nothing here may produce a
//! diagnostic.

/// The dispatch root: pure arithmetic and string building downstream.
// HOT-PATH: service.dispatch
fn worker_loop(n: u64) -> u64 {
    step(n)
}

fn step(n: u64) -> u64 {
    label(&[n.to_string()]) as u64
}

/// `join` WITH a separator builds a string — only the zero-arity form
/// blocks a thread.
fn label(parts: &[String]) -> usize {
    parts.join(", ").len()
}

/// The sink below is justified in the self-test allowlist
/// (`fixture.rs::checked_math`), silencing every entry that reaches it.
pub fn api_total(xs: &[u32]) -> u32 {
    checked_math(xs)
}

fn checked_math(xs: &[u32]) -> u32 {
    xs.iter().copied().sum::<u32>().checked_add(1).unwrap()
}

/// Slice patterns and array types are not indexing.
pub fn api_pair(xs: &[u32]) -> u32 {
    if let [a, b] = xs {
        a + b
    } else {
        0
    }
}
