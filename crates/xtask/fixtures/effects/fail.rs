//! effects FAIL fixture: the `service.dispatch` root reaches blocking
//! primitives past its own body, and pub entry points reach panics
//! outside any cycle. The boundary fn's own body is still checked; what
//! lies beyond it is not.

use std::sync::{Condvar, Mutex};

pub struct Queue {
    state: Mutex<u64>,
    ready: Condvar,
}

/// The dispatch loop. Its OWN body may block — the admission-queue idle
/// wait below is the designed parking spot, exempt by construction — but
/// nothing it runs afterwards may.
// HOT-PATH: service.dispatch
fn worker_loop(q: &Queue) -> u64 {
    let guard = q.state.lock();
    let n = guard.map(|g| *q.ready.wait(g).ok().as_deref().unwrap_or(&0)).ok();
    run_task(n.unwrap_or(0))
}

fn run_task(n: u64) -> u64 {
    merge(n) + fan_out(n)
}

/// A channel rendezvous smuggled into the merge step: one slow producer
/// stalls the worker.
fn merge(n: u64) -> u64 {
    let (tx, rx) = std::sync::mpsc::channel::<u64>();
    tx.send(n).ok();
    rx.recv().ok().unwrap_or(0) //~ ERROR blocking-in-worker: worker-blocks: `.recv()`
}

/// A boundary: its own body is checked (the sleep trips), but `beyond`
/// is not followed — its thread join produces no diagnostic.
// HOT-PATH-BOUNDARY: shard fan-out reviewed on its own
fn fan_out(n: u64) -> u64 {
    std::thread::sleep(std::time::Duration::from_millis(n)); //~ ERROR blocking-in-worker: thread::sleep
    beyond(n)
}

fn beyond(n: u64) -> u64 {
    let h = std::thread::spawn(move || n);
    h.join().ok().unwrap_or(0)
}

/// A pub entry reaching a panic through a helper chain — the witness
/// names the hop.
pub fn api_lookup(xs: &[u32], i: usize) -> u32 {
    fetch(xs, i)
}

fn fetch(xs: &[u32], i: usize) -> u32 {
    xs[i] //~ ERROR panic-reachability: api_lookup (crates/experiments/src/fixture.rs:50) → fetch (crates/experiments/src/fixture.rs:51)
}

/// A panic primitive directly in the pub body.
pub fn api_head(xs: &[u32]) -> u32 {
    *xs.first().expect("nonempty") //~ ERROR panic-reachability: .expect()
}
