//! reachability FAIL fixture: functions no code path can reach. Every
//! marked line must produce a diagnostic.

/// Never mentioned anywhere: dead.
fn orphan_helper() -> u32 { //~ ERROR reachability: never-called
    1
}

/// `pub` inside a private module reaches nobody either.
mod internal {
    pub fn dead_export() {} //~ ERROR reachability: pub-in-private
}

pub struct Widget;

impl Widget {
    /// A private method nobody calls is just as dead.
    fn unused_method(&self) {} //~ ERROR reachability: never-called
}
