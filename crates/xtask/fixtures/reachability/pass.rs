//! reachability PASS fixture: every shape that keeps a function alive.
//! Nothing here may produce a diagnostic.

fn used_helper() -> u32 {
    2
}

/// Public API is surface, not dead code — even when unreferenced.
pub fn unused_public_api() -> u32 {
    3
}

pub fn public_api() -> u32 {
    used_helper()
}

/// `_`-prefixed names opt out explicitly.
fn _scratch() {}

/// The entry point has an invisible caller.
fn main() {
    public_api();
}

/// `pub` in a private module is fine while something references it.
mod detail {
    pub fn reached() -> u32 {
        4
    }
}

pub fn uses_detail() -> u32 {
    detail::reached()
}

/// Trait machinery dispatches invisibly: declarations and impls are
/// exempt.
pub trait Codec {
    fn encode(&self) -> u32;
}

pub struct Id;

impl Codec for Id {
    fn encode(&self) -> u32 {
        5
    }
}

/// A fn-pointer mention is a reference too.
fn as_callback() -> u32 {
    6
}

pub fn registers() -> u32 {
    let f: fn() -> u32 = as_callback;
    f()
}

#[cfg(test)]
mod tests {
    /// Test-gated fns are cfg'd out of the reachability question.
    fn test_only_helper() {}
}
