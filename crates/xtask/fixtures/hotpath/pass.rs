//! hot-path-hygiene PASS fixture: clean kernels, pre-sized buffers,
//! cold-path allocations, the traversal boundary, the accounting seam and
//! an allowlisted helper. Nothing here may produce a diagnostic.

use std::sync::Mutex;

/// A clean root: arithmetic and writes into caller-owned buffers only.
// HOT-PATH: fixture.clean_scan
pub fn clean_scan(data: &[u8], out: &mut Vec<u8>) -> u64 {
    let mut acc = 0u64;
    for b in data {
        acc += kernel(*b);
        out.push(*b);
    }
    acc
}

fn kernel(b: u8) -> u64 {
    b as u64
}

/// Allocation off the hot path is nobody's business.
pub fn cold_path() -> Vec<u8> {
    let mut v = Vec::new();
    v.push(1);
    v.to_vec()
}

/// Pre-sizing belongs in setup code: `with_capacity` is in the ALLOC
/// table, so the kernel takes the caller-owned buffer instead of
/// allocating its own.
pub fn presized_setup(n: usize) -> Vec<u8> {
    Vec::with_capacity(n)
}

// HOT-PATH: fixture.presized
pub fn presized(buf: &mut Vec<u8>) -> u64 {
    buf.capacity() as u64
}

/// The helper allocates, but the self-test allowlist justifies it
/// (`fixture.rs::justified_helper`).
// HOT-PATH: fixture.justified
pub fn justified_root(xs: &[u8]) -> u64 {
    justified_helper(xs)
}

fn justified_helper(xs: &[u8]) -> u64 {
    xs.to_vec().len() as u64
}

/// Raw I/O inside the accounting seam (`fixture.rs::seam_read` is in the
/// accounting allowlist) is the sanctioned way to touch pages.
// HOT-PATH: fixture.seam
pub fn seam_root(disk: &Disk) -> u64 {
    seam_read(disk)
}

fn seam_read(disk: &Disk) -> u64 {
    disk.read_page(0);
    7
}

/// A boundary: its own body is checked (and is clean), but what it
/// dispatches into is reviewed out of scope — the engine behind it may
/// allocate and lock at will.
// HOT-PATH: fixture.routed
pub fn routed(q: &Query) -> u64 {
    route(q)
}

// HOT-PATH-BOUNDARY: dispatches into whole engines that lock by design
fn route(q: &Query) -> u64 {
    engine_query(q)
}

fn engine_query(q: &Query) -> u64 {
    let copy = q.terms.to_vec();
    copy.len() as u64
}

/// Locks off the hot path are equally fine.
pub struct Registry {
    inner: Mutex<u64>,
}

pub fn cold_lock(r: &Registry) -> u64 {
    *r.inner.lock().unwrap()
}

/// Prose may mention the grammar — `HOT-PATH: <name>` — without becoming
/// an annotation, and test code is invisible to the traversal.
#[cfg(test)]
mod tests {
    use super::*;

    fn tests_allocate_freely() {
        let v = vec![1u8, 2, 3];
        assert_eq!(clean_scan(&v, &mut Vec::new()), 6);
    }
}
