//! hot-path-hygiene FAIL fixture: annotated roots whose bodies or callees
//! allocate, take locks, or touch raw page I/O, plus every malformed
//! annotation shape. Every marked line must produce a diagnostic.

use std::sync::{Mutex, RwLock};

/// Direct violations in the root body itself.
// HOT-PATH: fixture.scan_loop
pub fn scan_loop(data: &[u8]) -> Vec<u8> {
    let mut out = Vec::new(); //~ ERROR hot-path-hygiene: alloc-in-hot-path
    for b in data {
        out.push(*b);
    }
    out.to_vec() //~ ERROR hot-path-hygiene: alloc-in-hot-path
}

/// Transitive violations: the root is clean, its helper is not.
// HOT-PATH: fixture.probe
pub fn probe(xs: &[u32]) -> u32 {
    helper(xs)
}

/// A second root reaching the same helper: the findings are reported
/// once, not once per root (the markers pin the dedup).
// HOT-PATH: fixture.probe_again
pub fn probe_again(xs: &[u32]) -> u32 {
    helper(xs)
}

fn helper(xs: &[u32]) -> u32 {
    let copy = xs.to_vec(); //~ ERROR hot-path-hygiene: probe (crates/experiments/src/fixture.rs:19) → helper (crates/experiments/src/fixture.rs:20) → `.to_vec()`
    let label = format!("{}", copy.len()); //~ ERROR hot-path-hygiene: alloc-in-hot-path
    label.len() as u32 + vec![0u8; 1].len() as u32 //~ ERROR hot-path-hygiene: vec!
}

/// Method roots traverse `self.…()` calls through the impl type.
pub struct Engine {
    buf: [u8; 8],
}

impl Engine {
    // HOT-PATH: fixture.method_root
    pub fn kernel(&self) -> u64 {
        self.stage()
    }

    fn stage(&self) -> u64 {
        let boxed = Box::new(7u64); //~ ERROR hot-path-hygiene: alloc-in-hot-path
        let copy = self.buf.clone(); //~ ERROR hot-path-hygiene: .clone()
        let name = String::from("stage"); //~ ERROR hot-path-hygiene: String::from
        *boxed + copy.len() as u64 + name.len() as u64
    }
}

/// Lock acquisitions: `.lock()` always, `.read()`/`.write()` against the
/// RwLock declared in this file.
pub struct Shared {
    counter: Mutex<u64>,
    table: RwLock<u64>,
}

// HOT-PATH: fixture.dispatch
pub fn dispatch(s: &Shared) -> u64 {
    let g = s.counter.lock().unwrap(); //~ ERROR hot-path-hygiene: lock-in-hot-path
    let r = s.table.read().unwrap(); //~ ERROR hot-path-hygiene: lock-in-hot-path
    *g + *r
}

/// Raw page I/O with no accounting seam in sight.
// HOT-PATH: fixture.read_row
pub fn read_row(disk: &Disk, f: FileId) {
    disk.read_page(f, 0); //~ ERROR hot-path-hygiene: io-in-hot-path
}

/// The widened ALLOC table: pre-sizing, collect, to_string and Arc all
/// count — hoist them to setup code.
// HOT-PATH: fixture.widened
pub fn widened(xs: &[u32]) -> usize {
    let v: Vec<u32> = Vec::with_capacity(xs.len()); //~ ERROR hot-path-hygiene: Vec::with_capacity
    let doubled: Vec<u32> = xs.iter().map(|x| x * 2).collect(); //~ ERROR hot-path-hygiene: .collect()
    let label = xs.len().to_string(); //~ ERROR hot-path-hygiene: .to_string()
    let shared = std::sync::Arc::new(7u64); //~ ERROR hot-path-hygiene: Arc::new
    v.capacity() + doubled.len() + label.len() + *shared as usize
}

/// Malformed annotations, one per shape.
/* HOT-PATH: */ pub fn unnamed() {} //~ ERROR hot-path-hygiene: names no path

// HOT-PATH: bad$name //~ ERROR hot-path-hygiene: characters outside
pub fn badly_named() {}

// HOT-PATH: fixture.ok extra //~ ERROR hot-path-hygiene: unexpected token
pub fn extra_tokens() {}

/* HOT-PATH-BOUNDARY: */ pub fn silent_boundary() {} //~ ERROR hot-path-hygiene: gives no reason

pub struct NotAFn;
// HOT-PATH: fixture.orphan //~ ERROR hot-path-hygiene: attaches to no fn
pub const NOT_A_FN: u32 = 1;
