//! guard-across-io fail fixture: guards (bound, temporary, and RwLock
//! read guards) live across page-I/O calls.

use std::sync::{Mutex, RwLock};

struct Disk;

struct Pool {
    // LOCK-ORDER: gfix.pool leaf
    inner: Mutex<u32>,
    disk: Disk,
}

impl Pool {
    fn bound_guard_across_read(&self) {
        let g = self.inner.lock();
        self.disk.read_page(0); //~ ERROR guard-across-io: io-under-lock
        let _ = g;
    }

    fn bound_guard_across_write(&self) {
        let g = self.inner.lock();
        self.disk.write_page(0, &[]); //~ ERROR guard-across-io: io-under-lock
        let _ = g;
    }

    fn temporary_guard_same_statement(&self) {
        self.inner.lock().flush(); //~ ERROR guard-across-io: io-under-lock
    }
}

struct Catalog {
    // LOCK-ORDER: gfix.catalog
    map: RwLock<u32>,
    disk: Disk,
}

impl Catalog {
    fn read_guard_across_io(&self) {
        let g = self.map.read();
        self.disk.read_page(0); //~ ERROR guard-across-io: io-under-lock
        let _ = g;
    }
}
