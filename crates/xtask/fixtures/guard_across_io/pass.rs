//! guard-across-io pass fixture: the same shapes done right — the guard
//! dies (block scope or explicit `drop`) before the I/O call, or the
//! site is justified via the self-test allowlist
//! (`…::allowlisted_site`).

use std::sync::Mutex;

struct Disk;

struct Pool {
    // LOCK-ORDER: gpass.pool leaf
    inner: Mutex<u32>,
    disk: Disk,
}

impl Pool {
    fn block_scope_then_read(&self) {
        let page = {
            let g = self.inner.lock();
            *g
        };
        self.disk.read_page(page);
    }

    fn explicit_drop_then_write(&self) {
        let g = self.inner.lock();
        drop(g);
        self.disk.write_page(0, &[]);
    }

    fn allowlisted_site(&self) {
        // The mutex is this sink's serialization point — justified.
        let g = self.inner.lock();
        self.disk.flush();
        let _ = g;
    }
}
