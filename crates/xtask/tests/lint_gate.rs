//! The live workspace must satisfy its own invariants: `xtask analyze`
//! runs here as a test, so `cargo test --workspace` alone gates every
//! project lint (including lock-order, guard-across-io and the
//! stale-allowlist check) without needing the separate CI step.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

#[test]
fn workspace_is_clean_under_all_lints() {
    let diags = xtask::analyze(&repo_root()).expect("workspace readable");
    assert!(
        diags.is_empty(),
        "xtask analyze found {} violation(s):\n{}",
        diags.len(),
        diags
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
            .join("\n")
    );
}
