//! The analyzer's fixture self-test, as a regular `cargo test` target so
//! a drifted lint fails CI even if nobody runs `xtask analyze --self-test`.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("repo root exists")
}

#[test]
fn every_fixture_marker_is_matched_exactly() {
    let report = xtask::selftest::self_test(&repo_root()).expect("fixtures readable");
    assert!(
        report.failures.is_empty(),
        "analyzer drifted from its fixtures:\n{}",
        report.failures.join("\n")
    );
}
