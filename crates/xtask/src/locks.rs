//! Shared machinery for the concurrency lints (`lock-order`,
//! `guard-across-io`): lock declarations and their machine-readable
//! `// LOCK-ORDER:` annotations, plus lexical guard-liveness tracking for
//! acquisition sites.
//!
//! # Annotation grammar
//!
//! Every `Mutex`/`RwLock` declaration in library or binary code carries a
//! comment on the same line or within the three lines above it:
//!
//! ```text
//! // LOCK-ORDER: <name> [< <parent>]… [leaf]
//! ```
//!
//! * `<name>` — globally unique lock name (`[A-Za-z0-9_.-]+`, convention
//!   `crate.lock`).
//! * `< <parent>` — the named lock ranks **below** `<parent>`: a thread
//!   already holding `<parent>` may acquire this lock. Repeat the clause
//!   for multiple direct parents. Rank is transitive.
//! * `leaf` — nothing ranks below this lock: no lock may be acquired
//!   while it is held, and it may not appear as anyone's parent.
//!
//! # What counts as a declaration
//!
//! * A named field whose type is `Mutex<…>` / `RwLock<…>`, possibly
//!   wrapped in `Arc`/`Box`/`Rc` and path-qualified
//!   (`std::sync::Mutex`, `parking_lot::Mutex`).
//! * A local `let <name> = Mutex::new(…)` / `RwLock::new(…)` binding
//!   (the BSSF pipeline's coordinator lock is such a local).
//!
//! Struct-literal initializers (`inner: Mutex::new(…)`) initialize an
//! already-declared field and are deliberately not declarations.
//!
//! # Guard liveness
//!
//! The model is lexical, not borrow-checker-accurate, which is exactly
//! what a reviewable hand-rolled lint wants: a guard bound with
//! `let g = x.lock()` is live from the acquisition to the closing brace
//! of its enclosing block or an explicit `drop(g)`, whichever comes
//! first; an unbound (temporary) guard — `x.lock().field = v` or
//! `let _ = x.lock()…` — is live to the end of its statement.

use crate::scan::{Tok, TokKind};
use crate::workspace::SourceFile;

/// The comment marker introducing a lock annotation.
pub const ANNOTATION: &str = "LOCK-ORDER:";

/// How many lines above a declaration the annotation may sit (mirrors the
/// unsafe-audit `SAFETY:` window).
pub const ANNOTATION_WINDOW: u32 = 3;

/// Which primitive a declaration uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockKind {
    /// `Mutex<…>` — acquired with `.lock()`.
    Mutex,
    /// `RwLock<…>` — acquired with `.read()` / `.write()`.
    RwLock,
}

impl LockKind {
    /// Type name as written in source.
    pub fn type_name(self) -> &'static str {
        match self {
            LockKind::Mutex => "Mutex",
            LockKind::RwLock => "RwLock",
        }
    }
}

/// A parsed `LOCK-ORDER:` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Annotation {
    /// The lock's global name.
    pub name: String,
    /// Direct parents: locks that may be held while acquiring this one.
    pub parents: Vec<String>,
    /// True when nothing may be acquired under this lock.
    pub leaf: bool,
}

/// Annotation state of one declaration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AnnState {
    /// No `LOCK-ORDER:` comment in the window.
    Missing,
    /// A `LOCK-ORDER:` comment that does not parse; the payload says why.
    Malformed(String),
    /// A well-formed annotation.
    Parsed(Annotation),
}

/// One lock declaration site.
#[derive(Debug, Clone)]
pub struct LockDecl {
    /// Field or binding identifier (`"<unnamed>"` when the type is not
    /// attached to a nameable field).
    pub field: String,
    /// 1-based declaration line.
    pub line: u32,
    /// Mutex or RwLock.
    pub kind: LockKind,
    /// The annotation, if any.
    pub ann: AnnState,
}

impl LockDecl {
    /// The annotation's lock name, when parsed.
    pub fn name(&self) -> Option<&str> {
        match &self.ann {
            AnnState::Parsed(a) => Some(&a.name),
            _ => None,
        }
    }
}

/// Wrapper types the field detector looks through (`Arc<Mutex<…>>`).
const WRAPPERS: [&str; 3] = ["Arc", "Box", "Rc"];

/// Collects every lock declaration in `file` (test code excluded).
pub fn collect_decls(file: &SourceFile) -> Vec<LockDecl> {
    let toks = &file.scanned.toks;
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if file.test_mask[i] {
            continue;
        }
        let kind = if toks[i].is_ident("Mutex") {
            LockKind::Mutex
        } else if toks[i].is_ident("RwLock") {
            LockKind::RwLock
        } else {
            continue;
        };
        // Type position: `field : [path::][Arc<…]* Mutex <`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct('<')) {
            let field = field_of_type(toks, i).unwrap_or_else(|| "<unnamed>".to_string());
            out.push(decl_at(file, field, toks[i].line, kind));
            continue;
        }
        // Local binding: `let [mut] name = [path::] Mutex :: new (`.
        if toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("new"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct('('))
        {
            if let Some(name) = let_binding_before(toks, i) {
                out.push(decl_at(file, name, toks[i].line, kind));
            }
        }
    }
    out
}

/// Builds a declaration, attaching the nearest annotation in the window.
fn decl_at(file: &SourceFile, field: String, line: u32, kind: LockKind) -> LockDecl {
    let from = line.saturating_sub(ANNOTATION_WINDOW);
    let ann = file
        .scanned
        .comments
        .iter()
        .rfind(|(l, text)| *l >= from && *l <= line && text.contains(ANNOTATION))
        .map_or(AnnState::Missing, |(_, text)| parse_annotation(text));
    LockDecl {
        field,
        line,
        kind,
        ann,
    }
}

/// Parses the annotation payload out of a comment's full text.
fn parse_annotation(comment: &str) -> AnnState {
    let Some(pos) = comment.find(ANNOTATION) else {
        return AnnState::Missing;
    };
    // Payload: marker to end of line (block comments may run on), with a
    // trailing `*/` stripped.
    let rest = &comment[pos + ANNOTATION.len()..];
    let line = rest.lines().next().unwrap_or("");
    let line = line.trim_end_matches("*/").trim();
    let mut words = line.split_whitespace();
    let Some(name) = words.next() else {
        return AnnState::Malformed("annotation names no lock".to_string());
    };
    if !valid_name(name) {
        return AnnState::Malformed(format!(
            "lock name `{name}` has characters outside [A-Za-z0-9_.-]"
        ));
    }
    let mut parents = Vec::new();
    let mut leaf = false;
    while let Some(w) = words.next() {
        match w {
            "<" => {
                let Some(p) = words.next() else {
                    return AnnState::Malformed("`<` with no parent name after it".to_string());
                };
                if !valid_name(p) {
                    return AnnState::Malformed(format!(
                        "parent name `{p}` has characters outside [A-Za-z0-9_.-]"
                    ));
                }
                parents.push(p.to_string());
            }
            "leaf" => leaf = true,
            other => {
                return AnnState::Malformed(format!(
                    "unexpected token `{other}` (grammar: LOCK-ORDER: <name> [< <parent>]… [leaf])"
                ));
            }
        }
    }
    AnnState::Parsed(Annotation {
        name: name.to_string(),
        parents,
        leaf,
    })
}

fn valid_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// Walks back from the `Mutex`/`RwLock` token of a type to the field
/// identifier, looking through wrapper generics and path qualifiers.
fn field_of_type(toks: &[Tok], lock_tok: usize) -> Option<String> {
    let mut j = lock_tok.checked_sub(1)?;
    loop {
        if toks[j].is_punct(':') && j >= 1 && toks[j - 1].is_punct(':') {
            // Path separator `::` — step over it and its leading segment.
            j = j.checked_sub(3)?;
        } else if toks[j].is_punct('<') {
            // Wrapper generic — the token before must be Arc/Box/Rc.
            let w = j.checked_sub(1)?;
            if !WRAPPERS.iter().any(|n| toks[w].is_ident(n)) {
                return None;
            }
            j = w.checked_sub(1)?;
        } else {
            break;
        }
    }
    // Expect the field's own `name :` (a single colon).
    if !toks[j].is_punct(':') || (j >= 1 && toks[j - 1].is_punct(':')) {
        return None;
    }
    let f = j.checked_sub(1)?;
    (toks[f].kind == TokKind::Ident).then(|| toks[f].text.clone())
}

/// `Some(name)` when the tokens before `expr_start` are `let [mut] name =`.
fn let_binding_before(toks: &[Tok], expr_start: usize) -> Option<String> {
    let eq = expr_start.checked_sub(1)?;
    if !toks[eq].is_punct('=') {
        return None;
    }
    let name = eq.checked_sub(1)?;
    if toks[name].kind != TokKind::Ident {
        return None;
    }
    let before = name.checked_sub(1)?;
    let is_let = toks[before].is_ident("let")
        || (toks[before].is_ident("mut") && before >= 1 && toks[before - 1].is_ident("let"));
    is_let.then(|| toks[name].text.clone())
}

/// How a guard was acquired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcqMethod {
    /// `.lock()` — a Mutex acquisition.
    Lock,
    /// `.read()` — meaningful only on an RwLock receiver.
    Read,
    /// `.write()` — meaningful only on an RwLock receiver.
    Write,
}

impl AcqMethod {
    /// The method name as written.
    pub fn method_name(self) -> &'static str {
        match self {
            AcqMethod::Lock => "lock",
            AcqMethod::Read => "read",
            AcqMethod::Write => "write",
        }
    }
}

/// One acquisition site with its lexical guard live range.
#[derive(Debug, Clone)]
pub struct Acquisition {
    /// Token index of the `lock`/`read`/`write` identifier.
    pub idx: usize,
    /// 1-based source line.
    pub line: u32,
    /// Final identifier of the receiver chain (`self.inner.lock()` →
    /// `inner`), or `None` for non-identifier receivers.
    pub receiver: Option<String>,
    /// Acquisition method.
    pub method: AcqMethod,
    /// Exclusive token-index end of the guard's live range.
    pub end: usize,
}

impl Acquisition {
    /// True when `tok_idx` falls strictly inside this guard's live range
    /// (the acquisition token itself is excluded).
    pub fn covers(&self, tok_idx: usize) -> bool {
        self.idx < tok_idx && tok_idx < self.end
    }
}

/// Brace depth before each token (`{` increments after the token, `}`
/// decrements after it), so tokens inside a block share the block's depth
/// and the block's own `}` is the first token back at it.
pub fn brace_depths(toks: &[Tok]) -> Vec<i64> {
    let mut out = Vec::with_capacity(toks.len());
    let mut d = 0i64;
    for t in toks {
        out.push(d);
        if t.is_punct('{') {
            d += 1;
        } else if t.is_punct('}') {
            d -= 1;
        }
    }
    out
}

/// Collects every acquisition site in `file` (test code excluded) with
/// its guard live range.
pub fn collect_acquisitions(file: &SourceFile) -> Vec<Acquisition> {
    let toks = &file.scanned.toks;
    let depth = brace_depths(toks);
    let mut out = Vec::new();
    for i in 0..toks.len() {
        if file.test_mask[i] {
            continue;
        }
        let method = if toks[i].is_ident("lock") {
            AcqMethod::Lock
        } else if toks[i].is_ident("read") {
            AcqMethod::Read
        } else if toks[i].is_ident("write") {
            AcqMethod::Write
        } else {
            continue;
        };
        // Must be a method call: `recv . lock (`.
        if i == 0 || !toks[i - 1].is_punct('.') || !toks.get(i + 1).is_some_and(|t| t.is_punct('('))
        {
            continue;
        }
        let receiver = (toks[i - 2].kind == TokKind::Ident).then(|| toks[i - 2].text.clone());
        let binding = binding_of(toks, i);
        let end = match &binding {
            Some(name) if name != "_" => {
                // Block scope: to the enclosing block's `}` or `drop(name)`.
                let d = depth[i];
                let mut end = toks.len();
                for (k, t) in toks.iter().enumerate().skip(i + 1) {
                    if t.is_punct('}') && depth[k] == d {
                        end = k;
                        break;
                    }
                    if t.is_ident("drop")
                        && toks.get(k + 1).is_some_and(|t| t.is_punct('('))
                        && toks.get(k + 2).is_some_and(|t| t.is_ident(name))
                        && toks.get(k + 3).is_some_and(|t| t.is_punct(')'))
                    {
                        end = k;
                        break;
                    }
                }
                end
            }
            _ => {
                // Temporary: to the end of the statement.
                let d = depth[i];
                let mut end = toks.len();
                for (k, t) in toks.iter().enumerate().skip(i + 1) {
                    if (t.is_punct(';') || t.is_punct('}')) && depth[k] == d {
                        end = k;
                        break;
                    }
                }
                end
            }
        };
        out.push(Acquisition {
            idx: i,
            line: toks[i].line,
            receiver,
            method,
            end,
        });
    }
    out
}

/// Walks back over the receiver chain of the call at `method_idx` and
/// returns the `let` binding name, if the statement is `let [mut] x = …`.
fn binding_of(toks: &[Tok], method_idx: usize) -> Option<String> {
    // Step over `recv . recv . ( … )` chains back to the statement head.
    let mut j = method_idx.checked_sub(2)?; // skip the `.`
    loop {
        let t = &toks[j];
        if t.kind == TokKind::Ident
            || t.kind == TokKind::Literal
            || t.is_punct('.')
            || t.is_punct('?')
        {
            match j.checked_sub(1) {
                Some(p) => j = p,
                None => return None,
            }
        } else if t.is_punct(')') {
            // Balanced-paren receiver segment, e.g. `self.pool().lock()`.
            let mut depth = 0i64;
            loop {
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                j = j.checked_sub(1)?;
            }
            j = j.checked_sub(1)?;
        } else {
            break;
        }
    }
    if !toks[j].is_punct('=') {
        return None;
    }
    let name = j.checked_sub(1)?;
    if toks[name].kind != TokKind::Ident {
        return None;
    }
    let before = name.checked_sub(1)?;
    let is_let = toks[before].is_ident("let")
        || (toks[before].is_ident("mut") && before >= 1 && toks[before - 1].is_ident("let"));
    is_let.then(|| toks[name].text.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileClass;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            "crates/experiments/src/fixture.rs".to_string(),
            FileClass::Lib,
            Some("experiments".to_string()),
            src,
        )
    }

    #[test]
    fn field_decl_is_found_through_wrappers_and_paths() {
        let f = file(
            "struct S {\n\
             // LOCK-ORDER: a.b leaf\n\
             inner: std::sync::Mutex<u32>,\n\
             // LOCK-ORDER: a.c < a.b\n\
             shared: Arc<parking_lot::RwLock<u32>>,\n\
             }\n",
        );
        let decls = collect_decls(&f);
        assert_eq!(decls.len(), 2);
        assert_eq!(decls[0].field, "inner");
        assert_eq!(decls[0].kind, LockKind::Mutex);
        assert_eq!(decls[0].name(), Some("a.b"));
        assert_eq!(decls[1].field, "shared");
        assert_eq!(decls[1].kind, LockKind::RwLock);
        match &decls[1].ann {
            AnnState::Parsed(a) => assert_eq!(a.parents, vec!["a.b".to_string()]),
            other => panic!("expected parsed annotation, got {other:?}"),
        }
    }

    #[test]
    fn struct_literal_init_is_not_a_declaration() {
        let f = file("fn mk() -> S { S { inner: Mutex::new(0) } }");
        assert!(collect_decls(&f).is_empty());
    }

    #[test]
    fn let_binding_is_a_declaration() {
        let f = file("fn go() {\n// LOCK-ORDER: pipe leaf\nlet shared = Mutex::new(0); }");
        let decls = collect_decls(&f);
        assert_eq!(decls.len(), 1);
        assert_eq!(decls[0].field, "shared");
        assert_eq!(decls[0].name(), Some("pipe"));
    }

    #[test]
    fn missing_and_malformed_annotations_are_distinguished() {
        let f = file(
            "struct S {\n\
             a: Mutex<u32>,\n\
             // LOCK-ORDER: ok < \n\
             b: Mutex<u32>,\n\
             }\n",
        );
        let decls = collect_decls(&f);
        assert_eq!(decls[0].ann, AnnState::Missing);
        assert!(matches!(decls[1].ann, AnnState::Malformed(_)));
    }

    #[test]
    fn guard_scope_ends_at_block_close() {
        let f = file(
            "fn go(&self) {\n\
             {\n let mut g = self.inner.lock();\n g.x = 1;\n }\n\
             self.disk.read_page(0);\n\
             }",
        );
        let acqs = collect_acquisitions(&f);
        assert_eq!(acqs.len(), 1);
        let toks = &f.scanned.toks;
        let io = toks.iter().position(|t| t.is_ident("read_page")).unwrap();
        assert!(!acqs[0].covers(io), "guard must die at the inner brace");
    }

    #[test]
    fn guard_scope_ends_at_drop() {
        let f = file(
            "fn go(&self) {\n\
             let g = self.inner.lock();\n\
             drop(g);\n\
             self.disk.read_page(0);\n\
             }",
        );
        let acqs = collect_acquisitions(&f);
        let toks = &f.scanned.toks;
        let io = toks.iter().position(|t| t.is_ident("read_page")).unwrap();
        assert!(!acqs[0].covers(io), "drop(g) must end the guard");
    }

    #[test]
    fn temporary_guard_lives_to_statement_end() {
        let f = file("fn go(&self) { self.out.lock().flush(); self.disk.sync(); }");
        let acqs = collect_acquisitions(&f);
        let toks = &f.scanned.toks;
        let flush = toks.iter().position(|t| t.is_ident("flush")).unwrap();
        let sync = toks.iter().position(|t| t.is_ident("sync")).unwrap();
        assert!(acqs[0].covers(flush), "same-statement call is under lock");
        assert!(!acqs[0].covers(sync), "next statement is not");
    }

    #[test]
    fn bound_guard_lives_to_function_end() {
        let f = file("fn go(&self) { let g = self.inner.lock(); self.disk.read_page(0); }");
        let acqs = collect_acquisitions(&f);
        let toks = &f.scanned.toks;
        let io = toks.iter().position(|t| t.is_ident("read_page")).unwrap();
        assert!(acqs[0].covers(io));
    }
}
