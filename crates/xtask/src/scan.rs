//! A minimal token-level scanner for Rust source.
//!
//! Not a full lexer: it distinguishes identifiers, punctuation and literals,
//! skips comments and string/char literals (recording comments so the unsafe
//! audit can look for `// SAFETY:`), and tracks line numbers. That is
//! exactly enough for the project lints, which match short token patterns
//! like `. read_page (` — and it means doc-comment examples, strings and
//! `#[cfg(test)]` modules can never produce false positives.

/// Token classes the lints care about.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// An identifier or keyword.
    Ident,
    /// A single punctuation character (multi-char operators arrive as
    /// consecutive tokens: `::` is two `:` tokens).
    Punct,
    /// A string / char / numeric literal (contents not preserved).
    Literal,
}

/// One significant token.
#[derive(Debug, Clone)]
pub struct Tok {
    /// The token class.
    pub kind: TokKind,
    /// Identifier text, the punctuation character, or `""` for literals.
    pub text: String,
    /// 1-based line of the token's first character.
    pub line: u32,
}

impl Tok {
    fn ident(text: String, line: u32) -> Self {
        Tok {
            kind: TokKind::Ident,
            text,
            line,
        }
    }

    /// True if this is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }

    /// True if this is the punctuation character `c`.
    pub fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == 1 && self.text.starts_with(c)
    }
}

/// Scanner output: the significant tokens plus every comment (keyed by the
/// line its first character is on).
#[derive(Debug, Default)]
pub struct Scanned {
    /// Significant tokens in source order.
    pub toks: Vec<Tok>,
    /// `(start_line, full_text)` for each `//` and `/* */` comment.
    pub comments: Vec<(u32, String)>,
}

impl Scanned {
    /// True if a comment starting on a line in `[from, to]` contains `needle`.
    pub fn comment_in_range_contains(&self, from: u32, to: u32, needle: &str) -> bool {
        self.comments
            .iter()
            .any(|(l, text)| *l >= from && *l <= to && text.contains(needle))
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans `src` into tokens and comments.
pub fn scan(src: &str) -> Scanned {
    let chars: Vec<char> = src.chars().collect();
    let n = chars.len();
    let mut out = Scanned::default();
    let mut i = 0usize;
    let mut line = 1u32;
    while i < n {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        // Line comment (including `///` and `//!` doc comments).
        if c == '/' && i + 1 < n && chars[i + 1] == '/' {
            let start = i;
            while i < n && chars[i] != '\n' {
                i += 1;
            }
            out.comments.push((line, chars[start..i].iter().collect()));
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && i + 1 < n && chars[i + 1] == '*' {
            let (start, start_line) = (i, line);
            i += 2;
            let mut depth = 1u32;
            while i < n && depth > 0 {
                if chars[i] == '\n' {
                    line += 1;
                    i += 1;
                } else if chars[i] == '/' && i + 1 < n && chars[i + 1] == '*' {
                    depth += 1;
                    i += 2;
                } else if chars[i] == '*' && i + 1 < n && chars[i + 1] == '/' {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            out.comments
                .push((start_line, chars[start..i.min(n)].iter().collect()));
            continue;
        }
        // Identifier or keyword — with raw/byte string-literal prefixes
        // (`r"…"`, `r#"…"#`, `b"…"`, `br#"…"#`) peeled off.
        if is_ident_start(c) {
            let start = i;
            while i < n && is_ident_continue(chars[i]) {
                i += 1;
            }
            let text: String = chars[start..i].iter().collect();
            let raw_prefix = matches!(text.as_str(), "r" | "br");
            if raw_prefix && i < n && (chars[i] == '"' || chars[i] == '#') {
                i = consume_raw_string(&chars, i, &mut line);
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
                continue;
            }
            // A plain `b"…"` / `b'…'` prefix needs no special casing: `b`
            // lands as an identifier and the quote is consumed as a literal
            // on the next iteration.
            out.toks.push(Tok::ident(text, line));
            continue;
        }
        // String literal.
        if c == '"' {
            i = consume_string(&chars, i, &mut line);
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
            continue;
        }
        // Char literal vs. lifetime.
        if c == '\'' {
            let next = chars.get(i + 1).copied();
            let after = chars.get(i + 2).copied();
            let is_char = matches!((next, after), (Some('\\'), _) | (Some(_), Some('\'')));
            if is_char {
                // Consume up to and including the closing quote.
                i += 1;
                while i < n {
                    if chars[i] == '\\' {
                        i += 2;
                        continue;
                    }
                    if chars[i] == '\'' {
                        i += 1;
                        break;
                    }
                    if chars[i] == '\n' {
                        line += 1;
                    }
                    i += 1;
                }
                out.toks.push(Tok {
                    kind: TokKind::Literal,
                    text: String::new(),
                    line,
                });
            } else {
                // Lifetime: skip the quote and its identifier.
                i += 1;
                while i < n && is_ident_continue(chars[i]) {
                    i += 1;
                }
            }
            continue;
        }
        // Number literal.
        if c.is_ascii_digit() {
            while i < n
                && (is_ident_continue(chars[i])
                    || (chars[i] == '.'
                        && chars.get(i + 1).is_some_and(char::is_ascii_digit)
                        // `1..x` is a range, not a decimal point.
                        && chars.get(i.wrapping_sub(1)) != Some(&'.')))
            {
                i += 1;
            }
            out.toks.push(Tok {
                kind: TokKind::Literal,
                text: String::new(),
                line,
            });
            continue;
        }
        // Everything else: one punctuation character per token.
        out.toks.push(Tok {
            kind: TokKind::Punct,
            text: c.to_string(),
            line,
        });
        i += 1;
    }
    out
}

/// Consumes a `"…"` literal starting at the opening quote; returns the index
/// after the closing quote.
fn consume_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    i += 1;
    while i < n {
        match chars[i] {
            '\\' => i += 2,
            '"' => return i + 1,
            '\n' => {
                *line += 1;
                i += 1;
            }
            _ => i += 1,
        }
    }
    i
}

/// Consumes a raw string body starting at the `#`s or quote that follow the
/// `r` / `br` prefix; returns the index after the closing delimiter.
fn consume_raw_string(chars: &[char], mut i: usize, line: &mut u32) -> usize {
    let n = chars.len();
    let mut hashes = 0usize;
    while i < n && chars[i] == '#' {
        hashes += 1;
        i += 1;
    }
    if i >= n || chars[i] != '"' {
        return i; // Not actually a raw string (e.g. `r#raw_ident`); bail.
    }
    i += 1;
    while i < n {
        if chars[i] == '\n' {
            *line += 1;
            i += 1;
            continue;
        }
        if chars[i] == '"' {
            let mut j = i + 1;
            let mut seen = 0usize;
            while j < n && chars[j] == '#' && seen < hashes {
                seen += 1;
                j += 1;
            }
            if seen == hashes {
                return j;
            }
        }
        i += 1;
    }
    i
}

/// Marks every token that lives inside a `#[cfg(test)]`- or `#[test]`-gated
/// item (attributes containing the identifier `test` anywhere, so
/// `#[cfg(any(test, feature = "x"))]` is covered too).
///
/// The returned vector is parallel to `toks`: `true` means "test code".
pub fn test_mask(toks: &[Tok]) -> Vec<bool> {
    let mut mask = vec![false; toks.len()];
    let mut i = 0usize;
    while i < toks.len() {
        // Outer attribute `#[…]` (inner `#![…]` never gates an item).
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let Some(close) = matching_bracket(toks, i + 1) else {
                break;
            };
            let gated = toks[i + 2..close].iter().any(|t| t.is_ident("test"));
            if !gated {
                i = close + 1;
                continue;
            }
            // Suppress from the attribute through the end of the gated item:
            // any further attributes, then either a braced body or a `;`.
            let start = i;
            let mut j = close + 1;
            while j < toks.len()
                && toks[j].is_punct('#')
                && toks.get(j + 1).is_some_and(|t| t.is_punct('['))
            {
                match matching_bracket(toks, j + 1) {
                    Some(c) => j = c + 1,
                    None => return mask,
                }
            }
            let mut end = toks.len().saturating_sub(1);
            let mut depth = 0i64;
            for (k, t) in toks.iter().enumerate().skip(j) {
                if t.is_punct('{') {
                    depth += 1;
                } else if t.is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        end = k;
                        break;
                    }
                } else if t.is_punct(';') && depth == 0 {
                    end = k;
                    break;
                }
            }
            for m in mask.iter_mut().take(end + 1).skip(start) {
                *m = true;
            }
            i = end + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Index of the `]` matching the `[` at `open`, honouring nesting.
fn matching_bracket(toks: &[Tok], open: usize) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in toks.iter().enumerate().skip(open) {
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// For every token, the name of the innermost enclosing named `fn`, if any —
/// the granularity the allowlists use (`path::function`).
pub fn fn_context(toks: &[Tok]) -> Vec<Option<String>> {
    let mut ctx: Vec<Option<String>> = vec![None; toks.len()];
    // Stack of (fn name, brace depth of its body).
    let mut stack: Vec<(String, i64)> = Vec::new();
    let mut pending: Option<String> = None;
    let mut depth = 0i64;
    let mut bracket_depth = 0i64;
    for (k, t) in toks.iter().enumerate() {
        if t.is_ident("fn") {
            if let Some(name) = toks.get(k + 1).filter(|t| t.kind == TokKind::Ident) {
                pending = Some(name.text.clone());
            }
        } else if t.is_punct('{') {
            depth += 1;
            if let Some(name) = pending.take() {
                stack.push((name, depth));
            }
        } else if t.is_punct('}') {
            depth -= 1;
            while stack.last().is_some_and(|(_, d)| *d > depth) {
                stack.pop();
            }
        } else if t.is_punct('[') {
            bracket_depth += 1;
        } else if t.is_punct(']') {
            bracket_depth -= 1;
        } else if t.is_punct(';') && bracket_depth == 0 {
            // Bodiless declaration (`fn f();` in a trait): cancel. The
            // bracket guard keeps array types in signatures (`[u8; 4]`)
            // from cancelling a real pending body.
            pending = None;
        }
        ctx[k] = stack.last().map(|(name, _)| name.clone());
    }
    ctx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_and_strings_are_not_tokens() {
        let s = scan(
            r##"
// a .read_page( in a comment
/* and .write_page( in a block */
let x = ".read_page("; // string
let y = r#".write_page("#;
"##,
        );
        assert!(!s.toks.iter().any(|t| t.is_ident("read_page")));
        assert!(!s.toks.iter().any(|t| t.is_ident("write_page")));
        assert_eq!(s.comments.len(), 3);
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let s = scan("fn f<'a>(x: &'a str) -> &'a str { 'l': loop {} }");
        // The identifiers survive; nothing is swallowed by a bogus literal.
        assert!(s.toks.iter().any(|t| t.is_ident("str")));
        assert!(s.toks.iter().any(|t| t.is_ident("loop")));
    }

    #[test]
    fn char_literals_are_consumed() {
        let s = scan(r"let c = 'x'; let e = '\n'; let q = '\'';");
        let lits = s.toks.iter().filter(|t| t.kind == TokKind::Literal).count();
        assert_eq!(lits, 3);
    }

    #[test]
    fn test_mask_covers_cfg_test_mod() {
        let src = "fn lib() { x.unwrap(); }\n#[cfg(test)]\nmod tests { fn t() { y.unwrap(); } }";
        let s = scan(src);
        let mask = test_mask(&s.toks);
        let unwraps: Vec<bool> = s
            .toks
            .iter()
            .zip(&mask)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, m)| *m)
            .collect();
        assert_eq!(unwraps, vec![false, true]);
    }

    #[test]
    fn fn_context_tracks_innermost() {
        let src = "fn outer() { fn inner() { a.unwrap(); } b.unwrap(); }";
        let s = scan(src);
        let ctx = fn_context(&s.toks);
        let got: Vec<Option<String>> = s
            .toks
            .iter()
            .zip(&ctx)
            .filter(|(t, _)| t.is_ident("unwrap"))
            .map(|(_, c)| c.clone())
            .collect();
        assert_eq!(
            got,
            vec![Some("inner".to_string()), Some("outer".to_string())]
        );
    }

    #[test]
    fn line_numbers_are_one_based_and_accurate() {
        let s = scan("a\nb\nc");
        let lines: Vec<u32> = s.toks.iter().map(|t| t.line).collect();
        assert_eq!(lines, vec![1, 2, 3]);
    }
}
