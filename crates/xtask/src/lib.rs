//! # xtask — project-specific static analysis for the setsig workspace
//!
//! `cargo xtask analyze` runs thirteen offline, hand-rolled lints over the
//! workspace source (token-level scanner, no network, no rustc plumbing):
//!
//! 1. **accounting** — raw page I/O (`read_page` / `write_page`) may only be
//!    called from the allowlisted accounting wrappers inside
//!    `crates/pagestore`, so no code path can bypass the disk counters or
//!    the engines' [`ScanStats`] discipline and silently corrupt the
//!    reproduced page-access numbers.
//! 2. **unsafe-audit** — every `unsafe` token must carry a `// SAFETY:`
//!    comment within the three lines above it, and every crate except
//!    `pagestore` and `core` must declare `#![forbid(unsafe_code)]`
//!    (`pagestore`/`core` may relax to `#![deny(unsafe_code)]` so a future
//!    hot path can opt in per site, visibly).
//! 3. **panic-surface** — no `unwrap` / `expect` / `panic!` (or
//!    `unreachable!` / `todo!` / `unimplemented!`) in library code outside
//!    `#[cfg(test)]` modules, tests and benches, except for sites justified
//!    in `crates/xtask/allow/panics.allow`.
//! 4. **layering** — crate dependencies (manifest edges *and* `setsig_*`
//!    source references) must follow the workspace DAG: the storage layers
//!    (`pagestore`, `core`) can never reach up into the harness layers
//!    (`experiments`, `workload`, `bench`), and pure-math crates
//!    (`costmodel`, `workload`) stay dependency-free.
//! 5. **lock-order** — every `Mutex`/`RwLock` declaration carries a
//!    machine-readable `// LOCK-ORDER: <name> [< <parent>]… [leaf]`
//!    annotation; the declared order must form a DAG and every lexically
//!    nested acquisition must follow it (see [`locks`]).
//! 6. **guard-across-io** — no lock guard may be live across a
//!    `read_page`/`write_page`/`flush`/`sync` call; the pool comment's
//!    promise, enforced.
//! 7. **hot-path-hygiene** — functions annotated `// HOT-PATH: <name>`
//!    must not, transitively through the workspace [`callgraph`],
//!    allocate, acquire a lock, or touch raw page I/O outside the
//!    accounting seam; `// HOT-PATH-BOUNDARY:` stops traversal at
//!    reviewed dispatch points, and justified sites live in
//!    `allow/hotpath.allow` (see [`lints::hot_path`]).
//! 8. **panic-reachability** — every `pub` API entry point of `core` /
//!    `pagestore` / `service` that can transitively reach a panic
//!    (unwrap/expect, `panic!` family, indexing) is reported with its
//!    witness chain; justified sinks live in `allow/panic_reach.allow`
//!    (see [`effects`]).
//! 9. **blocking-in-worker** — nothing reachable from the
//!    `service.dispatch` hot-path root past its boundary may carry the
//!    `BLOCK` effect (condvar waits, `join`/`recv`, `thread::sleep`);
//!    the worker's own admission wait is the one sanctioned block.
//! 10. **swallowed-result** — `let _ =` / a bare statement discarding a
//!     `Result`-returning call in library code is an error, with
//!     intentional swallows justified in `allow/swallowed.allow`.
//! 11. **reachability** — never-called non-`pub` fns and unreferenced
//!     `pub` fns in private modules are reported, keeping the growing
//!     workspace dead-code-free.
//! 12. **cost** — every scan entry point carries a machine-readable
//!     `// COST: <expr> pages` contract, and the loop nesting the
//!     [`loopnest`] analyzer reconstructs around each page-I/O call site
//!     must not exceed the contract's polynomial degree; page I/O
//!     outside every contracted root is an error. `cargo xtask cost`
//!     dumps the contract matrix, `--check` diffs it against
//!     `crates/xtask/cost.baseline.json` (see [`lints::cost`]).
//! 13. **stale-allow** — every `crates/xtask/allow/*.allow` entry must
//!     still match a real site; dangling suppressions fail the run.
//!
//! Hot-path-hygiene, panic-reachability and blocking-in-worker are all
//! queries against one bottom-up **effect inference** ([`effects`]): per
//! fn, a set over `{ALLOC, LOCK, RAW_IO, PANIC, BLOCK}` computed by an
//! SCC fixed point over the call graph, reported with shortest witness
//! chains. `cargo xtask effects` dumps the public-API effect matrix as
//! JSON, and `cargo xtask effects --check` diffs it against the
//! committed `crates/xtask/effects.baseline.json`, failing on any drift.
//!
//! The analyzer is deliberately syntactic: it trades soundness-in-general
//! for zero dependencies and total transparency. Each lint is a small token
//! pattern plus an explicit allowlist, and the fixture corpus under
//! `crates/xtask/fixtures/` pins down exactly what each one accepts and
//! rejects (`cargo xtask analyze --self-test`).
//!
//! [`ScanStats`]: https://docs.rs/setsig-core

#![forbid(unsafe_code)]

pub mod callgraph;
pub mod effects;
pub mod lints;
pub mod locks;
pub mod loopnest;
pub mod scan;
pub mod selftest;
pub mod workspace;

use std::fmt;
use std::path::Path;

/// Which lint produced a [`Diagnostic`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Lint {
    /// Raw page I/O outside an accounting wrapper.
    Accounting,
    /// `unsafe` without a `// SAFETY:` comment, or a missing
    /// `#![forbid(unsafe_code)]` / `#![deny(unsafe_code)]` crate attribute.
    UnsafeAudit,
    /// `unwrap` / `expect` / `panic!`-family in non-test library code.
    PanicSurface,
    /// A dependency edge that violates the workspace DAG.
    Layering,
    /// A lock without a valid `LOCK-ORDER:` annotation, or an acquisition
    /// contradicting the declared order.
    LockOrder,
    /// A lock guard live across a page-I/O call.
    GuardAcrossIo,
    /// An allocation, lock acquisition, or raw page-I/O call reachable
    /// from a `// HOT-PATH:` root through the call graph.
    HotPath,
    /// A panic primitive reachable from a `pub` API entry point of the
    /// gated crates.
    PanicReach,
    /// A blocking primitive reachable from the `service.dispatch` root
    /// past its own body.
    BlockingWorker,
    /// A `Result`-returning call whose value is silently discarded.
    SwallowedResult,
    /// A function no workspace code can reach.
    Reachability,
    /// An allowlist entry that matched no site this run.
    StaleAllow,
    /// The public-API effect matrix drifted from the committed baseline
    /// (`cargo xtask effects --check`).
    EffectRegression,
    /// A page-I/O cost-contract violation: a scan entry point without a
    /// `// COST: <expr> pages` contract, an I/O loop nest deeper than the
    /// contract's degree, an I/O site outside every contracted root, or a
    /// malformed contract (see [`lints::cost`] and [`loopnest`]).
    Cost,
}

impl Lint {
    /// Stable kebab-case name, used in output and fixture markers.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Accounting => "accounting",
            Lint::UnsafeAudit => "unsafe-audit",
            Lint::PanicSurface => "panic-surface",
            Lint::Layering => "layering",
            Lint::LockOrder => "lock-order",
            Lint::GuardAcrossIo => "guard-across-io",
            Lint::HotPath => "hot-path-hygiene",
            Lint::PanicReach => "panic-reachability",
            Lint::BlockingWorker => "blocking-in-worker",
            Lint::SwallowedResult => "swallowed-result",
            Lint::Reachability => "reachability",
            Lint::StaleAllow => "stale-allow",
            Lint::EffectRegression => "effect-regression",
            Lint::Cost => "cost",
        }
    }

    /// Parses a fixture-marker name (`//~ ERROR <name>`).
    pub fn from_name(s: &str) -> Option<Self> {
        match s {
            "accounting" => Some(Lint::Accounting),
            "unsafe-audit" => Some(Lint::UnsafeAudit),
            "panic-surface" => Some(Lint::PanicSurface),
            "layering" => Some(Lint::Layering),
            "lock-order" => Some(Lint::LockOrder),
            "guard-across-io" => Some(Lint::GuardAcrossIo),
            "hot-path-hygiene" => Some(Lint::HotPath),
            "panic-reachability" => Some(Lint::PanicReach),
            "blocking-in-worker" => Some(Lint::BlockingWorker),
            "swallowed-result" => Some(Lint::SwallowedResult),
            "reachability" => Some(Lint::Reachability),
            "stale-allow" => Some(Lint::StaleAllow),
            "effect-regression" => Some(Lint::EffectRegression),
            "cost" => Some(Lint::Cost),
            _ => None,
        }
    }
}

impl fmt::Display for Lint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One finding: a file, a line, the lint that fired, and an actionable
/// message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Diagnostic {
    /// Workspace-relative path with forward slashes.
    pub file: String,
    /// 1-based line number.
    pub line: u32,
    /// The lint that fired.
    pub lint: Lint,
    /// What is wrong and how to fix it.
    pub msg: String,
}

impl Diagnostic {
    /// The finding as one JSON object (`--format json` output; keys
    /// `file`, `line`, `lint`, `msg`).
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":{},\"line\":{},\"lint\":{},\"msg\":{}}}",
            json_string(&self.file),
            self.line,
            json_string(self.lint.name()),
            json_string(&self.msg),
        )
    }
}

/// Minimal JSON string encoder (the analyzer stays zero-dependency).
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.lint, self.msg
        )
    }
}

/// Runs every lint over the workspace rooted at `root` and returns the
/// findings sorted by file, line, lint.
pub fn analyze(root: &Path) -> Result<Vec<Diagnostic>, String> {
    let ws = workspace::Workspace::load(root)?;
    // Allowlists load once; `permits` marks entries as they match, and the
    // stale-allow pass at the end reports any that never did.
    let allow_accounting = ws.allowlist("accounting.allow")?;
    let allow_panics = ws.allowlist("panics.allow")?;
    let allow_locks = ws.allowlist("locks.allow")?;
    let allow_hotpath = ws.allowlist("hotpath.allow")?;
    let allow_panic_reach = ws.allowlist("panic_reach.allow")?;
    let allow_blocking = ws.allowlist("blocking.allow")?;
    let allow_swallowed = ws.allowlist("swallowed.allow")?;
    let allow_cost = ws.allowlist("cost.allow")?;
    let mut diags = Vec::new();
    diags.extend(lints::accounting::run(&ws, &allow_accounting));
    diags.extend(lints::unsafe_audit::run(&ws));
    diags.extend(lints::panic_surface::run(&ws, &allow_panics));
    diags.extend(lints::layering::run(&ws)?);
    diags.extend(lints::lock_order::run(&ws, &allow_locks));
    diags.extend(lints::guard_across_io::run(&ws, &allow_locks));
    diags.extend(lints::hot_path::run(&ws, &allow_hotpath, &allow_accounting));
    diags.extend(lints::panic_reach::run(&ws, &allow_panic_reach));
    diags.extend(lints::blocking_worker::run(&ws, &allow_blocking));
    diags.extend(lints::swallowed_result::run(&ws, &allow_swallowed));
    diags.extend(lints::reachability::run(&ws));
    diags.extend(lints::cost::run(&ws, &allow_cost));
    diags.extend(lints::stale_allow::check(&[
        ("crates/xtask/allow/accounting.allow", &allow_accounting),
        ("crates/xtask/allow/panics.allow", &allow_panics),
        ("crates/xtask/allow/locks.allow", &allow_locks),
        ("crates/xtask/allow/hotpath.allow", &allow_hotpath),
        ("crates/xtask/allow/panic_reach.allow", &allow_panic_reach),
        ("crates/xtask/allow/blocking.allow", &allow_blocking),
        ("crates/xtask/allow/swallowed.allow", &allow_swallowed),
        ("crates/xtask/allow/cost.allow", &allow_cost),
    ]));
    diags.sort_by(|a, b| (&a.file, a.line, a.lint, &a.msg).cmp(&(&b.file, b.line, b.lint, &b.msg)));
    Ok(diags)
}
