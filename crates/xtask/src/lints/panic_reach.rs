//! panic-reachability: a `pub` API entry point of the storage and
//! service crates (`core`, `pagestore`, `service`) that can transitively
//! reach a panic is reported with its witness chain.
//!
//! `panic-surface` polices panic *sites* in library code; this lint
//! answers the caller-side question — *which public functions can blow
//! up?* — by querying the [`crate::effects`] inference for `PANIC`
//! (`.unwrap()` / `.expect(…)`, the `panic!` macro family, and `xs[…]`
//! indexing) over trusted call edges. Every entry point whose inferred
//! set carries `PANIC` is walked, and each reachable primitive is
//! reported once (the first entry point in definition order claims it)
//! with the shortest chain from the entry to the primitive.
//!
//! Justified sites live in `allow/panic_reach.allow`, keyed by the
//! **sink** — the fn containing the primitive (`file.rs::fn`), or a whole
//! file (`file.rs`) for kernel modules whose indexing is pervasive and
//! debug-assert-guarded. One sink entry silences every entry point that
//! reaches it, so the list stays proportional to the panic surface, not
//! to the API surface.
//!
//! Entry points are `pub`-marked fns (`pub(crate)` included — the graph
//! cannot tell them apart) outside private modules, test code and trait
//! declarations.

use std::collections::HashSet;

use crate::effects::{self, Effect, EffectGraph, EffectSet, Traversal};
use crate::workspace::{Allowlist, FileClass, SourceFile};
use crate::{Diagnostic, Lint};

/// The crates whose public API the workspace run gates.
pub const GATED_CRATES: [&str; 3] = ["core", "pagestore", "service"];

/// Runs the lint over the whole workspace (lib + bin code).
pub fn run(ws: &crate::workspace::Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    check_files(&files, allow, &GATED_CRATES)
}

/// Fixture entry point: one file as the pretend `experiments` crate.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    check_files(&[file], allow, &["experiments"])
}

/// Core: every pub entry point of `crates` whose inferred set carries
/// `PANIC` is walked down to its primitives.
pub fn check_files(files: &[&SourceFile], allow: &Allowlist, crates: &[&str]) -> Vec<Diagnostic> {
    let eg = EffectGraph::build(files);
    let want = EffectSet::of(&[Effect::Panic]);
    let tr = Traversal {
        include_root_body: true,
        ..Traversal::default()
    };
    let mut diags = Vec::new();
    // One report per primitive site, claimed by the first entry point
    // that reaches it — otherwise a new `unwrap` in a shared helper
    // would repeat once per public caller.
    let mut seen_sites: HashSet<(usize, u32, String)> = HashSet::new();
    for (fid, def) in eg.graph.fns.iter().enumerate() {
        if !def.is_pub || def.is_test || def.in_private_mod || def.is_trait_decl {
            continue;
        }
        let crate_dir = eg.graph.files[def.file].crate_dir.as_deref();
        if !crate_dir.is_some_and(|c| crates.contains(&c)) {
            continue;
        }
        if !eg.inferred[fid].contains(Effect::Panic) {
            continue;
        }
        for finding in effects::reach(&eg, fid, want, &tr) {
            let sink = &eg.graph.fns[finding.fid];
            let sink_file = eg.graph.files[sink.file];
            if allow.permits(&sink_file.rel, Some(&sink.name)) {
                continue;
            }
            let key = (sink.file, finding.line, finding.what.clone());
            if !seen_sites.insert(key) {
                continue;
            }
            let w = effects::witness(&eg, fid, &finding);
            diags.push(Diagnostic {
                file: sink_file.rel.clone(),
                line: finding.line,
                lint: Lint::PanicReach,
                msg: format!(
                    "reachable-panic: pub fn `{}` can reach `{}`: {w}; make the path \
                     infallible or justify the sink in crates/xtask/allow/panic_reach.allow",
                    def.name, finding.what
                ),
            });
        }
    }
    diags
}
