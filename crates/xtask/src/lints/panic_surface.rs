//! **panic-surface** — library code returns errors; it does not panic.
//!
//! Flags `.unwrap()` / `.expect(…)` calls and `panic!` / `unreachable!` /
//! `todo!` / `unimplemented!` macro invocations in library sources, outside
//! `#[cfg(test)]` modules. Binaries, tests and benches are exempt; `assert!`
//! and `debug_assert!` are deliberately *not* flagged — assertions that
//! document invariants are encouraged, blind `.unwrap()` is not.
//!
//! Sites with a real justification (e.g. a mutex poisoned only if a worker
//! already panicked) are listed with reasons in
//! `crates/xtask/allow/panics.allow`.

use crate::effects::{PANIC_MACROS as MACROS, PANIC_METHODS as METHODS};
use crate::workspace::{Allowlist, FileClass, SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// Runs the lint over library sources.
pub fn run(ws: &Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.class != FileClass::Lib {
            continue;
        }
        out.extend(check_file(file, allow));
    }
    out
}

/// Checks one file against the allowlist.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    let toks = &file.scanned.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.test_mask[i] {
            continue;
        }
        let method = METHODS.iter().any(|m| t.is_ident(m))
            && i >= 1
            && toks[i - 1].is_punct('.')
            && toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let mac = MACROS.iter().any(|m| t.is_ident(m))
            && toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        if !(method || mac) {
            continue;
        }
        if allow.permits(&file.rel, file.fn_ctx[i].as_deref()) {
            continue;
        }
        let shape = if method {
            format!(".{}()", t.text)
        } else {
            format!("{}!", t.text)
        };
        out.push(Diagnostic {
            file: file.rel.clone(),
            line: t.line,
            lint: Lint::PanicSurface,
            msg: format!(
                "`{shape}` in library code; return a `Result` (or justify \
                 the site in crates/xtask/allow/panics.allow)"
            ),
        });
    }
    out
}
