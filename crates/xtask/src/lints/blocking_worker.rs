//! blocking-in-worker: nothing reachable from the `service.dispatch`
//! hot-path root past its boundary may block the worker thread.
//!
//! The query service's workers drain a shared admission queue; the pool's
//! throughput argument (DESIGN.md §8) assumes a worker that has picked up
//! a task runs it to completion without parking. A blocking wait smuggled
//! into the dispatch path — a condvar wait inside a shard, a channel
//! `recv` in a merge step — would let one slow shard stall a worker and,
//! transitively, the whole pool.
//!
//! The lint queries the [`crate::effects`] inference for `BLOCK`
//! (`.wait(…)` / `.wait_timeout(…)`, zero-arity `.join()` / `.recv()`,
//! `thread::sleep`) from the fn annotated `// HOT-PATH: service.dispatch`
//! (the root registry is shared with hot-path-hygiene):
//!
//! * the root's **own body is exempt** — the admission-queue condvar wait
//!   in `worker_loop` is the designed idle state, blocking *before* work
//!   is picked up, not during it;
//! * `HOT-PATH-BOUNDARY:` fns are checked but not followed, mirroring
//!   hot-path-hygiene (the shard router's fan-out is reviewed there);
//! * everything else reachable over trusted call edges must be
//!   `BLOCK`-free, or justified by **sink** fn in `allow/blocking.allow`.
//!
//! A workspace without the `service.dispatch` root is itself an error:
//! deleting the annotation must not silently disarm the gate.

use crate::effects::{self, Effect, EffectGraph, EffectSet, Traversal};
use crate::lints::hot_path;
use crate::workspace::{Allowlist, FileClass, SourceFile};
use crate::{Diagnostic, Lint};

/// The hot-path root name the gate keys off.
pub const DISPATCH_ROOT: &str = "service.dispatch";

/// Runs the lint over the whole workspace (lib + bin code).
pub fn run(ws: &crate::workspace::Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    check_files(&files, allow)
}

/// Fixture entry point: one file, its own mini effect graph.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    check_files(&[file], allow)
}

/// Core: walk `BLOCK` findings from every `service.dispatch` root.
pub fn check_files(files: &[&SourceFile], allow: &Allowlist) -> Vec<Diagnostic> {
    let eg = EffectGraph::build(files);
    let ann = hot_path::collect_annotations(&eg.graph);
    let roots: Vec<usize> = ann
        .roots
        .iter()
        .filter(|(_, name)| name == DISPATCH_ROOT)
        .map(|(fid, _)| *fid)
        .collect();
    if roots.is_empty() {
        let file = eg.graph.files[0];
        return vec![Diagnostic {
            file: file.rel.clone(),
            line: 1,
            lint: Lint::BlockingWorker,
            msg: format!(
                "missing-root: no fn is annotated `// HOT-PATH: {DISPATCH_ROOT}`; the \
                 worker-blocking gate has nothing to protect — restore the annotation \
                 on the dispatch loop"
            ),
        }];
    }
    let want = EffectSet::of(&[Effect::Block]);
    let mut diags = Vec::new();
    let mut seen_sites: std::collections::HashSet<(usize, u32, String)> =
        std::collections::HashSet::new();
    for root in roots {
        let tr = Traversal {
            boundaries: ann.boundaries.clone(),
            // The worker's own admission wait is the designed idle state.
            include_root_body: false,
            ..Traversal::default()
        };
        for finding in effects::reach(&eg, root, want, &tr) {
            let sink = &eg.graph.fns[finding.fid];
            let sink_file = eg.graph.files[sink.file];
            if allow.permits(&sink_file.rel, Some(&sink.name)) {
                continue;
            }
            let key = (sink.file, finding.line, finding.what.clone());
            if !seen_sites.insert(key) {
                continue;
            }
            let w = effects::witness(&eg, root, &finding);
            diags.push(Diagnostic {
                file: sink_file.rel.clone(),
                line: finding.line,
                lint: Lint::BlockingWorker,
                msg: format!(
                    "worker-blocks: `{}` blocks the dispatch worker: {w}; one slow shard \
                     must not stall the pool — make the path non-blocking or justify the \
                     sink in crates/xtask/allow/blocking.allow",
                    finding.what
                ),
            });
        }
    }
    diags
}
