//! **unsafe-audit** — every `unsafe` is commented, every crate is fenced.
//!
//! Two rules:
//!
//! 1. Every `unsafe` token (block, fn, impl, trait) must have a comment
//!    containing `SAFETY:` on the same line or within the three lines above
//!    it — the std-library convention, machine-enforced.
//! 2. Every crate's `lib.rs` must fence unsafe code at the crate level:
//!    `#![forbid(unsafe_code)]` everywhere, relaxed to at least
//!    `#![deny(unsafe_code)]` only for `pagestore` and `core` (the two
//!    crates a future hot path might teach to use `unsafe` — behind a
//!    visible per-site `#[allow]` + `// SAFETY:` pair).
//!
//! Unlike the other lints this one also covers tests and benches: an
//! unjustified `unsafe` in a test harness corrupts evidence just as well.

use crate::scan::Tok;
use crate::workspace::{SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// Crates allowed to use `#![deny(unsafe_code)]` instead of `forbid`.
const MAY_DENY: [&str; 2] = ["pagestore", "core"];

/// How many lines above an `unsafe` token a `SAFETY:` comment may sit.
const SAFETY_WINDOW: u32 = 3;

/// Runs both rules over the workspace.
pub fn run(ws: &Workspace) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        out.extend(check_file(file));
        if let Some(crate_dir) = lib_rs_crate(&file.rel) {
            out.extend(check_crate_attr(file, crate_dir));
        }
    }
    out
}

/// `Some(<crate dir>)` if `rel` is a crate root (`crates/<dir>/src/lib.rs`
/// or the facade's `src/lib.rs`).
fn lib_rs_crate(rel: &str) -> Option<&str> {
    if rel == "src/lib.rs" {
        return Some("setsig");
    }
    let rest = rel.strip_prefix("crates/")?;
    let (dir, tail) = rest.split_once('/')?;
    (tail == "src/lib.rs").then_some(dir)
}

/// Rule 1: `unsafe` tokens need a nearby `SAFETY:` comment.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for t in &file.scanned.toks {
        if !t.is_ident("unsafe") {
            continue;
        }
        let from = t.line.saturating_sub(SAFETY_WINDOW);
        if file
            .scanned
            .comment_in_range_contains(from, t.line, "SAFETY:")
        {
            continue;
        }
        out.push(Diagnostic {
            file: file.rel.clone(),
            line: t.line,
            lint: Lint::UnsafeAudit,
            msg: "`unsafe` without a `// SAFETY:` comment on the same line \
                  or the three lines above it"
                .to_string(),
        });
    }
    out
}

/// Rule 2: the crate-level fence attribute.
pub fn check_crate_attr(file: &SourceFile, crate_dir: &str) -> Vec<Diagnostic> {
    let may_deny = MAY_DENY.contains(&crate_dir);
    let toks = &file.scanned.toks;
    let mut found = false;
    for (i, t) in toks.iter().enumerate() {
        // `#![forbid(unsafe_code, …)]` / `#![deny(unsafe_code, …)]`.
        if !(t.is_punct('#')
            && toks.get(i + 1).is_some_and(|t| t.is_punct('!'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct('[')))
        {
            continue;
        }
        let fence = match toks.get(i + 3) {
            Some(t) if t.is_ident("forbid") => true,
            Some(t) if t.is_ident("deny") && may_deny => true,
            _ => false,
        };
        if !fence || !toks.get(i + 4).is_some_and(|t| t.is_punct('(')) {
            continue;
        }
        let names = toks[i + 5..]
            .iter()
            .take_while(|t| !t.is_punct(')'))
            .any(|t| t.is_ident("unsafe_code"));
        if names {
            found = true;
            break;
        }
    }
    if found {
        return Vec::new();
    }
    let want = if may_deny {
        "#![deny(unsafe_code)] (or forbid)"
    } else {
        "#![forbid(unsafe_code)]"
    };
    vec![Diagnostic {
        file: file.rel.clone(),
        line: 1,
        lint: Lint::UnsafeAudit,
        msg: format!("crate `{crate_dir}` is missing a crate-level {want} attribute"),
    }]
}

/// Helper for fixtures: true if the token stream contains an `unsafe` ident.
pub fn has_unsafe(toks: &[Tok]) -> bool {
    toks.iter().any(|t| t.is_ident("unsafe"))
}
