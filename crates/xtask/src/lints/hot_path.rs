//! hot-path-hygiene: annotated scan kernels must stay allocation-, lock-
//! and raw-I/O-free, **transitively** through the workspace call graph.
//!
//! # Annotation grammar
//!
//! A comment on the line of a `fn` (or within the three lines above it):
//!
//! ```text
//! HOT-PATH: <name>
//! HOT-PATH-BOUNDARY: <reason>
//! ```
//!
//! (written as a `//` comment; `<name>` matches `[A-Za-z0-9_.-]+`, the
//! convention is `crate.path`, e.g. `bssf.and_loop`).
//!
//! `HOT-PATH:` marks the fn as a hot-path **root**: its body and — via
//! the [`crate::callgraph`] — everything it can reach must not
//!
//! * allocate: `Vec::new` / `vec![…]` / `.to_vec()` / `.clone()` /
//!   `Box::new` / `format!` / `String::from`;
//! * acquire any lock (`.lock()`, or `.read()`/`.write()` on an `RwLock`
//!   declared in the same file — the same receiver heuristic as
//!   `guard-across-io`, so `io::Read::read` cannot false-positive);
//! * call raw page I/O (`read_page` / `write_page`) outside the
//!   accounting seam (fns permitted by `allow/accounting.allow`).
//!
//! `HOT-PATH-BOUNDARY:` marks a fn where traversal **stops**: its own
//! body is still checked, but its callees are not followed. This is the
//! pressure valve for dispatch points whose fan-out is intentionally not
//! hot-path-clean (the shard router's `query_shard` dispatches into whole
//! engines that take the per-shard `RwLock` by design); the mandatory
//! `<reason>` keeps the exemption reviewable.
//!
//! Justified violations live in `allow/hotpath.allow`, keyed by the
//! **callee** fn (one `file.rs::fn` entry covers every finding inside that
//! fn, on every hot path that reaches it).
//!
//! # Blind spots (deliberate, see DESIGN.md §9)
//!
//! Calls that resolve to nothing (std, vendored deps) are not traversed;
//! allocation is matched by the exact token list above, so e.g.
//! `Vec::with_capacity` pre-sizing outside the loop is allowed by
//! construction.

use std::collections::{HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::locks::{self, AcqMethod, LockKind};
use crate::workspace::{Allowlist, FileClass, SourceFile};
use crate::{Diagnostic, Lint};

/// The root annotation marker.
pub const ANNOTATION: &str = "HOT-PATH:";

/// The traversal-boundary annotation marker.
pub const BOUNDARY_ANNOTATION: &str = "HOT-PATH-BOUNDARY:";

/// How many lines above the `fn` the annotation may sit.
pub const ANNOTATION_WINDOW: u32 = 3;

/// Method calls that allocate.
const ALLOC_METHODS: [&str; 2] = ["clone", "to_vec"];

/// Macros that allocate.
const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// `Type::fn` associated calls that allocate.
const ALLOC_PATHS: [(&str, &str); 3] = [("Vec", "new"), ("Box", "new"), ("String", "from")];

/// Raw page-I/O entry points (the accounting lint's subject).
const IO_CALLS: [&str; 2] = ["read_page", "write_page"];

/// Runs the lint over the whole workspace (lib + bin code).
pub fn run(
    ws: &crate::workspace::Workspace,
    allow: &Allowlist,
    accounting: &Allowlist,
) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    check_files(&files, allow, accounting)
}

/// Fixture entry point: one file, its own mini call graph.
pub fn check_file(file: &SourceFile, allow: &Allowlist, accounting: &Allowlist) -> Vec<Diagnostic> {
    check_files(&[file], allow, accounting)
}

/// The annotation a comment carries, if any: `(is_boundary, payload)`.
///
/// Only plain `//` / `/* */` comments *leading* with the marker count:
/// doc comments (`///`, `//!`) are prose, so module docs (like this one's)
/// can quote the grammar without becoming an annotation.
fn annotation_of(text: &str) -> Option<(bool, &str)> {
    let t = text.trim_start();
    let t = t.strip_prefix("//").or_else(|| t.strip_prefix("/*"))?;
    if t.starts_with(['/', '!']) {
        return None; // doc comment
    }
    let t = t.trim_start_matches('*').trim_start();
    let (boundary, rest) = if let Some(r) = t.strip_prefix(BOUNDARY_ANNOTATION) {
        (true, r)
    } else if let Some(r) = t.strip_prefix(ANNOTATION) {
        (false, r)
    } else {
        return None;
    };
    let payload = rest
        .lines()
        .next()
        .unwrap_or("")
        .trim_end_matches("*/")
        .trim();
    Some((boundary, payload))
}

fn valid_path_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// Core: build the graph, find the annotated roots and boundaries, and
/// walk each root's reachable set.
pub fn check_files(
    files: &[&SourceFile],
    allow: &Allowlist,
    accounting: &Allowlist,
) -> Vec<Diagnostic> {
    let graph = CallGraph::build(files);
    let mut diags = Vec::new();

    // Attach annotations to fn definitions (nearest comment in the
    // window, the lock-registry idiom).
    let mut roots: Vec<(usize, String)> = Vec::new();
    let mut boundary: HashSet<usize> = HashSet::new();
    let mut consumed: HashSet<(usize, u32)> = HashSet::new();
    for (fid, def) in graph.fns.iter().enumerate() {
        let file = graph.files[def.file];
        let from = def.line.saturating_sub(ANNOTATION_WINDOW);
        let Some((cline, (is_boundary, payload))) = file
            .scanned
            .comments
            .iter()
            .rev()
            .filter(|(l, _)| *l >= from && *l <= def.line)
            .find_map(|(l, t)| annotation_of(t).map(|a| (*l, a)))
        else {
            continue;
        };
        consumed.insert((def.file, cline));
        if is_boundary {
            if payload.is_empty() {
                diags.push(diag(
                    file,
                    cline,
                    "malformed: HOT-PATH-BOUNDARY gives no reason; write \
                     `// HOT-PATH-BOUNDARY: <why callees are exempt>`"
                        .to_string(),
                ));
            } else {
                boundary.insert(fid);
            }
            continue;
        }
        let mut words = payload.split_whitespace();
        let Some(name) = words.next() else {
            diags.push(diag(
                file,
                cline,
                "malformed: HOT-PATH annotation names no path (grammar: HOT-PATH: <name>)"
                    .to_string(),
            ));
            continue;
        };
        if !valid_path_name(name) {
            diags.push(diag(
                file,
                cline,
                format!("malformed: hot-path name `{name}` has characters outside [A-Za-z0-9_.-]"),
            ));
            continue;
        }
        if let Some(extra) = words.next() {
            diags.push(diag(
                file,
                cline,
                format!("malformed: unexpected token `{extra}` (grammar: HOT-PATH: <name>)"),
            ));
            continue;
        }
        roots.push((fid, name.to_string()));
    }

    // An annotation no fn claimed is a typo waiting to silently disable
    // the gate — report it.
    for (fi, file) in graph.files.iter().enumerate() {
        for (l, text) in &file.scanned.comments {
            if annotation_of(text).is_some() && !consumed.contains(&(fi, *l)) {
                diags.push(diag(
                    file,
                    *l,
                    format!(
                        "malformed: hot-path annotation attaches to no fn \
                         (nearest `fn` must start within {ANNOTATION_WINDOW} lines below)"
                    ),
                ));
            }
        }
    }

    // Per-file lock machinery, computed once.
    let mut lock_info: HashMap<usize, (Vec<locks::Acquisition>, HashSet<String>)> = HashMap::new();
    for (fi, file) in graph.files.iter().enumerate() {
        let acqs = locks::collect_acquisitions(file);
        let rw_fields: HashSet<String> = locks::collect_decls(file)
            .into_iter()
            .filter(|d| d.kind == LockKind::RwLock)
            .map(|d| d.field)
            .collect();
        lock_info.insert(fi, (acqs, rw_fields));
    }

    let root_ids: HashSet<usize> = roots.iter().map(|(fid, _)| *fid).collect();
    // Site-level dedup: a fn reachable from two roots reports each
    // violation once (under the first root in annotation order).
    let mut seen_sites: HashSet<(usize, u32, String)> = HashSet::new();

    for (root_fid, root_name) in &roots {
        let mut visited: HashSet<usize> = HashSet::new();
        // (fn, call-chain from the root, inclusive of the fn itself when
        // it is not the root).
        let mut queue: Vec<(usize, Vec<String>)> = vec![(*root_fid, Vec::new())];
        while let Some((fid, chain)) = queue.pop() {
            if !visited.insert(fid) {
                continue;
            }
            let def = &graph.fns[fid];
            if def.is_test {
                continue;
            }
            check_body(
                &graph,
                fid,
                root_name,
                &chain,
                allow,
                accounting,
                &lock_info,
                &mut seen_sites,
                &mut diags,
            );
            if boundary.contains(&fid) {
                continue;
            }
            for &ci in &graph.calls_by_fn[fid] {
                let call = &graph.calls[ci];
                if call.is_test {
                    continue;
                }
                for &t in &call.targets {
                    // Another root is its own traversal; don't re-walk it
                    // under this one's name.
                    if t != *root_fid && root_ids.contains(&t) {
                        continue;
                    }
                    // Traverse only trustworthy edges. A method call on an
                    // arbitrary receiver over-approximates to every
                    // same-named workspace method, and common names
                    // (`insert`, `wait`, `clear`) would drag the walk
                    // across crates through std receivers. `self.` dispatch
                    // is exact; same-crate method candidates are plausible;
                    // cross-crate method hops are dropped — each layer
                    // declares its own HOT-PATH roots over its kernels
                    // (DESIGN.md §9).
                    let trusted = match &call.kind {
                        crate::callgraph::CallKind::Free
                        | crate::callgraph::CallKind::Path { .. } => true,
                        crate::callgraph::CallKind::Method { recv } => {
                            recv.as_deref() == Some("self")
                                || graph.files[graph.fns[t].file].crate_dir
                                    == graph.files[call.file].crate_dir
                        }
                    };
                    if !trusted {
                        continue;
                    }
                    let mut next = chain.clone();
                    next.push(graph.fns[t].name.clone());
                    queue.push((t, next));
                }
            }
        }
    }
    diags
}

/// Scans one reachable fn's body for allocation / lock / raw-I/O tokens.
#[allow(clippy::too_many_arguments)]
fn check_body(
    graph: &CallGraph<'_>,
    fid: usize,
    root_name: &str,
    chain: &[String],
    allow: &Allowlist,
    accounting: &Allowlist,
    lock_info: &HashMap<usize, (Vec<locks::Acquisition>, HashSet<String>)>,
    seen_sites: &mut HashSet<(usize, u32, String)>,
    diags: &mut Vec<Diagnostic>,
) {
    let def = &graph.fns[fid];
    let Some((b0, b1)) = def.body else {
        return; // trait declaration without a default body
    };
    let file = graph.files[def.file];
    let toks = &file.scanned.toks;
    // Token ranges of `fn`s nested *inside* this body are their own call
    // targets; skip their tokens here so an uncalled nested fn cannot
    // taint its host.
    let nested: Vec<(usize, usize)> = graph
        .fns
        .iter()
        .filter(|f| f.file == def.file)
        .filter_map(|f| f.body)
        .filter(|&(o, c)| o > b0 && c < b1)
        .collect();
    let in_nested = |i: usize| nested.iter().any(|&(o, c)| o <= i && i <= c);
    let mut report = |line: u32, what: String, msg: String| {
        if allow.permits(&file.rel, Some(&def.name)) {
            return;
        }
        if seen_sites.insert((def.file, line, what)) {
            diags.push(diag(file, line, msg));
        }
    };
    let via = |chain: &[String]| {
        if chain.is_empty() {
            format!("in hot path `{root_name}`")
        } else {
            format!("in hot path `{root_name}` (via {})", chain.join(" → "))
        }
    };

    for i in b0..=b1 {
        if file.test_mask[i] || in_nested(i) {
            continue;
        }
        let t = &toks[i];
        if t.kind != crate::scan::TokKind::Ident {
            continue;
        }
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let next_paren = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let via_dot = i >= 1 && toks[i - 1].is_punct('.');
        let via_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        let alloc = if ALLOC_MACROS.contains(&t.text.as_str()) && next_bang {
            Some(format!("{}!", t.text))
        } else if ALLOC_METHODS.contains(&t.text.as_str()) && next_paren && via_dot {
            Some(format!(".{}()", t.text))
        } else if next_paren && via_path && i >= 3 {
            ALLOC_PATHS
                .iter()
                .find(|(q, m)| t.is_ident(m) && toks[i - 3].is_ident(q))
                .map(|(q, m)| format!("{q}::{m}"))
        } else {
            None
        };
        if let Some(what) = alloc {
            report(
                t.line,
                format!("alloc:{what}"),
                format!(
                    "alloc-in-hot-path: `{what}` inside `{}` {}; hoist the buffer out of \
                     the loop or justify in crates/xtask/allow/hotpath.allow",
                    def.name,
                    via(chain)
                ),
            );
            continue;
        }
        if IO_CALLS.contains(&t.text.as_str()) && next_paren && (via_dot || via_path) {
            // The accounting seam (pool/disk wrappers) is the one place
            // raw I/O belongs; everything it permits, we permit.
            if !accounting.permits(&file.rel, Some(&def.name)) {
                report(
                    t.line,
                    format!("io:{}", t.text),
                    format!(
                        "io-in-hot-path: raw `{}` inside `{}` {} bypasses the accounting \
                         seam; go through the buffer pool or justify in \
                         crates/xtask/allow/hotpath.allow",
                        t.text,
                        def.name,
                        via(chain)
                    ),
                );
            }
        }
    }

    let (acqs, rw_fields) = &lock_info[&def.file];
    for acq in acqs {
        if acq.idx < b0 || acq.idx > b1 || in_nested(acq.idx) {
            continue;
        }
        // `.read()`/`.write()` only count against RwLocks declared in
        // this file, mirroring guard-across-io's receiver heuristic.
        if acq.method != AcqMethod::Lock
            && !acq.receiver.as_ref().is_some_and(|r| rw_fields.contains(r))
        {
            continue;
        }
        let recv = acq.receiver.clone().unwrap_or_else(|| "<expr>".to_string());
        report(
            acq.line,
            format!("lock:{}:{}", recv, acq.method.method_name()),
            format!(
                "lock-in-hot-path: `{recv}.{}()` inside `{}` {}; hot kernels must run \
                 lock-free — move the acquisition outside or justify in \
                 crates/xtask/allow/hotpath.allow",
                acq.method.method_name(),
                def.name,
                via(chain)
            ),
        );
    }
}

fn diag(file: &SourceFile, line: u32, msg: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line,
        lint: Lint::HotPath,
        msg,
    }
}
