//! hot-path-hygiene: annotated scan kernels must stay allocation-, lock-
//! and raw-I/O-free, **transitively** through the workspace call graph.
//!
//! # Annotation grammar
//!
//! A comment on the line of a `fn` (or within the three lines above it):
//!
//! ```text
//! HOT-PATH: <name>
//! HOT-PATH-BOUNDARY: <reason>
//! ```
//!
//! (written as a `//` comment; `<name>` matches `[A-Za-z0-9_.-]+`, the
//! convention is `crate.path`, e.g. `bssf.and_loop`).
//!
//! `HOT-PATH:` marks the fn as a hot-path **root**. The lint is a query
//! against the [`crate::effects`] inference: the root's reachable set
//! (over trusted call edges) must carry neither `ALLOC` nor `LOCK` nor
//! `RAW_IO` — the primitive tables live in `effects.rs` and include
//! `Vec::with_capacity` and `.collect()`, so pre-sizing *inside* the
//! kernel now counts and must be hoisted to setup code. Every finding is
//! reported with its shortest **witness chain**, `root (file:line) → hop
//! (call file:line) → … → `primitive` (file:line)`.
//!
//! `HOT-PATH-BOUNDARY:` marks a fn where traversal **stops**: its own
//! body is still checked, but its callees are not followed. This is the
//! pressure valve for dispatch points whose fan-out is intentionally not
//! hot-path-clean (the shard router's `query_shard` dispatches into whole
//! engines that take the per-shard `RwLock` by design); the mandatory
//! `<reason>` keeps the exemption reviewable.
//!
//! Justified violations live in `allow/hotpath.allow`, keyed by the
//! **sink** fn (one `file.rs::fn` entry covers every finding inside that
//! fn, on every hot path that reaches it). Raw I/O inside the accounting
//! seam (fns permitted by `allow/accounting.allow`) is sanctioned.
//!
//! # Blind spots (deliberate, see DESIGN.md §9–10)
//!
//! Calls that resolve to nothing (std, vendored deps) are not traversed;
//! allocation is matched by the exact token tables in `effects.rs`.

use std::collections::HashSet;

use crate::callgraph::CallGraph;
use crate::effects::{self, Effect, EffectGraph, EffectSet, Traversal};
use crate::workspace::{Allowlist, FileClass, SourceFile};
use crate::{Diagnostic, Lint};

/// The root annotation marker.
pub const ANNOTATION: &str = "HOT-PATH:";

/// The traversal-boundary annotation marker.
pub const BOUNDARY_ANNOTATION: &str = "HOT-PATH-BOUNDARY:";

/// How many lines above the `fn` the annotation may sit.
pub const ANNOTATION_WINDOW: u32 = 3;

/// Runs the lint over the whole workspace (lib + bin code).
pub fn run(
    ws: &crate::workspace::Workspace,
    allow: &Allowlist,
    accounting: &Allowlist,
) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    check_files(&files, allow, accounting)
}

/// Fixture entry point: one file, its own mini call graph.
pub fn check_file(file: &SourceFile, allow: &Allowlist, accounting: &Allowlist) -> Vec<Diagnostic> {
    check_files(&[file], allow, accounting)
}

/// The annotation a comment carries, if any: `(is_boundary, payload)`.
///
/// Only plain `//` / `/* */` comments *leading* with the marker count:
/// doc comments (`///`, `//!`) are prose, so module docs (like this one's)
/// can quote the grammar without becoming an annotation.
fn annotation_of(text: &str) -> Option<(bool, &str)> {
    let t = text.trim_start();
    let t = t.strip_prefix("//").or_else(|| t.strip_prefix("/*"))?;
    if t.starts_with(['/', '!']) {
        return None; // doc comment
    }
    let t = t.trim_start_matches('*').trim_start();
    let (boundary, rest) = if let Some(r) = t.strip_prefix(BOUNDARY_ANNOTATION) {
        (true, r)
    } else if let Some(r) = t.strip_prefix(ANNOTATION) {
        (false, r)
    } else {
        return None;
    };
    let payload = rest
        .lines()
        .next()
        .unwrap_or("")
        .trim_end_matches("*/")
        .trim();
    Some((boundary, payload))
}

fn valid_path_name(s: &str) -> bool {
    !s.is_empty()
        && s.chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-'))
}

/// The hot-path annotations over a call graph: named roots (in definition
/// order), boundary fns, and malformed-annotation diagnostics.
///
/// Shared with `blocking-in-worker`, which keys off the root named
/// `service.dispatch`; only this lint reports the malformed shapes, so
/// they are diagnosed once per run.
pub struct Annotations {
    /// `(fn id, hot-path name)` per root annotation.
    pub roots: Vec<(usize, String)>,
    /// Fns marked `HOT-PATH-BOUNDARY:` with a reason.
    pub boundaries: HashSet<usize>,
    /// Malformed / orphaned annotation findings.
    pub malformed: Vec<Diagnostic>,
}

/// Attaches annotations to fn definitions (nearest comment in the
/// window, the lock-registry idiom) and reports every malformed shape.
pub fn collect_annotations(graph: &CallGraph<'_>) -> Annotations {
    let mut out = Annotations {
        roots: Vec::new(),
        boundaries: HashSet::new(),
        malformed: Vec::new(),
    };
    let mut consumed: HashSet<(usize, u32)> = HashSet::new();
    for (fid, def) in graph.fns.iter().enumerate() {
        let file = graph.files[def.file];
        let from = def.line.saturating_sub(ANNOTATION_WINDOW);
        let Some((cline, (is_boundary, payload))) = file
            .scanned
            .comments
            .iter()
            .rev()
            .filter(|(l, _)| *l >= from && *l <= def.line)
            .find_map(|(l, t)| annotation_of(t).map(|a| (*l, a)))
        else {
            continue;
        };
        consumed.insert((def.file, cline));
        if is_boundary {
            if payload.is_empty() {
                out.malformed.push(diag(
                    file,
                    cline,
                    "malformed: HOT-PATH-BOUNDARY gives no reason; write \
                     `// HOT-PATH-BOUNDARY: <why callees are exempt>`"
                        .to_string(),
                ));
            } else {
                out.boundaries.insert(fid);
            }
            continue;
        }
        let mut words = payload.split_whitespace();
        let Some(name) = words.next() else {
            out.malformed.push(diag(
                file,
                cline,
                "malformed: HOT-PATH annotation names no path (grammar: HOT-PATH: <name>)"
                    .to_string(),
            ));
            continue;
        };
        if !valid_path_name(name) {
            out.malformed.push(diag(
                file,
                cline,
                format!("malformed: hot-path name `{name}` has characters outside [A-Za-z0-9_.-]"),
            ));
            continue;
        }
        if let Some(extra) = words.next() {
            out.malformed.push(diag(
                file,
                cline,
                format!("malformed: unexpected token `{extra}` (grammar: HOT-PATH: <name>)"),
            ));
            continue;
        }
        out.roots.push((fid, name.to_string()));
    }

    // An annotation no fn claimed is a typo waiting to silently disable
    // the gate — report it.
    for (fi, file) in graph.files.iter().enumerate() {
        for (l, text) in &file.scanned.comments {
            if annotation_of(text).is_some() && !consumed.contains(&(fi, *l)) {
                out.malformed.push(diag(
                    file,
                    *l,
                    format!(
                        "malformed: hot-path annotation attaches to no fn \
                         (nearest `fn` must start within {ANNOTATION_WINDOW} lines below)"
                    ),
                ));
            }
        }
    }
    out
}

/// Core: build the effect graph, then query each root's reachable set
/// for `ALLOC` / `LOCK` / `RAW_IO` findings.
pub fn check_files(
    files: &[&SourceFile],
    allow: &Allowlist,
    accounting: &Allowlist,
) -> Vec<Diagnostic> {
    let eg = EffectGraph::build(files);
    let ann = collect_annotations(&eg.graph);
    let mut diags = ann.malformed.clone();

    let want = EffectSet::of(&[Effect::Alloc, Effect::Lock, Effect::RawIo]);
    let root_ids: HashSet<usize> = ann.roots.iter().map(|(fid, _)| *fid).collect();
    // Site-level dedup: a fn reachable from two roots reports each
    // violation once (under the first root in annotation order).
    let mut seen_sites: HashSet<(usize, u32, String)> = HashSet::new();

    for (root_fid, root_name) in &ann.roots {
        // Another root is its own traversal; don't re-walk it under this
        // one's name.
        let skip: HashSet<usize> = root_ids.iter().copied().filter(|f| f != root_fid).collect();
        let tr = Traversal {
            boundaries: ann.boundaries.clone(),
            skip,
            include_root_body: true,
        };
        for finding in effects::reach(&eg, *root_fid, want, &tr) {
            let sink = &eg.graph.fns[finding.fid];
            let sink_file = eg.graph.files[sink.file];
            if allow.permits(&sink_file.rel, Some(&sink.name)) {
                continue;
            }
            // The accounting seam (pool/disk wrappers) is the one place
            // raw I/O belongs; everything it permits, we permit.
            if finding.effect == Effect::RawIo
                && accounting.permits(&sink_file.rel, Some(&sink.name))
            {
                continue;
            }
            let key = (
                sink.file,
                finding.line,
                format!("{:?}:{}", finding.effect, finding.what),
            );
            if !seen_sites.insert(key) {
                continue;
            }
            let w = effects::witness(&eg, *root_fid, &finding);
            let msg = match finding.effect {
                Effect::Alloc => format!(
                    "alloc-in-hot-path: `{}` on hot path `{root_name}`: {w}; hoist the \
                     buffer out of the kernel or justify in crates/xtask/allow/hotpath.allow",
                    finding.what
                ),
                Effect::Lock => format!(
                    "lock-in-hot-path: `{}` on hot path `{root_name}`: {w}; hot kernels \
                     must run lock-free — move the acquisition outside or justify in \
                     crates/xtask/allow/hotpath.allow",
                    finding.what
                ),
                _ => format!(
                    "io-in-hot-path: raw `{}` on hot path `{root_name}` bypasses the \
                     accounting seam: {w}; go through the buffer pool or justify in \
                     crates/xtask/allow/hotpath.allow",
                    finding.what
                ),
            };
            diags.push(diag(sink_file, finding.line, msg));
        }
    }
    diags
}

fn diag(file: &SourceFile, line: u32, msg: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line,
        lint: Lint::HotPath,
        msg,
    }
}
