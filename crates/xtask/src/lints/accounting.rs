//! **accounting** — raw page I/O only inside accounting wrappers.
//!
//! The reproduced numbers of the paper are page-access counts, and PR 1
//! made the engines concurrent: slice scans now charge their *logical*
//! pages through `ScanStats` while the disk records the physical traffic.
//! That split only stays trustworthy if every page actually moves through
//! the accounting substrate. This lint therefore forbids calling
//! `read_page` / `write_page` anywhere except the allowlisted wrappers in
//! `crates/pagestore` (the `Disk` itself, the `BufferPool` cache, and the
//! `PagedFile` handle everything else is built on).
//!
//! Test modules, integration tests and benches are exempt — asserting on
//! raw counters is exactly what they are for.

use crate::workspace::{Allowlist, FileClass, SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// The raw I/O entry points being guarded.
const RAW_IO: [&str; 2] = ["read_page", "write_page"];

/// Runs the lint over every library/binary source file.
pub fn run(ws: &Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.class == FileClass::Test {
            continue;
        }
        out.extend(check_file(file, allow));
    }
    out
}

/// Checks one file against the allowlist.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    let toks = &file.scanned.toks;
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.test_mask[i] || !RAW_IO.iter().any(|m| t.is_ident(m)) {
            continue;
        }
        // Must be a call: `.read_page(` or `Path::read_page(`.
        let called = toks.get(i + 1).is_some_and(|n| n.is_punct('('));
        let via_dot = i >= 1 && toks[i - 1].is_punct('.');
        let via_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        if !called || !(via_dot || via_path) {
            continue; // A definition (`fn read_page`) or a bare mention.
        }
        if allow.permits(&file.rel, file.fn_ctx[i].as_deref()) {
            continue;
        }
        out.push(Diagnostic {
            file: file.rel.clone(),
            line: t.line,
            lint: Lint::Accounting,
            msg: format!(
                "raw page I/O `{}` outside an accounting wrapper; route it \
                 through `PagedFile`/`BufferPool` so disk counters and \
                 ScanStats stay exact, or justify the site in \
                 crates/xtask/allow/accounting.allow",
                t.text
            ),
        });
    }
    out
}
