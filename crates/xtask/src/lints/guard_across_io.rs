//! **guard-across-io** — no lock guard may be live across a page-I/O
//! call.
//!
//! This is exactly the invariant `cache.rs` promises in prose ("the pool
//! lock is never held across a disk call"): holding a lock across
//! `read_page`/`write_page`/`flush`/`sync` serializes I/O behind the
//! lock today and deadlocks a future async or sharded pagestore. The
//! lint pairs every acquisition site's lexical guard range (see
//! [`crate::locks`]) with every I/O call inside it and reports one
//! `io-under-lock:` diagnostic per (guard, call) pair. Justified sites —
//! e.g. a sink whose mutex *is* the serialization point for its writer —
//! live in `crates/xtask/allow/locks.allow`.

use crate::locks::{self, AcqMethod, LockKind};
use crate::workspace::{Allowlist, FileClass, SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// Calls treated as page I/O: the `PageIo` trait surface plus the
/// flush/sync family.
pub const IO_CALLS: [&str; 7] = [
    "read_page",
    "write_page",
    "update_page",
    "append_page",
    "extend_to",
    "flush",
    "sync",
];

/// Runs the lint over every library/binary source file.
pub fn run(ws: &Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in &ws.files {
        if file.class == FileClass::Test {
            continue;
        }
        out.extend(check_file(file, allow));
    }
    out
}

/// Single-file entry point, shared with the fixture self-tests.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    let toks = &file.scanned.toks;
    // Only guards of locks declared in this file count; a bare `.read()`
    // on anything else is io::Read, not an RwLock acquisition.
    let rwlocks: Vec<String> = locks::collect_decls(file)
        .into_iter()
        .filter(|d| d.kind == LockKind::RwLock)
        .map(|d| d.field)
        .collect();
    let guards: Vec<locks::Acquisition> = locks::collect_acquisitions(file)
        .into_iter()
        .filter(|a| match a.method {
            AcqMethod::Lock => true,
            AcqMethod::Read | AcqMethod::Write => a
                .receiver
                .as_deref()
                .is_some_and(|r| rwlocks.iter().any(|f| f == r)),
        })
        .collect();
    let mut out = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if file.test_mask[i] || t.kind != crate::scan::TokKind::Ident {
            continue;
        }
        if !IO_CALLS.contains(&t.text.as_str()) {
            continue;
        }
        // A call site: `x.read_page(` or `PageIo::read_page(`; skip the
        // definitions themselves (`fn read_page(`).
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        let is_call = i > 0 && (toks[i - 1].is_punct('.') || toks[i - 1].is_punct(':'));
        if !is_call {
            continue;
        }
        for g in &guards {
            // `self.out.lock().flush()` — the flush *is* the guard's own
            // statement; that is still I/O under the lock and exactly the
            // shape the allowlist exists for, so no exemption here.
            if !g.covers(i) {
                continue;
            }
            if allow.permits(&file.rel, file.fn_ctx[i].as_deref()) {
                continue;
            }
            out.push(Diagnostic {
                file: file.rel.clone(),
                line: t.line,
                lint: Lint::GuardAcrossIo,
                msg: format!(
                    "io-under-lock: `{}` called while the guard from `.{}()` on \
                     line {} is live; drop the guard (or end its block) before \
                     page I/O, or justify the site in \
                     crates/xtask/allow/locks.allow",
                    t.text,
                    g.method.method_name(),
                    g.line,
                ),
            });
        }
    }
    out
}
