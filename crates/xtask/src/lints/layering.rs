//! **layering** — the dependency DAG is part of the reproduction's claims.
//!
//! The storage substrate (`pagestore`) and the access facilities (`core`,
//! `nix`) must never reach up into the measurement harness (`experiments`,
//! `workload`, `bench`): if they could, build or query code could consult
//! workload knowledge and quietly break the paper's protocol. Likewise the
//! analytic crates (`costmodel`, `workload`) stay free of storage
//! dependencies, so the model and the measurement cannot contaminate each
//! other. The observability crate (`obs`) sits below the facilities — it
//! may be *used* by them but depends on nothing, so attaching a recorder
//! can never alter what a scan reads.
//!
//! Enforced on both levels:
//! * **manifest edges** — `[dependencies]` in each `crates/*/Cargo.toml`
//!   (dev-dependencies are test-only and exempt), and
//! * **source references** — `setsig_*` identifiers in library/binary code.
//!
//! A crate directory missing from [`ALLOWED_DEPS`] is itself a violation:
//! adding a crate means consciously placing it in the DAG.

use std::fs;

use crate::workspace::{FileClass, SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// The workspace DAG: crate dir → setsig crates it may depend on.
///
/// Order follows the build layering, bottom to top.
const ALLOWED_DEPS: [(&str, &[&str]); 11] = [
    ("pagestore", &[]),
    ("obs", &[]),
    ("core", &["pagestore", "obs"]),
    ("nix", &["pagestore", "obs", "core"]),
    ("oodb", &["pagestore", "core"]),
    ("costmodel", &[]),
    ("workload", &[]),
    ("service", &["pagestore", "obs", "core"]),
    (
        "experiments",
        &[
            "pagestore",
            "obs",
            "core",
            "nix",
            "oodb",
            "costmodel",
            "workload",
            "service",
        ],
    ),
    (
        "bench",
        &[
            "pagestore",
            "obs",
            "core",
            "nix",
            "oodb",
            "costmodel",
            "workload",
            "service",
            "experiments",
        ],
    ),
    ("xtask", &[]),
];

fn allowed_for(crate_dir: &str) -> Option<&'static [&'static str]> {
    ALLOWED_DEPS
        .iter()
        .find(|(name, _)| *name == crate_dir)
        .map(|(_, deps)| *deps)
}

/// Runs both the manifest and the source check.
pub fn run(ws: &Workspace) -> Result<Vec<Diagnostic>, String> {
    let mut out = Vec::new();
    out.extend(check_manifests(ws)?);
    for file in &ws.files {
        if file.class == FileClass::Test {
            continue;
        }
        // The root facade re-exports everything by design.
        let Some(crate_dir) = file.crate_dir.as_deref() else {
            continue;
        };
        out.extend(check_source(file, crate_dir));
    }
    Ok(out)
}

/// Manifest edges vs. the DAG.
pub fn check_manifests(ws: &Workspace) -> Result<Vec<Diagnostic>, String> {
    let crates_dir = ws.root.join("crates");
    let mut out = Vec::new();
    let Ok(entries) = fs::read_dir(&crates_dir) else {
        return Ok(out);
    };
    let mut dirs: Vec<_> = entries
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| p.is_dir() && p.join("Cargo.toml").exists())
        .collect();
    dirs.sort();
    for dir in dirs {
        let Some(name) = dir.file_name().and_then(|n| n.to_str()).map(String::from) else {
            continue;
        };
        let manifest_rel = format!("crates/{name}/Cargo.toml");
        let text = fs::read_to_string(dir.join("Cargo.toml"))
            .map_err(|e| format!("reading {manifest_rel}: {e}"))?;
        let Some(allowed) = allowed_for(&name) else {
            out.push(Diagnostic {
                file: manifest_rel,
                line: 1,
                lint: Lint::Layering,
                msg: format!(
                    "crate `{name}` is not registered in the workspace DAG; \
                     add it to ALLOWED_DEPS in \
                     crates/xtask/src/lints/layering.rs with a deliberate \
                     dependency set"
                ),
            });
            continue;
        };
        for (line_no, dep) in manifest_deps(&text) {
            if !allowed.contains(&dep.as_str()) {
                out.push(Diagnostic {
                    file: manifest_rel.clone(),
                    line: line_no,
                    lint: Lint::Layering,
                    msg: format!(
                        "`{name}` may not depend on `setsig-{dep}` \
                         (allowed: {allowed:?}); this edge breaks the \
                         workspace layering"
                    ),
                });
            }
        }
    }
    Ok(out)
}

/// `(line, short name)` of every `setsig-*` entry in `[dependencies]`
/// (dev-dependencies are exempt: test-only).
fn manifest_deps(manifest: &str) -> Vec<(u32, String)> {
    let mut in_deps = false;
    let mut out = Vec::new();
    for (idx, raw) in manifest.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            in_deps = line == "[dependencies]";
            continue;
        }
        if !in_deps {
            continue;
        }
        let Some(name) = line.split(['=', '.', ' ']).next() else {
            continue;
        };
        if let Some(short) = name.strip_prefix("setsig-") {
            out.push((idx as u32 + 1, short.to_string()));
        }
    }
    out
}

/// `setsig_*` identifier references vs. the DAG.
pub fn check_source(file: &SourceFile, crate_dir: &str) -> Vec<Diagnostic> {
    let Some(allowed) = allowed_for(crate_dir) else {
        return Vec::new(); // The manifest check reports unknown crates once.
    };
    let mut out = Vec::new();
    for t in &file.scanned.toks {
        let Some(short) = t.text.strip_prefix("setsig_") else {
            continue;
        };
        if t.kind != crate::scan::TokKind::Ident {
            continue;
        }
        if short == crate_dir || allowed.contains(&short) {
            continue;
        }
        out.push(Diagnostic {
            file: file.rel.clone(),
            line: t.line,
            lint: Lint::Layering,
            msg: format!(
                "`{crate_dir}` references `setsig_{short}` but may only use \
                 {allowed:?}; this reference breaks the workspace layering"
            ),
        });
    }
    out
}
