//! reachability: dead functions are reported before they rot.
//!
//! Built on the [`crate::callgraph`] definition index plus a workspace-wide
//! mention index (every identifier occurrence that is not a `fn` definition
//! site). Two error codes:
//!
//! * `never-called:` — a non-`pub` fn in lib/bin code whose name is never
//!   mentioned anywhere in the workspace (calls, fn pointers, `use`s and
//!   test references all count as mentions);
//! * `pub-in-private:` — a `pub` fn inside a non-`pub` inline module that
//!   is likewise never mentioned: the `pub` cannot be reached from outside
//!   the module, so it only hides the deadness from rustc.
//!
//! Mentions are matched **by name**, not by resolved target — two same-name
//! methods keep each other alive. That over-approximation (plus skipping
//! `main`, trait machinery, and `_`-prefixed names) is what makes the lint
//! zero-false-positive enough to run without an allowlist; the cost is
//! documented in DESIGN.md §9.

use std::collections::HashSet;

use crate::callgraph::CallGraph;
use crate::scan::TokKind;
use crate::workspace::{FileClass, SourceFile};
use crate::{Diagnostic, Lint};

/// Runs the lint: definitions from lib/bin code, mentions from everywhere
/// (integration tests keep the fns they exercise alive).
pub fn run(ws: &crate::workspace::Workspace) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws.files.iter().collect();
    check_files(&files)
}

/// Fixture entry point: one file as its own little workspace.
pub fn check_file(file: &SourceFile) -> Vec<Diagnostic> {
    check_files(&[file])
}

/// Core: definition index vs. mention index.
pub fn check_files(files: &[&SourceFile]) -> Vec<Diagnostic> {
    let graph = CallGraph::build(files);
    // Every identifier occurrence that is not a definition site.
    let mut mentioned: HashSet<&str> = HashSet::new();
    for file in &graph.files {
        let toks = &file.scanned.toks;
        for (i, t) in toks.iter().enumerate() {
            if t.kind == TokKind::Ident && !(i >= 1 && toks[i - 1].is_ident("fn")) {
                mentioned.insert(t.text.as_str());
            }
        }
    }
    let mut diags = Vec::new();
    for def in &graph.fns {
        let file = graph.files[def.file];
        if file.class == FileClass::Test || def.is_test {
            continue;
        }
        // Trait machinery dispatches invisibly; `main` is the entry point;
        // `_`-prefixed names already say "intentionally unused".
        if def.name == "main"
            || def.name.starts_with('_')
            || def.is_trait_decl
            || def.trait_name.is_some()
        {
            continue;
        }
        if mentioned.contains(def.name.as_str()) {
            continue;
        }
        if def.is_pub && def.in_private_mod {
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line: def.line,
                lint: Lint::Reachability,
                msg: format!(
                    "pub-in-private: fn `{}` is `pub` inside a private module but never \
                     referenced; the `pub` is unreachable — delete the fn or re-export it",
                    def.name
                ),
            });
        } else if !def.is_pub {
            diags.push(Diagnostic {
                file: file.rel.clone(),
                line: def.line,
                lint: Lint::Reachability,
                msg: format!(
                    "never-called: fn `{}` is never referenced anywhere in the workspace; \
                     delete it (or name it `_{}` while it waits for a caller)",
                    def.name, def.name
                ),
            });
        }
    }
    diags
}
