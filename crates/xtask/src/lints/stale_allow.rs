//! **stale-allow** — allowlist entries must still match a real site.
//!
//! Every lint calls [`crate::workspace::Allowlist::permits`] for the
//! sites it would otherwise report (or, for the always-on lints, for
//! every candidate site), and `permits` marks the entries it matches.
//! After all lints have run, any entry still unused is a dangling
//! suppression: the code it was written for moved or was fixed, and the
//! entry would now silently excuse a *future* violation at that path.
//! Diagnostics point at the `.allow` file and line so the fix is a
//! one-line deletion.

use crate::workspace::Allowlist;
use crate::{Diagnostic, Lint};

/// Reports every unused entry across the named allowlists. Must run
/// after every other lint, since earlier lints set the usage flags.
pub fn check(lists: &[(&str, &Allowlist)]) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for (path, list) in lists {
        for e in list.entries() {
            if !e.is_used() {
                out.push(Diagnostic {
                    file: (*path).to_string(),
                    line: e.line,
                    lint: Lint::StaleAllow,
                    msg: format!(
                        "stale allowlist entry `{}` matched no site this run; \
                         delete it (suppressions must not outlive the code they \
                         excuse)",
                        e.display()
                    ),
                });
            }
        }
    }
    out
}
