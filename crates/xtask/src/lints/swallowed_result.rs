//! swallowed-result: a `Result` silently discarded in library code is an
//! error.
//!
//! Two shapes are detected:
//!
//! * `let _ = fallible();` — an explicit discard (`let-underscore`);
//! * `fallible();` — a bare statement whose value is dropped
//!   (`discarded`), for code paths rustc's `#[must_use]` cannot see
//!   (e.g. behind a fn pointer).
//!
//! Whether the discarded call returns `Result` comes from the
//! [`crate::callgraph`]: the statement's final call (the last call at
//! paren-depth 0 before the `;`) is looked up, and the finding fires only
//! when **every** resolved candidate declares a `Result` return — mixed or
//! unresolved candidates stay silent rather than guess. On top of that, a
//! short list of well-known std `Result` returners (`join`, `flush`,
//! `write_all`, `send`, `recv`, `sync_all`) fires for `let _ =` even when
//! a same-named workspace method shadows the resolution, because `let _ =`
//! around a unit-returning call is not something anyone writes.
//!
//! Statements already handling the `Result` — a `?` at depth 0, a binding,
//! a `match`/`if let` — are never flagged. Intentional swallows (a writer
//! thread's `join` in `Drop`, best-effort trace flushes) are justified in
//! `allow/swallowed.allow`.

use crate::callgraph::CallGraph;
use crate::scan::TokKind;
use crate::workspace::{Allowlist, FileClass, SourceFile};
use crate::{Diagnostic, Lint};

/// std calls whose `Result` is flagged under `let _ =` even when name
/// resolution finds a unit-returning workspace method instead.
const BUILTIN_RESULT: [&str; 6] = ["join", "flush", "write_all", "send", "recv", "sync_all"];

/// Statement heads that are never a discarded call.
const STMT_KEYWORDS: [&str; 6] = ["return", "break", "continue", "use", "let", "drop"];

/// Runs the lint over library code.
pub fn run(ws: &crate::workspace::Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class == FileClass::Lib)
        .collect();
    check_files(&files, allow)
}

/// Fixture entry point: one file, its own mini call graph.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    check_files(&[file], allow)
}

/// Core: statement segmentation + final-call resolution.
pub fn check_files(files: &[&SourceFile], allow: &Allowlist) -> Vec<Diagnostic> {
    let graph = CallGraph::build(files);
    let mut diags = Vec::new();
    for (fi, file) in graph.files.iter().enumerate() {
        if file.class != FileClass::Lib {
            continue;
        }
        let toks = &file.scanned.toks;
        // Statements are token runs between `;` / `{` / `}`; a brace
        // resets the run, so only brace-free statements are examined —
        // which is exactly the shape a discarded call has.
        let mut start = 0usize;
        for (i, t) in toks.iter().enumerate() {
            if t.is_punct('{') || t.is_punct('}') {
                start = i + 1;
                continue;
            }
            if !t.is_punct(';') {
                continue;
            }
            let seg = start..i;
            start = i + 1;
            if seg.is_empty() || file.test_mask[seg.start] {
                continue;
            }
            check_statement(&graph, fi, seg, allow, &mut diags);
        }
    }
    diags
}

/// Examines one brace-free statement for a discarded `Result`.
fn check_statement(
    graph: &CallGraph<'_>,
    fi: usize,
    seg: std::ops::Range<usize>,
    allow: &Allowlist,
    diags: &mut Vec<Diagnostic>,
) {
    let file = graph.files[fi];
    let toks = &file.scanned.toks;
    let s = seg.start;
    let (expr_start, is_let_underscore) = if toks[s].is_ident("let")
        && toks.get(s + 1).is_some_and(|t| t.is_ident("_"))
        && toks.get(s + 2).is_some_and(|t| t.is_punct('='))
    {
        (s + 3, true)
    } else if toks[s].kind == TokKind::Ident && !STMT_KEYWORDS.contains(&toks[s].text.as_str()) {
        (s, false)
    } else {
        return;
    };
    // Walk the expression: remember the last call at depth 0, bail on
    // anything that shows the Result is handled or bound.
    let mut depth = 0i64;
    let mut last_call: Option<usize> = None;
    let mut j = expr_start;
    while j < seg.end {
        let t = &toks[j];
        if t.is_punct('(') || t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            depth -= 1;
        } else if depth == 0 {
            if t.is_punct('?') {
                return; // propagated
            }
            if !is_let_underscore && (t.is_punct('=') || t.is_ident("let")) {
                return; // bound, not discarded
            }
            if t.kind == TokKind::Ident
                && toks.get(j + 1).is_some_and(|n| n.is_punct('('))
                && !(j >= 1 && toks[j - 1].is_ident("fn"))
            {
                last_call = Some(j);
            }
            if t.kind == TokKind::Ident && toks.get(j + 1).is_some_and(|n| n.is_punct('!')) {
                return; // macro statement (assert!, writeln!, …)
            }
        }
        j += 1;
    }
    let Some(call_tok) = last_call else {
        return;
    };
    let name = toks[call_tok].text.clone();
    // Resolution: the call graph's verdict, with the std builtin list as
    // a `let _ =`-only fallback (see module docs).
    let site = graph
        .calls
        .iter()
        .find(|c| c.file == fi && c.tok == call_tok);
    let resolved_result = site.is_some_and(|c| {
        // Bare discards trust only unambiguous resolution: free fns, path
        // calls, and `self.`-dispatched methods. A method on an arbitrary
        // receiver over-approximates to every same-named workspace method,
        // and std collections (`map.insert`, `vec.remove`, …) would light
        // up whenever the workspace defines a fallible namesake.
        let trustworthy = match &c.kind {
            crate::callgraph::CallKind::Free | crate::callgraph::CallKind::Path { .. } => true,
            crate::callgraph::CallKind::Method { recv } => recv.as_deref() == Some("self"),
        };
        (is_let_underscore || trustworthy)
            && !c.targets.is_empty()
            && c.targets.iter().all(|&t| graph.fns[t].returns_result)
    });
    let builtin = is_let_underscore && BUILTIN_RESULT.contains(&name.as_str());
    if !resolved_result && !builtin {
        return;
    }
    if allow.permits(&file.rel, file.fn_ctx[call_tok].as_deref()) {
        return;
    }
    let line = toks[call_tok].line;
    let msg = if is_let_underscore {
        format!(
            "let-underscore: `let _ =` swallows the `Result` of `{name}`; propagate with \
             `?`, handle it, or justify in crates/xtask/allow/swallowed.allow"
        )
    } else {
        format!(
            "discarded: statement drops the `Result` of `{name}` on the floor; propagate \
             with `?`, handle it, or justify in crates/xtask/allow/swallowed.allow"
        )
    };
    diags.push(Diagnostic {
        file: file.rel.clone(),
        line,
        lint: Lint::SwallowedResult,
        msg,
    });
}
