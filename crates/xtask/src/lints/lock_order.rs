//! **lock-order** — every lock is named, ranked, and acquired in rank
//! order.
//!
//! PR 3's cross-query accounting race showed that the workspace's
//! concurrency invariants lived only in prose comments that nothing
//! checked. This lint makes them machine-readable: every `Mutex`/`RwLock`
//! declaration in library or binary code must carry a
//! `// LOCK-ORDER: <name> [< <parent>]… [leaf]` annotation (grammar in
//! [`crate::locks`]), the annotations across the whole workspace must
//! form a DAG, and every *lexically nested* acquisition must follow the
//! declared order — acquiring `b` while holding `a` is legal only when
//! `b` ranks (transitively) below `a`, and nothing may be acquired under
//! a `leaf` lock.
//!
//! Each diagnostic message starts with a stable code word
//! (`unannotated:`, `malformed:`, `ambiguous-field:`, `duplicate-name:`,
//! `unknown-parent:`, `leaf-parent:`, `cycle:`, `unattributed:`,
//! `order-violation:`), which the fixture corpus pins down. Justified
//! order violations live in `crates/xtask/allow/locks.allow`.

use std::collections::{BTreeMap, BTreeSet};

use crate::locks::{self, AcqMethod, Acquisition, AnnState, LockDecl, LockKind};
use crate::workspace::{Allowlist, FileClass, SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// Runs the lint over every library/binary source file.
pub fn run(ws: &Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    check_files(&files, allow)
}

/// Single-file entry point for the fixture self-tests.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    check_files(&[file], allow)
}

/// One annotated lock in the global registry.
struct Lock {
    file: String,
    line: u32,
    parents: Vec<String>,
    leaf: bool,
}

/// The whole pipeline: declarations → registry → DAG → acquisitions.
fn check_files(files: &[&SourceFile], allow: &Allowlist) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut registry: BTreeMap<String, Lock> = BTreeMap::new();
    let mut per_file: Vec<(usize, Vec<LockDecl>)> = Vec::new();

    // Pass 1: collect declarations, check annotations, build the registry.
    for (fi, file) in files.iter().enumerate() {
        let decls = locks::collect_decls(file);
        let mut fields_seen: BTreeSet<&str> = BTreeSet::new();
        for d in &decls {
            if d.field != "<unnamed>" && !fields_seen.insert(&d.field) {
                out.push(diag(
                    file,
                    d.line,
                    format!(
                        "ambiguous-field: a second lock field named `{}` in this \
                         file; acquisition sites could not be attributed — rename \
                         one of the fields",
                        d.field
                    ),
                ));
            }
            match &d.ann {
                AnnState::Missing => out.push(diag(
                    file,
                    d.line,
                    format!(
                        "unannotated: {} `{}` needs a `// LOCK-ORDER: <name> \
                         [< <parent>]… [leaf]` comment on the declaration or \
                         within {} lines above it",
                        d.kind.type_name(),
                        d.field,
                        locks::ANNOTATION_WINDOW,
                    ),
                )),
                AnnState::Malformed(why) => out.push(diag(
                    file,
                    d.line,
                    format!(
                        "malformed: LOCK-ORDER annotation on `{}` does not parse: {why}",
                        d.field
                    ),
                )),
                AnnState::Parsed(a) => {
                    if let Some(prev) = registry.get(&a.name) {
                        out.push(diag(
                            file,
                            d.line,
                            format!(
                                "duplicate-name: lock name `{}` is already declared \
                                 at {}:{}; lock names are global",
                                a.name, prev.file, prev.line
                            ),
                        ));
                    } else {
                        registry.insert(
                            a.name.clone(),
                            Lock {
                                file: file.rel.clone(),
                                line: d.line,
                                parents: a.parents.clone(),
                                leaf: a.leaf,
                            },
                        );
                    }
                }
            }
        }
        per_file.push((fi, decls));
    }

    // Pass 2: validate parent references and detect cycles. Edges run
    // parent → child ("may be held while acquiring").
    let mut edges: BTreeMap<&str, Vec<&str>> = BTreeMap::new();
    for (name, lock) in &registry {
        for p in &lock.parents {
            match registry.get(p) {
                None => {
                    let file_stub = files.iter().find(|f| f.rel == lock.file);
                    if let Some(f) = file_stub {
                        out.push(diag(
                            f,
                            lock.line,
                            format!(
                                "unknown-parent: `{p}` (parent of `{name}`) is not a \
                                 declared lock name anywhere in the workspace"
                            ),
                        ));
                    }
                }
                Some(parent) if parent.leaf => {
                    if let Some(f) = files.iter().find(|f| f.rel == lock.file) {
                        out.push(diag(
                            f,
                            lock.line,
                            format!(
                                "leaf-parent: `{p}` is declared leaf, so nothing may \
                                 rank below it; `{name}` cannot name it as a parent"
                            ),
                        ));
                    }
                }
                Some(_) => edges.entry(p.as_str()).or_default().push(name.as_str()),
            }
        }
    }
    for (name, lock) in &registry {
        if let Some(cycle) = find_cycle(name, &edges) {
            if let Some(f) = files.iter().find(|f| f.rel == lock.file) {
                out.push(diag(
                    f,
                    lock.line,
                    format!(
                        "cycle: the declared lock order forms a cycle: {} \
                         (each `->` reads \"may be held while acquiring\")",
                        cycle.join(" -> ")
                    ),
                ));
            }
        }
    }

    // Pass 3: acquisition sites vs. the declared order, file by file.
    for (fi, decls) in &per_file {
        let file = files[*fi];
        let field_map: BTreeMap<&str, &LockDecl> = decls
            .iter()
            .filter(|d| d.field != "<unnamed>")
            .map(|d| (d.field.as_str(), d))
            .collect();
        let acqs = locks::collect_acquisitions(file);
        let attributed: Vec<(&Acquisition, &LockDecl)> = acqs
            .iter()
            .filter_map(|a| {
                let d = *field_map.get(a.receiver.as_deref()?)?;
                // `.read()`/`.write()` acquire only on RwLock receivers;
                // on anything else they are io::Read/Write calls.
                match a.method {
                    AcqMethod::Lock => (d.kind == LockKind::Mutex).then_some((a, d)),
                    AcqMethod::Read | AcqMethod::Write => {
                        (d.kind == LockKind::RwLock).then_some((a, d))
                    }
                }
            })
            .collect();
        for a in &acqs {
            // A `.lock()` on an identifier that resolves to no annotated
            // lock in this file is an invisible lock — reject it.
            let unresolved = a.method == AcqMethod::Lock
                && a.receiver
                    .as_deref()
                    .is_some_and(|r| !field_map.contains_key(r));
            if unresolved && !allow.permits(&file.rel, file.fn_ctx[a.idx].as_deref()) {
                out.push(diag(
                    file,
                    a.line,
                    format!(
                        "unattributed: `{}.lock()` does not resolve to a declared \
                         lock in this file; declare and annotate the lock (or \
                         justify the site in crates/xtask/allow/locks.allow)",
                        a.receiver.as_deref().unwrap_or("?"),
                    ),
                ));
            }
        }
        for (inner, inner_decl) in &attributed {
            let Some(inner_name) = inner_decl.name() else {
                continue; // Decl already reported as unannotated/malformed.
            };
            for (held, held_decl) in &attributed {
                if !held.covers(inner.idx) {
                    continue;
                }
                let Some(held_name) = held_decl.name() else {
                    continue;
                };
                let violation = if held_name == inner_name {
                    Some(format!(
                        "order-violation: re-acquiring `{inner_name}` while a guard \
                         of it (taken on line {}) is still live — self-deadlock",
                        held.line
                    ))
                } else if registry.get(held_name).is_some_and(|l| l.leaf) {
                    Some(format!(
                        "order-violation: `{held_name}` is a leaf lock; acquiring \
                         `{inner_name}` while holding it (guard taken on line {}) \
                         is forbidden",
                        held.line
                    ))
                } else if !reachable(held_name, inner_name, &edges) {
                    Some(format!(
                        "order-violation: acquiring `{inner_name}` while holding \
                         `{held_name}` (guard taken on line {}), but `{inner_name}` \
                         does not rank below `{held_name}`; declare \
                         `{inner_name} < {held_name}` or restructure (or justify \
                         in crates/xtask/allow/locks.allow)",
                        held.line
                    ))
                } else {
                    None
                };
                if let Some(msg) = violation {
                    if !allow.permits(&file.rel, file.fn_ctx[inner.idx].as_deref()) {
                        out.push(diag(file, inner.line, msg));
                    }
                }
            }
        }
    }
    out
}

fn diag(file: &SourceFile, line: u32, msg: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line,
        lint: Lint::LockOrder,
        msg,
    }
}

/// True when `to` is reachable from `from` along declared edges.
fn reachable(from: &str, to: &str, edges: &BTreeMap<&str, Vec<&str>>) -> bool {
    let mut stack = vec![from];
    let mut seen = BTreeSet::new();
    while let Some(n) = stack.pop() {
        for next in edges.get(n).map_or(&[][..], |v| v.as_slice()) {
            if *next == to {
                return true;
            }
            if seen.insert(*next) {
                stack.push(next);
            }
        }
    }
    false
}

/// If `start` lies on a cycle, returns the cycle path `start -> … -> start`.
fn find_cycle<'a>(start: &'a str, edges: &BTreeMap<&'a str, Vec<&'a str>>) -> Option<Vec<&'a str>> {
    // Recursive DFS; lock graphs are tiny, so depth is never a concern.
    fn dfs<'a>(
        node: &'a str,
        start: &'a str,
        edges: &BTreeMap<&'a str, Vec<&'a str>>,
        visited: &mut BTreeSet<&'a str>,
        path: &mut Vec<&'a str>,
    ) -> bool {
        for next in edges.get(node).map_or(&[][..], |v| v.as_slice()) {
            if *next == start {
                path.push(start);
                return true;
            }
            if visited.insert(next) {
                path.push(next);
                if dfs(next, start, edges, visited, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }
    let mut path = vec![start];
    let mut visited = BTreeSet::new();
    dfs(start, start, edges, &mut visited, &mut path).then_some(path)
}
