//! cost: static page-I/O cost contracts, checked against loop-nest
//! bounds inferred from the source (see [`crate::loopnest`]).
//!
//! The paper's central artifact is a closed-form page-access model
//! (`costmodel`): `rc_superset`, `rc_subset`, `sc_sig`… in pages. The
//! drift gate verifies it *dynamically* at a few checkpoints; this lint
//! verifies the *shape* statically: every scan entry point declares its
//! page cost as a symbolic bound, and the analyzer proves the I/O loop
//! nesting under it cannot exceed the bound's polynomial degree. A
//! refactor that accidentally nests a slice read inside an extra loop
//! (superlinear blow-up) fails `cargo xtask analyze` before any
//! benchmark runs.
//!
//! # Contract grammar
//!
//! A comment on the line of a `fn` (or within the three lines above it):
//!
//! ```text
//! COST: <expr> pages
//! ```
//!
//! (written as a `//` comment; `<expr>` is sums of products over integer
//! literals and named symbolic quantities — `1`, `sig_pages`,
//! `slices * pages_per_slice + oid_pages`, `probes * (height + chain)`.)
//!
//! The expression's **degree** (symbols multiplied per term, maximum
//! over terms) is what the static check enforces: the fn's deepest
//! inferred I/O loop nest must not exceed it. Contracts **compose** —
//! when a contracted fn calls another contracted fn, the callee
//! contributes its declared degree and traversal stops, so
//! `candidates_with_stats` (degree 2) absorbs `superset_positions`
//! (degree 2) called outside any loop.
//!
//! # Error classes
//!
//! * `malformed-contract` — unparsable expression, missing `pages` unit,
//!   or an annotation attached to no fn;
//! * `missing-contract` — a `// HOT-PATH:` root that reaches page I/O
//!   but declares no cost (the **root registry**: the hot-path names are
//!   the scan entry points — `ssf.row_scan`, `bssf.and_loop`,
//!   `bssf.and_pipeline`, `nix.probe`, `pagestore.read`,
//!   `service.dispatch`; pure compute kernels have no I/O and owe no
//!   contract);
//! * `superlinear-io` — inferred nest depth exceeds the declared degree;
//! * `uncontracted-io` — a page-I/O site in a gated crate outside every
//!   contracted root's call tree, not entering a composite (degree ≥ 1)
//!   contract, and not justified in `allow/cost.allow`.
//!
//! The runtime half lives in `crates/experiments` (`contracts.rs`): each
//! committed contract is evaluated with the exhibit's actual `Params`
//! and measured `ScanStats` pages must stay at or below it.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::callgraph::CallGraph;
use crate::lints::hot_path::{self, ANNOTATION_WINDOW};
use crate::loopnest::{self, Expr, IoAnalysis};
use crate::workspace::{Allowlist, FileClass, SourceFile};
use crate::{Diagnostic, Lint};

/// The contract annotation marker.
pub const ANNOTATION: &str = "COST:";

/// The committed baseline the `--check` mode diffs against.
pub const BASELINE_REL: &str = "crates/xtask/cost.baseline.json";

/// Crates whose page-I/O sites must sit under a contracted root. The
/// harness crates (`experiments`, `workload`, `bench`) measure rather
/// than serve queries and are exempt, like the panic-reachability gate.
pub const GATED_CRATES: [&str; 4] = ["core", "nix", "pagestore", "service"];

/// One parsed `// COST:` contract.
#[derive(Debug, Clone)]
pub struct Contract {
    /// 1-based line of the annotation comment.
    pub line: u32,
    /// The parsed bound expression.
    pub expr: Expr,
    /// `expr.degree()`, cached.
    pub degree: u32,
}

/// The contracts over a call graph, plus malformed-shape diagnostics.
pub struct Contracts {
    /// Contracted fns (BTreeMap for deterministic iteration).
    pub by_fn: BTreeMap<usize, Contract>,
    /// Malformed / orphaned annotation findings.
    pub malformed: Vec<Diagnostic>,
}

/// The annotation a comment carries, if any. Same shape rules as the
/// hot-path marker: plain `//` / `/* */` comments leading with the
/// marker; doc comments are prose.
fn annotation_of(text: &str) -> Option<&str> {
    let t = text.trim_start();
    let t = t.strip_prefix("//").or_else(|| t.strip_prefix("/*"))?;
    if t.starts_with(['/', '!']) {
        return None; // doc comment
    }
    let t = t.trim_start_matches('*').trim_start();
    let rest = t.strip_prefix(ANNOTATION)?;
    Some(
        rest.lines()
            .next()
            .unwrap_or("")
            .trim_end_matches("*/")
            .trim(),
    )
}

/// Attaches contracts to fn definitions (nearest comment in the window,
/// the lock-registry idiom) and reports every malformed shape.
pub fn collect_contracts(graph: &CallGraph<'_>) -> Contracts {
    let mut out = Contracts {
        by_fn: BTreeMap::new(),
        malformed: Vec::new(),
    };
    let mut consumed: HashSet<(usize, u32)> = HashSet::new();
    for (fid, def) in graph.fns.iter().enumerate() {
        let file = graph.files[def.file];
        let from = def.line.saturating_sub(ANNOTATION_WINDOW);
        let Some((cline, payload)) = file
            .scanned
            .comments
            .iter()
            .rev()
            .filter(|(l, _)| *l >= from && *l <= def.line)
            .find_map(|(l, t)| annotation_of(t).map(|p| (*l, p)))
        else {
            continue;
        };
        consumed.insert((def.file, cline));
        let Some(expr_src) = payload.strip_suffix("pages").map(str::trim) else {
            out.malformed.push(diag(
                file,
                cline,
                format!(
                    "malformed-contract: `{payload}` does not end in the `pages` unit \
                     (grammar: `COST: <expr> pages`)"
                ),
            ));
            continue;
        };
        match loopnest::parse_expr(expr_src) {
            Ok(expr) => {
                let degree = expr.degree();
                out.by_fn.insert(
                    fid,
                    Contract {
                        line: cline,
                        expr,
                        degree,
                    },
                );
            }
            Err(e) => out.malformed.push(diag(
                file,
                cline,
                format!(
                    "malformed-contract: cannot parse bound `{expr_src}`: {e} \
                     (grammar: sums of products over integers and identifiers)"
                ),
            )),
        }
    }
    // An annotation no fn claimed is a typo waiting to silently disable
    // the gate — report it.
    for (fi, file) in graph.files.iter().enumerate() {
        for (l, text) in &file.scanned.comments {
            if annotation_of(text).is_some() && !consumed.contains(&(fi, *l)) {
                out.malformed.push(diag(
                    file,
                    *l,
                    format!(
                        "malformed-contract: cost annotation attaches to no fn \
                         (nearest `fn` must start within {ANNOTATION_WINDOW} lines below)"
                    ),
                ));
            }
        }
    }
    out
}

/// Runs the lint over the whole workspace (lib + bin code).
pub fn run(ws: &crate::workspace::Workspace, allow: &Allowlist) -> Vec<Diagnostic> {
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    check_files(&files, allow, &GATED_CRATES)
}

/// Fixture entry point: one file, its own mini call graph, its pretend
/// crate gated.
pub fn check_file(file: &SourceFile, allow: &Allowlist) -> Vec<Diagnostic> {
    check_files(&[file], allow, &["experiments"])
}

/// Core: collect contracts, run the loop-nest analysis, apply the four
/// rules.
pub fn check_files(files: &[&SourceFile], allow: &Allowlist, gated: &[&str]) -> Vec<Diagnostic> {
    let graph = CallGraph::build(files);
    let contracts = collect_contracts(&graph);
    let mut diags = contracts.malformed.clone();
    let degrees: HashMap<usize, u32> = contracts
        .by_fn
        .iter()
        .map(|(fid, c)| (*fid, c.degree))
        .collect();
    let an = loopnest::analyze(&graph, &degrees);

    // missing-contract: the root registry is the hot-path annotation set —
    // every root that reaches page I/O owes a declared bound. (The
    // malformed hot-path shapes are hot-path-hygiene's to report.)
    let ann = hot_path::collect_annotations(&graph);
    for (fid, root_name) in &ann.roots {
        if an.io_depth[*fid].is_some() && !degrees.contains_key(fid) {
            let def = &graph.fns[*fid];
            diags.push(diag(
                graph.files[def.file],
                def.line,
                format!(
                    "missing-contract: hot-path root `{root_name}` (fn `{}`) reaches page \
                     I/O but declares no `// COST: <expr> pages` contract within \
                     {ANNOTATION_WINDOW} lines above the fn",
                    def.name
                ),
            ));
        }
    }

    // superlinear-io: inferred nest depth must not exceed the declared
    // degree.
    for (&fid, contract) in &contracts.by_fn {
        let Some(depth) = an.io_depth[fid] else {
            continue;
        };
        if depth > contract.degree {
            let def = &graph.fns[fid];
            let nest = nest_of(&an, fid);
            diags.push(diag(
                graph.files[def.file],
                def.line,
                format!(
                    "superlinear-io: fn `{}` declares `COST: {} pages` (degree {}) but \
                     its inferred I/O loop nest is {depth}-deep ({nest}); remove the \
                     extra nesting or widen the contract",
                    def.name, contract.expr, contract.degree
                ),
            ));
        }
    }

    // uncontracted-io: every page-I/O site in a gated crate must sit in a
    // contracted root's call tree (trusted reach from a contracted fn) or
    // enter a composite contract at the call. Degree-0 contracts (the
    // page-primitive wrappers' `1 pages`) do not excuse their callers —
    // leaning on them is exactly the unaccounted scan this rule catches.
    let covered = trusted_reach(&graph, contracts.by_fn.keys().copied());
    let mut seen: HashSet<(usize, u32, String)> = HashSet::new();
    for (fid, def) in graph.fns.iter().enumerate() {
        if def.is_test || covered.contains(&fid) {
            continue;
        }
        let file = graph.files[def.file];
        let in_gated = file
            .crate_dir
            .as_deref()
            .is_some_and(|c| gated.contains(&c));
        if !in_gated {
            continue;
        }
        for site in &an.sites[fid] {
            let call = &graph.calls[site.ci];
            let enters_composite = call
                .targets
                .iter()
                .any(|t| degrees.get(t).is_some_and(|&d| d >= 1));
            if enters_composite {
                continue;
            }
            if allow.permits(&file.rel, Some(&def.name)) {
                continue;
            }
            if !seen.insert((fid, site.line, site.what.clone())) {
                continue;
            }
            diags.push(diag(
                file,
                site.line,
                format!(
                    "uncontracted-io: page I/O `{}(…)` in fn `{}` is outside every \
                     contracted root; add a `// COST:` contract on an enclosing scan \
                     entry point or justify in crates/xtask/allow/cost.allow",
                    site.what, def.name
                ),
            ));
        }
    }
    diags
}

/// The fns inside any contracted root's call tree: the contracted fns
/// plus everything reachable from them over trusted, non-test edges.
fn trusted_reach(graph: &CallGraph<'_>, roots: impl Iterator<Item = usize>) -> HashSet<usize> {
    let mut covered: HashSet<usize> = roots.collect();
    let mut queue: Vec<usize> = covered.iter().copied().collect();
    while let Some(fid) = queue.pop() {
        for (_, t) in graph.trusted_edges(fid) {
            if covered.insert(t) {
                queue.push(t);
            }
        }
    }
    covered
}

/// Renders the deepest I/O nest of `fid` for messages and the baseline:
/// enclosing loop bounds outermost-first, then the contributing callee.
/// `scan`-shaped fns with a bare read render as `(direct)`.
fn nest_of(an: &IoAnalysis, fid: usize) -> String {
    let Some(site) = an.deepest(fid) else {
        return String::new();
    };
    let mut parts = site.bounds.clone();
    if let Some(via) = &site.via {
        parts.push(format!("{via}^{}", site.contribution));
    }
    if parts.is_empty() {
        "(direct)".to_string()
    } else {
        parts.join(" * ")
    }
}

/// One row of the cost matrix: a contracted fn, its bound, and what the
/// analyzer inferred.
pub struct CostRow {
    /// `file::SelfTy::name` (the effect-matrix key format).
    pub key: String,
    /// The contract expression, re-rendered canonically.
    pub expr: String,
    /// Declared degree.
    pub degree: u32,
    /// Inferred deepest I/O nest (0 when the fn performs no I/O — a
    /// contract above its callers' composition point).
    pub depth: u32,
    /// The deepest nest rendered symbolically (`ones * read_slice_into^1`).
    pub nest: String,
    /// Definition site, for drift diagnostics.
    pub file_rel: String,
    /// 1-based line of the fn.
    pub line: u32,
}

/// The cost matrix: what `cargo xtask cost` prints and the baseline gate
/// diffs, plus the resolver-coverage section (informational — it changes
/// with any code growth, so only contracts gate).
pub struct CostMatrix {
    /// Per-crate `(crate, resolved, unresolved)` non-test call-site
    /// counts.
    pub resolution: Vec<(String, u64, u64)>,
    /// One row per contracted fn, sorted by key.
    pub rows: Vec<CostRow>,
}

/// Builds the matrix over already-collected contracts and analysis.
pub fn matrix(graph: &CallGraph<'_>, contracts: &Contracts, an: &IoAnalysis) -> CostMatrix {
    let mut rows: Vec<CostRow> = contracts
        .by_fn
        .iter()
        .map(|(&fid, c)| {
            let def = &graph.fns[fid];
            CostRow {
                key: crate::effects::fn_key(graph, fid),
                expr: c.expr.to_string(),
                degree: c.degree,
                depth: an.io_depth[fid].unwrap_or(0),
                nest: nest_of(an, fid),
                file_rel: graph.files[def.file].rel.clone(),
                line: def.line,
            }
        })
        .collect();
    rows.sort_by(|a, b| a.key.cmp(&b.key));
    CostMatrix {
        resolution: graph.resolution_coverage(),
        rows,
    }
}

impl CostMatrix {
    /// The full JSON report (`cargo xtask cost`, the CI artifact):
    /// resolver coverage plus the contract rows, one per line.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"resolution\": {\n");
        for (i, (krate, resolved, unresolved)) in self.resolution.iter().enumerate() {
            let comma = if i + 1 < self.resolution.len() {
                ","
            } else {
                ""
            };
            s.push_str(&format!(
                "    {}: {{\"resolved\": {resolved}, \"unresolved\": {unresolved}}}{comma}\n",
                crate::json_string(krate)
            ));
        }
        s.push_str("  },\n");
        s.push_str(&self.contracts_json(2));
        s.push_str("}\n");
        s
    }

    /// The baseline JSON (`--update` output): contracts only — resolver
    /// counts drift with every code change and would make the committed
    /// file churn without meaning.
    pub fn baseline_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n");
        s.push_str(&self.contracts_json(2));
        s.push_str("}\n");
        s
    }

    fn contracts_json(&self, indent: usize) -> String {
        let pad = " ".repeat(indent);
        let mut s = format!("{pad}\"contracts\": {{\n");
        for (i, r) in self.rows.iter().enumerate() {
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            s.push_str(&format!(
                "{pad}  {}: {{\"expr\": {}, \"degree\": {}, \"depth\": {}, \"nest\": {}}}{comma}\n",
                crate::json_string(&r.key),
                crate::json_string(&r.expr),
                r.degree,
                r.depth,
                crate::json_string(&r.nest),
            ));
        }
        s.push_str(&format!("{pad}}}\n"));
        s
    }
}

/// One parsed baseline row.
struct BaselineRow {
    key: String,
    expr: String,
    degree: u32,
    depth: u32,
    nest: String,
    /// 1-based line in the baseline file, for stale-entry diagnostics.
    line: u32,
}

/// Parses the baseline. Line-oriented like the effect baseline: the file
/// is generated by [`CostMatrix::baseline_json`], one
/// `"key": {"expr": …}` row per line; keys contain `::`, which is how
/// contract rows are told apart from structural lines.
fn parse_baseline(text: &str) -> Result<Vec<BaselineRow>, String> {
    let mut rows = Vec::new();
    let mut version_ok = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = ln as u32 + 1;
        let t = raw.trim();
        if t.starts_with("\"version\"") {
            version_ok = t
                .trim_start_matches(|c| c != ':')
                .trim_start_matches(':')
                .trim()
                == "1,";
            continue;
        }
        let Some((quoted, rest)) = t.split_once("\": {") else {
            continue;
        };
        if !quoted.starts_with('"') || !quoted.contains("::") {
            continue;
        }
        let key = quoted.trim_start_matches('"').to_string();
        let field = |name: &str| -> Result<String, String> {
            let tag = format!("\"{name}\": ");
            let at = rest
                .find(&tag)
                .ok_or_else(|| format!("{BASELINE_REL}:{line}: row has no `{name}` field"))?;
            let v = &rest[at + tag.len()..];
            if let Some(stripped) = v.strip_prefix('"') {
                stripped
                    .split_once('"')
                    .map(|(s, _)| s.to_string())
                    .ok_or_else(|| format!("{BASELINE_REL}:{line}: unterminated `{name}`"))
            } else {
                Ok(v.chars().take_while(char::is_ascii_digit).collect())
            }
        };
        let num = |name: &str| -> Result<u32, String> {
            field(name)?
                .parse::<u32>()
                .map_err(|_| format!("{BASELINE_REL}:{line}: `{name}` is not a number"))
        };
        rows.push(BaselineRow {
            key,
            expr: field("expr")?,
            degree: num("degree")?,
            depth: num("depth")?,
            nest: field("nest")?,
            line,
        });
    }
    if !version_ok {
        return Err(format!(
            "{BASELINE_REL}: missing or unsupported `\"version\": 1` header — \
             regenerate with `cargo xtask cost --update`"
        ));
    }
    Ok(rows)
}

/// Diffs the current matrix against the committed baseline: one
/// [`Lint::Cost`] diagnostic per drift. Depth changes below the degree
/// still surface here — a nest that got deeper without breaking its
/// contract is exactly the early warning the baseline exists for.
pub fn check_baseline(m: &CostMatrix, baseline_text: &str) -> Result<Vec<Diagnostic>, String> {
    let baseline = parse_baseline(baseline_text)?;
    let by_key: HashMap<&str, &BaselineRow> =
        baseline.iter().map(|r| (r.key.as_str(), r)).collect();
    let mut diags = Vec::new();
    let mut current: HashSet<&str> = HashSet::new();
    for r in &m.rows {
        current.insert(r.key.as_str());
        let Some(base) = by_key.get(r.key.as_str()) else {
            diags.push(Diagnostic {
                file: r.file_rel.clone(),
                line: r.line,
                lint: Lint::Cost,
                msg: format!(
                    "contract `{}` is missing from the cost baseline; record it with \
                     `cargo xtask cost --update` and commit the diff",
                    r.key
                ),
            });
            continue;
        };
        for (what, now, was) in [("expr", &r.expr, &base.expr), ("nest", &r.nest, &base.nest)] {
            if now != was {
                diags.push(Diagnostic {
                    file: r.file_rel.clone(),
                    line: r.line,
                    lint: Lint::Cost,
                    msg: format!(
                        "`{}` {what} drifted: baseline `{was}`, now `{now}`; review the \
                         bound and absorb with `cargo xtask cost --update`",
                        r.key
                    ),
                });
            }
        }
        for (what, now, was) in [
            ("degree", r.degree, base.degree),
            ("depth", r.depth, base.depth),
        ] {
            if now != was {
                diags.push(Diagnostic {
                    file: r.file_rel.clone(),
                    line: r.line,
                    lint: Lint::Cost,
                    msg: format!(
                        "`{}` {what} drifted: baseline {was}, now {now}; review the loop \
                         structure and absorb with `cargo xtask cost --update`",
                        r.key
                    ),
                });
            }
        }
    }
    for row in &baseline {
        if !current.contains(row.key.as_str()) {
            diags.push(Diagnostic {
                file: BASELINE_REL.to_string(),
                line: row.line,
                lint: Lint::Cost,
                msg: format!(
                    "baseline entry `{}` matches no contracted fn; refresh with \
                     `cargo xtask cost --update`",
                    row.key
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, &a.msg).cmp(&(&b.file, b.line, &b.msg)));
    Ok(diags)
}

fn diag(file: &SourceFile, line: u32, msg: String) -> Diagnostic {
    Diagnostic {
        file: file.rel.clone(),
        line,
        lint: Lint::Cost,
        msg,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileClass;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            "crates/experiments/src/fixture.rs".to_string(),
            FileClass::Lib,
            Some("experiments".to_string()),
            src,
        )
    }

    #[test]
    fn contract_collection_and_matrix_round_trip() {
        let f = file(
            "struct S; impl S {\n\
             // COST: 1 pages\n\
             fn read_one(&self) { read_page(0); }\n\
             // COST: npages pages\n\
             fn scan(&self, npages: u32) { for p in 0..npages { self.read_one(); } }\n\
             }\n",
        );
        let graph = CallGraph::build(&[&f]);
        let contracts = collect_contracts(&graph);
        assert!(contracts.malformed.is_empty(), "{:?}", contracts.malformed);
        assert_eq!(contracts.by_fn.len(), 2);
        let degrees: HashMap<usize, u32> = contracts
            .by_fn
            .iter()
            .map(|(f, c)| (*f, c.degree))
            .collect();
        let an = loopnest::analyze(&graph, &degrees);
        let m = matrix(&graph, &contracts, &an);
        assert_eq!(m.rows.len(), 2);
        let json = m.baseline_json();
        let parsed = parse_baseline(&json).unwrap();
        assert_eq!(parsed.len(), 2);
        // Same matrix against its own baseline: clean.
        assert!(check_baseline(&m, &json).unwrap().is_empty());
        // Resolver coverage is present in the full report only.
        assert!(m.to_json().contains("\"resolution\""));
        assert!(!json.contains("\"resolution\""));
    }

    #[test]
    fn baseline_drift_is_reported_per_field() {
        let f = file(
            "// COST: npages pages\n\
             fn scan(npages: u32) { for p in 0..npages { read_page(p); } }\n",
        );
        let graph = CallGraph::build(&[&f]);
        let contracts = collect_contracts(&graph);
        let degrees: HashMap<usize, u32> = contracts
            .by_fn
            .iter()
            .map(|(f, c)| (*f, c.degree))
            .collect();
        let an = loopnest::analyze(&graph, &degrees);
        let m = matrix(&graph, &contracts, &an);
        let json = m.baseline_json();
        // Tamper with the depth: one drift diagnostic.
        let tampered = json.replace("\"depth\": 1", "\"depth\": 0");
        let diags = check_baseline(&m, &tampered).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("depth drifted"));
        // A stale baseline row.
        let stale = json.replace(
            "\"contracts\": {\n",
            "\"contracts\": {\n    \"gone.rs::old\": {\"expr\": \"1\", \"degree\": 0, \
             \"depth\": 0, \"nest\": \"\"},\n",
        );
        let diags = check_baseline(&m, &stale).unwrap();
        assert_eq!(diags.len(), 1, "{diags:?}");
        assert!(diags[0].msg.contains("matches no contracted fn"));
    }
}
