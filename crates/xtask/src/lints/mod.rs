//! The project lints. Each exposes a `run(&Workspace, …)` entry point
//! plus a file-granular `check_*` entry point the fixture self-tests
//! drive directly. `stale_allow` is different: it runs *after* the
//! others, over the allowlists they consulted.

pub mod accounting;
pub mod blocking_worker;
pub mod cost;
pub mod guard_across_io;
pub mod hot_path;
pub mod layering;
pub mod lock_order;
pub mod panic_reach;
pub mod panic_surface;
pub mod reachability;
pub mod stale_allow;
pub mod swallowed_result;
pub mod unsafe_audit;
