//! The four project lints. Each exposes `run(&Workspace)` plus a
//! file-granular `check_*` entry point the fixture self-tests drive
//! directly.

pub mod accounting;
pub mod layering;
pub mod panic_surface;
pub mod unsafe_audit;
