//! Bottom-up effect inference over the workspace call graph.
//!
//! Every function gets an **inferred effect set** over the lattice
//! `{ALLOC, LOCK, RAW_IO, PANIC, BLOCK}` (the powerset under union):
//! local effects are detected from the token stream of the fn's own body
//! (the primitive tables below are the single source of truth), then
//! propagated bottom-up along the call graph's *trusted* edges
//! ([`CallGraph::trusts`]) after condensing the graph into strongly
//! connected components (Tarjan, [`CallGraph::sccs`]). Because the SCCs
//! come out callees-first, one pass over the condensation reaches the
//! fixed point: every member of an SCC gets the union of the component's
//! local effects and the inferred sets of everything it calls.
//!
//! The local-effect primitives, per lattice element:
//!
//! * `ALLOC` — `vec!` / `format!`, `.clone()` / `.to_vec()` /
//!   `.to_string()` / `.collect()`, and `Vec::new` /
//!   `Vec::with_capacity` / `Box::new` / `String::from` / `String::new` /
//!   `String::with_capacity` / `Rc::new` / `Arc::new`;
//! * `LOCK` — `.lock()` always, `.read()`/`.write()` only against an
//!   `RwLock` declared in the same file (the guard-across-io receiver
//!   heuristic, so `io::Read::read` cannot false-positive);
//! * `RAW_IO` — `read_page` / `write_page` (the accounting lint's
//!   subject; consumers decide whether the accounting seam excuses it);
//! * `PANIC` — `.unwrap()` / `.expect(…)`, the `panic!` macro family,
//!   and `xs[…]` indexing (prefix-ident, `)` or `]` before the bracket —
//!   slice patterns, array types and attributes do not match);
//! * `BLOCK` — `.wait(…)` / `.wait_timeout(…)` at any arity (condvars
//!   carry the guard as an argument), `.join()` / `.recv()` only at zero
//!   arity (`[_]::join(sep)` is string building, not thread blocking),
//!   and `thread::sleep`.
//!
//! On top of the per-fn sets, [`reach`] walks the effectful subgraph from
//! a root and returns every primitive site it can see, each with the
//! shortest **witness chain** — `root (file:line) → hop (file:line) → …
//! → `primitive` (file:line)` — which is what the effect-backed lints
//! (`hot-path-hygiene`, `panic-reachability`, `blocking-in-worker`) and
//! the `cargo xtask effects --check` baseline gate print. Inference and
//! traversal walk the same edge set, so the inferred sets double as an
//! exact pruning oracle for the walk.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::callgraph::CallGraph;
use crate::locks::{self, AcqMethod, LockKind};
use crate::scan::{Tok, TokKind};
use crate::workspace::SourceFile;
use crate::{Diagnostic, Lint};

/// Where the committed effect baseline lives, workspace-relative.
pub const BASELINE_REL: &str = "crates/xtask/effects.baseline.json";

/// One element of the effect lattice.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Effect {
    /// Heap allocation.
    Alloc,
    /// Lock acquisition (mutex, or an RwLock declared in the same file).
    Lock,
    /// Raw page I/O (`read_page` / `write_page`).
    RawIo,
    /// A potential panic (unwrap/expect, `panic!` family, indexing).
    Panic,
    /// Blocking the calling thread (condvar wait, join, recv, sleep).
    Block,
}

impl Effect {
    /// Every element, in display order.
    pub const ALL: [Effect; 5] = [
        Effect::Alloc,
        Effect::Lock,
        Effect::RawIo,
        Effect::Panic,
        Effect::Block,
    ];

    /// Stable upper-case name, used in the JSON matrix and the baseline.
    pub fn name(self) -> &'static str {
        match self {
            Effect::Alloc => "ALLOC",
            Effect::Lock => "LOCK",
            Effect::RawIo => "RAW_IO",
            Effect::Panic => "PANIC",
            Effect::Block => "BLOCK",
        }
    }

    /// Parses a baseline effect name.
    pub fn from_name(s: &str) -> Option<Effect> {
        Effect::ALL.into_iter().find(|e| e.name() == s)
    }

    fn bit(self) -> u8 {
        1 << (self as u8)
    }
}

/// A set of effects; the lattice join is bitwise union.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EffectSet(u8);

impl EffectSet {
    /// The bottom of the lattice.
    pub const EMPTY: EffectSet = EffectSet(0);

    /// The set holding exactly `effects`.
    pub fn of(effects: &[Effect]) -> EffectSet {
        let mut s = EffectSet::EMPTY;
        for &e in effects {
            s.insert(e);
        }
        s
    }

    /// Adds one effect.
    pub fn insert(&mut self, e: Effect) {
        self.0 |= e.bit();
    }

    /// The union of both sets.
    pub fn union(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 | other.0)
    }

    /// Membership test.
    pub fn contains(self, e: Effect) -> bool {
        self.0 & e.bit() != 0
    }

    /// True when the sets share any effect.
    pub fn intersects(self, other: EffectSet) -> bool {
        self.0 & other.0 != 0
    }

    /// True for the bottom element.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// The members, in [`Effect::ALL`] order.
    pub fn iter(self) -> impl Iterator<Item = Effect> {
        Effect::ALL.into_iter().filter(move |e| self.contains(*e))
    }

    /// The effects in `self` but not in `other`.
    pub fn difference(self, other: EffectSet) -> EffectSet {
        EffectSet(self.0 & !other.0)
    }
}

/// Method calls that allocate.
pub const ALLOC_METHODS: [&str; 4] = ["clone", "to_vec", "to_string", "collect"];

/// Macros that allocate.
pub const ALLOC_MACROS: [&str; 2] = ["vec", "format"];

/// `Type::fn` associated calls that allocate.
pub const ALLOC_PATHS: [(&str, &str); 8] = [
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Box", "new"),
    ("String", "from"),
    ("String", "new"),
    ("String", "with_capacity"),
    ("Rc", "new"),
    ("Arc", "new"),
];

/// Raw page-I/O entry points (the accounting lint's subject).
pub const IO_CALLS: [&str; 2] = ["read_page", "write_page"];

/// Method calls that panic on the unhappy path.
pub const PANIC_METHODS: [&str; 2] = ["unwrap", "expect"];

/// Macros that unconditionally panic.
pub const PANIC_MACROS: [&str; 4] = ["panic", "unreachable", "todo", "unimplemented"];

/// Methods that block the calling thread at any arity (condvar waits
/// carry the guard as an argument).
pub const BLOCK_METHODS: [&str; 2] = ["wait", "wait_timeout"];

/// Methods that block only when called with **no** arguments —
/// `handle.join()` / `rx.recv()` block, `parts.join(", ")` builds a
/// string.
pub const BLOCK_METHODS_NULLARY: [&str; 2] = ["join", "recv"];

/// Identifiers that may precede `[` without the bracket being an index
/// expression (slice patterns, `for`/`if let` heads, …).
const NON_INDEX_KEYWORDS: [&str; 12] = [
    "let", "in", "if", "else", "match", "return", "break", "continue", "while", "for", "move", "as",
];

/// One effect-primitive site inside a fn body.
#[derive(Debug, Clone)]
pub struct LocalEffect {
    /// Which lattice element the primitive contributes.
    pub effect: Effect,
    /// 1-based source line of the primitive.
    pub line: u32,
    /// Human-readable spelling of the primitive (`vec!`, `.unwrap()`,
    /// `xs[..]`, `counter.lock()`, …), also the dedup key.
    pub what: String,
}

/// The call graph plus per-fn local and inferred effect sets.
pub struct EffectGraph<'a> {
    /// The underlying call graph.
    pub graph: CallGraph<'a>,
    /// Per fn: the primitive sites in its own body.
    pub local: Vec<Vec<LocalEffect>>,
    /// Per fn: local effects ∪ everything reachable over trusted edges.
    pub inferred: Vec<EffectSet>,
    /// The SCC condensation the fixed point ran over, callees first.
    pub sccs: Vec<Vec<usize>>,
}

impl<'a> EffectGraph<'a> {
    /// Builds the graph and runs the fixed point.
    pub fn build(files: &[&'a SourceFile]) -> EffectGraph<'a> {
        let graph = CallGraph::build(files);
        // Per-file lock machinery, computed once: acquisitions plus the
        // names of RwLock fields declared in the file.
        let lock_info: Vec<(Vec<locks::Acquisition>, HashSet<String>)> = graph
            .files
            .iter()
            .map(|file| {
                let acqs = locks::collect_acquisitions(file);
                let rw_fields: HashSet<String> = locks::collect_decls(file)
                    .into_iter()
                    .filter(|d| d.kind == LockKind::RwLock)
                    .map(|d| d.field)
                    .collect();
                (acqs, rw_fields)
            })
            .collect();
        let local: Vec<Vec<LocalEffect>> = (0..graph.fns.len())
            .map(|fid| local_effects(&graph, fid, &lock_info))
            .collect();
        // Bottom-up fixed point over the condensation. SCCs arrive
        // callees-first, so external callees are final when read, and
        // within an SCC every member shares one set (each member reaches
        // every other), so a single union over the component suffices.
        let sccs = graph.sccs();
        let mut inferred = vec![EffectSet::EMPTY; graph.fns.len()];
        for scc in &sccs {
            let mut set = EffectSet::EMPTY;
            for &fid in scc {
                for le in &local[fid] {
                    set.insert(le.effect);
                }
                for (_, t) in graph.trusted_edges(fid) {
                    // In-component targets still hold EMPTY here; their
                    // locals are unioned by the loop above.
                    set = set.union(inferred[t]);
                }
            }
            for &fid in scc {
                inferred[fid] = set;
            }
        }
        EffectGraph {
            graph,
            local,
            inferred,
            sccs,
        }
    }
}

/// True when the token after `i` opens a call's argument list: `(`,
/// optionally behind a `::<…>` turbofish (`.collect::<Vec<_>>()`).
fn calls_with_paren(toks: &[Tok], i: usize) -> bool {
    let mut j = i + 1;
    if toks.get(j).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 1).is_some_and(|t| t.is_punct(':'))
        && toks.get(j + 2).is_some_and(|t| t.is_punct('<'))
    {
        let mut depth = 0i64;
        j += 2;
        while j < toks.len() {
            if toks[j].is_punct('<') {
                depth += 1;
            } else if toks[j].is_punct('>') && !(j >= 1 && toks[j - 1].is_punct('-')) {
                depth -= 1;
                if depth == 0 {
                    j += 1;
                    break;
                }
            }
            j += 1;
        }
    }
    toks.get(j).is_some_and(|t| t.is_punct('('))
}

/// Scans one fn body for effect primitives.
///
/// Test-masked tokens and the token ranges of `fn`s nested inside the
/// body are skipped — a nested fn is its own call target and must not
/// taint its host.
fn local_effects(
    graph: &CallGraph<'_>,
    fid: usize,
    lock_info: &[(Vec<locks::Acquisition>, HashSet<String>)],
) -> Vec<LocalEffect> {
    let def = &graph.fns[fid];
    let Some((b0, b1)) = def.body else {
        return Vec::new(); // trait declaration without a default body
    };
    if def.is_test {
        return Vec::new();
    }
    let file = graph.files[def.file];
    let toks = &file.scanned.toks;
    let nested: Vec<(usize, usize)> = graph
        .fns
        .iter()
        .filter(|f| f.file == def.file)
        .filter_map(|f| f.body)
        .filter(|&(o, c)| o > b0 && c < b1)
        .collect();
    let in_nested = |i: usize| nested.iter().any(|&(o, c)| o <= i && i <= c);
    let mut out = Vec::new();

    for i in b0..=b1 {
        if file.test_mask[i] || in_nested(i) {
            continue;
        }
        let t = &toks[i];
        // Indexing: `xs[…]`, `f()[…]`, `m[k][…]` — never a slice pattern
        // (`let [a, b] = …`), an array type/literal, or an attribute.
        if t.is_punct('[') && i >= 1 {
            let p = &toks[i - 1];
            let indexes = (p.kind == TokKind::Ident
                && !NON_INDEX_KEYWORDS.contains(&p.text.as_str()))
                || p.is_punct(')')
                || p.is_punct(']');
            if indexes {
                let recv = if p.kind == TokKind::Ident {
                    p.text.as_str()
                } else {
                    "…"
                };
                out.push(LocalEffect {
                    effect: Effect::Panic,
                    line: t.line,
                    what: format!("{recv}[..]"),
                });
            }
            continue;
        }
        if t.kind != TokKind::Ident {
            continue;
        }
        let next_bang = toks.get(i + 1).is_some_and(|n| n.is_punct('!'));
        let next_paren = calls_with_paren(toks, i);
        let via_dot = i >= 1 && toks[i - 1].is_punct('.');
        let via_path = i >= 2 && toks[i - 1].is_punct(':') && toks[i - 2].is_punct(':');
        let name = t.text.as_str();

        let alloc = if ALLOC_MACROS.contains(&name) && next_bang {
            Some(format!("{name}!"))
        } else if ALLOC_METHODS.contains(&name) && next_paren && via_dot {
            Some(format!(".{name}()"))
        } else if next_paren && via_path && i >= 3 {
            ALLOC_PATHS
                .iter()
                .find(|(q, m)| t.is_ident(m) && toks[i - 3].is_ident(q))
                .map(|(q, m)| format!("{q}::{m}"))
        } else {
            None
        };
        if let Some(what) = alloc {
            out.push(LocalEffect {
                effect: Effect::Alloc,
                line: t.line,
                what,
            });
            continue;
        }
        if IO_CALLS.contains(&name) && next_paren && (via_dot || via_path) {
            out.push(LocalEffect {
                effect: Effect::RawIo,
                line: t.line,
                what: name.to_string(),
            });
            continue;
        }
        if PANIC_MACROS.contains(&name) && next_bang {
            out.push(LocalEffect {
                effect: Effect::Panic,
                line: t.line,
                what: format!("{name}!"),
            });
            continue;
        }
        if PANIC_METHODS.contains(&name) && next_paren && via_dot {
            out.push(LocalEffect {
                effect: Effect::Panic,
                line: t.line,
                what: format!(".{name}()"),
            });
            continue;
        }
        if via_dot && next_paren {
            let nullary = toks.get(i + 2).is_some_and(|n| n.is_punct(')'));
            if BLOCK_METHODS.contains(&name) || (BLOCK_METHODS_NULLARY.contains(&name) && nullary) {
                out.push(LocalEffect {
                    effect: Effect::Block,
                    line: t.line,
                    what: format!(".{name}()"),
                });
                continue;
            }
        }
        if name == "sleep" && next_paren && via_path && i >= 3 && toks[i - 3].is_ident("thread") {
            out.push(LocalEffect {
                effect: Effect::Block,
                line: t.line,
                what: "thread::sleep".to_string(),
            });
        }
    }

    // Lock acquisitions come from the shared lock machinery, so this
    // lint, guard-across-io and lock-order agree on what an acquisition
    // is: `.lock()` always, `.read()`/`.write()` only on an RwLock
    // declared in this file.
    let (acqs, rw_fields) = &lock_info[def.file];
    for acq in acqs {
        if acq.idx < b0 || acq.idx > b1 || file.test_mask[acq.idx] || in_nested(acq.idx) {
            continue;
        }
        if acq.method != AcqMethod::Lock
            && !acq.receiver.as_ref().is_some_and(|r| rw_fields.contains(r))
        {
            continue;
        }
        let recv = acq.receiver.clone().unwrap_or_else(|| "<expr>".to_string());
        out.push(LocalEffect {
            effect: Effect::Lock,
            line: acq.line,
            what: format!("{recv}.{}()", acq.method.method_name()),
        });
    }
    out
}

/// How [`reach`] treats the graph around a root.
#[derive(Default)]
pub struct Traversal {
    /// Fns whose own body is checked but whose callees are not followed
    /// (`HOT-PATH-BOUNDARY:` dispatch points).
    pub boundaries: HashSet<usize>,
    /// Fns not entered at all (other roots run their own traversal).
    pub skip: HashSet<usize>,
    /// Whether primitives in the root's own body count. `false` for
    /// blocking-in-worker, where the root's admission wait is the design.
    pub include_root_body: bool,
}

/// One primitive site reachable from a root, with the shortest call
/// chain that gets there: `(fn entered, call-site line in its caller)`
/// hops from the root down to the fn holding the primitive.
#[derive(Debug, Clone)]
pub struct Finding {
    /// The fn whose body contains the primitive.
    pub fid: usize,
    /// Which effect the primitive contributes.
    pub effect: Effect,
    /// 1-based line of the primitive.
    pub line: u32,
    /// The primitive's spelling (see [`LocalEffect::what`]).
    pub what: String,
    /// Call hops from the root to [`Finding::fid`] (empty when the
    /// primitive sits in the root itself).
    pub chain: Vec<(usize, u32)>,
}

/// Walks the effectful subgraph from `root` over trusted, non-test edges
/// and returns every primitive site whose effect is in `want`.
///
/// Breadth-first, so each fn is first reached over a minimal-hop chain —
/// the witness the diagnostics print. Callees whose inferred set misses
/// `want` entirely are pruned: inference and traversal share one edge
/// set, so nothing findable is skipped.
pub fn reach(eg: &EffectGraph<'_>, root: usize, want: EffectSet, tr: &Traversal) -> Vec<Finding> {
    let mut parent: HashMap<usize, (usize, u32)> = HashMap::new();
    let mut visited: HashSet<usize> = HashSet::from([root]);
    let mut queue: VecDeque<usize> = VecDeque::from([root]);
    let mut out = Vec::new();
    while let Some(fid) = queue.pop_front() {
        if eg.graph.fns[fid].is_test {
            continue;
        }
        if fid != root || tr.include_root_body {
            for le in &eg.local[fid] {
                if !want.contains(le.effect) {
                    continue;
                }
                let mut chain = Vec::new();
                let mut cur = fid;
                while cur != root {
                    let (p, line) = parent[&cur];
                    chain.push((cur, line));
                    cur = p;
                }
                chain.reverse();
                out.push(Finding {
                    fid,
                    effect: le.effect,
                    line: le.line,
                    what: le.what.clone(),
                    chain,
                });
            }
        }
        if tr.boundaries.contains(&fid) {
            continue;
        }
        for (ci, t) in eg.graph.trusted_edges(fid) {
            if visited.contains(&t) || tr.skip.contains(&t) {
                continue;
            }
            if !eg.inferred[t].intersects(want) {
                continue;
            }
            visited.insert(t);
            parent.insert(t, (fid, eg.graph.calls[ci].line));
            queue.push_back(t);
        }
    }
    out
}

/// Renders a finding's witness chain:
/// `root (file:line) → hop (call file:line) → … → `what` (file:line)`.
///
/// The root shows its definition site; every later hop shows the **call
/// site** that enters it, so the chain can be followed click by click.
pub fn witness(eg: &EffectGraph<'_>, root: usize, f: &Finding) -> String {
    let g = &eg.graph;
    let rdef = &g.fns[root];
    let mut s = format!("{} ({}:{})", rdef.name, g.files[rdef.file].rel, rdef.line);
    let mut caller_file = rdef.file;
    for &(fid, call_line) in &f.chain {
        let d = &g.fns[fid];
        s.push_str(&format!(
            " → {} ({}:{})",
            d.name, g.files[caller_file].rel, call_line
        ));
        caller_file = d.file;
    }
    s.push_str(&format!(
        " → `{}` ({}:{})",
        f.what, g.files[g.fns[f.fid].file].rel, f.line
    ));
    s
}

/// The baseline key for a fn: `file::SelfTy::name`, or `file::name` for
/// free fns. Deliberately line-free so moving code within a file never
/// counts as drift.
pub fn fn_key(g: &CallGraph<'_>, fid: usize) -> String {
    let d = &g.fns[fid];
    let file = &g.files[d.file].rel;
    match &d.self_ty {
        Some(ty) => format!("{file}::{ty}::{}", d.name),
        None => format!("{file}::{}", d.name),
    }
}

/// The public-API effect matrix: what `cargo xtask effects` prints and
/// the baseline gate diffs.
pub struct Matrix {
    /// `(key, fns sharing the key, union of their inferred sets)`,
    /// sorted by key. Keys collide only across trait impls sharing a
    /// method name and self type spelling; the union keeps the row
    /// deterministic regardless.
    pub rows: Vec<(String, Vec<usize>, EffectSet)>,
}

/// Builds the matrix: every non-test `pub` fn of the `gated` crates
/// (outside private mods and trait declarations), plus `extra_roots`
/// (the hot-path roots, whatever their crate or visibility — their
/// effect budget is exactly what hot-path-hygiene polices).
pub fn matrix(eg: &EffectGraph<'_>, gated: &[&str], extra_roots: &[usize]) -> Matrix {
    let mut by_key: BTreeMap<String, (Vec<usize>, EffectSet)> = BTreeMap::new();
    let mut add = |fid: usize| {
        let entry = by_key.entry(fn_key(&eg.graph, fid)).or_default();
        if !entry.0.contains(&fid) {
            entry.0.push(fid);
            entry.1 = entry.1.union(eg.inferred[fid]);
        }
    };
    for (fid, def) in eg.graph.fns.iter().enumerate() {
        if !def.is_pub || def.is_test || def.in_private_mod || def.is_trait_decl {
            continue;
        }
        let crate_dir = eg.graph.files[def.file].crate_dir.as_deref();
        if crate_dir.is_some_and(|c| gated.contains(&c)) {
            add(fid);
        }
    }
    for &fid in extra_roots {
        if !eg.graph.fns[fid].is_test {
            add(fid);
        }
    }
    Matrix {
        rows: by_key.into_iter().map(|(k, (f, s))| (k, f, s)).collect(),
    }
}

impl Matrix {
    /// Renders the baseline JSON: sorted keys, one fn per line, no line
    /// numbers — byte-for-byte deterministic, so the git diff of the
    /// committed baseline *is* the effect-drift review.
    pub fn to_json(&self) -> String {
        let mut s = String::from("{\n  \"version\": 1,\n  \"functions\": {\n");
        for (i, (key, _, set)) in self.rows.iter().enumerate() {
            let effects: Vec<String> = set.iter().map(|e| format!("\"{}\"", e.name())).collect();
            let comma = if i + 1 < self.rows.len() { "," } else { "" };
            s.push_str(&format!(
                "    {}: [{}]{comma}\n",
                crate::json_string(key),
                effects.join(", ")
            ));
        }
        s.push_str("  }\n}\n");
        s
    }
}

/// One parsed baseline row.
struct BaselineRow {
    key: String,
    set: EffectSet,
    /// 1-based line in the baseline file, for stale-entry diagnostics.
    line: u32,
}

/// Parses the baseline. Line-oriented by design: the file is generated
/// by [`Matrix::to_json`] (one `"key": [EFFECTS…]` row per line, keys
/// are paths and identifiers, never escaped), so a real JSON parser
/// would buy nothing but dependencies.
fn parse_baseline(text: &str) -> Result<Vec<BaselineRow>, String> {
    let mut rows = Vec::new();
    let mut version_ok = false;
    for (ln, raw) in text.lines().enumerate() {
        let line = ln as u32 + 1;
        let t = raw.trim();
        if t.starts_with("\"version\"") {
            version_ok = t
                .trim_start_matches(|c| c != ':')
                .trim_start_matches(':')
                .trim()
                == "1,";
            continue;
        }
        // Keys contain `::`, so split on the exact `": ` boundary — the
        // emitter never puts a quote inside a key.
        let Some((quoted, rest)) = t.split_once("\": ") else {
            continue;
        };
        let rest = rest.trim();
        if !(quoted.starts_with('"') && rest.starts_with('[')) {
            continue;
        }
        let key = quoted.trim_start_matches('"').to_string();
        let inner = rest
            .trim_start_matches('[')
            .split_once(']')
            .map(|(i, _)| i)
            .ok_or_else(|| format!("{BASELINE_REL}:{line}: unclosed effect list"))?;
        let mut set = EffectSet::EMPTY;
        for name in inner.split(',').map(|p| p.trim().trim_matches('"')) {
            if name.is_empty() {
                continue;
            }
            let e = Effect::from_name(name)
                .ok_or_else(|| format!("{BASELINE_REL}:{line}: unknown effect `{name}`"))?;
            set.insert(e);
        }
        rows.push(BaselineRow { key, set, line });
    }
    if !version_ok {
        return Err(format!(
            "{BASELINE_REL}: missing or unsupported `\"version\": 1` header — \
             regenerate with `cargo xtask effects --update`"
        ));
    }
    Ok(rows)
}

/// Diffs the current matrix against the committed baseline and returns
/// one [`Lint::EffectRegression`] diagnostic per drift: gained effects
/// come with a witness chain down to the new primitive, dropped effects
/// and added/removed fns just need the baseline refreshed.
pub fn check_baseline(
    eg: &EffectGraph<'_>,
    m: &Matrix,
    baseline_text: &str,
) -> Result<Vec<Diagnostic>, String> {
    let baseline = parse_baseline(baseline_text)?;
    let by_key: HashMap<&str, &BaselineRow> =
        baseline.iter().map(|r| (r.key.as_str(), r)).collect();
    let mut diags = Vec::new();
    let mut current: HashSet<&str> = HashSet::new();
    let tr = Traversal {
        include_root_body: true,
        ..Traversal::default()
    };
    for (key, fids, set) in &m.rows {
        current.insert(key.as_str());
        let def = &eg.graph.fns[fids[0]];
        let def_file = eg.graph.files[def.file];
        let Some(base) = by_key.get(key.as_str()) else {
            diags.push(Diagnostic {
                file: def_file.rel.clone(),
                line: def.line,
                lint: Lint::EffectRegression,
                msg: format!(
                    "pub fn `{key}` is missing from the effect baseline; record it with \
                     `cargo xtask effects --update` and commit the diff"
                ),
            });
            continue;
        };
        for e in set.difference(base.set).iter() {
            // The witness starts at whichever fn under this key actually
            // carries the new effect (reach prunes on inferred sets, so
            // the first finding is the shortest chain to a primitive).
            let carrier = fids
                .iter()
                .copied()
                .find(|&f| eg.inferred[f].contains(e))
                .unwrap_or(fids[0]);
            let w = reach(eg, carrier, EffectSet::of(&[e]), &tr)
                .first()
                .map_or_else(
                    || "(no witness — inference bug?)".to_string(),
                    |f| witness(eg, carrier, f),
                );
            diags.push(Diagnostic {
                file: def_file.rel.clone(),
                line: def.line,
                lint: Lint::EffectRegression,
                msg: format!(
                    "`{key}` gained {}: {w}; fix the new path, or absorb the effect \
                     deliberately with `cargo xtask effects --update`",
                    e.name()
                ),
            });
        }
        for e in base.set.difference(*set).iter() {
            diags.push(Diagnostic {
                file: def_file.rel.clone(),
                line: def.line,
                lint: Lint::EffectRegression,
                msg: format!(
                    "`{key}` no longer carries {} — an improvement the baseline should \
                     record; run `cargo xtask effects --update`",
                    e.name()
                ),
            });
        }
    }
    for row in &baseline {
        if !current.contains(row.key.as_str()) {
            diags.push(Diagnostic {
                file: BASELINE_REL.to_string(),
                line: row.line,
                lint: Lint::EffectRegression,
                msg: format!(
                    "baseline entry `{}` matches no gated pub fn or hot-path root; \
                     refresh with `cargo xtask effects --update`",
                    row.key
                ),
            });
        }
    }
    diags.sort_by(|a, b| (&a.file, a.line, &a.msg).cmp(&(&b.file, b.line, &b.msg)));
    Ok(diags)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workspace::FileClass;

    fn file(src: &str) -> SourceFile {
        SourceFile::new(
            "crates/a/src/lib.rs".to_string(),
            FileClass::Lib,
            Some("a".to_string()),
            src,
        )
    }

    fn fid(eg: &EffectGraph<'_>, name: &str) -> usize {
        let ids = eg.graph.fns_by_name(name);
        assert_eq!(ids.len(), 1, "expected one fn named {name}");
        ids[0]
    }

    #[test]
    fn local_primitives_are_detected() {
        let f = file(
            "fn go(xs: &[u32]) -> u32 {\n\
               let v: Vec<u32> = xs.iter().copied().collect::<Vec<u32>>();\n\
               let s = 42u32.to_string();\n\
               let c = Vec::<u8>::with_capacity(4);\n\
               let first = xs[0];\n\
               let second = xs.first().unwrap();\n\
               s.len() as u32 + v.len() as u32 + c.len() as u32 + first + second\n\
             }\n",
        );
        let eg = EffectGraph::build(&[&f]);
        let go = fid(&eg, "go");
        let whats: Vec<&str> = eg.local[go].iter().map(|l| l.what.as_str()).collect();
        assert!(whats.contains(&".collect()"), "{whats:?}");
        assert!(whats.contains(&".to_string()"), "{whats:?}");
        assert!(whats.contains(&"xs[..]"), "{whats:?}");
        assert!(whats.contains(&".unwrap()"), "{whats:?}");
        assert!(eg.inferred[go].contains(Effect::Alloc));
        assert!(eg.inferred[go].contains(Effect::Panic));
        assert!(!eg.inferred[go].contains(Effect::Block));
    }

    #[test]
    fn str_join_is_not_blocking_but_thread_join_is() {
        let f = file(
            "fn build(parts: &[String]) -> String { parts.join(\", \") }\n\
             fn park(h: std::thread::JoinHandle<()>) { h.join().ok(); }\n",
        );
        let eg = EffectGraph::build(&[&f]);
        assert!(eg.inferred[fid(&eg, "build")].is_empty());
        assert!(eg.inferred[fid(&eg, "park")].contains(Effect::Block));
    }

    #[test]
    fn slice_patterns_and_array_types_are_not_indexing() {
        let f = file(
            "fn destructure(xs: &[u32]) -> u32 {\n\
               if let [a, b] = xs { a + b } else { 0 }\n\
             }\n\
             fn arr() -> [u8; 4] { [0u8; 4] }\n",
        );
        let eg = EffectGraph::build(&[&f]);
        assert!(eg.inferred[fid(&eg, "destructure")].is_empty());
        assert!(eg.inferred[fid(&eg, "arr")].is_empty());
    }

    #[test]
    fn effects_propagate_through_cycles() {
        let f = file(
            "fn ping(n: u32) -> u32 { if n == 0 { pong(n) } else { ping(n - 1) } }\n\
             fn pong(n: u32) -> u32 { if n > 9 { ping(n) } else { boom() } }\n\
             fn boom() -> u32 { panic!(\"end\") }\n\
             fn clean() -> u32 { 1 }\n",
        );
        let eg = EffectGraph::build(&[&f]);
        for name in ["ping", "pong", "boom"] {
            assert!(
                eg.inferred[fid(&eg, name)].contains(Effect::Panic),
                "{name} must inherit PANIC"
            );
        }
        assert!(eg.inferred[fid(&eg, "clean")].is_empty());
    }

    #[test]
    fn reach_returns_shortest_witness_chains() {
        let f = file(
            "fn root() { a(); b(); }\n\
             fn a() { b(); }\n\
             fn b() { let v = vec![1u8]; drop(v); }\n",
        );
        let eg = EffectGraph::build(&[&f]);
        let root = fid(&eg, "root");
        let tr = Traversal {
            include_root_body: true,
            ..Traversal::default()
        };
        let findings = reach(&eg, root, EffectSet::of(&[Effect::Alloc]), &tr);
        assert_eq!(findings.len(), 1);
        let w = witness(&eg, root, &findings[0]);
        assert_eq!(
            findings[0].chain.len(),
            1,
            "BFS must find root → b, not root → a → b: {w}"
        );
        assert!(
            w.starts_with("root (crates/a/src/lib.rs:1) → b (crates/a/src/lib.rs:1) → `vec!`"),
            "{w}"
        );
    }

    #[test]
    fn matrix_baseline_roundtrip_is_clean() {
        let f = file(
            "pub fn api(xs: &[u32]) -> u32 { helper(xs) }\n\
             fn helper(xs: &[u32]) -> u32 { xs[0] }\n\
             pub fn tidy() -> u32 { 7 }\n",
        );
        let eg = EffectGraph::build(&[&f]);
        let m = matrix(&eg, &["a"], &[]);
        let keys: Vec<&str> = m.rows.iter().map(|(k, _, _)| k.as_str()).collect();
        assert_eq!(
            keys,
            ["crates/a/src/lib.rs::api", "crates/a/src/lib.rs::tidy"],
            "private helper must not appear"
        );
        let diags = check_baseline(&eg, &m, &m.to_json()).unwrap();
        assert!(diags.is_empty(), "{diags:?}");
    }

    #[test]
    fn baseline_drift_fails_with_witness_and_stale_rows() {
        let f = file("pub fn api(xs: &[u32]) -> u32 { xs[0] }\n");
        let eg = EffectGraph::build(&[&f]);
        let m = matrix(&eg, &["a"], &[]);
        let stale = "{\n  \"version\": 1,\n  \"functions\": {\n    \
                     \"crates/a/src/lib.rs::api\": [],\n    \
                     \"crates/a/src/lib.rs::gone\": [\"ALLOC\"]\n  }\n}\n";
        let diags = check_baseline(&eg, &m, stale).unwrap();
        assert_eq!(diags.len(), 2, "{diags:?}");
        assert!(
            diags[0].msg.contains("gained PANIC") && diags[0].msg.contains("`xs[..]`"),
            "{}",
            diags[0].msg
        );
        assert!(
            diags[1].file == BASELINE_REL && diags[1].msg.contains("gone"),
            "{}",
            diags[1]
        );
    }

    #[test]
    fn boundaries_stop_traversal_after_their_own_body() {
        let f = file(
            "fn root() { gate(); }\n\
             fn gate() { beyond(); }\n\
             fn beyond() { let v = vec![1u8]; drop(v); }\n",
        );
        let eg = EffectGraph::build(&[&f]);
        let root = fid(&eg, "root");
        let tr = Traversal {
            boundaries: HashSet::from([fid(&eg, "gate")]),
            include_root_body: true,
            ..Traversal::default()
        };
        let findings = reach(&eg, root, EffectSet::of(&[Effect::Alloc]), &tr);
        assert!(findings.is_empty(), "{findings:?}");
    }
}
