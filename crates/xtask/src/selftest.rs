//! Fixture self-test: proves each lint still rejects what it must reject
//! and accepts what it must accept.
//!
//! Fixtures live in `crates/xtask/fixtures/<lint>/`. `fail` fixtures mark
//! every expected finding with a trailing `//~ ERROR <lint-name>` comment
//! (`#~ ERROR <lint-name>` in TOML); the harness requires the produced
//! diagnostics to match the markers *exactly* — same file, same line, same
//! lint — so a lint that drifts quiet or noisy fails the suite either way.
//! A marker may pin the message too: `//~ ERROR lock-order: cycle`
//! additionally requires the diagnostic's message to contain `cycle`,
//! which is how the corpus distinguishes a lint's error codes.

use std::fs;
use std::path::{Path, PathBuf};
use std::time::Instant;

use crate::callgraph::CallGraph;
use crate::lints;
use crate::workspace::{Allowlist, FileClass, SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// Self-test outcome: what failed, and how long each lint's fixture
/// section took (so analysis cost stays visible as the corpus grows).
pub struct SelfTestReport {
    /// Human-readable failure descriptions (empty = pass).
    pub failures: Vec<String>,
    /// `(lint name, milliseconds)` per fixture section, in run order.
    pub timings: Vec<(&'static str, f64)>,
    /// Resolver coverage over the real workspace: per-crate `(crate,
    /// resolved, unresolved)` non-test call-site counts. A shrinking
    /// resolved share weakens every graph-based lint silently — so it is
    /// printed, not buried.
    pub coverage: Vec<(String, u64, u64)>,
}

/// Runs the whole fixture corpus.
pub fn self_test(root: &Path) -> Result<SelfTestReport, String> {
    let fixtures = root.join("crates/xtask/fixtures");
    if !fixtures.is_dir() {
        return Err(format!("fixture corpus missing at {}", fixtures.display()));
    }
    let mut failures = Vec::new();
    let mut timings: Vec<(&'static str, f64)> = Vec::new();
    let mut timer = Instant::now();
    let lap = |name: &'static str, timings: &mut Vec<(&'static str, f64)>, timer: &mut Instant| {
        timings.push((name, timer.elapsed().as_secs_f64() * 1e3));
        *timer = Instant::now();
    };

    // accounting: fail fixture trips, pass fixture (which routes through
    // wrappers and uses an allowlisted site) stays clean.
    let allow = Allowlist::parse(
        "# self-test: the fixture's justified site\n\
         crates/experiments/src/fixture.rs::allowlisted_site\n",
    );
    check_file_fixture(
        &fixtures.join("accounting/fail.rs"),
        |f| lints::accounting::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("accounting/pass.rs"),
        |f| lints::accounting::check_file(f, &allow),
        &mut failures,
    )?;
    lap("accounting", &mut timings, &mut timer);

    // panic-surface.
    check_file_fixture(
        &fixtures.join("panic_surface/fail.rs"),
        |f| lints::panic_surface::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    let allow_panics = Allowlist::parse(
        "# self-test: justified panic site\n\
         crates/experiments/src/fixture.rs::justified\n",
    );
    check_file_fixture(
        &fixtures.join("panic_surface/pass.rs"),
        |f| lints::panic_surface::check_file(f, &allow_panics),
        &mut failures,
    )?;
    lap("panic-surface", &mut timings, &mut timer);

    // unsafe-audit: SAFETY comments…
    check_file_fixture(
        &fixtures.join("unsafe_audit/fail.rs"),
        lints::unsafe_audit::check_file,
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("unsafe_audit/pass.rs"),
        lints::unsafe_audit::check_file,
        &mut failures,
    )?;
    // …and the crate-level fence. A lib.rs without any fence must produce
    // exactly one diagnostic; one with `forbid` must be clean.
    let fence_fail = load_fixture(&fixtures.join("unsafe_audit/missing_fence_lib.rs"))?;
    let got = lints::unsafe_audit::check_crate_attr(&fence_fail, "somecrate");
    if got.len() != 1 {
        failures.push(format!(
            "unsafe_audit/missing_fence_lib.rs: expected exactly 1 missing-fence \
             diagnostic, got {}",
            got.len()
        ));
    }
    let fence_pass = load_fixture(&fixtures.join("unsafe_audit/fenced_lib.rs"))?;
    let got = lints::unsafe_audit::check_crate_attr(&fence_pass, "somecrate");
    if !got.is_empty() {
        failures.push(format!(
            "unsafe_audit/fenced_lib.rs: expected clean, got {got:?}"
        ));
    }
    // pagestore/core may fence with `deny` instead of `forbid`.
    let denied = load_fixture(&fixtures.join("unsafe_audit/denied_lib.rs"))?;
    if !lints::unsafe_audit::check_crate_attr(&denied, "pagestore").is_empty() {
        failures.push("unsafe_audit/denied_lib.rs: deny must satisfy pagestore".to_string());
    }
    if lints::unsafe_audit::check_crate_attr(&denied, "somecrate").len() != 1 {
        failures.push("unsafe_audit/denied_lib.rs: deny must NOT satisfy other crates".to_string());
    }
    lap("unsafe-audit", &mut timings, &mut timer);

    // layering: a bad mini-workspace (manifest edge + source reference) and
    // a good one.
    check_tree_fixture(&fixtures.join("layering/bad"), &mut failures)?;
    check_tree_fixture(&fixtures.join("layering/good"), &mut failures)?;
    lap("layering", &mut timings, &mut timer);

    // lock-order: one fixture per concern — every per-declaration and
    // per-acquisition error code, the declared-order cycle, and a clean
    // hierarchy whose one violation is allowlisted.
    let allow_locks = Allowlist::parse(
        "# self-test: the fixtures' justified lock-discipline sites\n\
         crates/experiments/src/fixture.rs::allowlisted_site\n",
    );
    check_file_fixture(
        &fixtures.join("lock_order/fail.rs"),
        |f| lints::lock_order::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("lock_order/cycle.rs"),
        |f| lints::lock_order::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("lock_order/pass.rs"),
        |f| lints::lock_order::check_file(f, &allow_locks),
        &mut failures,
    )?;
    // The query-service shard hierarchy: admission queue over shard
    // locks over the pending leaf, plus both inverted acquisitions.
    check_file_fixture(
        &fixtures.join("lock_order/shard_hierarchy.rs"),
        |f| lints::lock_order::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    lap("lock-order", &mut timings, &mut timer);

    // guard-across-io: guards live across page I/O trip; guards dropped
    // (block scope or explicit drop) before I/O, or allowlisted, do not.
    check_file_fixture(
        &fixtures.join("guard_across_io/fail.rs"),
        |f| lints::guard_across_io::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("guard_across_io/pass.rs"),
        |f| lints::guard_across_io::check_file(f, &allow_locks),
        &mut failures,
    )?;
    lap("guard-across-io", &mut timings, &mut timer);

    // hot-path-hygiene: annotated roots trip on transitive allocation /
    // lock / raw-I/O findings plus every malformed-annotation shape; the
    // pass fixture shows clean traversal, the boundary annotation, the
    // accounting seam, and an allowlisted site staying quiet.
    check_file_fixture(
        &fixtures.join("hotpath/fail.rs"),
        |f| lints::hot_path::check_file(f, &Allowlist::default(), &Allowlist::default()),
        &mut failures,
    )?;
    let allow_hot = Allowlist::parse(
        "# self-test: the fixture's justified hot-path site\n\
         crates/experiments/src/fixture.rs::justified_helper\n",
    );
    let accounting_seam = Allowlist::parse(
        "# self-test: the fixture's accounting seam\n\
         crates/experiments/src/fixture.rs::seam_read\n",
    );
    check_file_fixture(
        &fixtures.join("hotpath/pass.rs"),
        |f| lints::hot_path::check_file(f, &allow_hot, &accounting_seam),
        &mut failures,
    )?;
    lap("hot-path-hygiene", &mut timings, &mut timer);

    // panic-reachability: the cycle fixture pins the SCC fixed point —
    // sinks inside (and past) a mutually-recursive component reach the
    // pub entries, reported once each with the first entry's witness.
    check_file_fixture(
        &fixtures.join("effects/cycle.rs"),
        |f| lints::panic_reach::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    lap("panic-reachability", &mut timings, &mut timer);

    // blocking-in-worker, run together with panic-reachability over the
    // shared fixtures: the fail fixture's dispatch root blocks
    // transitively (root body and beyond-boundary blocks exempt), the
    // pass fixture pins the str-join non-flag and an allowlisted sink.
    let allow_sinks = Allowlist::parse(
        "# self-test: the fixture's justified panic sink\n\
         crates/experiments/src/fixture.rs::checked_math\n",
    );
    check_file_fixture(
        &fixtures.join("effects/fail.rs"),
        |f| {
            let mut d = lints::panic_reach::check_file(f, &Allowlist::default());
            d.extend(lints::blocking_worker::check_file(f, &Allowlist::default()));
            d
        },
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("effects/pass.rs"),
        |f| {
            let mut d = lints::panic_reach::check_file(f, &allow_sinks);
            d.extend(lints::blocking_worker::check_file(f, &Allowlist::default()));
            d
        },
        &mut failures,
    )?;
    lap("blocking-in-worker", &mut timings, &mut timer);

    // swallowed-result: both discard shapes trip; propagation, handling,
    // unit-returning calls and an allowlisted site stay quiet.
    check_file_fixture(
        &fixtures.join("swallowed_result/fail.rs"),
        |f| lints::swallowed_result::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    let allow_swallowed = Allowlist::parse(
        "# self-test: the fixture's intentional swallow\n\
         crates/experiments/src/fixture.rs::allowlisted_site\n",
    );
    check_file_fixture(
        &fixtures.join("swallowed_result/pass.rs"),
        |f| lints::swallowed_result::check_file(f, &allow_swallowed),
        &mut failures,
    )?;
    lap("swallowed-result", &mut timings, &mut timer);

    // reachability: dead private fns and unreferenced pub-in-private fns
    // trip; called fns, trait machinery and public API stay quiet.
    check_file_fixture(
        &fixtures.join("reachability/fail.rs"),
        lints::reachability::check_file,
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("reachability/pass.rs"),
        lints::reachability::check_file,
        &mut failures,
    )?;
    lap("reachability", &mut timings, &mut timer);

    // cost: the fail fixture trips every contract error class (malformed
    // shapes, a hot-path root with no contract, a nest deeper than the
    // declared degree, page I/O outside every contracted root); the pass
    // fixture shows composing contracts, a degree-2 pipeline, and an
    // allowlisted maintenance read staying quiet.
    check_file_fixture(
        &fixtures.join("cost/fail.rs"),
        |f| lints::cost::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    let allow_cost = Allowlist::parse(
        "# self-test: the fixture's justified maintenance read\n\
         crates/experiments/src/fixture.rs::compact\n",
    );
    check_file_fixture(
        &fixtures.join("cost/pass.rs"),
        |f| lints::cost::check_file(f, &allow_cost),
        &mut failures,
    )?;
    lap("cost", &mut timings, &mut timer);

    // stale-allow: a consulted entry stays quiet, an unmatched one is
    // reported with its own file/line.
    let stale = Allowlist::parse("crates/experiments/src/fixture.rs::used\nnever/matched.rs\n");
    stale.permits("crates/experiments/src/fixture.rs", Some("used"));
    let got = lints::stale_allow::check(&[("test.allow", &stale)]);
    if got.len() != 1
        || got[0].line != 2
        || got[0].lint != Lint::StaleAllow
        || !got[0].msg.contains("never/matched.rs")
    {
        failures.push(format!(
            "stale-allow: expected exactly the `never/matched.rs` entry at line 2, got {got:?}"
        ));
    }
    lap("stale-allow", &mut timings, &mut timer);

    // Resolver coverage over the *real* workspace (not the fixtures):
    // the per-crate resolved/unresolved call-site counts every
    // graph-based lint stands on.
    let ws = Workspace::load(root)?;
    let lib_files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    let coverage = CallGraph::build(&lib_files).resolution_coverage();
    lap("resolver-coverage", &mut timings, &mut timer);

    Ok(SelfTestReport {
        failures,
        timings,
        coverage,
    })
}

/// Loads a fixture file as library code of a pretend `experiments` crate.
fn load_fixture(path: &Path) -> Result<SourceFile, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Ok(SourceFile::new(
        "crates/experiments/src/fixture.rs".to_string(),
        FileClass::Lib,
        Some("experiments".to_string()),
        &text,
    ))
}

/// One expected finding: line, lint, and an optional required message
/// substring (`//~ ERROR <lint>[: <substring>]`).
type Marker = (u32, Lint, Option<String>);

/// Every `~ ERROR <name>[: <substring>]` marker in `text`.
fn expected_markers(text: &str) -> Vec<Marker> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(pos) = line.find("~ ERROR ") else {
            continue;
        };
        let rest = line[pos + "~ ERROR ".len()..].trim();
        let (name, substr) = match rest.split_once(':') {
            Some((n, s)) => (n.trim(), Some(s.trim().to_string())),
            None => (rest.split_whitespace().next().unwrap_or(""), None),
        };
        if let Some(lint) = Lint::from_name(name) {
            out.push((idx as u32 + 1, lint, substr.filter(|s| !s.is_empty())));
        }
    }
    out
}

/// Runs `check` on one fixture file and compares against its markers.
fn check_file_fixture(
    path: &Path,
    check: impl Fn(&SourceFile) -> Vec<Diagnostic>,
    failures: &mut Vec<String>,
) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let file = load_fixture(path)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    compare(&name, expected_markers(&text), check(&file), failures);
    Ok(())
}

/// Runs the layering lint over a mini-workspace fixture tree and compares
/// against the markers found anywhere in that tree.
fn check_tree_fixture(tree: &Path, failures: &mut Vec<String>) -> Result<(), String> {
    let mut expected = Vec::new();
    collect_tree_markers(tree, &mut expected)?;
    let ws = Workspace::load(tree)?;
    let got = lints::layering::run(&ws)?;
    let name = tree
        .file_name()
        .map(|n| format!("layering/{}", n.to_string_lossy()))
        .unwrap_or_default();
    compare(&name, expected, got, failures);
    Ok(())
}

fn collect_tree_markers(dir: &Path, out: &mut Vec<Marker>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_tree_markers(&path, out)?;
        } else if let Ok(text) = fs::read_to_string(&path) {
            out.extend(expected_markers(&text));
        }
    }
    Ok(())
}

/// Compares expected markers against produced diagnostics: the `(line,
/// lint)` multisets must match exactly, and every marker substring must
/// appear in a diagnostic at its line.
fn compare(name: &str, expected: Vec<Marker>, got: Vec<Diagnostic>, failures: &mut Vec<String>) {
    let mut want: Vec<(u32, Lint)> = expected.iter().map(|(l, lint, _)| (*l, *lint)).collect();
    let mut actual: Vec<(u32, Lint)> = got.iter().map(|d| (d.line, d.lint)).collect();
    want.sort_unstable();
    actual.sort_unstable();
    if want != actual {
        failures.push(format!(
            "{name}: expected {want:?}, got {actual:?}\n  diagnostics: {}",
            got.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        ));
        return;
    }
    for (line, lint, substr) in &expected {
        let Some(substr) = substr else { continue };
        let hit = got
            .iter()
            .any(|d| d.line == *line && d.lint == *lint && d.msg.contains(substr.as_str()));
        if !hit {
            failures.push(format!(
                "{name}: line {line} [{lint}] message does not contain `{substr}`; \
                 diagnostics: {}",
                got.iter()
                    .filter(|d| d.line == *line)
                    .map(ToString::to_string)
                    .collect::<Vec<_>>()
                    .join("; ")
            ));
        }
    }
}
