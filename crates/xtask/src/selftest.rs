//! Fixture self-test: proves each lint still rejects what it must reject
//! and accepts what it must accept.
//!
//! Fixtures live in `crates/xtask/fixtures/<lint>/`. `fail` fixtures mark
//! every expected finding with a trailing `//~ ERROR <lint-name>` comment
//! (`#~ ERROR <lint-name>` in TOML); the harness requires the produced
//! diagnostics to match the markers *exactly* — same file, same line, same
//! lint — so a lint that drifts quiet or noisy fails the suite either way.

use std::fs;
use std::path::{Path, PathBuf};

use crate::lints;
use crate::scan;
use crate::workspace::{Allowlist, FileClass, SourceFile, Workspace};
use crate::{Diagnostic, Lint};

/// Runs the whole fixture corpus. Returns the list of failures (empty =
/// pass).
pub fn self_test(root: &Path) -> Result<Vec<String>, String> {
    let fixtures = root.join("crates/xtask/fixtures");
    if !fixtures.is_dir() {
        return Err(format!("fixture corpus missing at {}", fixtures.display()));
    }
    let mut failures = Vec::new();

    // accounting: fail fixture trips, pass fixture (which routes through
    // wrappers and uses an allowlisted site) stays clean.
    let allow = Allowlist::parse(
        "# self-test: the fixture's justified site\n\
         crates/experiments/src/fixture.rs::allowlisted_site\n",
    );
    check_file_fixture(
        &fixtures.join("accounting/fail.rs"),
        |f| lints::accounting::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("accounting/pass.rs"),
        |f| lints::accounting::check_file(f, &allow),
        &mut failures,
    )?;

    // panic-surface.
    check_file_fixture(
        &fixtures.join("panic_surface/fail.rs"),
        |f| lints::panic_surface::check_file(f, &Allowlist::default()),
        &mut failures,
    )?;
    let allow_panics = Allowlist::parse(
        "# self-test: justified panic site\n\
         crates/experiments/src/fixture.rs::justified\n",
    );
    check_file_fixture(
        &fixtures.join("panic_surface/pass.rs"),
        |f| lints::panic_surface::check_file(f, &allow_panics),
        &mut failures,
    )?;

    // unsafe-audit: SAFETY comments…
    check_file_fixture(
        &fixtures.join("unsafe_audit/fail.rs"),
        lints::unsafe_audit::check_file,
        &mut failures,
    )?;
    check_file_fixture(
        &fixtures.join("unsafe_audit/pass.rs"),
        lints::unsafe_audit::check_file,
        &mut failures,
    )?;
    // …and the crate-level fence. A lib.rs without any fence must produce
    // exactly one diagnostic; one with `forbid` must be clean.
    let fence_fail = load_fixture(&fixtures.join("unsafe_audit/missing_fence_lib.rs"))?;
    let got = lints::unsafe_audit::check_crate_attr(&fence_fail, "somecrate");
    if got.len() != 1 {
        failures.push(format!(
            "unsafe_audit/missing_fence_lib.rs: expected exactly 1 missing-fence \
             diagnostic, got {}",
            got.len()
        ));
    }
    let fence_pass = load_fixture(&fixtures.join("unsafe_audit/fenced_lib.rs"))?;
    let got = lints::unsafe_audit::check_crate_attr(&fence_pass, "somecrate");
    if !got.is_empty() {
        failures.push(format!(
            "unsafe_audit/fenced_lib.rs: expected clean, got {got:?}"
        ));
    }
    // pagestore/core may fence with `deny` instead of `forbid`.
    let denied = load_fixture(&fixtures.join("unsafe_audit/denied_lib.rs"))?;
    if !lints::unsafe_audit::check_crate_attr(&denied, "pagestore").is_empty() {
        failures.push("unsafe_audit/denied_lib.rs: deny must satisfy pagestore".to_string());
    }
    if lints::unsafe_audit::check_crate_attr(&denied, "somecrate").len() != 1 {
        failures.push("unsafe_audit/denied_lib.rs: deny must NOT satisfy other crates".to_string());
    }

    // layering: a bad mini-workspace (manifest edge + source reference) and
    // a good one.
    check_tree_fixture(&fixtures.join("layering/bad"), &mut failures)?;
    check_tree_fixture(&fixtures.join("layering/good"), &mut failures)?;

    Ok(failures)
}

/// Loads a fixture file as library code of a pretend `experiments` crate.
fn load_fixture(path: &Path) -> Result<SourceFile, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    Ok(SourceFile {
        rel: "crates/experiments/src/fixture.rs".to_string(),
        class: FileClass::Lib,
        crate_dir: Some("experiments".to_string()),
        scanned: scan::scan(&text),
    })
}

/// `(line, lint)` for every `~ ERROR <name>` marker in `text`.
fn expected_markers(text: &str) -> Vec<(u32, Lint)> {
    let mut out = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let Some(pos) = line.find("~ ERROR ") else {
            continue;
        };
        let name = line[pos + "~ ERROR ".len()..]
            .split_whitespace()
            .next()
            .unwrap_or("");
        if let Some(lint) = Lint::from_name(name) {
            out.push((idx as u32 + 1, lint));
        }
    }
    out
}

/// Runs `check` on one fixture file and compares against its markers.
fn check_file_fixture(
    path: &Path,
    check: impl Fn(&SourceFile) -> Vec<Diagnostic>,
    failures: &mut Vec<String>,
) -> Result<(), String> {
    let text = fs::read_to_string(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let file = load_fixture(path)?;
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_default();
    compare(&name, expected_markers(&text), check(&file), failures);
    Ok(())
}

/// Runs the layering lint over a mini-workspace fixture tree and compares
/// against the markers found anywhere in that tree.
fn check_tree_fixture(tree: &Path, failures: &mut Vec<String>) -> Result<(), String> {
    let mut expected = Vec::new();
    collect_tree_markers(tree, &mut expected)?;
    let ws = Workspace::load(tree)?;
    let got = lints::layering::run(&ws)?;
    let name = tree
        .file_name()
        .map(|n| format!("layering/{}", n.to_string_lossy()))
        .unwrap_or_default();
    compare(&name, expected, got, failures);
    Ok(())
}

fn collect_tree_markers(dir: &Path, out: &mut Vec<(u32, Lint)>) -> Result<(), String> {
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            collect_tree_markers(&path, out)?;
        } else if let Ok(text) = fs::read_to_string(&path) {
            out.extend(expected_markers(&text));
        }
    }
    Ok(())
}

/// Compares expected `(line, lint)` pairs against produced diagnostics.
fn compare(
    name: &str,
    mut expected: Vec<(u32, Lint)>,
    got: Vec<Diagnostic>,
    failures: &mut Vec<String>,
) {
    let mut actual: Vec<(u32, Lint)> = got.iter().map(|d| (d.line, d.lint)).collect();
    expected.sort_unstable();
    actual.sort_unstable();
    if expected != actual {
        failures.push(format!(
            "{name}: expected {expected:?}, got {actual:?}\n  diagnostics: {}",
            got.iter()
                .map(ToString::to_string)
                .collect::<Vec<_>>()
                .join("; ")
        ));
    }
}
