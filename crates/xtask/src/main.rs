//! `cargo xtask` — project task runner. Currently one task: `analyze`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  analyze [--root <path>] [--format text|json]
                            run the project lints over the workspace
  analyze --self-test       verify the lints against the fixture corpus

Lints: accounting, unsafe-audit, panic-surface, layering, lock-order,
guard-across-io, hot-path-hygiene, swallowed-result, reachability,
stale-allow.
See DESIGN.md \"Static analysis & invariants\" for what each enforces.";

/// Output format for analyze findings.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("analyze") => {}
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            return Ok(ExitCode::SUCCESS);
        }
        Some(other) => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
    let mut root: Option<PathBuf> = None;
    let mut self_test = false;
    let mut format = Format::Text;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let p = it.next().ok_or_else(|| "--root needs a path".to_string())?;
                root = Some(PathBuf::from(p));
            }
            "--self-test" => self_test = true,
            "--format" => {
                let f = it
                    .next()
                    .ok_or_else(|| "--format needs `text` or `json`".to_string())?;
                format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };

    if self_test {
        let started = Instant::now();
        let report = xtask::selftest::self_test(&root)?;
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        // Per-lint wall time, so analysis cost stays visible as the
        // workspace grows.
        for (lint, ms) in &report.timings {
            println!("  {lint:<18} {ms:8.1} ms");
        }
        if report.failures.is_empty() {
            println!("xtask analyze --self-test: fixture corpus OK ({elapsed_ms:.1} ms)");
            return Ok(ExitCode::SUCCESS);
        }
        for f in &report.failures {
            eprintln!("self-test failure: {f}");
        }
        eprintln!(
            "xtask analyze --self-test: {} failure(s) ({elapsed_ms:.1} ms)",
            report.failures.len()
        );
        return Ok(ExitCode::FAILURE);
    }

    let diags = xtask::analyze(&root)?;
    if format == Format::Json {
        // One JSON array; findings as objects. An empty array is still
        // valid output for downstream tooling.
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 < diags.len() { "," } else { "" };
            println!("  {}{comma}", d.to_json());
        }
        println!("]");
        return Ok(if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    if diags.is_empty() {
        println!(
            "xtask analyze: workspace clean (accounting, unsafe-audit, panic-surface, \
             layering, lock-order, guard-across-io, hot-path-hygiene, swallowed-result, \
             reachability, stale-allow)"
        );
        return Ok(ExitCode::SUCCESS);
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("xtask analyze: {} violation(s)", diags.len());
    Ok(ExitCode::FAILURE)
}

/// The workspace root: two levels above this crate's manifest, independent
/// of the invocation directory.
fn default_root() -> Result<PathBuf, String> {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".to_string())
}
