//! `cargo xtask` — project task runner: `analyze`, `effects` and `cost`.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::time::Instant;

const USAGE: &str = "\
Usage: cargo xtask <command>

Commands:
  analyze [--root <path>] [--format text|json]
                            run the project lints over the workspace
  analyze --self-test [--bench-json <path>]
                            verify the lints against the fixture corpus;
                            optionally write per-lint wall times as a
                            bench-summary JSON
  effects [--root <path>]   print the public-API effect matrix as JSON
  effects --check           diff the matrix against the committed
                            baseline (crates/xtask/effects.baseline.json);
                            any drift fails with witness chains
  effects --update          rewrite the baseline from the current matrix
  cost [--root <path>]      print the page-I/O cost-contract matrix
                            (contracts + resolver coverage) as JSON
  cost --check              diff the contracts against the committed
                            baseline (crates/xtask/cost.baseline.json)
  cost --update             rewrite the cost baseline from the source

Lints: accounting, unsafe-audit, panic-surface, layering, lock-order,
guard-across-io, hot-path-hygiene, panic-reachability,
blocking-in-worker, swallowed-result, reachability, cost, stale-allow.
See DESIGN.md \"Static analysis & invariants\" for what each enforces.";

/// Output format for analyze findings.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(code) => code,
        Err(e) => {
            eprintln!("xtask: {e}");
            ExitCode::from(2)
        }
    }
}

fn run(args: &[String]) -> Result<ExitCode, String> {
    let mut it = args.iter();
    match it.next().map(String::as_str) {
        Some("analyze") => {}
        Some("effects") => return run_effects(it.as_slice()),
        Some("cost") => return run_cost(it.as_slice()),
        Some("--help" | "-h") | None => {
            println!("{USAGE}");
            return Ok(ExitCode::SUCCESS);
        }
        Some(other) => return Err(format!("unknown command `{other}`\n\n{USAGE}")),
    }
    let mut root: Option<PathBuf> = None;
    let mut self_test = false;
    let mut bench_json: Option<PathBuf> = None;
    let mut format = Format::Text;
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let p = it.next().ok_or_else(|| "--root needs a path".to_string())?;
                root = Some(PathBuf::from(p));
            }
            "--self-test" => self_test = true,
            "--bench-json" => {
                let p = it
                    .next()
                    .ok_or_else(|| "--bench-json needs a path".to_string())?;
                bench_json = Some(PathBuf::from(p));
            }
            "--format" => {
                let f = it
                    .next()
                    .ok_or_else(|| "--format needs `text` or `json`".to_string())?;
                format = match f.as_str() {
                    "text" => Format::Text,
                    "json" => Format::Json,
                    other => return Err(format!("unknown format `{other}` (text|json)")),
                };
            }
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };

    if self_test {
        let started = Instant::now();
        let report = xtask::selftest::self_test(&root)?;
        let elapsed_ms = started.elapsed().as_secs_f64() * 1e3;
        // Per-lint wall time, so analysis cost stays visible as the
        // workspace grows.
        for (lint, ms) in &report.timings {
            println!("  {lint:<18} {ms:8.1} ms");
        }
        // Resolver coverage over the real workspace: a drop in the
        // resolved share silently weakens every graph-based lint, so the
        // counts print next to the fixture verdict.
        for (krate, resolved, unresolved) in &report.coverage {
            println!("  resolver {krate:<11} {resolved:>5} resolved / {unresolved:>4} unresolved");
        }
        if let Some(path) = &bench_json {
            // The bench-summary shape the perf-trajectory CI job archives
            // (one result row per lint section, milliseconds).
            let mut s = String::from("{\n  \"bench\": \"xtask-analyze\",\n  \"results\": [\n");
            for (i, (lint, ms)) in report.timings.iter().enumerate() {
                let comma = if i + 1 < report.timings.len() {
                    ","
                } else {
                    ""
                };
                s.push_str(&format!(
                    "    {{\"name\": \"{lint}\", \"ms\": {ms:.3}}}{comma}\n"
                ));
            }
            s.push_str("  ]\n}\n");
            std::fs::write(path, s).map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        }
        if report.failures.is_empty() {
            println!("xtask analyze --self-test: fixture corpus OK ({elapsed_ms:.1} ms)");
            return Ok(ExitCode::SUCCESS);
        }
        for f in &report.failures {
            eprintln!("self-test failure: {f}");
        }
        eprintln!(
            "xtask analyze --self-test: {} failure(s) ({elapsed_ms:.1} ms)",
            report.failures.len()
        );
        return Ok(ExitCode::FAILURE);
    }

    let diags = xtask::analyze(&root)?;
    if format == Format::Json {
        // One JSON array; findings as objects. An empty array is still
        // valid output for downstream tooling.
        println!("[");
        for (i, d) in diags.iter().enumerate() {
            let comma = if i + 1 < diags.len() { "," } else { "" };
            println!("  {}{comma}", d.to_json());
        }
        println!("]");
        return Ok(if diags.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        });
    }
    if diags.is_empty() {
        println!(
            "xtask analyze: workspace clean (accounting, unsafe-audit, panic-surface, \
             layering, lock-order, guard-across-io, hot-path-hygiene, panic-reachability, \
             blocking-in-worker, swallowed-result, reachability, cost, stale-allow)"
        );
        return Ok(ExitCode::SUCCESS);
    }
    for d in &diags {
        println!("{d}");
    }
    eprintln!("xtask analyze: {} violation(s)", diags.len());
    Ok(ExitCode::FAILURE)
}

/// What `cargo xtask effects` should do with the matrix.
#[derive(Clone, Copy, PartialEq, Eq)]
enum EffectsMode {
    Print,
    Check,
    Update,
}

/// The `effects` subcommand: build the effect matrix and print, check or
/// update the committed baseline.
fn run_effects(args: &[String]) -> Result<ExitCode, String> {
    use xtask::effects::{self, BASELINE_REL};
    use xtask::workspace::{FileClass, SourceFile, Workspace};

    let mut root: Option<PathBuf> = None;
    let mut mode = EffectsMode::Print;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let p = it.next().ok_or_else(|| "--root needs a path".to_string())?;
                root = Some(PathBuf::from(p));
            }
            "--check" => mode = EffectsMode::Check,
            "--update" => mode = EffectsMode::Update,
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };

    let ws = Workspace::load(&root)?;
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    let eg = effects::EffectGraph::build(&files);
    let ann = xtask::lints::hot_path::collect_annotations(&eg.graph);
    let roots: Vec<usize> = ann.roots.iter().map(|(fid, _)| *fid).collect();
    let m = effects::matrix(&eg, &xtask::lints::panic_reach::GATED_CRATES, &roots);
    let json = m.to_json();

    match mode {
        EffectsMode::Print => {
            print!("{json}");
            Ok(ExitCode::SUCCESS)
        }
        EffectsMode::Update => {
            let path = root.join(BASELINE_REL);
            std::fs::write(&path, &json)
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "xtask effects --update: wrote {} function(s) to {BASELINE_REL}",
                m.rows.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        EffectsMode::Check => {
            let path = root.join(BASELINE_REL);
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "cannot read {}: {e} — bootstrap the baseline with \
                     `cargo xtask effects --update`",
                    path.display()
                )
            })?;
            let diags = effects::check_baseline(&eg, &m, &text)?;
            if diags.is_empty() {
                println!(
                    "xtask effects --check: {} function(s) match {BASELINE_REL}",
                    m.rows.len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            for d in &diags {
                println!("{d}");
            }
            eprintln!(
                "xtask effects --check: {} drift(s) from {BASELINE_REL}",
                diags.len()
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

/// What `cargo xtask cost` should do with the contract matrix.
#[derive(Clone, Copy, PartialEq, Eq)]
enum CostMode {
    Print,
    Check,
    Update,
}

/// The `cost` subcommand: collect the `// COST:` contracts, run the
/// loop-nest analysis, and print, check or update the committed baseline.
fn run_cost(args: &[String]) -> Result<ExitCode, String> {
    use xtask::callgraph::CallGraph;
    use xtask::lints::cost::{self, BASELINE_REL};
    use xtask::workspace::{FileClass, SourceFile, Workspace};

    let mut root: Option<PathBuf> = None;
    let mut mode = CostMode::Print;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--root" => {
                let p = it.next().ok_or_else(|| "--root needs a path".to_string())?;
                root = Some(PathBuf::from(p));
            }
            "--check" => mode = CostMode::Check,
            "--update" => mode = CostMode::Update,
            other => return Err(format!("unknown flag `{other}`\n\n{USAGE}")),
        }
    }
    let root = match root {
        Some(r) => r,
        None => default_root()?,
    };

    let ws = Workspace::load(&root)?;
    let files: Vec<&SourceFile> = ws
        .files
        .iter()
        .filter(|f| f.class != FileClass::Test)
        .collect();
    let graph = CallGraph::build(&files);
    let contracts = cost::collect_contracts(&graph);
    let degrees: std::collections::HashMap<usize, u32> = contracts
        .by_fn
        .iter()
        .map(|(fid, c)| (*fid, c.degree))
        .collect();
    let an = xtask::loopnest::analyze(&graph, &degrees);
    let m = cost::matrix(&graph, &contracts, &an);

    match mode {
        CostMode::Print => {
            print!("{}", m.to_json());
            Ok(ExitCode::SUCCESS)
        }
        CostMode::Update => {
            let path = root.join(BASELINE_REL);
            std::fs::write(&path, m.baseline_json())
                .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
            println!(
                "xtask cost --update: wrote {} contract(s) to {BASELINE_REL}",
                m.rows.len()
            );
            Ok(ExitCode::SUCCESS)
        }
        CostMode::Check => {
            let path = root.join(BASELINE_REL);
            let text = std::fs::read_to_string(&path).map_err(|e| {
                format!(
                    "cannot read {}: {e} — bootstrap the baseline with \
                     `cargo xtask cost --update`",
                    path.display()
                )
            })?;
            let diags = cost::check_baseline(&m, &text)?;
            if diags.is_empty() {
                println!(
                    "xtask cost --check: {} contract(s) match {BASELINE_REL}",
                    m.rows.len()
                );
                return Ok(ExitCode::SUCCESS);
            }
            for d in &diags {
                println!("{d}");
            }
            eprintln!(
                "xtask cost --check: {} drift(s) from {BASELINE_REL}",
                diags.len()
            );
            Ok(ExitCode::FAILURE)
        }
    }
}

/// The workspace root: two levels above this crate's manifest, independent
/// of the invocation directory.
fn default_root() -> Result<PathBuf, String> {
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .map(Path::to_path_buf)
        .ok_or_else(|| "cannot locate workspace root".to_string())
}
