//! Workspace discovery: which files exist, what role each plays, and the
//! allowlists that carve out justified exceptions.

use std::cell::Cell;
use std::fs;
use std::path::{Path, PathBuf};

use crate::scan::{self, Scanned};

/// The role a source file plays, which decides which lints apply to it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FileClass {
    /// Library code (`crates/<c>/src/**`, root `src/**`): all lints.
    Lib,
    /// Binary code (`src/bin/**`, the xtask tool): accounting + unsafe +
    /// layering, but the panic surface is the binary's own business.
    Bin,
    /// Integration tests / benches / examples: unsafe audit only.
    Test,
}

/// One scanned source file.
///
/// Each file is read and tokenized exactly once, at workspace load; the
/// token stream plus the derived per-token test mask and function context
/// are shared by every lint, so adding a lint never adds a filesystem
/// pass.
pub struct SourceFile {
    /// Workspace-relative path with forward slashes.
    pub rel: String,
    /// Which lints apply.
    pub class: FileClass,
    /// `Some(<dir name>)` for files under `crates/<dir>/…`, `None` for the
    /// root facade package.
    pub crate_dir: Option<String>,
    /// Token/comment scan of the file.
    pub scanned: Scanned,
    /// Parallel to `scanned.toks`: `true` for tokens inside test-gated
    /// items (see [`scan::test_mask`]).
    pub test_mask: Vec<bool>,
    /// Parallel to `scanned.toks`: the innermost enclosing named `fn`
    /// (see [`scan::fn_context`]).
    pub fn_ctx: Vec<Option<String>>,
}

impl SourceFile {
    /// Scans `text` once and precomputes the shared per-token views.
    pub fn new(rel: String, class: FileClass, crate_dir: Option<String>, text: &str) -> Self {
        let scanned = scan::scan(text);
        let test_mask = scan::test_mask(&scanned.toks);
        let fn_ctx = scan::fn_context(&scanned.toks);
        SourceFile {
            rel,
            class,
            crate_dir,
            scanned,
            test_mask,
            fn_ctx,
        }
    }
}

/// The loaded workspace: every source file plus the allowlists.
pub struct Workspace {
    /// Absolute workspace root.
    pub root: PathBuf,
    /// All scanned source files, sorted by path.
    pub files: Vec<SourceFile>,
}

impl Workspace {
    /// Walks and scans the workspace rooted at `root`.
    ///
    /// Covered: `crates/*/{src,tests,benches}`, root `src/`, `tests/`,
    /// `examples/`. Excluded: `target/`, `vendor/` (offline stand-ins for
    /// crates.io dependencies) and `crates/xtask/fixtures/` (the lint
    /// corpus, which *must* contain violations).
    pub fn load(root: &Path) -> Result<Self, String> {
        let mut files = Vec::new();
        let crates_dir = root.join("crates");
        if let Ok(entries) = fs::read_dir(&crates_dir) {
            let mut dirs: Vec<PathBuf> = entries
                .filter_map(|e| e.ok().map(|e| e.path()))
                .filter(|p| p.is_dir())
                .collect();
            dirs.sort();
            for dir in dirs {
                let name = match dir.file_name().and_then(|n| n.to_str()) {
                    Some(n) => n.to_string(),
                    None => continue,
                };
                collect_dir(root, &dir.join("src"), &mut files, |rel| {
                    let class = if rel.contains("/src/bin/") {
                        FileClass::Bin
                    } else {
                        FileClass::Lib
                    };
                    (class, Some(name.clone()))
                })?;
                for sub in ["tests", "benches"] {
                    collect_dir(root, &dir.join(sub), &mut files, |_| {
                        (FileClass::Test, Some(name.clone()))
                    })?;
                }
            }
        }
        collect_dir(root, &root.join("src"), &mut files, |rel| {
            let class = if rel.contains("src/bin/") {
                FileClass::Bin
            } else {
                FileClass::Lib
            };
            (class, None)
        })?;
        for sub in ["tests", "examples", "benches"] {
            collect_dir(root, &root.join(sub), &mut files, |_| {
                (FileClass::Test, None)
            })?;
        }
        files.sort_by(|a, b| a.rel.cmp(&b.rel));
        Ok(Workspace {
            root: root.to_path_buf(),
            files,
        })
    }

    /// Loads the allowlist at `crates/xtask/allow/<name>`, or an empty one
    /// if the file does not exist.
    pub fn allowlist(&self, name: &str) -> Result<Allowlist, String> {
        let path = self.root.join("crates/xtask/allow").join(name);
        if !path.exists() {
            return Ok(Allowlist::default());
        }
        let text =
            fs::read_to_string(&path).map_err(|e| format!("reading {}: {e}", path.display()))?;
        Ok(Allowlist::parse(&text))
    }
}

fn collect_dir(
    root: &Path,
    dir: &Path,
    out: &mut Vec<SourceFile>,
    classify: impl Fn(&str) -> (FileClass, Option<String>) + Copy,
) -> Result<(), String> {
    if !dir.is_dir() {
        return Ok(());
    }
    let entries = fs::read_dir(dir).map_err(|e| format!("reading {}: {e}", dir.display()))?;
    let mut paths: Vec<PathBuf> = entries.filter_map(|e| e.ok().map(|e| e.path())).collect();
    paths.sort();
    for path in paths {
        if path.is_dir() {
            // Never descend into the fixture corpus.
            if path.file_name().and_then(|n| n.to_str()) == Some("fixtures") {
                continue;
            }
            collect_dir(root, &path, out, classify)?;
        } else if path.extension().and_then(|e| e.to_str()) == Some("rs") {
            let rel = rel_path(root, &path)?;
            let (class, crate_dir) = classify(&rel);
            let text = fs::read_to_string(&path)
                .map_err(|e| format!("reading {}: {e}", path.display()))?;
            out.push(SourceFile::new(rel, class, crate_dir, &text));
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> Result<String, String> {
    let rel = path
        .strip_prefix(root)
        .map_err(|_| format!("{} outside workspace root", path.display()))?;
    Ok(rel.to_string_lossy().replace('\\', "/"))
}

/// One allowlist entry: a whole file, or one function within a file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Workspace-relative file path.
    pub path: String,
    /// `Some(fn_name)` restricts the entry to one function.
    pub func: Option<String>,
    /// 1-based line of the entry in its `.allow` file.
    pub line: u32,
    /// Set when the entry suppressed (or would suppress) a real finding
    /// during an analyze run; entries still `false` afterwards are stale.
    used: Cell<bool>,
}

impl AllowEntry {
    /// The entry as written (`path` or `path::func`).
    pub fn display(&self) -> String {
        match &self.func {
            Some(f) => format!("{}::{f}", self.path),
            None => self.path.clone(),
        }
    }

    /// True if the entry matched a site during the current run.
    pub fn is_used(&self) -> bool {
        self.used.get()
    }
}

/// A parsed allowlist (`crates/xtask/allow/*.allow`).
///
/// Format: one entry per line — `path/to/file.rs` (whole file) or
/// `path/to/file.rs::function_name`. Blank lines and `#` comments are
/// ignored; the convention is that every entry (or block of entries) carries
/// a `#` comment justifying it.
///
/// Every [`Allowlist::permits`] hit marks the matching entries as used;
/// the `stale-allow` lint reports entries that matched nothing, so
/// suppressions cannot outlive the site they were written for.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses allowlist text.
    pub fn parse(text: &str) -> Self {
        let entries = text
            .lines()
            .enumerate()
            .map(|(idx, l)| (idx as u32 + 1, l.trim()))
            .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'))
            .map(|(line, l)| match l.split_once("::") {
                Some((path, func)) => AllowEntry {
                    path: path.trim().to_string(),
                    func: Some(func.trim().to_string()),
                    line,
                    used: Cell::new(false),
                },
                None => AllowEntry {
                    path: l.to_string(),
                    func: None,
                    line,
                    used: Cell::new(false),
                },
            })
            .collect();
        Allowlist { entries }
    }

    /// True if `file` (optionally within function `func`) is allowlisted.
    /// Marks every matching entry as used.
    pub fn permits(&self, file: &str, func: Option<&str>) -> bool {
        let mut hit = false;
        for e in &self.entries {
            let matches = e.path == file
                && match (&e.func, func) {
                    (None, _) => true,
                    (Some(want), Some(have)) => want == have,
                    (Some(_), None) => false,
                };
            if matches {
                e.used.set(true);
                hit = true;
            }
        }
        hit
    }

    /// All entries, in file order (with their usage flags).
    pub fn entries(&self) -> &[AllowEntry] {
        &self.entries
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allowlist_parses_and_matches() {
        let a = Allowlist::parse(
            "# reason\ncrates/a/src/x.rs\n\n# another\ncrates/b/src/y.rs::helper\n",
        );
        assert!(a.permits("crates/a/src/x.rs", None));
        assert!(a.permits("crates/a/src/x.rs", Some("anything")));
        assert!(a.permits("crates/b/src/y.rs", Some("helper")));
        assert!(!a.permits("crates/b/src/y.rs", Some("other")));
        assert!(!a.permits("crates/b/src/y.rs", None));
        assert!(!a.permits("crates/c/src/z.rs", None));
    }

    #[test]
    fn permits_marks_entries_used() {
        let a = Allowlist::parse("# reason\ncrates/a/src/x.rs\ncrates/b/src/y.rs::helper\n");
        assert!(a.permits("crates/a/src/x.rs", Some("any")));
        let flags: Vec<(u32, bool)> = a.entries().iter().map(|e| (e.line, e.is_used())).collect();
        assert_eq!(flags, vec![(2, true), (3, false)]);
        assert_eq!(a.entries()[1].display(), "crates/b/src/y.rs::helper");
    }
}
